#include "bench_common.hpp"

#include <iostream>

namespace mca2a::benchx {

std::vector<std::size_t> default_sizes() {
  if (std::getenv("A2A_FAST") != nullptr) {
    return {4, 64, 1024, 4096};
  }
  return {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

std::vector<int> default_nodes() {
  if (std::getenv("A2A_FAST") != nullptr) {
    return {2, 8, 32};
  }
  return {2, 4, 8, 16, 32};
}

namespace {

bench::RunSpec make_spec(const topo::MachineDesc& machine,
                         const model::NetParams& net, const Series& s,
                         std::size_t block, bool trace) {
  bench::RunSpec spec;
  spec.machine = machine;
  spec.net = net;
  spec.algo = s.algo;
  spec.inner = s.inner;
  spec.group_size = s.group_size;
  spec.block = block;
  spec.collect_trace = trace;
  // Figure benches time the steady-state exchange: execute through a
  // persistent plan so communicator construction and selection stay out of
  // the timed region (A2A_NO_PLAN=1 restores the legacy per-run path).
  spec.use_plan = std::getenv("A2A_NO_PLAN") == nullptr;
  bench::apply_env(spec);
  return spec;
}

void register_point(bench::Figure& fig, const std::string& series_name,
                    double x, const bench::RunSpec& spec) {
  const std::string bname =
      fig.id() + "/" + series_name + "/" + std::to_string(static_cast<long>(x));
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, series_name, x, spec](benchmark::State& state) {
        double seconds = 0.0;
        for (auto _ : state) {
          const bench::RunResult r = bench::run_sim(spec);
          seconds = r.seconds;
          state.SetIterationTime(r.seconds);
        }
        state.counters["sim_s"] = seconds;
        fig.add(series_name, x, seconds);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void register_phase_point(bench::Figure& fig,
                          const std::vector<PhaseSeries>& phases, double x,
                          const bench::RunSpec& spec) {
  const std::string bname = fig.id() + "/breakdown/" +
                            std::to_string(static_cast<long>(x));
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, phases, x, spec](benchmark::State& state) {
        bench::RunResult r;
        for (auto _ : state) {
          r = bench::run_sim(spec);
          state.SetIterationTime(r.seconds);
        }
        for (const PhaseSeries& ps : phases) {
          fig.add(ps.name, x, r.phase_seconds[static_cast<int>(ps.phase)]);
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

void register_size_sweep(bench::Figure& fig, const topo::Machine& machine,
                         const model::NetParams& net,
                         const std::vector<Series>& series,
                         const std::vector<std::size_t>& sizes) {
  for (const Series& s : series) {
    for (std::size_t block : sizes) {
      register_point(fig, s.name, static_cast<double>(block),
                     make_spec(machine.desc(), net, s, block, false));
    }
  }
}

void register_node_sweep(bench::Figure& fig, const std::string& machine_name,
                         const model::NetParams& net,
                         const std::vector<Series>& series,
                         const std::vector<int>& nodes, std::size_t block) {
  for (const Series& s : series) {
    for (int n : nodes) {
      const topo::Machine machine = topo::by_name(machine_name, n);
      register_point(fig, s.name, static_cast<double>(n),
                     make_spec(machine.desc(), net, s, block, false));
    }
  }
}

void register_breakdown_sweep(bench::Figure& fig, const topo::Machine& machine,
                              const model::NetParams& net, const Series& algo,
                              const std::vector<PhaseSeries>& phases,
                              const std::vector<std::size_t>& sizes) {
  for (std::size_t block : sizes) {
    register_phase_point(fig, phases, static_cast<double>(block),
                         make_spec(machine.desc(), net, algo, block, true));
  }
}

void register_breakdown_node_sweep(bench::Figure& fig,
                                   const std::string& machine_name,
                                   const model::NetParams& net,
                                   const Series& algo,
                                   const std::vector<PhaseSeries>& phases,
                                   const std::vector<int>& nodes,
                                   std::size_t block) {
  for (int n : nodes) {
    const topo::Machine machine = topo::by_name(machine_name, n);
    register_phase_point(fig, phases, static_cast<double>(n),
                         make_spec(machine.desc(), net, algo, block, true));
  }
}

void register_breakdown_point(bench::Figure& fig, const topo::Machine& machine,
                              const model::NetParams& net, const Series& algo,
                              const std::vector<PhaseSeries>& phases, double x,
                              std::size_t block) {
  register_phase_point(fig, phases, x,
                       make_spec(machine.desc(), net, algo, block, true));
}

int figure_main(int argc, char** argv, bench::Figure& fig) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fig.print(std::cout);
  const std::string csv = fig.write_csv_env();
  if (!csv.empty()) {
    std::cout << "(csv written to " << csv << ")\n";
  }
  // Machine-readable trajectory data: A2A_BENCH_JSON=dir makes every
  // figure bench drop a BENCH_<id>.json there.
  if (const char* dir = std::getenv("A2A_BENCH_JSON");
      dir != nullptr && *dir != '\0') {
    const std::string json = fig.write_json_file("BENCH_" + fig.id() + ".json");
    if (!json.empty()) {
      std::cout << "(json written to " << json << ")\n";
    }
  }
  return 0;
}

}  // namespace mca2a::benchx
