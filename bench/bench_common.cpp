#include "bench_common.hpp"
#include "runtime/env.hpp"

#include <array>
#include <iostream>
#include <string_view>

namespace mca2a::benchx {

std::vector<std::size_t> default_sizes() {
  if (rt::env::get_flag("A2A_FAST")) {
    return {4, 64, 1024, 4096};
  }
  return {4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

std::vector<int> default_nodes() {
  if (rt::env::get_flag("A2A_FAST")) {
    return {2, 8, 32};
  }
  return {2, 4, 8, 16, 32};
}

namespace {

bench::RunSpec make_spec(const topo::MachineDesc& machine,
                         const model::NetParams& net, const Series& s,
                         std::size_t block, bool trace) {
  bench::RunSpec spec;
  spec.machine = machine;
  spec.net = net;
  spec.algo = s.algo;
  spec.inner = s.inner;
  spec.group_size = s.group_size;
  spec.block = block;
  spec.collect_trace = trace;
  // Figure benches time the steady-state exchange: execute through a
  // persistent plan so communicator construction and selection stay out of
  // the timed region (A2A_NO_PLAN=1 restores the legacy per-run path).
  spec.use_plan = !rt::env::get_flag("A2A_NO_PLAN");
  bench::apply_env(spec);
  return spec;
}

void register_point(bench::Figure& fig, const std::string& series_name,
                    double x, const bench::RunSpec& spec) {
  const std::string bname =
      fig.id() + "/" + series_name + "/" + std::to_string(static_cast<long>(x));
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, series_name, x, spec](benchmark::State& state) {
        double seconds = 0.0;
        for (auto _ : state) {
          const bench::RunResult r = bench::run_sim(spec);
          seconds = r.seconds;
          state.SetIterationTime(r.seconds);
          // Repetition spread next to the headline minimum (nearest-rank
          // percentiles; only multi-rep runs produce rep_seconds).
          if (r.rep_seconds.size() >= 2) {
            state.counters["sim_p50_s"] = r.p50();
            state.counters["sim_p95_s"] = r.p95();
            state.counters["sim_p99_s"] = r.p99();
          }
        }
        state.counters["sim_s"] = seconds;
        fig.add(series_name, x, seconds);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void register_phase_point(bench::Figure& fig,
                          const std::vector<PhaseSeries>& phases, double x,
                          const bench::RunSpec& spec) {
  const std::string bname = fig.id() + "/breakdown/" +
                            std::to_string(static_cast<long>(x));
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, phases, x, spec](benchmark::State& state) {
        bench::RunResult r;
        for (auto _ : state) {
          r = bench::run_sim(spec);
          state.SetIterationTime(r.seconds);
        }
        for (const PhaseSeries& ps : phases) {
          fig.add(ps.name, x, r.phase_seconds[static_cast<int>(ps.phase)]);
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

void register_size_sweep(bench::Figure& fig, const topo::Machine& machine,
                         const model::NetParams& net,
                         const std::vector<Series>& series,
                         const std::vector<std::size_t>& sizes) {
  for (const Series& s : series) {
    for (std::size_t block : sizes) {
      register_point(fig, s.name, static_cast<double>(block),
                     make_spec(machine.desc(), net, s, block, false));
    }
  }
}

void register_node_sweep(bench::Figure& fig, const std::string& machine_name,
                         const model::NetParams& net,
                         const std::vector<Series>& series,
                         const std::vector<int>& nodes, std::size_t block) {
  for (const Series& s : series) {
    for (int n : nodes) {
      const topo::Machine machine = topo::by_name(machine_name, n);
      register_point(fig, s.name, static_cast<double>(n),
                     make_spec(machine.desc(), net, s, block, false));
    }
  }
}

void register_breakdown_sweep(bench::Figure& fig, const topo::Machine& machine,
                              const model::NetParams& net, const Series& algo,
                              const std::vector<PhaseSeries>& phases,
                              const std::vector<std::size_t>& sizes) {
  for (std::size_t block : sizes) {
    register_phase_point(fig, phases, static_cast<double>(block),
                         make_spec(machine.desc(), net, algo, block, true));
  }
}

void register_breakdown_node_sweep(bench::Figure& fig,
                                   const std::string& machine_name,
                                   const model::NetParams& net,
                                   const Series& algo,
                                   const std::vector<PhaseSeries>& phases,
                                   const std::vector<int>& nodes,
                                   std::size_t block) {
  for (int n : nodes) {
    const topo::Machine machine = topo::by_name(machine_name, n);
    register_phase_point(fig, phases, static_cast<double>(n),
                         make_spec(machine.desc(), net, algo, block, true));
  }
}

void register_breakdown_point(bench::Figure& fig, const topo::Machine& machine,
                              const model::NetParams& net, const Series& algo,
                              const std::vector<PhaseSeries>& phases, double x,
                              std::size_t block) {
  register_phase_point(fig, phases, x,
                       make_spec(machine.desc(), net, algo, block, true));
}

std::string default_bench_out_dir() {
#ifdef MCA2A_BENCH_OUT_DIR
  return MCA2A_BENCH_OUT_DIR;
#else
  return ".";
#endif
}

std::string write_bench_json(const bench::Figure& fig) {
  // Figure::write_json_file redirects into $A2A_BENCH_JSON when set.
  return fig.write_json_file(default_bench_out_dir() + "/BENCH_" + fig.id() +
                             ".json");
}

namespace {

void print_usage(std::ostream& os, const bench::Figure& fig,
                 const char* prog) {
  os << prog << " — figure bench '" << fig.id() << "'\n\n"
     << "Flags:\n"
        "  --list        enumerate every registered (series, x) point\n"
        "                without running anything\n"
        "  --help, -h    this text\n"
        "  (anything else is passed to google-benchmark, e.g.\n"
        "   --benchmark_filter=<regex>)\n\n"
        "Environment knobs (docs/tuning.md has the full list):\n"
        "  A2A_FAST=1          subsample sweeps (quick smoke run)\n"
        "  A2A_BENCH_REPS=n    repetitions inside the simulator\n"
        "  A2A_NOISE=sigma     log-normal noise on latencies/overheads\n"
        "  A2A_BENCH_CSV=dir   also write <fig>.csv into dir\n"
        "  A2A_BENCH_JSON=dir  BENCH_<fig>.json destination (default: "
     << default_bench_out_dir()
     << ")\n"
        "  A2A_NO_PLAN=1       bypass persistent plans\n"
        "  A2A_AUTOTUNE=mode   online autotuning: off|observe|adapt\n"
        "  A2A_PROFILE=path    persist the autotune profile across runs\n"
        "  A2A_TRACE=dir       flight recorder: one Chrome/Perfetto trace\n"
        "                      JSON per rank into dir at exit\n"
        "  A2A_METRICS=path    metrics snapshot at exit (text; .json too)\n"
        "  A2A_BACKEND=net     run over real TCP sockets instead of the\n"
        "                      simulator; launch the bench under\n"
        "                      tools/a2arun with -n = nodes * ppn\n"
        "  A2A_NET_RAILS=k     TCP connections per peer pair (default 2)\n"
        "  A2A_NET_EAGER=b     eager/rendezvous threshold, bytes (16384)\n"
        "  A2A_NET_STRIPE=b    multi-rail stripe threshold, bytes (262144)\n"
        "  A2A_NET_IFACE=ips   comma-separated local IPs, one rail per\n"
        "                      NIC (default: one interface, k streams)\n";
}

}  // namespace

int figure_main(int argc, char** argv, bench::Figure& fig) {
  // Our flags first: google-benchmark rejects argv it does not know.
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, fig, argv[0]);
      return 0;
    }
    if (arg == "--list") {
      // Every registered (series, x) point is one google-benchmark entry;
      // delegate the enumeration to its list mode (no benchmark runs).
      std::string prog = argv[0];
      std::string flag = "--benchmark_list_tests=true";
      std::array<char*, 2> av = {prog.data(), flag.data()};
      int ac = static_cast<int>(av.size());
      benchmark::Initialize(&ac, av.data());
      benchmark::RunSpecifiedBenchmarks();
      benchmark::Shutdown();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fig.print(std::cout);
  const std::string csv = fig.write_csv_env();
  if (!csv.empty()) {
    std::cout << "(csv written to " << csv << ")\n";
  }
  // Machine-readable trajectory data, always: into $A2A_BENCH_JSON when
  // set, the build tree's bench/ directory otherwise (never the source
  // tree — bench artifacts are not for committing).
  const std::string json = write_bench_json(fig);
  if (!json.empty()) {
    std::cout << "(json written to " << json << ")\n";
  }
  return 0;
}

}  // namespace mca2a::benchx
