/// Figure 18: best algorithms vs System MPI on 32 nodes of Tuolomne
/// (MI300A + Slingshot-11 + Cray MPICH).
///
/// Paper shape: Node-Aware best at small sizes with System MPI close
/// behind; at large sizes the heavily vendor-tuned Cray MPICH wins.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig18", "Figure 18: Tuolomne, 32 nodes",
                    "Message Size (bytes)");
  const topo::Machine machine = topo::tuolomne(32);
  const model::NetParams net = model::slingshot();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Node-Aware", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Locality-Aware", Algo::kLocalityAware, Inner::kPairwise, 4},
      {"Multileader + Locality", Algo::kMultileaderNodeAware, Inner::kPairwise, 4},
  };
  benchx::register_size_sweep(fig, machine, net, series,
                              benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
