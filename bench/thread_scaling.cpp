/// Thread-scaling study for the shared-memory backend's mailbox
/// transports: wall-clock time of one alltoall / alltoallv exchange as the
/// rank-thread count grows, with the lock-free SPSC ring transport and the
/// mutex-guarded baseline as paired series. The config is passed to the
/// cluster explicitly (never through the environment), so both transports
/// run in one process under identical conditions; the gap between the
/// paired curves is the mailbox's contribution to many-core scaling.
///
/// Thread counts sweep 4 -> max(16, hardware_concurrency) by doubling
/// (A2A_FAST: 4 and 8 only); counts above the core count run
/// oversubscribed, which is exactly where the ring's wait-free send path
/// pulls away from a contended mutex+futex. Each point is the max over
/// ranks of per-exchange elapsed time, averaged over a few repetitions
/// behind barriers.
///
/// Always writes machine-readable BENCH_thread_scaling.json (into
/// $A2A_BENCH_JSON if set, else the build tree's bench/ directory); --list
/// and --help work like every other figure bench.

#include "bench_common.hpp"
#include "coll_ext/alltoallv.hpp"
#include "core/alltoall.hpp"
#include "runtime/collectives.hpp"
#include "runtime/env.hpp"
#include "smp/smp_runtime.hpp"
#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

using namespace mca2a;

namespace {

constexpr std::size_t kBlock = 64;  ///< bytes per rank pair
constexpr int kReps = 3;

double max_over_ranks(const std::vector<double>& elapsed) {
  double worst = 0.0;
  for (double e : elapsed) {
    worst = std::max(worst, e);
  }
  return worst;
}

/// One alltoall exchange on `p` rank threads under `cfg`; max over ranks
/// of elapsed seconds, averaged over kReps timed runs after one warmup.
double smp_alltoall_seconds(int p, const smp::MailboxConfig& cfg) {
  std::vector<double> elapsed(p, 0.0);
  smp::run_threads(p, cfg, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    rt::Buffer send = rt::Buffer::real(kBlock * static_cast<std::size_t>(p));
    rt::Buffer recv = rt::Buffer::real(kBlock * static_cast<std::size_t>(p));
    for (std::byte& b : send.typed<std::byte>()) {
      b = static_cast<std::byte>(me);
    }
    double total = 0.0;
    for (int rep = 0; rep < kReps + 1; ++rep) {
      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      co_await coll::alltoall_nonblocking(world, send.view(), recv.view(),
                                          kBlock);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (rep > 0) {  // rep 0 is warmup
        total += secs;
      }
    }
    elapsed[me] = total / kReps;
  });
  return max_over_ranks(elapsed);
}

/// Same for a uniform alltoallv (kBlock bytes per pair, nonblocking
/// direct algorithm — the count/displacement machinery is the point).
double smp_alltoallv_seconds(int p, const smp::MailboxConfig& cfg) {
  std::vector<double> elapsed(p, 0.0);
  smp::run_threads(p, cfg, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const std::vector<std::size_t> counts(static_cast<std::size_t>(p), kBlock);
    const auto displs = coll::displs_from_counts(counts);
    rt::Buffer send = rt::Buffer::real(kBlock * static_cast<std::size_t>(p));
    rt::Buffer recv = rt::Buffer::real(kBlock * static_cast<std::size_t>(p));
    for (std::byte& b : send.typed<std::byte>()) {
      b = static_cast<std::byte>(me);
    }
    double total = 0.0;
    for (int rep = 0; rep < kReps + 1; ++rep) {
      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      co_await coll::run_alltoallv(coll::AlltoallvAlgo::kNonblocking, world,
                                   nullptr, rt::ConstView(send.view()), counts,
                                   displs, recv.view(), counts, displs);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (rep > 0) {
        total += secs;
      }
    }
    elapsed[me] = total / kReps;
  });
  return max_over_ranks(elapsed);
}

void register_point(bench::Figure& fig, const char* op, const char* transport,
                    const smp::MailboxConfig& cfg, int threads) {
  const std::string series = std::string(op) + " " + transport;
  const std::string bname =
      "thread_scaling/" + series + "/t" + std::to_string(threads);
  const bool vector = std::string_view(op) == "alltoallv";
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, series, cfg, threads, vector](benchmark::State& state) {
        double secs = 0.0;
        for (auto _ : state) {
          secs = vector ? smp_alltoallv_seconds(threads, cfg)
                        : smp_alltoall_seconds(threads, cfg);
          state.SetIterationTime(secs);
        }
        fig.add(series, static_cast<double>(threads), secs);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = rt::env::get_flag("A2A_FAST");
  bench::Figure fig("thread_scaling",
                    "Mailbox transport scaling: ring vs mutex, one exchange "
                    "per point (smp backend, 64 B per rank pair)",
                    "Rank threads");
  std::vector<int> threads;
  if (fast) {
    threads = {4, 8};
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    const int max_t = static_cast<int>(std::max(16u, hw == 0 ? 1u : hw));
    for (int t = 4; t <= max_t; t *= 2) {
      threads.push_back(t);
    }
    if (threads.back() != max_t) {
      threads.push_back(max_t);
    }
  }
  smp::MailboxConfig ring;  // the defaults: kind = kRing
  smp::MailboxConfig mutex;
  mutex.kind = smp::MailboxKind::kMutex;
  for (int t : threads) {
    register_point(fig, "alltoall", "ring", ring, t);
    register_point(fig, "alltoall", "mutex", mutex, t);
    register_point(fig, "alltoallv", "ring", ring, t);
    register_point(fig, "alltoallv", "mutex", mutex, t);
  }
  // figure_main always writes BENCH_thread_scaling.json (build tree by
  // default, $A2A_BENCH_JSON overrides).
  return benchx::figure_main(argc, argv, fig);
}
