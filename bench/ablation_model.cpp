/// Ablation of the performance-model mechanisms DESIGN.md calls out, at the
/// paper's headline configuration (Dane, 32 nodes): each row disables one
/// mechanism and reports how the Figure-10 orderings move. This documents
/// WHICH modelled effect produces WHICH published result:
///
///   * rendezvous NIC penalty  -> Locality-Aware beating Node-Aware at 4 KiB
///                                (Figure 8's largest-size win)
///   * cache-blended intra copy-> the gather funnel dominating the
///                                hierarchical breakdown at >= 256 B (Fig 13)
///   * queue-search cost       -> nonblocking's overheads at scale
///   * vendor factor           -> System MPI's competitiveness (Figs 17/18)

#include "bench_common.hpp"

using namespace mca2a;

namespace {

struct Ablation {
  const char* name;
  void (*mutate)(model::NetParams&);
};

double measure(const model::NetParams& net, coll::Algo algo, int group,
               std::size_t block) {
  bench::RunSpec spec;
  spec.machine = topo::dane(32).desc();
  spec.net = net;
  spec.algo = algo;
  spec.group_size = group;
  spec.block = block;
  return bench::run_sim(spec).seconds;
}

void register_row(bench::Figure& fig, const Ablation& ab) {
  const std::string bname = std::string("ablation/") + ab.name;
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, ab](benchmark::State& state) {
        model::NetParams net = model::omni_path();
        ab.mutate(net);
        double total = 0.0;
        for (auto _ : state) {
          // The three headline observables.
          const double na_large = measure(net, coll::Algo::kNodeAware, 0, 4096);
          const double la_large =
              measure(net, coll::Algo::kLocalityAware, 4, 4096);
          const double mlna_small =
              measure(net, coll::Algo::kMultileaderNodeAware, 4, 4);
          const double sys_small = measure(net, coll::Algo::kSystemMpi, 0, 4);
          const double sys_mid = measure(net, coll::Algo::kSystemMpi, 0, 256);
          const double na_mid = measure(net, coll::Algo::kNodeAware, 0, 256);
          total = na_large + la_large + mlna_small + sys_small;
          state.SetIterationTime(total);
          const double x = 0;  // single column of observables
          (void)x;
          fig.add(std::string(ab.name) + ": LA/NA @4KiB", 0,
                  la_large / na_large);
          fig.add(std::string(ab.name) + ": MLNA/System @4B", 1,
                  mlna_small / sys_small);
          fig.add(std::string(ab.name) + ": NA/System @256B", 2,
                  na_mid / sys_mid);
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig(
      "ablation",
      "Model ablation: ratios (< 1 means the paper's winner still wins)",
      "observable");
  static const Ablation kAblations[] = {
      {"full model", [](model::NetParams&) {}},
      {"no rendezvous penalty",
       [](model::NetParams& n) { n.rendezvous_nic_factor = 1.0; }},
      {"no cache blend",
       [](model::NetParams& n) {
         n.cpu_copy_beta_intra_cached = n.cpu_copy_beta_intra;
         n.intra_cache_bytes = 0;
       }},
      {"no queue-search cost",
       [](model::NetParams& n) { n.match_per_item = 0.0; }},
      {"no vendor tuning", [](model::NetParams& n) { n.vendor_factor = 1.0; }},
      {"no NIC message overhead",
       [](model::NetParams& n) { n.nic_msg_overhead = 0.0; }},
  };
  for (const Ablation& ab : kAblations) {
    register_row(fig, ab);
  }
  return benchx::figure_main(argc, argv, fig);
}
