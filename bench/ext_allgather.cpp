/// Extension study (paper §5 future work): allgather algorithm comparison
/// on 32 nodes of Dane, mirroring the all-to-all methodology. Expected
/// shape, per the locality-aware allgather literature the paper cites [1]:
/// locality-aware aggregation beats the flat ring at small blocks (latency)
/// and the hierarchical funnel at large blocks.

#include <optional>

#include "bench_common.hpp"

#include <algorithm>

#include "sim/cluster.hpp"
#include "coll_ext/allgather.hpp"
#include "runtime/collectives.hpp"

using namespace mca2a;

namespace {

enum class Variant { kRing, kBruck, kHierarchical, kLocalityAware };

double run_allgather(Variant v, int group_size, std::size_t block) {
  sim::ClusterConfig cfg;
  cfg.machine = topo::dane(32).desc();
  cfg.net = model::omni_path();
  cfg.carry_data = false;
  sim::Cluster cluster(cfg);
  const topo::Machine& machine = cluster.machine();
  std::vector<double> start(machine.total_ranks()), end(machine.total_ranks());
  cluster.run([&](rt::Comm& c) -> rt::Task<void> {
    std::optional<rt::LocalityComms> lc;
    if (v == Variant::kHierarchical || v == Variant::kLocalityAware) {
      lc.emplace(rt::build_locality_comms(c, machine, group_size, false));
    }
    rt::Buffer send = c.alloc_buffer(block);
    rt::Buffer recv = c.alloc_buffer(block * c.size());
    co_await rt::barrier(c);
    start[c.rank()] = c.now();
    switch (v) {
      case Variant::kRing:
        co_await coll::allgather_ring(c, send.view(), recv.view());
        break;
      case Variant::kBruck:
        co_await coll::allgather_bruck(c, send.view(), recv.view());
        break;
      case Variant::kHierarchical:
        co_await coll::allgather_hierarchical(*lc, send.view(), recv.view());
        break;
      case Variant::kLocalityAware:
        co_await coll::allgather_locality_aware(*lc, send.view(), recv.view());
        break;
    }
    end[c.rank()] = c.now();
  });
  return *std::max_element(end.begin(), end.end()) -
         *std::min_element(start.begin(), start.end());
}

void register_series(bench::Figure& fig, const std::string& name, Variant v,
                     int group_size) {
  for (std::size_t block : benchx::default_sizes()) {
    const std::string bname =
        "ext_allgather/" + name + "/" + std::to_string(block);
    benchmark::RegisterBenchmark(
        bname.c_str(),
        [&fig, name, v, group_size, block](benchmark::State& state) {
          double t = 0.0;
          for (auto _ : state) {
            t = run_allgather(v, group_size, block);
            state.SetIterationTime(t);
          }
          fig.add(name, static_cast<double>(block), t);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig("ext_allgather",
                    "Extension: allgather algorithms (Dane, 32 nodes)",
                    "Block Size (bytes)");
  register_series(fig, "Ring", Variant::kRing, 0);
  register_series(fig, "Bruck", Variant::kBruck, 0);
  register_series(fig, "Hierarchical", Variant::kHierarchical, 112);
  register_series(fig, "Node-Aware", Variant::kLocalityAware, 112);
  register_series(fig, "Locality-Aware (4 ppg)", Variant::kLocalityAware, 4);
  return benchx::figure_main(argc, argv, fig);
}
