/// Extension study (paper §5 future work): allgather algorithm comparison
/// on 32 nodes of Dane, mirroring the all-to-all methodology. Expected
/// shape, per the locality-aware allgather literature the paper cites [1]:
/// locality-aware aggregation beats the flat ring at small blocks (latency)
/// and the hierarchical funnel at large blocks.
///
/// Executes through persistent CollectivePlans (plan/plan.hpp) so
/// communicator construction stays out of the timed region, exactly like
/// the all-to-all figure benches; A2A_NO_PLAN=1 restores the legacy
/// per-run path.

#include <optional>



#include "bench_common.hpp"
#include "coll_ext/allgather.hpp"
#include "coll_ext/op_desc.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "runtime/env.hpp"
#include "sim/cluster.hpp"
#include <algorithm>

using namespace mca2a;

namespace {

double run_allgather(coll::AllgatherAlgo algo, int group_size,
                     std::size_t block) {
  sim::ClusterConfig cfg;
  cfg.machine = topo::dane(32).desc();
  cfg.net = model::omni_path();
  cfg.carry_data = false;
  sim::Cluster cluster(cfg);
  const topo::Machine& machine = cluster.machine();
  const bool use_plan = !rt::env::get_flag("A2A_NO_PLAN");
  std::vector<double> start(machine.total_ranks()), end(machine.total_ranks());
  cluster.run([&](rt::Comm& c) -> rt::Task<void> {
    // Plan time: algorithm fixed by the series, communicators built here,
    // outside the timed region (the legacy path builds them itself).
    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    if (use_plan) {
      coll::AllgatherDesc desc;
      desc.block = block;
      desc.algo = algo;
      plan::PlanOptions popts;
      popts.group_size = group_size;
      pl.emplace(plan::make_plan(c, machine, cfg.net, desc, popts));
    } else if (coll::needs_locality(algo)) {
      lc.emplace(rt::build_locality_comms(
          c, machine, group_size == 0 ? machine.ppn() : group_size, false));
    }
    rt::Buffer send = c.alloc_buffer(block);
    rt::Buffer recv = c.alloc_buffer(block * c.size());
    co_await rt::barrier(c);
    start[c.rank()] = c.now();
    if (pl) {
      co_await pl->execute(rt::ConstView(send.view()), recv.view());
    } else {
      switch (algo) {
        case coll::AllgatherAlgo::kRing:
          co_await coll::allgather_ring(c, send.view(), recv.view());
          break;
        case coll::AllgatherAlgo::kBruck:
          co_await coll::allgather_bruck(c, send.view(), recv.view());
          break;
        case coll::AllgatherAlgo::kHierarchical:
          co_await coll::allgather_hierarchical(*lc, send.view(), recv.view());
          break;
        default:
          co_await coll::allgather_locality_aware(*lc, send.view(),
                                                  recv.view());
          break;
      }
    }
    end[c.rank()] = c.now();
  });
  return *std::max_element(end.begin(), end.end()) -
         *std::min_element(start.begin(), start.end());
}

void register_series(bench::Figure& fig, const std::string& name,
                     coll::AllgatherAlgo algo, int group_size) {
  for (std::size_t block : benchx::default_sizes()) {
    const std::string bname =
        "ext_allgather/" + name + "/" + std::to_string(block);
    benchmark::RegisterBenchmark(
        bname.c_str(),
        [&fig, name, algo, group_size, block](benchmark::State& state) {
          double t = 0.0;
          for (auto _ : state) {
            t = run_allgather(algo, group_size, block);
            state.SetIterationTime(t);
          }
          fig.add(name, static_cast<double>(block), t);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig("ext_allgather",
                    "Extension: allgather algorithms (Dane, 32 nodes)",
                    "Block Size (bytes)");
  register_series(fig, "Ring", coll::AllgatherAlgo::kRing, 0);
  register_series(fig, "Bruck", coll::AllgatherAlgo::kBruck, 0);
  register_series(fig, "Hierarchical", coll::AllgatherAlgo::kHierarchical, 112);
  register_series(fig, "Node-Aware", coll::AllgatherAlgo::kLocalityAware, 112);
  register_series(fig, "Locality-Aware (4 ppg)",
                  coll::AllgatherAlgo::kLocalityAware, 4);
  return benchx::figure_main(argc, argv, fig);
}
