/// \file net_pingpong.cpp
/// Real-socket latency/bandwidth scan for the net (TCP) backend:
/// ping-pong between two rank processes across message sizes, swept over
/// rail counts — the measurement behind the alpha/beta parameters the
/// simulator's cost model assumes and the multi-rail striping claim
/// (BENCH_net.json shows rails > 1 beating a single connection on large
/// messages).
///
/// The binary self-orchestrates: invoked normally it is the *parent*,
/// which for every rail count forks two copies of itself wired together as
/// a net job over 127.0.0.1 (no a2arun needed); invoked with A2A_NET_RANK
/// set it is a *rank child* and runs the ping-pong loop. Rank 0 of each
/// job appends `bytes seconds` lines to the file named by A2A_NET_PP_OUT;
/// the parent merges all jobs into one Figure, prints the paper-style
/// table, fits alpha/beta per rail count, and writes BENCH_net.json (into
/// $A2A_BENCH_JSON, defaulting to the build tree's bench/ directory like
/// every other figure bench).
///
/// Flags:
///   --rails <csv>   rail counts to sweep (default 1,2,4)
///   --reps <n>      repetitions per size (default adaptive, min over reps)
///   --list          print the (series, x) grid without running
///   --help          this text plus the env knobs
///
/// Environment knobs (forwarded to the rank children):
///   A2A_FAST=1        subsample message sizes (quick smoke run)
///   A2A_NET_EAGER     eager/rendezvous threshold in bytes (default 16384)
///   A2A_NET_STRIPE    multi-rail stripe threshold in bytes (default 262144)
///   A2A_NET_IFACE     comma-separated local IPs to bind (multi-NIC rails)
///   A2A_BENCH_JSON    output directory for BENCH_net.json
///   A2A_BENCH_CSV     output directory for net.csv

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/figure.hpp"
#include "net/net_comm.hpp"
#include "net/socket.hpp"
#include "runtime/buffer.hpp"
#include "runtime/env.hpp"

namespace {

using mca2a::rt::Buffer;
using mca2a::rt::Request;

std::vector<std::size_t> message_sizes() {
  if (mca2a::rt::env::get_flag("A2A_FAST")) {
    return {4, 4096, 1 << 20};
  }
  // 4 B to 4 MiB, one point per factor of 4: spans pure-latency eager
  // messages through striped rendezvous bulk.
  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (std::size_t{4} << 20); s *= 4) {
    sizes.push_back(s);
  }
  return sizes;
}

int reps_for(std::size_t bytes, int override_reps) {
  if (override_reps > 0) {
    return override_reps;
  }
  return bytes <= 4096 ? 50 : bytes <= (256 << 10) ? 20 : 8;
}

// --- rank child --------------------------------------------------------------

int run_child(int override_reps) {
  auto world = mca2a::net::NetComm::process_world();
  const int me = world->rank();
  const int peer = 1 - me;
  std::ostringstream out;

  for (const std::size_t bytes : message_sizes()) {
    Buffer s = Buffer::real(bytes);
    Buffer r = Buffer::real(bytes);
    std::memset(s.data(), 0x5A, bytes);
    const int reps = reps_for(bytes, override_reps);
    double best = 1e30;
    for (int rep = 0; rep < reps + 2; ++rep) {  // two warmup rounds
      const double t0 = world->now();
      if (me == 0) {
        Request sr = world->isend(s.view(), peer, 1);
        Request rr = world->irecv(r.view(), peer, 2);
        const Request reqs[] = {sr, rr};
        world->wait_try(reqs);
      } else {
        Request rr = world->irecv(r.view(), peer, 1);
        world->wait_try({&rr, 1});
        Request sr = world->isend(r.view(), peer, 2);
        world->wait_try({&sr, 1});
      }
      const double rtt = world->now() - t0;
      if (rep >= 2 && rtt / 2 < best) {
        best = rtt / 2;  // one-way time
      }
    }
    if (me == 0) {
      out << bytes << ' ' << best << '\n';
    }
  }

  if (me == 0) {
    if (const auto path = mca2a::rt::env::get_string("A2A_NET_PP_OUT")) {
      std::ofstream f(*path, std::ios::app);
      f << out.str();
    } else {
      std::fputs(out.str().c_str(), stdout);
    }
  }
  return 0;
}

// --- parent orchestration ----------------------------------------------------

int spawn_job(int rails, const std::string& out_path, int override_reps) {
  // Bind the rendezvous port up front and hand the live listener to rank 0
  // (A2A_NET_REND_FD): picking a port and re-binding it later would race
  // against any other process on the machine.
  auto [listener, port] = mca2a::net::listen_tcp("127.0.0.1", 0, 4);
  const std::string rend = "127.0.0.1:" + std::to_string(port);
  const int rend_fd = listener.release();
  std::vector<pid_t> pids;
  for (int rank = 0; rank < 2; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("net_pingpong: fork");
      ::close(rend_fd);
      for (const pid_t p : pids) {
        ::kill(p, SIGKILL);
        ::waitpid(p, nullptr, 0);
      }
      return 1;
    }
    if (pid == 0) {
      if (rank == 0) {
        ::setenv("A2A_NET_REND_FD", std::to_string(rend_fd).c_str(), 1);
      } else {
        ::close(rend_fd);
      }
      ::setenv("A2A_NET_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("A2A_NET_SIZE", "2", 1);
      ::setenv("A2A_NET_REND", rend.c_str(), 1);
      ::setenv("A2A_NET_RAILS", std::to_string(rails).c_str(), 1);
      ::setenv("A2A_NET_PP_OUT", out_path.c_str(), 1);
      std::string reps = std::to_string(override_reps);
      char* const argv[] = {const_cast<char*>("net_pingpong"),
                            const_cast<char*>("--child-reps"),
                            const_cast<char*>(reps.c_str()), nullptr};
      ::execv("/proc/self/exe", argv);
      std::perror("net_pingpong: exec");
      ::_exit(127);
    }
    pids.push_back(pid);
  }
  ::close(rend_fd);  // rank 0's inherited copy keeps the listener alive
  // Reap in completion order; on the first failure SIGKILL the ranks that
  // are still running BEFORE waiting on them (a hung sibling must not
  // block us, and an already-reaped pid must never be signalled — the pid
  // may have been reused by an unrelated process).
  int rc = 0;
  std::size_t remaining = pids.size();
  while (remaining > 0) {
    int status = 0;
    const pid_t p = ::waitpid(-1, &status, 0);
    if (p < 0) {
      if (errno == EINTR) {
        continue;
      }
      rc = 1;
      break;
    }
    bool ours = false;
    for (pid_t& pid : pids) {
      if (pid == p) {
        pid = -1;
        ours = true;
        break;
      }
    }
    if (!ours) {
      continue;
    }
    --remaining;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      rc = 1;
      for (const pid_t pid : pids) {
        if (pid > 0) {
          ::kill(pid, SIGKILL);
        }
      }
    }
  }
  return rc;
}

void usage() {
  std::puts(
      "net_pingpong: TCP-backend ping-pong scan (alpha/beta + rail sweep)\n"
      "\n"
      "  --rails <csv>   rail counts to sweep        (default 1,2,4)\n"
      "  --reps <n>      fixed repetitions per size  (default adaptive)\n"
      "  --list          show the (series, x) grid and exit\n"
      "\n"
      "environment:\n"
      "  A2A_FAST=1      subsample message sizes (smoke run)\n"
      "  A2A_NET_EAGER   eager/rendezvous threshold, bytes (16384)\n"
      "  A2A_NET_STRIPE  multi-rail stripe threshold, bytes (262144)\n"
      "  A2A_NET_IFACE   comma-separated local IPs (multi-NIC rails)\n"
      "  A2A_BENCH_JSON  output directory for BENCH_net.json\n"
      "  A2A_BENCH_CSV   output directory for net.csv");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> rails_list = {1, 2, 4};
  int override_reps = 0;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--rails" && i + 1 < argc) {
      rails_list.clear();
      std::istringstream is(argv[++i]);
      std::string part;
      while (std::getline(is, part, ',')) {
        rails_list.push_back(std::atoi(part.c_str()));
      }
    } else if ((a == "--reps" || a == "--child-reps") && i + 1 < argc) {
      override_reps = std::atoi(argv[++i]);
    } else if (a == "--list") {
      list_only = true;
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "net_pingpong: unknown flag %s\n", a.c_str());
      usage();
      return 2;
    }
  }

  if (mca2a::net::env_configured()) {
    return run_child(override_reps);
  }

  if (list_only) {
    for (const int rails : rails_list) {
      for (const std::size_t bytes : message_sizes()) {
        std::printf("rails=%d %zu\n", rails, bytes);
      }
    }
    return 0;
  }

  mca2a::bench::Figure fig(
      "net", "TCP backend ping-pong: one-way time vs message size",
      "message bytes");
  for (const int rails : rails_list) {
    // Fresh result file per job; a fresh world (bootstrap included) per
    // rail count, since the rail mesh is fixed at connect time.
    std::string out_path = "/tmp/net_pingpong." +
                           std::to_string(::getpid()) + "." +
                           std::to_string(rails);
    std::remove(out_path.c_str());
    if (spawn_job(rails, out_path, override_reps) != 0) {
      std::fprintf(stderr, "net_pingpong: rails=%d job failed\n", rails);
      return 1;
    }
    std::ifstream in(out_path);
    std::size_t bytes = 0;
    double seconds = 0.0;
    double alpha = 0.0, t_big = 0.0;
    std::size_t big = 0;
    while (in >> bytes >> seconds) {
      fig.add("rails=" + std::to_string(rails), static_cast<double>(bytes),
              seconds);
      if (alpha == 0.0) {
        alpha = seconds;  // smallest size ~ pure latency
      }
      if (bytes > big) {
        big = bytes;
        t_big = seconds;
      }
    }
    std::remove(out_path.c_str());
    if (big > 0) {
      const double beta = (t_big - alpha) / static_cast<double>(big);
      std::printf(
          "rails=%d  alpha ~ %s  beta ~ %.3g s/B (%.2f Gb/s large-message)\n",
          rails, mca2a::bench::format_time(alpha).c_str(), beta,
          8.0 / (beta * 1e9));
    }
  }

  std::ostringstream table;
  fig.print(table);
  std::fputs(table.str().c_str(), stdout);
#ifdef MCA2A_BENCH_OUT_DIR
  // Same convention as bench_common: artifacts default into the build
  // tree, never the source tree (A2A_BENCH_JSON still overrides).
  const std::string out_dir = MCA2A_BENCH_OUT_DIR;
#else
  const std::string out_dir = ".";
#endif
  const std::string json = fig.write_json_file(out_dir + "/BENCH_net.json");
  if (!json.empty()) {
    std::printf("wrote %s\n", json.c_str());
  }
  fig.write_csv_env();
  return 0;
}
