/// Related-work study [16]: the batched all-to-all's window parameter
/// interpolates between pairwise exchange (window 1: synchronized, no
/// queue pressure) and fully nonblocking (window p: maximal overlap,
/// maximal queue-search and contention). Sweeps the window on 32 nodes of
/// Dane at a small and a large message size.

#include "bench_common.hpp"

#include <algorithm>

#include "runtime/collectives.hpp"
#include "sim/cluster.hpp"

using namespace mca2a;

namespace {

void register_point(bench::Figure& fig, const std::string& series, int window,
                    std::size_t block) {
  bench::RunSpec spec;
  spec.machine = topo::dane(32).desc();
  spec.net = model::omni_path();
  spec.algo = coll::Algo::kBatchedDirect;
  spec.block = block;
  bench::apply_env(spec);
  const std::string bname =
      "batched/" + series + "/w" + std::to_string(window);
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, series, window, spec](benchmark::State& state) mutable {
        double t = 0.0;
        for (auto _ : state) {
          sim::ClusterConfig cfg;
          cfg.machine = spec.machine;
          cfg.net = spec.net;
          cfg.carry_data = false;
          sim::Cluster cluster(cfg);
          const int p = cluster.machine().total_ranks();
          std::vector<double> start(p), end(p);
          cluster.run([&](rt::Comm& c) -> rt::Task<void> {
            rt::Buffer s = c.alloc_buffer(spec.block * c.size());
            rt::Buffer r = c.alloc_buffer(spec.block * c.size());
            co_await rt::barrier(c);
            start[c.rank()] = c.now();
            co_await coll::alltoall_batched(c, s.view(), r.view(), spec.block,
                                            window);
            end[c.rank()] = c.now();
          });
          t = *std::max_element(end.begin(), end.end()) -
              *std::min_element(start.begin(), start.end());
          state.SetIterationTime(t);
        }
        fig.add(series, window, t);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig("batched_window",
                    "Batched all-to-all window sweep (Dane, 32 nodes)",
                    "Window (outstanding pairs)");
  for (int window : {1, 4, 16, 64, 256, 1024, 3583}) {
    register_point(fig, "4 B", window, 4);
    register_point(fig, "512 B", window, 512);
  }
  return benchx::figure_main(argc, argv, fig);
}
