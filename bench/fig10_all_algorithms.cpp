/// Figure 10: every algorithm across message sizes, 32 nodes of Dane.
/// Multi-leader / locality-aware variants use 4 processes per leader/group
/// (28 leaders per node), the best configuration from Figures 7-9.
///
/// Paper shape: Multileader + Node-Aware best for small sizes (notably
/// beating System MPI's Bruck); Node-Aware best for large; Locality-Aware
/// best at the largest size; Hierarchical worst at large sizes.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig10", "Figure 10: All algorithms (Dane, 32 nodes)",
                    "Message Size (bytes)");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Hierarchical", Algo::kHierarchical, Inner::kPairwise, 0},
      {"Node-Aware", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Multileader", Algo::kMultileader, Inner::kPairwise, 4},
      {"Locality-Aware", Algo::kLocalityAware, Inner::kPairwise, 4},
      {"Multileader + Locality", Algo::kMultileaderNodeAware, Inner::kPairwise, 4},
  };
  benchx::register_size_sweep(fig, machine, net, series,
                              benchx::default_sizes());
  // figure_main always writes BENCH_fig10.json (build tree by default,
  // $A2A_BENCH_JSON overrides).
  return benchx::figure_main(argc, argv, fig);
}
