/// Figure 9: leader-count sweep for the novel Multileader + Node-Aware
/// algorithm (Algorithm 5), 32 nodes of Dane. One leader reduces to
/// hierarchical; every-rank-a-leader reduces to node-aware, so both bounds
/// are plotted alongside 4/8/16 processes per leader.
///
/// Paper shape: small sizes best with many-but-not-all leaders (~20-28).

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig09",
                    "Figure 9: Multileader + Node-Aware leader sweep (Dane, 32 nodes)",
                    "Message Size (bytes)");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Hierarchical (pairwise)", Algo::kHierarchical, Inner::kPairwise, 0},
      {"Hierarchical (nonblocking)", Algo::kHierarchical, Inner::kNonblocking, 0},
      {"4 Processes Per Leader (pairwise)", Algo::kMultileaderNodeAware, Inner::kPairwise, 4},
      {"4 Processes Per Leader (nonblocking)", Algo::kMultileaderNodeAware, Inner::kNonblocking, 4},
      {"8 Processes Per Leader (pairwise)", Algo::kMultileaderNodeAware, Inner::kPairwise, 8},
      {"8 Processes Per Leader (nonblocking)", Algo::kMultileaderNodeAware, Inner::kNonblocking, 8},
      {"16 Processes Per Leader (pairwise)", Algo::kMultileaderNodeAware, Inner::kPairwise, 16},
      {"16 Processes Per Leader (nonblocking)", Algo::kMultileaderNodeAware, Inner::kNonblocking, 16},
      {"Node-Aware (pairwise)", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Node-Aware (nonblocking)", Algo::kNodeAware, Inner::kNonblocking, 0},
  };
  benchx::register_size_sweep(fig, machine, net, series,
                              benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
