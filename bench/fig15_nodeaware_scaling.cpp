/// Figure 15: node-aware intra/inter breakdown vs node count at a constant
/// 4096-byte message size (1024 integers), pairwise inner exchange, Dane.
///
/// Paper shape: inter-node communication dominates at every node count.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;
using coll::Phase;

int main(int argc, char** argv) {
  bench::Figure fig(
      "fig15", "Figure 15: Node-Aware breakdown, 4096 B, 2-32 nodes (Dane)",
      "Nodes");
  const model::NetParams net = model::omni_path();
  const Series pairwise{"na-pw", Algo::kNodeAware, Inner::kPairwise, 0};
  benchx::register_breakdown_node_sweep(
      fig, "dane", net, pairwise,
      {{"Intra-Node Alltoall", Phase::kIntraA2A},
       {"Inter-Node Alltoall", Phase::kInterA2A}},
      benchx::default_nodes(), /*block=*/4096);
  return benchx::figure_main(argc, argv, fig);
}
