/// Overlap window study for the nonblocking-handle path (plan::Schedule):
/// how much of a batch of exchanges hides behind per-exchange compute as
/// the compute grain grows, versus the same batch chained serially through
/// completion dependencies. Sweeps the compute grain (x axis, bytes of
/// local work charged before each exchange starts) at a small and a large
/// message size on 4 nodes of Dane, node-aware algorithm, 4 exchanges per
/// batch.
///
/// The "chained" series is the serialized baseline (RunSpec::overlap_chain:
/// exchange i depends on i-1); "overlapped" starts all four up front. The
/// "critical path" series is Schedule::critical_path() of the overlapped
/// run — the dependency lower bound no schedule can beat.
///
/// Always writes machine-readable BENCH_overlap.json (into $A2A_BENCH_JSON
/// if set, else the build tree's bench/ directory) so the perf trajectory
/// has data points; the text table and CSV work like every other figure
/// bench.

#include "bench_common.hpp"
#include "runtime/env.hpp"

#include <cstdio>

using namespace mca2a;

namespace {

constexpr int kOverlapOps = 4;

void register_point(bench::Figure& fig, const std::string& size_name,
                    std::size_t block, std::size_t grain, bool chain) {
  bench::RunSpec spec;
  spec.machine = topo::dane(4).desc();
  spec.net = model::omni_path();
  spec.algo = coll::Algo::kNodeAware;
  spec.block = block;
  spec.overlap = kOverlapOps;
  spec.overlap_chain = chain;
  spec.compute_bytes = grain;
  bench::apply_env(spec);
  const std::string series = size_name + (chain ? " chained" : " overlapped");
  const std::string bname =
      "overlap/" + series + "/g" + std::to_string(grain);
  benchmark::RegisterBenchmark(
      bname.c_str(),
      [&fig, series, grain, chain, spec](benchmark::State& state) {
        bench::RunResult res;
        for (auto _ : state) {
          res = bench::run_sim(spec);
          state.SetIterationTime(res.seconds);
        }
        fig.add(series, static_cast<double>(grain), res.seconds);
        if (!chain) {
          fig.add(series + " critical-path", static_cast<double>(grain),
                  res.critical_path_seconds);
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = rt::env::get_flag("A2A_FAST");
  bench::Figure fig(
      "overlap",
      "Overlap window: 4 node-aware exchanges, compute grain sweep (Dane, "
      "4 nodes)",
      "Compute grain (bytes)");
  std::vector<std::size_t> grains =
      fast ? std::vector<std::size_t>{0, 32768}
           : std::vector<std::size_t>{0, 4096, 32768, 262144, 1048576};
  std::vector<std::pair<std::string, std::size_t>> sizes =
      fast ? std::vector<std::pair<std::string, std::size_t>>{{"4 B", 4}}
           : std::vector<std::pair<std::string, std::size_t>>{{"4 B", 4},
                                                              {"512 B", 512}};
  for (const auto& [name, block] : sizes) {
    for (std::size_t grain : grains) {
      register_point(fig, name, block, grain, /*chain=*/false);
      register_point(fig, name, block, grain, /*chain=*/true);
    }
  }
  // figure_main always writes BENCH_overlap.json (build tree by default,
  // $A2A_BENCH_JSON overrides).
  return benchx::figure_main(argc, argv, fig);
}
