/// Figure 8: Node-Aware vs Locality-Aware (Algorithm 4), 32 nodes of Dane.
/// Series: System MPI, locality-aware with 4/8/16 processes per group,
/// node-aware (one group per node).
///
/// Paper shape: node-aware best for most sizes; locality-aware overtakes at
/// the largest tested size (4096 B), where the node-aware messages cross the
/// rendezvous threshold and the full-node redistribution is at its most
/// expensive.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig08", "Figure 8: Node-Aware vs Locality-Aware (Dane, 32 nodes)",
                    "Message Size (bytes)");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"4 Processes Per Group (pairwise)", Algo::kLocalityAware, Inner::kPairwise, 4},
      {"4 Processes Per Group (nonblocking)", Algo::kLocalityAware, Inner::kNonblocking, 4},
      {"8 Processes Per Group (pairwise)", Algo::kLocalityAware, Inner::kPairwise, 8},
      {"8 Processes Per Group (nonblocking)", Algo::kLocalityAware, Inner::kNonblocking, 8},
      {"16 Processes Per Group (pairwise)", Algo::kLocalityAware, Inner::kPairwise, 16},
      {"16 Processes Per Group (nonblocking)", Algo::kLocalityAware, Inner::kNonblocking, 16},
      {"Node-Aware (pairwise)", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Node-Aware (nonblocking)", Algo::kNodeAware, Inner::kNonblocking, 0},
  };
  benchx::register_size_sweep(fig, machine, net, series,
                              benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
