/// Figure 17: best algorithms vs System MPI on 32 nodes of Amber (same
/// Sapphire Rapids / Omni-Path architecture as Dane, slightly different
/// software stack).
///
/// Paper shape: mirrors Dane — Multileader + Node-Aware best small,
/// Node-Aware best large.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig17", "Figure 17: Amber, 32 nodes", "Msg Size (bytes)");
  const topo::Machine machine = topo::amber(32);
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Node-Aware", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Locality-Aware", Algo::kLocalityAware, Inner::kPairwise, 4},
      {"Multileader + Locality", Algo::kMultileaderNodeAware, Inner::kPairwise, 4},
  };
  benchx::register_size_sweep(fig, machine, net, series,
                              benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
