/// Figure 11: node scaling at 4-byte per-process messages on Dane.
/// Paper shape: Multileader + Node-Aware fastest across node counts at this
/// latency-bound size.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig11", "Figure 11: node scaling at 4 B (Dane)", "Nodes");
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Hierarchical", Algo::kHierarchical, Inner::kPairwise, 0},
      {"Node-Aware", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Multileader", Algo::kMultileader, Inner::kPairwise, 4},
      {"Locality-Aware", Algo::kLocalityAware, Inner::kPairwise, 4},
      {"Multileader + Locality", Algo::kMultileaderNodeAware, Inner::kPairwise, 4},
  };
  benchx::register_node_sweep(fig, "dane", net, series,
                              benchx::default_nodes(), /*block=*/4);
  return benchx::figure_main(argc, argv, fig);
}
