/// Figure 7: Hierarchical vs Multileader (Algorithm 3), 32 nodes of Dane.
/// Series: System MPI, Hierarchical (one leader), multi-leader with 4/8/16
/// processes per leader. Solid lines in the paper use pairwise exchange for
/// the internal all-to-all; dashed use nonblocking — both are emitted here
/// as "(pairwise)" / "(nonblocking)" series.
///
/// Paper shape: more leaders win at large sizes (smaller gather/scatter
/// funnels); at small sizes multi-leader still beats hierarchical but with
/// fewer leaders (28 processes per leader = 4 leaders best).

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig07", "Figure 7: Hierarchical vs Multileader (Dane, 32 nodes)",
                    "Message Size (bytes)");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Hierarchical (pairwise)", Algo::kHierarchical, Inner::kPairwise, 0},
      {"Hierarchical (nonblocking)", Algo::kHierarchical, Inner::kNonblocking, 0},
      {"4 Processes Per Leader (pairwise)", Algo::kMultileader, Inner::kPairwise, 4},
      {"4 Processes Per Leader (nonblocking)", Algo::kMultileader, Inner::kNonblocking, 4},
      {"8 Processes Per Leader (pairwise)", Algo::kMultileader, Inner::kPairwise, 8},
      {"8 Processes Per Leader (nonblocking)", Algo::kMultileader, Inner::kNonblocking, 8},
      {"16 Processes Per Leader (pairwise)", Algo::kMultileader, Inner::kPairwise, 16},
      {"16 Processes Per Leader (nonblocking)", Algo::kMultileader, Inner::kNonblocking, 16},
  };
  benchx::register_size_sweep(fig, machine, net, series,
                              benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
