/// Figure 13: phase breakdown of the hierarchical algorithm, 32 nodes of
/// Dane. Series: MPI Gather, MPI Scatter, and the inter-leader all-to-all
/// with pairwise and nonblocking inner exchanges.
///
/// Paper shape: the inter-node all-to-all dominates below ~256 B; the
/// gather (the single leader's intra-node funnel) dominates at and above
/// ~256 B; nonblocking beats pairwise until ~2048 B.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::PhaseSeries;
using benchx::Series;
using coll::Algo;
using coll::Inner;
using coll::Phase;

int main(int argc, char** argv) {
  bench::Figure fig("fig13",
                    "Figure 13: Hierarchical timing breakdown (Dane, 32 nodes)",
                    "Per-Message Size (bytes)");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  const Series pairwise{"hier-pw", Algo::kHierarchical, Inner::kPairwise, 0};
  const Series nonblocking{"hier-nb", Algo::kHierarchical, Inner::kNonblocking,
                           0};
  // Gather/scatter come from the pairwise run (identical in both).
  benchx::register_breakdown_sweep(
      fig, machine, net, pairwise,
      {{"MPI Gather", Phase::kGather},
       {"MPI Scatter", Phase::kScatter},
       {"Alltoall (Pairwise)", Phase::kInterA2A}},
      benchx::default_sizes());
  benchx::register_breakdown_sweep(fig, machine, net, nonblocking,
                                   {{"Alltoall (Nonblocking)", Phase::kInterA2A}},
                                   benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
