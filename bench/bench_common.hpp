#pragma once
/// \file bench_common.hpp
/// Shared scaffolding for the per-figure benchmark binaries.
///
/// Each binary registers one google-benchmark entry per (series, x) point;
/// the benchmark's manual time IS the simulated collective time, so the
/// usual benchmark tooling (filters, JSON output, repetitions) works
/// unchanged. After the run the binary prints the paper-style table,
/// writes machine-readable BENCH_<fig>.json into the build tree (or
/// $A2A_BENCH_JSON) and, if A2A_BENCH_CSV names a directory, <fig>.csv
/// there.
///
/// Flags handled by figure_main (anything else goes to google-benchmark,
/// e.g. --benchmark_filter):
///   --list            enumerate every registered (series, x) point
///                     without running anything
///   --help / -h       usage, flags and environment knobs
///
/// Environment knobs:
///   A2A_FAST=1        subsample sizes/node counts (quick smoke run)
///   A2A_BENCH_REPS=n  repetitions inside the simulator (paper: min of 3)
///   A2A_NOISE=sigma   log-normal noise on latencies/overheads
///   A2A_BENCH_CSV=dir CSV output directory
///   A2A_BENCH_JSON=dir JSON output directory (default: build tree bench/)
///   A2A_NO_PLAN=1     bypass persistent plans (legacy per-run construction)
///   A2A_AUTOTUNE / A2A_PROFILE  online autotuning (docs/tuning.md)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/alltoall.hpp"
#include "harness/figure.hpp"
#include "harness/sweep.hpp"
#include "model/presets.hpp"
#include "topo/presets.hpp"

namespace mca2a::benchx {

/// One plotted line of a figure.
struct Series {
  std::string name;
  coll::Algo algo = coll::Algo::kNodeAware;
  coll::Inner inner = coll::Inner::kPairwise;
  int group_size = 0;  ///< 0 = whole node
};

/// The paper's per-process message sizes: 4 B to 4096 B, powers of two.
std::vector<std::size_t> default_sizes();
/// The paper's node counts: 2 to 32, powers of two.
std::vector<int> default_nodes();

/// Register a message-size sweep at fixed node count.
void register_size_sweep(bench::Figure& fig, const topo::Machine& machine,
                         const model::NetParams& net,
                         const std::vector<Series>& series,
                         const std::vector<std::size_t>& sizes);

/// Register a node-count sweep at fixed message size. `machine_name` must
/// be a topo preset name ("dane", "amber", "tuolomne").
void register_node_sweep(bench::Figure& fig, const std::string& machine_name,
                         const model::NetParams& net,
                         const std::vector<Series>& series,
                         const std::vector<int>& nodes, std::size_t block);

/// Phase-breakdown point: runs with trace collection and adds the selected
/// phases as separate figure series.
struct PhaseSeries {
  std::string name;
  coll::Phase phase;
};
void register_breakdown_sweep(bench::Figure& fig, const topo::Machine& machine,
                              const model::NetParams& net, const Series& algo,
                              const std::vector<PhaseSeries>& phases,
                              const std::vector<std::size_t>& sizes);
void register_breakdown_node_sweep(bench::Figure& fig,
                                   const std::string& machine_name,
                                   const model::NetParams& net,
                                   const Series& algo,
                                   const std::vector<PhaseSeries>& phases,
                                   const std::vector<int>& nodes,
                                   std::size_t block);

/// One breakdown point with an explicit x coordinate (used when the x axis
/// is neither message size nor node count, e.g. Figure 16's group size).
void register_breakdown_point(bench::Figure& fig, const topo::Machine& machine,
                              const model::NetParams& net, const Series& algo,
                              const std::vector<PhaseSeries>& phases, double x,
                              std::size_t block);

/// Where BENCH_*.json files land when A2A_BENCH_JSON is unset: the build
/// tree's bench/ directory (compiled in at configure time), never the
/// source tree or the working directory.
std::string default_bench_out_dir();

/// Write the figure's BENCH_<id>.json into $A2A_BENCH_JSON (when set) or
/// default_bench_out_dir(). Returns the path written, empty on failure.
std::string write_bench_json(const bench::Figure& fig);

/// Handle --list/--help, run registered benchmarks, then print the figure
/// and write JSON (always) and CSV (A2A_BENCH_CSV).
int figure_main(int argc, char** argv, bench::Figure& fig);

}  // namespace mca2a::benchx
