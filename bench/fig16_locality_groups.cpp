/// Figure 16: locality-aware intra/inter breakdown vs group size at 4096 B
/// (1024 integers), 32 nodes of Dane, pairwise inner exchange. Group sizes:
/// node-aware (one group of 112), then 16, 8 and 4 processes per group
/// (7, 14, 28 leaders).
///
/// Paper shape: inter-node dominates everywhere; group size is NOT
/// single-modal — 16 and 4 processes per group show slightly better
/// inter-node time than 8.
///
/// The x axis is the group size in ranks (112 = node-aware).

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;
using coll::Phase;

int main(int argc, char** argv) {
  bench::Figure fig(
      "fig16",
      "Figure 16: Locality-Aware breakdown vs processes-per-group "
      "(Dane, 32 nodes, 4096 B)",
      "Processes per group");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  struct Config {
    int group_size;
    Algo algo;
  };
  const std::vector<Config> configs = {{112, Algo::kNodeAware},
                                       {16, Algo::kLocalityAware},
                                       {8, Algo::kLocalityAware},
                                       {4, Algo::kLocalityAware}};
  for (const Config& c : configs) {
    const Series s{"la-g" + std::to_string(c.group_size), c.algo,
                   Inner::kPairwise,
                   c.algo == Algo::kNodeAware ? 0 : c.group_size};
    // One x position per group size; series are the two phases.
    benchx::register_breakdown_point(
        fig, machine, net, s,
        {{"Intra-Node Alltoall", Phase::kIntraA2A},
         {"Inter-Node Alltoall", Phase::kInterA2A}},
        static_cast<double>(c.group_size), /*block=*/4096);
  }
  return benchx::figure_main(argc, argv, fig);
}
