/// Figure 14: intra- vs inter-node breakdown of the node-aware algorithm,
/// 32 nodes of Dane, pairwise and nonblocking inner exchanges.
///
/// Paper shape: inter-node communication dominates at every size; the
/// intra-node redistribution scales with it but stays below.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::PhaseSeries;
using benchx::Series;
using coll::Algo;
using coll::Inner;
using coll::Phase;

int main(int argc, char** argv) {
  bench::Figure fig("fig14",
                    "Figure 14: Node-Aware timing breakdown (Dane, 32 nodes)",
                    "Per-Message Size (bytes)");
  const topo::Machine machine = topo::dane(32);
  const model::NetParams net = model::omni_path();

  const Series pairwise{"na-pw", Algo::kNodeAware, Inner::kPairwise, 0};
  const Series nonblocking{"na-nb", Algo::kNodeAware, Inner::kNonblocking, 0};
  benchx::register_breakdown_sweep(fig, machine, net, pairwise,
                                   {{"Intra-Node (Pairwise)", Phase::kIntraA2A},
                                    {"Inter-Node (Pairwise)", Phase::kInterA2A}},
                                   benchx::default_sizes());
  benchx::register_breakdown_sweep(
      fig, machine, net, nonblocking,
      {{"Intra-Node (Nonblocking)", Phase::kIntraA2A},
       {"Inter-Node (Nonblocking)", Phase::kInterA2A}},
      benchx::default_sizes());
  return benchx::figure_main(argc, argv, fig);
}
