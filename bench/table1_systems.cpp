/// Table 1: the three system architectures, as modelled by the topo and
/// model presets. Printed as a table mirroring the paper's columns plus the
/// key performance-model parameters each preset implies.

#include <iostream>
#include <sstream>

#include "harness/table.hpp"
#include "model/presets.hpp"
#include "topo/presets.hpp"

using namespace mca2a;

namespace {

std::string row_fmt(double v, const char* unit) {
  std::ostringstream os;
  os.precision(3);
  os << v << ' ' << unit;
  return os.str();
}

}  // namespace

int main() {
  std::cout << "== Table 1: System Architectures (modelled) ==\n";
  std::vector<std::string> headers = {
      "Name",      "CPU",        "Cores/node", "Sockets", "NUMA/socket",
      "Network",   "alpha(net)", "BW/NIC",     "Eager limit"};
  std::vector<std::vector<std::string>> rows;

  struct Sys {
    const char* name;
    const char* cpu;
    const char* network;
  };
  const Sys systems[] = {
      {"dane", "Intel Sapphire Rapids", "Cornelis Omni-Path"},
      {"amber", "Intel Sapphire Rapids", "Cornelis Omni-Path"},
      {"tuolomne", "AMD Instinct MI300A", "Slingshot-11"},
  };
  for (const Sys& s : systems) {
    const topo::Machine m = topo::by_name(s.name, 32);
    const model::NetParams net = model::for_machine(s.name);
    rows.push_back({
        s.name,
        s.cpu,
        std::to_string(m.ppn()),
        std::to_string(m.desc().sockets_per_node),
        std::to_string(m.desc().numa_per_socket),
        s.network,
        row_fmt(net.at(topo::Level::kNetwork).alpha * 1e6, "us"),
        row_fmt(1.0 / net.nic_inject_beta / 1e9, "GB/s"),
        row_fmt(static_cast<double>(net.eager_threshold) / 1024.0, "KiB"),
    });
  }
  bench::print_table(std::cout, headers, rows);
  std::cout << "\n(paper Table 1 reports: Dane/Amber OpenMPI 4.1.x + "
               "libfabric 2.x on Omni-Path; Tuolomne Cray MPICH 8.1.32 on "
               "Slingshot-11; the model captures their topology and fabric "
               "parameters, not software versions)\n";
  return 0;
}
