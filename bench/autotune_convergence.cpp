/// Convergence study for the online autotuner (src/autotune/): how many
/// executions does measurement-driven selection need to match the best
/// static algorithm? Each case runs N back-to-back exchanges of one shape
/// in adapt mode — every execution re-plans through one shared
/// OnlineSelector with the algorithm left empty, so the selector explores
/// the model-plausible candidates and then exploits the measured winner —
/// and plots the per-execution time (x = execution index) against two
/// constant reference lines: the best static algorithm (oracle: every
/// plausible candidate measured, minimum taken) and the closed-form
/// model's static choice.
///
/// Cases cover both backends: Dane (2 nodes, simulator, virtual time,
/// deterministic) and a 2x8-thread generic machine (threads backend, wall
/// clock). Back-to-back exchanges pipeline through residual clock skew, so
/// a session's in-flight times are history-dependent; the comparable
/// quantity is the *converged choice* re-measured under the identical
/// static protocol. The printed summary reports, per case, the algorithm
/// the selector settled on after its bounded exploration and how its
/// static time compares to the oracle's (the 5% target).
///
/// A2A_AUTOTUNE does not gate this bench (the selectors here are explicit;
/// adapt is the point), but CI runs it under A2A_AUTOTUNE=adapt to smoke
/// the env-configured global path too. Always writes BENCH_autotune.json
/// (build tree by default, $A2A_BENCH_JSON overrides).



#include "autotune/selector.hpp"
#include "bench_common.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "runtime/env.hpp"
#include "smp/smp_runtime.hpp"
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

using namespace mca2a;

namespace {

/// Executions per case: enough to explore every plausible candidate
/// (max_candidates x explore_target = 12 by default) plus an exploit tail
/// long enough for a stable steady-state estimate.
constexpr int kExecs = 20;

struct Summary {
  std::string name;
  double best_static = 0.0;    ///< best candidate's steady mean (oracle)
  double model_static = 0.0;   ///< model choice's steady mean
  double winner_static = 0.0;  ///< converged choice's steady mean
  double online_steady = 0.0;  ///< in-session mean of the exploit tail
  int explore_execs = 0;       ///< executions the selector spent exploring
  bool converged = false;      ///< winner_static within 5% of best_static
  std::string final_algo;
};

std::vector<Summary>& summaries() {
  static std::vector<Summary> s;
  return s;
}

/// Mean of times[from..end) — the steady-state estimate. (Single
/// executions in a back-to-back session carry residual-skew noise either
/// way; steady means are the comparable quantity.)
double steady_mean(const std::vector<double>& times, std::size_t from) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = from; i < times.size(); ++i) {
    sum += times[i];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void add_case(bench::Figure& fig, const std::string& name,
              const std::vector<double>& online, int explore_execs,
              double best_static, double model_static, double winner_static,
              const std::string& final_algo) {
  for (int i = 0; i < static_cast<int>(online.size()); ++i) {
    fig.add(name + " online", i + 1, online[i]);
    fig.add(name + " best-static", i + 1, best_static);
    fig.add(name + " model", i + 1, model_static);
  }
  Summary s;
  s.name = name;
  s.best_static = best_static;
  s.model_static = model_static;
  s.winner_static = winner_static;
  s.explore_execs = explore_execs;
  s.online_steady = steady_mean(online, explore_execs);
  s.converged = winner_static <= 1.05 * best_static;
  s.final_algo = final_algo;
  summaries().push_back(s);
}

// --- simulator cases ---------------------------------------------------------

void register_sim_case(bench::Figure& fig, std::size_t block) {
  const std::string name = "dane2 " + std::to_string(block) + " B sim";
  benchmark::RegisterBenchmark(
      ("autotune/" + name).c_str(),
      [&fig, name, block](benchmark::State& state) {
        const topo::Machine machine = topo::dane(2);
        const model::NetParams net = model::omni_path();
        // Static reference, measured with the identical in-session
        // protocol (kExecs back-to-back reps, steady mean of the per-rep
        // trajectory, first rep dropped as warmup): back-to-back
        // exchanges pipeline through residual clock skew, so a fresh
        // one-shot run is not comparable.
        const auto static_seconds = [&](coll::Algo algo, int g) {
          bench::RunSpec spec;
          spec.machine = machine.desc();
          spec.net = net;
          spec.algo = algo;
          spec.group_size = g;
          spec.block = block;
          spec.reps = kExecs;
          spec.use_plan = true;
          const bench::RunResult r = bench::run_sim(spec);
          return steady_mean(r.rep_seconds, 1);
        };
        autotune::OnlineSelector sel(autotune::Mode::kAdapt);
        std::vector<double> online;
        double total = 0.0;
        for (auto _ : state) {
          bench::RunSpec spec;
          spec.machine = machine.desc();
          spec.net = net;
          spec.block = block;
          spec.reps = kExecs;
          spec.autotune = true;
          spec.selector = &sel;
          const bench::RunResult r = bench::run_sim(spec);
          online = r.rep_seconds;
          total = 0.0;
          for (double t : online) {
            total += t;
          }
          state.SetIterationTime(total);
          // The oracle and the model reference, over the same candidate
          // set the selector explored.
          const auto ranked = coll::rank_alltoall_candidates(
              machine, net, block, sel.config().plausible_factor,
              sel.config().max_candidates);
          const auto winner = static_cast<coll::Algo>(r.rep_algos.back());
          const int winner_group = r.rep_groups.back();
          double best = std::numeric_limits<double>::infinity();
          double model = 0.0;
          double winner_static = 0.0;
          for (const coll::Choice& c : ranked) {
            const double t = static_seconds(c.algo, c.group_size);
            best = std::min(best, t);
            if (&c == &ranked.front()) {
              model = t;
            }
            if (c.algo == winner && c.group_size == winner_group) {
              winner_static = t;
            }
          }
          const int explore_execs = static_cast<int>(ranked.size()) *
                                    sel.config().explore_target;
          add_case(fig, name, online, std::min(explore_execs, kExecs - 1),
                   best, model, winner_static,
                   std::string(coll::algo_name(winner)));
        }
        state.counters["sim_s"] = total;
        // Trajectory spread: nearest-rank percentiles over the per-round
        // times (RunResult::p50 family), explore rounds included.
        state.counters["sim_p50_s"] =
            bench::RunResult::percentile_of(online, 0.50);
        state.counters["sim_p95_s"] =
            bench::RunResult::percentile_of(online, 0.95);
        state.counters["sim_p99_s"] =
            bench::RunResult::percentile_of(online, 0.99);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

// --- threads-backend case ----------------------------------------------------

/// One online adapt-mode trajectory on real OS threads: `execs` rounds of
/// barrier -> plan (selector decides) -> timed exchange. Returns the
/// per-round max-over-ranks wall time; `final_algo` gets the last round's
/// resolved algorithm.
std::vector<double> smp_online(autotune::OnlineSelector& sel,
                               const topo::Machine& machine,
                               const model::NetParams& net, std::size_t block,
                               int execs, int* final_algo, int* final_group) {
  const int p = machine.total_ranks();
  std::vector<std::vector<double>> elapsed(execs, std::vector<double>(p, 0.0));
  smp::run_threads(p, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const std::size_t total = static_cast<std::size_t>(p) * block;
    rt::Buffer sbuf = rt::Buffer::real(total);
    rt::Buffer rbuf = rt::Buffer::real(total);
    for (int e = 0; e < execs; ++e) {
      // Barrier-separated rounds: all ranks consult the selector against
      // the same profiler state (its determinism contract).
      co_await rt::barrier(world);
      coll::AlltoallDesc desc;
      desc.block = block;
      plan::PlanOptions popts;
      popts.autotune = &sel;
      plan::CollectivePlan pl = plan::make_plan(world, machine, net, desc,
                                                popts);
      if (me == 0 && final_algo != nullptr) {
        *final_algo = pl.algo_id();
        *final_group = pl.group_size();
      }
      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      co_await pl.execute(rt::ConstView(sbuf.view()), rbuf.view());
      elapsed[e][me] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
  });
  std::vector<double> out(execs, 0.0);
  for (int e = 0; e < execs; ++e) {
    out[e] = *std::max_element(elapsed[e].begin(), elapsed[e].end());
  }
  return out;
}

/// Static wall time of one candidate, measured with the online loop's
/// protocol: kExecs barrier-separated rounds in one session, steady mean
/// of the per-round max-over-ranks times (first round dropped as warmup).
double smp_static(const topo::Machine& machine, const model::NetParams& net,
                  std::size_t block, coll::Algo algo, int g) {
  const int p = machine.total_ranks();
  std::vector<std::vector<double>> elapsed(kExecs,
                                           std::vector<double>(p, 0.0));
  smp::run_threads(p, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const std::size_t total = static_cast<std::size_t>(p) * block;
    rt::Buffer sbuf = rt::Buffer::real(total);
    rt::Buffer rbuf = rt::Buffer::real(total);
    coll::AlltoallDesc desc;
    desc.block = block;
    desc.algo = algo;
    plan::PlanOptions popts;
    popts.group_size = g;
    plan::CollectivePlan pl =
        plan::make_plan(world, machine, net, desc, popts);
    for (int rep = 0; rep < kExecs; ++rep) {
      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      co_await pl.execute(rt::ConstView(sbuf.view()), rbuf.view());
      elapsed[rep][me] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
  });
  std::vector<double> per_rep(kExecs, 0.0);
  for (int rep = 0; rep < kExecs; ++rep) {
    per_rep[rep] =
        *std::max_element(elapsed[rep].begin(), elapsed[rep].end());
  }
  return steady_mean(per_rep, 1);
}

void register_smp_case(bench::Figure& fig, std::size_t block) {
  const std::string name = "smp 2x8 " + std::to_string(block) + " B";
  benchmark::RegisterBenchmark(
      ("autotune/" + name).c_str(),
      [&fig, name, block](benchmark::State& state) {
        const topo::Machine machine = topo::generic(2, 8);
        const model::NetParams net = model::test_params();
        autotune::OnlineSelector sel(autotune::Mode::kAdapt);
        std::vector<double> online;
        int final_algo = 0;
        int final_group = 0;
        for (auto _ : state) {
          online = smp_online(sel, machine, net, block, kExecs, &final_algo,
                              &final_group);
          double total = 0.0;
          for (double t : online) {
            total += t;
          }
          state.SetIterationTime(total);
          const auto ranked = coll::rank_alltoall_candidates(
              machine, net, block, sel.config().plausible_factor,
              sel.config().max_candidates);
          const auto winner = static_cast<coll::Algo>(final_algo);
          double best = std::numeric_limits<double>::infinity();
          double model = 0.0;
          double winner_static = 0.0;
          for (const coll::Choice& c : ranked) {
            const double t =
                smp_static(machine, net, block, c.algo, c.group_size);
            best = std::min(best, t);
            if (&c == &ranked.front()) {
              model = t;
            }
            if (c.algo == winner && c.group_size == final_group) {
              winner_static = t;
            }
          }
          const int explore_execs = static_cast<int>(ranked.size()) *
                                    sel.config().explore_target;
          add_case(fig, name, online, std::min(explore_execs, kExecs - 1),
                   best, model, winner_static,
                   std::string(coll::algo_name(winner)));
        }
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = rt::env::get_flag("A2A_FAST");
  bench::Figure fig("autotune",
                    "Online autotuning convergence: per-execution time vs "
                    "best static algorithm (Dane 2-node sim; 2x8-thread smp)",
                    "Execution index");
  const std::vector<std::size_t> sim_blocks =
      fast ? std::vector<std::size_t>{64}
           : std::vector<std::size_t>{4, 512, 4096};
  for (std::size_t block : sim_blocks) {
    register_sim_case(fig, block);
  }
  register_smp_case(fig, 256);
  const int rc = benchx::figure_main(argc, argv, fig);
  if (rc == 0 && !summaries().empty()) {
    std::printf(
        "\nConvergence summary (converged choice re-measured under the "
        "static protocol; target: within 5%% of the best static "
        "algorithm):\n");
    for (const Summary& s : summaries()) {
      std::printf(
          "  %-18s oracle %s, model pick %s, converged pick %s -> %s "
          "after %d exploration execs: %s (%+.1f%%); in-session steady "
          "%s\n",
          s.name.c_str(), bench::format_time(s.best_static).c_str(),
          bench::format_time(s.model_static).c_str(), s.final_algo.c_str(),
          bench::format_time(s.winner_static).c_str(), s.explore_execs,
          s.converged ? "converged" : "NOT within 5%",
          100.0 * (s.winner_static / s.best_static - 1.0),
          bench::format_time(s.online_steady).c_str());
    }
  }
  return rc;
}
