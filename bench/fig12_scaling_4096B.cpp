/// Figure 12: node scaling at 4096-byte per-process messages on Dane.
/// Paper shape: Node-Aware and Locality-Aware fastest across node counts at
/// this bandwidth-bound size; Hierarchical worst.

#include "bench_common.hpp"

using namespace mca2a;
using benchx::Series;
using coll::Algo;
using coll::Inner;

int main(int argc, char** argv) {
  bench::Figure fig("fig12", "Figure 12: node scaling at 4096 B (Dane)",
                    "Nodes");
  const model::NetParams net = model::omni_path();

  std::vector<Series> series = {
      {"System MPI", Algo::kSystemMpi, Inner::kPairwise, 0},
      {"Hierarchical", Algo::kHierarchical, Inner::kPairwise, 0},
      {"Node-Aware", Algo::kNodeAware, Inner::kPairwise, 0},
      {"Multileader", Algo::kMultileader, Inner::kPairwise, 4},
      {"Locality-Aware", Algo::kLocalityAware, Inner::kPairwise, 4},
      {"Multileader + Locality", Algo::kMultileaderNodeAware, Inner::kPairwise, 4},
  };
  benchx::register_node_sweep(fig, "dane", net, series,
                              benchx::default_nodes(), /*block=*/4096);
  return benchx::figure_main(argc, argv, fig);
}
