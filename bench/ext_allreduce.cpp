/// Extension study (paper §5 future work): allreduce algorithm comparison
/// on 32 nodes of Dane across vector sizes. Expected shape: recursive
/// doubling wins small vectors (log p latency), Rabenseifner wins large
/// (bandwidth-optimal), node-aware aggregation reduces inter-node traffic
/// by ppn like the all-to-all algorithms do.

#include <optional>

#include "bench_common.hpp"

#include <algorithm>

#include "sim/cluster.hpp"
#include "coll_ext/allreduce.hpp"
#include "runtime/collectives.hpp"

using namespace mca2a;

namespace {

enum class Variant { kRecursiveDoubling, kRabenseifner, kNodeAware,
                     kLocalityAware };

double run_allreduce(Variant v, std::size_t bytes) {
  sim::ClusterConfig cfg;
  cfg.machine = topo::dane(32).desc();
  cfg.net = model::omni_path();
  cfg.carry_data = false;
  sim::Cluster cluster(cfg);
  const topo::Machine& machine = cluster.machine();
  std::vector<double> start(machine.total_ranks()), end(machine.total_ranks());
  cluster.run([&](rt::Comm& c) -> rt::Task<void> {
    std::optional<rt::LocalityComms> lc;
    if (v == Variant::kNodeAware || v == Variant::kLocalityAware) {
      lc.emplace(rt::build_locality_comms(
          c, machine, v == Variant::kNodeAware ? 112 : 4, false));
    }
    rt::Buffer data = c.alloc_buffer(bytes);
    const coll::Combiner op = coll::sum_combiner<double>();
    co_await rt::barrier(c);
    start[c.rank()] = c.now();
    switch (v) {
      case Variant::kRecursiveDoubling:
        co_await coll::allreduce_recursive_doubling(c, data.view(), op);
        break;
      case Variant::kRabenseifner:
        co_await coll::allreduce_rabenseifner(c, data.view(), op);
        break;
      case Variant::kNodeAware:
      case Variant::kLocalityAware:
        co_await coll::allreduce_node_aware(*lc, data.view(), op);
        break;
    }
    end[c.rank()] = c.now();
  });
  return *std::max_element(end.begin(), end.end()) -
         *std::min_element(start.begin(), start.end());
}

void register_series(bench::Figure& fig, const std::string& name, Variant v) {
  // Vector sizes: 32 B to 4 MiB of doubles.
  for (std::size_t bytes :
       {std::size_t{32}, std::size_t{512}, std::size_t{8192},
        std::size_t{131072}, std::size_t{1} << 21, std::size_t{1} << 22}) {
    if (v == Variant::kRabenseifner && bytes / sizeof(double) < 3584) {
      continue;  // needs >= one element per rank
    }
    const std::string bname =
        "ext_allreduce/" + name + "/" + std::to_string(bytes);
    benchmark::RegisterBenchmark(
        bname.c_str(),
        [&fig, name, v, bytes](benchmark::State& state) {
          double t = 0.0;
          for (auto _ : state) {
            t = run_allreduce(v, bytes);
            state.SetIterationTime(t);
          }
          fig.add(name, static_cast<double>(bytes), t);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig("ext_allreduce",
                    "Extension: allreduce algorithms (Dane, 32 nodes)",
                    "Vector Size (bytes)");
  register_series(fig, "Recursive Doubling", Variant::kRecursiveDoubling);
  register_series(fig, "Rabenseifner", Variant::kRabenseifner);
  register_series(fig, "Node-Aware", Variant::kNodeAware);
  register_series(fig, "Locality-Aware (4 ppg)", Variant::kLocalityAware);
  return benchx::figure_main(argc, argv, fig);
}
