/// Extension study (paper §5 future work): allreduce algorithm comparison
/// on 32 nodes of Dane across vector sizes. Expected shape: recursive
/// doubling wins small vectors (log p latency), Rabenseifner wins large
/// (bandwidth-optimal), node-aware aggregation reduces inter-node traffic
/// by ppn like the all-to-all algorithms do.
///
/// Executes through persistent CollectivePlans (plan/plan.hpp) so
/// communicator construction stays out of the timed region; A2A_NO_PLAN=1
/// restores the legacy per-run path.

#include <optional>



#include "bench_common.hpp"
#include "coll_ext/allreduce.hpp"
#include "coll_ext/op_desc.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "runtime/env.hpp"
#include "sim/cluster.hpp"
#include <algorithm>

using namespace mca2a;

namespace {

struct SeriesDef {
  std::string name;
  coll::AllreduceAlgo algo;
  int group_size;
};

double run_allreduce(const SeriesDef& s, std::size_t bytes) {
  sim::ClusterConfig cfg;
  cfg.machine = topo::dane(32).desc();
  cfg.net = model::omni_path();
  cfg.carry_data = false;
  sim::Cluster cluster(cfg);
  const topo::Machine& machine = cluster.machine();
  const bool use_plan = !rt::env::get_flag("A2A_NO_PLAN");
  std::vector<double> start(machine.total_ranks()), end(machine.total_ranks());
  cluster.run([&](rt::Comm& c) -> rt::Task<void> {
    const coll::Combiner op = coll::sum_combiner<double>();
    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    if (use_plan) {
      coll::AllreduceDesc desc;
      desc.count = bytes / sizeof(double);
      desc.combiner = op;
      desc.algo = s.algo;
      plan::PlanOptions popts;
      popts.group_size = s.group_size;
      pl.emplace(plan::make_plan(c, machine, cfg.net, desc, popts));
    } else if (coll::needs_locality(s.algo)) {
      lc.emplace(rt::build_locality_comms(c, machine, s.group_size, false));
    }
    rt::Buffer data = c.alloc_buffer(bytes);
    co_await rt::barrier(c);
    start[c.rank()] = c.now();
    if (pl) {
      co_await pl->execute_inplace(data.view());
    } else {
      switch (s.algo) {
        case coll::AllreduceAlgo::kRecursiveDoubling:
          co_await coll::allreduce_recursive_doubling(c, data.view(), op);
          break;
        case coll::AllreduceAlgo::kRabenseifner:
          co_await coll::allreduce_rabenseifner(c, data.view(), op);
          break;
        default:
          co_await coll::allreduce_node_aware(*lc, data.view(), op);
          break;
      }
    }
    end[c.rank()] = c.now();
  });
  return *std::max_element(end.begin(), end.end()) -
         *std::min_element(start.begin(), start.end());
}

void register_series(bench::Figure& fig, const SeriesDef& s) {
  // Vector sizes: 32 B to 4 MiB of doubles.
  for (std::size_t bytes :
       {std::size_t{32}, std::size_t{512}, std::size_t{8192},
        std::size_t{131072}, std::size_t{1} << 21, std::size_t{1} << 22}) {
    if (s.algo == coll::AllreduceAlgo::kRabenseifner &&
        bytes / sizeof(double) < 3584) {
      continue;  // needs >= one element per rank
    }
    const std::string bname =
        "ext_allreduce/" + s.name + "/" + std::to_string(bytes);
    benchmark::RegisterBenchmark(
        bname.c_str(),
        [&fig, s, bytes](benchmark::State& state) {
          double t = 0.0;
          for (auto _ : state) {
            t = run_allreduce(s, bytes);
            state.SetIterationTime(t);
          }
          fig.add(s.name, static_cast<double>(bytes), t);
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig("ext_allreduce",
                    "Extension: allreduce algorithms (Dane, 32 nodes)",
                    "Vector Size (bytes)");
  register_series(fig, {"Recursive Doubling",
                        coll::AllreduceAlgo::kRecursiveDoubling, 0});
  register_series(fig, {"Rabenseifner", coll::AllreduceAlgo::kRabenseifner, 0});
  register_series(fig, {"Node-Aware", coll::AllreduceAlgo::kNodeAware, 112});
  register_series(fig, {"Locality-Aware (4 ppg)",
                        coll::AllreduceAlgo::kNodeAware, 4});
  return benchx::figure_main(argc, argv, fig);
}
