/// Vector-skew study for the locality-aware alltoallv family: how the
/// algorithms respond as the count matrix's max/mean imbalance factor
/// grows at a fixed mean message size. Sweeps imbalance (x axis) at a
/// small and a large mean size on 2 nodes of Dane (simulator, virtual
/// time), plus a threads-backend wall-clock series at a test-scale
/// machine, so both backends produce data points.
///
/// Counts come from bench::vector_count — one hot pair per source row
/// carrying imbalance * mean bytes, cold pairs scaled so the matrix mean
/// stays put — and the "tuned" series lets the skew-aware tuner pick from
/// the exact global signature (bench::vector_skew). The count metadata
/// must genuinely travel, so vector runs carry real payloads (run_sim
/// forces carry_data; keep A2A_FAST for quick smoke runs).
///
/// Always writes machine-readable BENCH_vector_skew.json (into
/// $A2A_BENCH_JSON if set, else the build tree's bench/ directory); the
/// text table and CSV work like every other figure bench.



#include "bench_common.hpp"
#include "coll_ext/alltoallv.hpp"
#include "plan/plan.hpp"
#include "runtime/collectives.hpp"
#include "runtime/env.hpp"
#include "smp/smp_runtime.hpp"
#include <chrono>
#include <cstdio>
#include <numeric>
#include <optional>
#include <vector>

using namespace mca2a;

namespace {

struct Variant {
  const char* name;
  coll::AlltoallvAlgo algo;
  int group_size;  ///< 0 = ppn
  bool tuned;
};

constexpr Variant kVariants[] = {
    {"pairwise", coll::AlltoallvAlgo::kPairwise, 0, false},
    {"nonblocking", coll::AlltoallvAlgo::kNonblocking, 0, false},
    {"hierarchical g=4", coll::AlltoallvAlgo::kHierarchical, 4, false},
    {"mlna g=4", coll::AlltoallvAlgo::kMultileaderNodeAware, 4, false},
    {"tuned", coll::AlltoallvAlgo::kPairwise, 0, true},
};

void register_sim_point(bench::Figure& fig, const Variant& v,
                        std::size_t mean, double imb) {
  bench::RunSpec spec;
  spec.machine = topo::dane(2).desc();
  spec.net = model::omni_path();
  spec.vector = true;
  spec.vector_algo = v.algo;
  spec.vector_tuned = v.tuned;
  spec.group_size = v.group_size;
  spec.block = mean;
  spec.vector_imbalance = imb;
  spec.use_plan = !rt::env::get_flag("A2A_NO_PLAN");
  bench::apply_env(spec);
  const std::string series =
      std::string(v.name) + " " + std::to_string(mean) + " B";
  const std::string bname = "vector_skew/" + series + "/imb" +
                            std::to_string(static_cast<int>(imb));
  benchmark::RegisterBenchmark(
      bname.c_str(), [&fig, series, imb, spec](benchmark::State& state) {
        bench::RunResult res;
        for (auto _ : state) {
          res = bench::run_sim(spec);
          state.SetIterationTime(res.seconds);
        }
        fig.add(series, imb, res.seconds);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

/// Threads-backend wall-clock point: the same exchange on real OS threads
/// (test-scale machine; max over ranks of the exchange's elapsed time).
double smp_seconds(coll::AlltoallvAlgo algo, int group_size,
                   const topo::Machine& machine, std::size_t mean,
                   double imb) {
  const int p = machine.total_ranks();
  std::vector<double> elapsed(p, 0.0);
  smp::run_threads(p, [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int d = 0; d < p; ++d) {
      scounts[d] = bench::vector_count(me, d, p, mean, imb, /*seed=*/1);
      rcounts[d] = bench::vector_count(d, me, p, mean, imb, /*seed=*/1);
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    rt::Buffer send = rt::Buffer::real(
        std::accumulate(scounts.begin(), scounts.end(), std::size_t{0}));
    rt::Buffer recv = rt::Buffer::real(
        std::accumulate(rcounts.begin(), rcounts.end(), std::size_t{0}));
    std::optional<rt::LocalityComms> lc;
    if (coll::needs_locality(algo)) {
      lc.emplace(rt::build_locality_comms(world, machine, group_size,
                                          coll::needs_leader_comms(algo)));
    }
    // One warmup, then the timed exchange.
    for (int rep = 0; rep < 2; ++rep) {
      co_await rt::barrier(world);
      const auto t0 = std::chrono::steady_clock::now();
      co_await coll::run_alltoallv(algo, world, lc ? &*lc : nullptr,
                                   rt::ConstView(send.view()), scounts,
                                   sdispls, recv.view(), rcounts, rdispls);
      elapsed[me] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
  });
  double worst = 0.0;
  for (double e : elapsed) {
    worst = std::max(worst, e);
  }
  return worst;
}

void register_smp_point(bench::Figure& fig, const Variant& v,
                        std::size_t mean, double imb) {
  const std::string series =
      "smp " + std::string(v.name) + " " + std::to_string(mean) + " B";
  const std::string bname = "vector_skew/" + series + "/imb" +
                            std::to_string(static_cast<int>(imb));
  benchmark::RegisterBenchmark(
      bname.c_str(), [&fig, series, v, mean, imb](benchmark::State& state) {
        const topo::Machine machine = topo::generic(2, 8);
        double secs = 0.0;
        for (auto _ : state) {
          secs = smp_seconds(v.algo, v.group_size == 0 ? machine.ppn()
                                                       : v.group_size,
                             machine, mean, imb);
          state.SetIterationTime(secs);
        }
        fig.add(series, imb, secs);
      })
      ->UseManualTime()
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = rt::env::get_flag("A2A_FAST");
  bench::Figure fig("vector_skew",
                    "Locality-aware alltoallv vs count imbalance (Dane, 2 "
                    "nodes; smp series: 2x8 threads)",
                    "Imbalance factor (max/mean)");
  const std::vector<double> imbs =
      fast ? std::vector<double>{1.0, 32.0}
           : std::vector<double>{1.0, 4.0, 16.0, 64.0};
  const std::vector<std::size_t> means =
      fast ? std::vector<std::size_t>{64} : std::vector<std::size_t>{64, 512};
  for (const Variant& v : kVariants) {
    for (std::size_t mean : means) {
      for (double imb : imbs) {
        register_sim_point(fig, v, mean, imb);
      }
    }
  }
  // Threads-backend series: pairwise vs one locality algorithm, small case.
  for (double imb : imbs) {
    register_smp_point(fig, kVariants[0], 256, imb);
    register_smp_point(fig, kVariants[3], 256, imb);
  }
  // figure_main always writes BENCH_vector_skew.json (build tree by
  // default, $A2A_BENCH_JSON overrides).
  return benchx::figure_main(argc, argv, fig);
}
