# Empty dependencies file for batched_window.
# This may be replaced when dependencies are built.
