file(REMOVE_RECURSE
  "CMakeFiles/batched_window.dir/bench/batched_window.cpp.o"
  "CMakeFiles/batched_window.dir/bench/batched_window.cpp.o.d"
  "bench/batched_window"
  "bench/batched_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batched_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
