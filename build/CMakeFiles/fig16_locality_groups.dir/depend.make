# Empty dependencies file for fig16_locality_groups.
# This may be replaced when dependencies are built.
