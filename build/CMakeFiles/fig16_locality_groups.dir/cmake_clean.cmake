file(REMOVE_RECURSE
  "CMakeFiles/fig16_locality_groups.dir/bench/fig16_locality_groups.cpp.o"
  "CMakeFiles/fig16_locality_groups.dir/bench/fig16_locality_groups.cpp.o.d"
  "bench/fig16_locality_groups"
  "bench/fig16_locality_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_locality_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
