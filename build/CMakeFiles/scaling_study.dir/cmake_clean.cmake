file(REMOVE_RECURSE
  "CMakeFiles/scaling_study.dir/examples/scaling_study.cpp.o"
  "CMakeFiles/scaling_study.dir/examples/scaling_study.cpp.o.d"
  "examples/scaling_study"
  "examples/scaling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
