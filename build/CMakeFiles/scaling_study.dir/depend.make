# Empty dependencies file for scaling_study.
# This may be replaced when dependencies are built.
