# Empty dependencies file for ml_shuffle.
# This may be replaced when dependencies are built.
