file(REMOVE_RECURSE
  "CMakeFiles/ml_shuffle.dir/examples/ml_shuffle.cpp.o"
  "CMakeFiles/ml_shuffle.dir/examples/ml_shuffle.cpp.o.d"
  "examples/ml_shuffle"
  "examples/ml_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
