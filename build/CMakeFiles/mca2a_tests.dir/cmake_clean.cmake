file(REMOVE_RECURSE
  "CMakeFiles/mca2a_tests.dir/tests/test_alltoall.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_alltoall.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_alltoallv.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_alltoallv.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_buffer.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_buffer.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_bundle_tuner.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_bundle_tuner.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_coll_ext.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_coll_ext.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_collectives.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_collectives.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_model.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_model.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_plan.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_plan.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_sequences.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_sequences.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_sim.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_sim.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_sim_model.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_sim_model.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_smp.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_smp.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_task.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_task.cpp.o.d"
  "CMakeFiles/mca2a_tests.dir/tests/test_topo.cpp.o"
  "CMakeFiles/mca2a_tests.dir/tests/test_topo.cpp.o.d"
  "mca2a_tests"
  "mca2a_tests.pdb"
  "mca2a_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mca2a_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
