# Empty dependencies file for mca2a_tests.
# This may be replaced when dependencies are built.
