
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alltoall.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_alltoall.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_alltoall.cpp.o.d"
  "/root/repo/tests/test_alltoallv.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_alltoallv.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_alltoallv.cpp.o.d"
  "/root/repo/tests/test_buffer.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_buffer.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_buffer.cpp.o.d"
  "/root/repo/tests/test_bundle_tuner.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_bundle_tuner.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_bundle_tuner.cpp.o.d"
  "/root/repo/tests/test_coll_ext.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_coll_ext.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_coll_ext.cpp.o.d"
  "/root/repo/tests/test_collectives.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_collectives.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_collectives.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_model.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_model.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_plan.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_plan.cpp.o.d"
  "/root/repo/tests/test_sequences.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_sequences.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_sequences.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_sim.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_sim.cpp.o.d"
  "/root/repo/tests/test_sim_model.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_sim_model.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_sim_model.cpp.o.d"
  "/root/repo/tests/test_smp.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_smp.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_smp.cpp.o.d"
  "/root/repo/tests/test_task.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_task.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_task.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "CMakeFiles/mca2a_tests.dir/tests/test_topo.cpp.o" "gcc" "CMakeFiles/mca2a_tests.dir/tests/test_topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/mca2a.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
