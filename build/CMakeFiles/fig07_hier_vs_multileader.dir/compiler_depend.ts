# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_hier_vs_multileader.
