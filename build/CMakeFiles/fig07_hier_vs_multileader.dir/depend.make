# Empty dependencies file for fig07_hier_vs_multileader.
# This may be replaced when dependencies are built.
