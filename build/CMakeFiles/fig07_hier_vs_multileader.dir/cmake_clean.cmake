file(REMOVE_RECURSE
  "CMakeFiles/fig07_hier_vs_multileader.dir/bench/fig07_hier_vs_multileader.cpp.o"
  "CMakeFiles/fig07_hier_vs_multileader.dir/bench/fig07_hier_vs_multileader.cpp.o.d"
  "bench/fig07_hier_vs_multileader"
  "bench/fig07_hier_vs_multileader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hier_vs_multileader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
