# Empty dependencies file for fig17_amber.
# This may be replaced when dependencies are built.
