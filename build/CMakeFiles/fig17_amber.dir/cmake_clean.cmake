file(REMOVE_RECURSE
  "CMakeFiles/fig17_amber.dir/bench/fig17_amber.cpp.o"
  "CMakeFiles/fig17_amber.dir/bench/fig17_amber.cpp.o.d"
  "bench/fig17_amber"
  "bench/fig17_amber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_amber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
