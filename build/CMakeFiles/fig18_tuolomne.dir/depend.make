# Empty dependencies file for fig18_tuolomne.
# This may be replaced when dependencies are built.
