file(REMOVE_RECURSE
  "CMakeFiles/fig18_tuolomne.dir/bench/fig18_tuolomne.cpp.o"
  "CMakeFiles/fig18_tuolomne.dir/bench/fig18_tuolomne.cpp.o.d"
  "bench/fig18_tuolomne"
  "bench/fig18_tuolomne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_tuolomne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
