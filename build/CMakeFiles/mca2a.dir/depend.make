# Empty dependencies file for mca2a.
# This may be replaced when dependencies are built.
