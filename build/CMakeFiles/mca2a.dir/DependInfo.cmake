
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll_ext/allgather.cpp" "CMakeFiles/mca2a.dir/src/coll_ext/allgather.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/coll_ext/allgather.cpp.o.d"
  "/root/repo/src/coll_ext/allreduce.cpp" "CMakeFiles/mca2a.dir/src/coll_ext/allreduce.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/coll_ext/allreduce.cpp.o.d"
  "/root/repo/src/coll_ext/alltoallv.cpp" "CMakeFiles/mca2a.dir/src/coll_ext/alltoallv.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/coll_ext/alltoallv.cpp.o.d"
  "/root/repo/src/core/alltoall.cpp" "CMakeFiles/mca2a.dir/src/core/alltoall.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/alltoall.cpp.o.d"
  "/root/repo/src/core/bruck.cpp" "CMakeFiles/mca2a.dir/src/core/bruck.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/bruck.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "CMakeFiles/mca2a.dir/src/core/hierarchical.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/hierarchical.cpp.o.d"
  "/root/repo/src/core/multileader_node_aware.cpp" "CMakeFiles/mca2a.dir/src/core/multileader_node_aware.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/multileader_node_aware.cpp.o.d"
  "/root/repo/src/core/node_aware.cpp" "CMakeFiles/mca2a.dir/src/core/node_aware.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/node_aware.cpp.o.d"
  "/root/repo/src/core/nonblocking.cpp" "CMakeFiles/mca2a.dir/src/core/nonblocking.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/nonblocking.cpp.o.d"
  "/root/repo/src/core/pairwise.cpp" "CMakeFiles/mca2a.dir/src/core/pairwise.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/pairwise.cpp.o.d"
  "/root/repo/src/core/system_mpi.cpp" "CMakeFiles/mca2a.dir/src/core/system_mpi.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/system_mpi.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "CMakeFiles/mca2a.dir/src/core/tuner.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/core/tuner.cpp.o.d"
  "/root/repo/src/harness/figure.cpp" "CMakeFiles/mca2a.dir/src/harness/figure.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/harness/figure.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "CMakeFiles/mca2a.dir/src/harness/sweep.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/harness/sweep.cpp.o.d"
  "/root/repo/src/harness/table.cpp" "CMakeFiles/mca2a.dir/src/harness/table.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/harness/table.cpp.o.d"
  "/root/repo/src/model/cost.cpp" "CMakeFiles/mca2a.dir/src/model/cost.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/model/cost.cpp.o.d"
  "/root/repo/src/model/params.cpp" "CMakeFiles/mca2a.dir/src/model/params.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/model/params.cpp.o.d"
  "/root/repo/src/model/presets.cpp" "CMakeFiles/mca2a.dir/src/model/presets.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/model/presets.cpp.o.d"
  "/root/repo/src/plan/cache.cpp" "CMakeFiles/mca2a.dir/src/plan/cache.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/plan/cache.cpp.o.d"
  "/root/repo/src/plan/plan.cpp" "CMakeFiles/mca2a.dir/src/plan/plan.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/plan/plan.cpp.o.d"
  "/root/repo/src/plan/tuning_table.cpp" "CMakeFiles/mca2a.dir/src/plan/tuning_table.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/plan/tuning_table.cpp.o.d"
  "/root/repo/src/runtime/buffer.cpp" "CMakeFiles/mca2a.dir/src/runtime/buffer.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/runtime/buffer.cpp.o.d"
  "/root/repo/src/runtime/collectives.cpp" "CMakeFiles/mca2a.dir/src/runtime/collectives.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/runtime/collectives.cpp.o.d"
  "/root/repo/src/runtime/comm.cpp" "CMakeFiles/mca2a.dir/src/runtime/comm.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/runtime/comm.cpp.o.d"
  "/root/repo/src/runtime/comm_bundle.cpp" "CMakeFiles/mca2a.dir/src/runtime/comm_bundle.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/runtime/comm_bundle.cpp.o.d"
  "/root/repo/src/runtime/scratch.cpp" "CMakeFiles/mca2a.dir/src/runtime/scratch.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/runtime/scratch.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "CMakeFiles/mca2a.dir/src/sim/cluster.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/sim/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/mca2a.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/sim_comm.cpp" "CMakeFiles/mca2a.dir/src/sim/sim_comm.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/sim/sim_comm.cpp.o.d"
  "/root/repo/src/smp/mailbox.cpp" "CMakeFiles/mca2a.dir/src/smp/mailbox.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/smp/mailbox.cpp.o.d"
  "/root/repo/src/smp/smp_comm.cpp" "CMakeFiles/mca2a.dir/src/smp/smp_comm.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/smp/smp_comm.cpp.o.d"
  "/root/repo/src/smp/smp_runtime.cpp" "CMakeFiles/mca2a.dir/src/smp/smp_runtime.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/smp/smp_runtime.cpp.o.d"
  "/root/repo/src/topo/machine.cpp" "CMakeFiles/mca2a.dir/src/topo/machine.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/topo/machine.cpp.o.d"
  "/root/repo/src/topo/presets.cpp" "CMakeFiles/mca2a.dir/src/topo/presets.cpp.o" "gcc" "CMakeFiles/mca2a.dir/src/topo/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
