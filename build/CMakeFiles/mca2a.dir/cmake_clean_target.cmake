file(REMOVE_RECURSE
  "libmca2a.a"
)
