# Empty dependencies file for fig08_node_vs_locality.
# This may be replaced when dependencies are built.
