file(REMOVE_RECURSE
  "CMakeFiles/fig08_node_vs_locality.dir/bench/fig08_node_vs_locality.cpp.o"
  "CMakeFiles/fig08_node_vs_locality.dir/bench/fig08_node_vs_locality.cpp.o.d"
  "bench/fig08_node_vs_locality"
  "bench/fig08_node_vs_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_node_vs_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
