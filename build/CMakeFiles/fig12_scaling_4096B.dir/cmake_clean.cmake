file(REMOVE_RECURSE
  "CMakeFiles/fig12_scaling_4096B.dir/bench/fig12_scaling_4096B.cpp.o"
  "CMakeFiles/fig12_scaling_4096B.dir/bench/fig12_scaling_4096B.cpp.o.d"
  "bench/fig12_scaling_4096B"
  "bench/fig12_scaling_4096B.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_scaling_4096B.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
