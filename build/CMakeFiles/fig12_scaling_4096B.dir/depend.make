# Empty dependencies file for fig12_scaling_4096B.
# This may be replaced when dependencies are built.
