file(REMOVE_RECURSE
  "CMakeFiles/tuner_demo.dir/examples/tuner_demo.cpp.o"
  "CMakeFiles/tuner_demo.dir/examples/tuner_demo.cpp.o.d"
  "examples/tuner_demo"
  "examples/tuner_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuner_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
