# Empty dependencies file for tuner_demo.
# This may be replaced when dependencies are built.
