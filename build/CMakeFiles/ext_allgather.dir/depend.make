# Empty dependencies file for ext_allgather.
# This may be replaced when dependencies are built.
