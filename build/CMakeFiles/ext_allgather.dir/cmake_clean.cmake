file(REMOVE_RECURSE
  "CMakeFiles/ext_allgather.dir/bench/ext_allgather.cpp.o"
  "CMakeFiles/ext_allgather.dir/bench/ext_allgather.cpp.o.d"
  "bench/ext_allgather"
  "bench/ext_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
