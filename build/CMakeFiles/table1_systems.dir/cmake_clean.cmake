file(REMOVE_RECURSE
  "CMakeFiles/table1_systems.dir/bench/table1_systems.cpp.o"
  "CMakeFiles/table1_systems.dir/bench/table1_systems.cpp.o.d"
  "bench/table1_systems"
  "bench/table1_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
