# Empty dependencies file for table1_systems.
# This may be replaced when dependencies are built.
