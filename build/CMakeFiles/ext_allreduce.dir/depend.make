# Empty dependencies file for ext_allreduce.
# This may be replaced when dependencies are built.
