file(REMOVE_RECURSE
  "CMakeFiles/ext_allreduce.dir/bench/ext_allreduce.cpp.o"
  "CMakeFiles/ext_allreduce.dir/bench/ext_allreduce.cpp.o.d"
  "bench/ext_allreduce"
  "bench/ext_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
