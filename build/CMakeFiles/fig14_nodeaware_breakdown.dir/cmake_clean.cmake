file(REMOVE_RECURSE
  "CMakeFiles/fig14_nodeaware_breakdown.dir/bench/fig14_nodeaware_breakdown.cpp.o"
  "CMakeFiles/fig14_nodeaware_breakdown.dir/bench/fig14_nodeaware_breakdown.cpp.o.d"
  "bench/fig14_nodeaware_breakdown"
  "bench/fig14_nodeaware_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nodeaware_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
