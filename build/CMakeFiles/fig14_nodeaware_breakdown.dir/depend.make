# Empty dependencies file for fig14_nodeaware_breakdown.
# This may be replaced when dependencies are built.
