file(REMOVE_RECURSE
  "libmca2a_bench_common.a"
)
