file(REMOVE_RECURSE
  "CMakeFiles/mca2a_bench_common.dir/bench/bench_common.cpp.o"
  "CMakeFiles/mca2a_bench_common.dir/bench/bench_common.cpp.o.d"
  "libmca2a_bench_common.a"
  "libmca2a_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mca2a_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
