# Empty dependencies file for mca2a_bench_common.
# This may be replaced when dependencies are built.
