file(REMOVE_RECURSE
  "CMakeFiles/fig10_all_algorithms.dir/bench/fig10_all_algorithms.cpp.o"
  "CMakeFiles/fig10_all_algorithms.dir/bench/fig10_all_algorithms.cpp.o.d"
  "bench/fig10_all_algorithms"
  "bench/fig10_all_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_all_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
