# Empty dependencies file for fig10_all_algorithms.
# This may be replaced when dependencies are built.
