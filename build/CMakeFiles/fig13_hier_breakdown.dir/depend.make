# Empty dependencies file for fig13_hier_breakdown.
# This may be replaced when dependencies are built.
