file(REMOVE_RECURSE
  "CMakeFiles/fig13_hier_breakdown.dir/bench/fig13_hier_breakdown.cpp.o"
  "CMakeFiles/fig13_hier_breakdown.dir/bench/fig13_hier_breakdown.cpp.o.d"
  "bench/fig13_hier_breakdown"
  "bench/fig13_hier_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hier_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
