# Empty dependencies file for ablation_model.
# This may be replaced when dependencies are built.
