file(REMOVE_RECURSE
  "CMakeFiles/ablation_model.dir/bench/ablation_model.cpp.o"
  "CMakeFiles/ablation_model.dir/bench/ablation_model.cpp.o.d"
  "bench/ablation_model"
  "bench/ablation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
