file(REMOVE_RECURSE
  "CMakeFiles/fig11_scaling_4B.dir/bench/fig11_scaling_4B.cpp.o"
  "CMakeFiles/fig11_scaling_4B.dir/bench/fig11_scaling_4B.cpp.o.d"
  "bench/fig11_scaling_4B"
  "bench/fig11_scaling_4B.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scaling_4B.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
