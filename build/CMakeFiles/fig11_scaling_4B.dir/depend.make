# Empty dependencies file for fig11_scaling_4B.
# This may be replaced when dependencies are built.
