# Empty dependencies file for fig09_mlna_leaders.
# This may be replaced when dependencies are built.
