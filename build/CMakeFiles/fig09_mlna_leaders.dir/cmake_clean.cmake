file(REMOVE_RECURSE
  "CMakeFiles/fig09_mlna_leaders.dir/bench/fig09_mlna_leaders.cpp.o"
  "CMakeFiles/fig09_mlna_leaders.dir/bench/fig09_mlna_leaders.cpp.o.d"
  "bench/fig09_mlna_leaders"
  "bench/fig09_mlna_leaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mlna_leaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
