# Empty dependencies file for fft_transpose.
# This may be replaced when dependencies are built.
