file(REMOVE_RECURSE
  "CMakeFiles/fft_transpose.dir/examples/fft_transpose.cpp.o"
  "CMakeFiles/fft_transpose.dir/examples/fft_transpose.cpp.o.d"
  "examples/fft_transpose"
  "examples/fft_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
