file(REMOVE_RECURSE
  "CMakeFiles/fig15_nodeaware_scaling.dir/bench/fig15_nodeaware_scaling.cpp.o"
  "CMakeFiles/fig15_nodeaware_scaling.dir/bench/fig15_nodeaware_scaling.cpp.o.d"
  "bench/fig15_nodeaware_scaling"
  "bench/fig15_nodeaware_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_nodeaware_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
