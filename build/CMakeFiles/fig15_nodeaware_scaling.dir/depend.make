# Empty dependencies file for fig15_nodeaware_scaling.
# This may be replaced when dependencies are built.
