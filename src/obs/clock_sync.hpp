#pragma once
/// \file clock_sync.hpp
/// Clock calibration for cross-rank trace merging.
///
/// The net backend runs ranks as separate processes whose flight-recorder
/// timestamps come from per-process steady clocks with arbitrary origins.
/// To merge N per-rank trace files into one causally-consistent timeline,
/// every rank estimates its offset against rank 0 (the reference timebase)
/// with symmetric pingpong probes: rank k stamps t0, sends a ping, rank 0
/// replies with its own clock reading t_r, rank k stamps t1 on arrival.
///
/// The estimator is midpoint-of-min-RTT: among all probes, the one with the
/// smallest round trip bounds the asymmetry error tightest, and for it
///
///     offset = (t0 + t1)/2 - t_r        (local minus reference)
///
/// with |error| <= rtt/2 (exact when the two directions are symmetric).
/// Repeated calibration rounds (A2A_TRACE_SYNC) feed a least-squares drift
/// fit, so long runs stay aligned even when the two clocks tick at slightly
/// different rates. The result is stamped into each trace file's metadata
/// (see obs/trace.hpp) and applied by tools/a2atrace.py at merge time.

#include <span>

namespace mca2a::obs {

/// One symmetric pingpong probe against the reference rank.
struct ProbeSample {
  double t_send = 0.0;    ///< local clock when the ping left
  double t_remote = 0.0;  ///< reference clock when the pong was served
  double t_recv = 0.0;    ///< local clock when the pong arrived
};

/// Offset/drift of a local clock relative to the reference timebase.
struct ClockCalibration {
  bool valid = false;
  double offset_s = 0.0;     ///< local minus reference at base_local_s
  double drift = 0.0;        ///< d(offset)/d(local second), ~0 in practice
  double min_rtt_s = 0.0;    ///< tightest round trip among the probes
  double base_local_s = 0.0; ///< local time the offset is anchored at
  int probes = 0;            ///< probes behind the winning round
  int rounds = 1;            ///< calibration rounds behind the drift fit

  /// Map a local timestamp into the reference timebase.
  double align(double local_ts) const noexcept {
    if (!valid) {
      return local_ts;
    }
    return local_ts - offset_s - drift * (local_ts - base_local_s);
  }
};

/// Midpoint-of-min-RTT estimate over one round of probes. Probes with
/// non-positive RTT are ignored; an empty or all-degenerate round returns
/// an invalid calibration.
ClockCalibration estimate_offset(std::span<const ProbeSample> samples);

/// Combine successive calibration rounds into one calibration with a
/// least-squares drift slope over (base_local_s, offset_s) pairs, anchored
/// at the latest round. Invalid rounds are skipped; fewer than two valid
/// rounds (or a degenerate time spread) keep drift at 0.
ClockCalibration fit_drift(std::span<const ClockCalibration> rounds);

}  // namespace mca2a::obs
