#include "obs/metrics.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "runtime/env.hpp"

namespace mca2a::obs {

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) {
    n += b.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the ceil(q * n)-th sample in sorted order (1-based).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (static_cast<double>(rank) < q * static_cast<double>(n)) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return bucket_bound(b);
    }
  }
  return bucket_bound(kBuckets - 1);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramEntry e;
    e.name = name;
    e.count = h->count();
    e.sum = h->sum();
    e.p50 = h->quantile_bound(0.50);
    e.p99 = h->quantile_bound(0.99);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket(b);
      if (n != 0) {
        e.buckets.emplace_back(Histogram::bucket_bound(b), n);
      }
    }
    s.histograms.push_back(std::move(e));
  }
  return s;
}

void MetricsRegistry::write_text(std::ostream& os) const {
  const MetricsSnapshot s = snapshot();
  for (const auto& c : s.counters) {
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : s.gauges) {
    os << g.name << " " << g.value << "\n";
  }
  for (const auto& h : s.histograms) {
    os << h.name << " count=" << h.count << " sum=" << h.sum
       << " p50<=" << h.p50 << " p99<=" << h.p99 << "\n";
    for (const auto& [bound, n] : h.buckets) {
      os << h.name << ".le." << bound << " " << n << "\n";
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const MetricsSnapshot s = snapshot();
  // Metric names are dotted ASCII identifiers (enforced by convention, not
  // worth an escaper); values are integers. Keys stay sorted (std::map).
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << s.counters[i].name
       << "\": " << s.counters[i].value;
  }
  os << (s.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << s.gauges[i].name
       << "\": " << s.gauges[i].value;
  }
  os << (s.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& h = s.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << h.name
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"p50_bound\": " << h.p50 << ", \"p99_bound\": " << h.p99
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b == 0 ? "" : ", ") << "[" << h.buckets[b].first << ", "
         << h.buckets[b].second << "]";
    }
    os << "]}";
  }
  os << (s.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->v_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->v_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    for (auto& b : h->buckets_) {
      b.store(0, std::memory_order_relaxed);
    }
    h->sum_.store(0, std::memory_order_relaxed);
  }
}

void write_metrics_files(const std::string& path) {
  {
    std::ofstream os(path);
    if (!os) {
      throw std::runtime_error("A2A_METRICS: cannot open " + path);
    }
    metrics().write_text(os);
  }
  std::ofstream js(path + ".json");
  if (!js) {
    throw std::runtime_error("A2A_METRICS: cannot open " + path + ".json");
  }
  metrics().write_json(js);
}

namespace {

void dump_metrics_at_exit() {
  const auto path = rt::env::get_string("A2A_METRICS");
  if (!path) {
    return;
  }
  try {
    write_metrics_files(*path);
  } catch (...) {
    // Exit path: a failed snapshot write must not abort the process.
  }
}

}  // namespace

MetricsRegistry& metrics() {
  static MetricsRegistry reg;
  // Registered *after* `reg` is constructed, so the hook (LIFO atexit order)
  // runs before any later static teardown could touch the registry; same
  // two-statics ordering trick as the autotune profile saver.
  static const bool hooked = [] {
    std::atexit(&dump_metrics_at_exit);
    return true;
  }();
  (void)hooked;
  return reg;
}

}  // namespace mca2a::obs
