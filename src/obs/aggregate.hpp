#pragma once
/// \file aggregate.hpp
/// Cluster-wide metrics aggregation for the multi-rank backends.
///
/// Every rank owns a process-local (or thread-shared) MetricsRegistry; a
/// distributed run therefore ends with N disjoint registries and no single
/// place to ask "how many bytes did the job move, and which rank lagged?".
/// MetricsAggregator closes that gap over the communicator itself:
///
///  1. Construction snapshots the registry — the epoch baseline. Everything
///     the job does afterwards shows up as a delta against it (counters and
///     histograms subtract; gauges report their current value).
///  2. reduce(comm) is a collective over a *blocking* backend (smp or net):
///     every rank serializes its delta and sends it to rank 0, which
///     combines them into per-metric totals, per-rank extrema and imbalance
///     ratios. Rank 0's acknowledgement doubles as the release half of a
///     barrier, so no rank resumes (or tears down its endpoint) while its
///     blob is still in flight. Use a freshly created sub-communicator so
///     the aggregation tags can never collide with application traffic.
///  3. combine() is the pure half — tests (and the simulator, which cannot
///     block) feed it snapshots directly.
///
/// The net backend arms this automatically when `A2A_CLUSTER_METRICS=path`
/// names an output file: the world communicator's teardown runs the
/// reduction right before the kBye handshake and rank 0 writes
/// `cluster-metrics.json`-style output to `path`. See docs/observability.md.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace mca2a::rt {
class Comm;
}  // namespace mca2a::rt

namespace mca2a::obs {

/// Combined view over every rank's snapshot delta.
struct ClusterMetrics {
  struct Item {
    std::string name;
    /// 'c' counter, 'g' gauge, 'h' histogram facet (name.count/name.sum).
    char kind = 'c';
    double total = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    int min_rank = 0;
    int max_rank = 0;
    /// max / mean (0 when mean == 0): 1.0 = perfectly balanced.
    double imbalance = 0.0;
    std::vector<double> per_rank;
  };
  int ranks = 0;
  std::vector<Item> items;  ///< sorted by name

  /// Item by name, nullptr when absent (test convenience).
  const Item* find(std::string_view name) const noexcept;
};

class MetricsAggregator {
 public:
  /// Snapshot `reg` now: the epoch baseline deltas are measured against.
  explicit MetricsAggregator(const MetricsRegistry& reg = metrics());

  /// Start a new epoch: re-baseline against the registry's current state.
  void rebase();

  /// This rank's delta since the baseline. Counters and histograms with a
  /// zero delta are dropped (absent reads as zero on the combining side);
  /// gauges report their current value.
  MetricsSnapshot delta() const;

  /// Gather every rank's delta() to comm rank 0 and combine. Blocking
  /// collective: every rank of `comm` must call it (smp or net backend —
  /// the simulator's wait_try does not block). Rank 0 returns the combined
  /// metrics; other ranks return an empty ClusterMetrics after rank 0
  /// acknowledged receipt (barrier semantics).
  ClusterMetrics reduce(rt::Comm& comm) const;

  /// Pure combining core: `per_rank[r]` is rank r's snapshot delta.
  static ClusterMetrics combine(std::span<const MetricsSnapshot> per_rank);

  /// Compact wire form of one snapshot ("c name value" / "g name value" /
  /// "h name count sum" lines) and its inverse.
  static std::string serialize(const MetricsSnapshot& s);
  static MetricsSnapshot parse(const std::string& text);

  /// JSON rendering of a combined result (totals, extrema, imbalance and
  /// the full per-rank vectors).
  static void write_json(const ClusterMetrics& cm, std::ostream& os);
  static void write_json_file(const ClusterMetrics& cm,
                              const std::string& path);

 private:
  const MetricsRegistry* reg_;
  MetricsSnapshot base_;
};

}  // namespace mca2a::obs
