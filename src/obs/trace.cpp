#include "obs/trace.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "runtime/env.hpp"

namespace mca2a::obs {

std::uint64_t flow_id(std::uint64_t comm_key, int src_world, int dst_world,
                      int tag, std::uint64_t seq) noexcept {
  const std::uint64_t parts[] = {
      comm_key, static_cast<std::uint64_t>(static_cast<std::int64_t>(src_world)),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(dst_world)),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)), seq};
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t v : parts) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ull;
    }
  }
  return h == 0 ? 1 : h;  // 0 is the "no flow" sentinel
}

// --------------------------------------------------------------------------
// TraceBuffer
// --------------------------------------------------------------------------

bool TraceBuffer::push(EventType type, std::string_view name,
                       std::string_view cat, int lane,
                       std::initializer_list<TraceArg> args, bool force) {
  if (capacity_ == 0 || (!force && events_.size() >= capacity_)) {
    ++dropped_;
    return false;
  }
  if (events_.empty()) {
    events_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  }
  TraceEvent e;
  e.ts = now();
  e.session = session_;
  e.lane = static_cast<std::uint16_t>(lane);
  e.type = type;
  e.name = name;
  e.cat = cat;
  std::size_t i = 0;
  for (const TraceArg& a : args) {
    if (i < e.args.size()) {
      e.args[i++] = a;
    }
  }
  events_.push_back(e);
  return true;
}

bool TraceBuffer::begin(std::string_view name, std::string_view cat, int lane,
                        std::initializer_list<TraceArg> args) {
  return push(EventType::kBegin, name, cat, lane, args, /*force=*/false);
}

void TraceBuffer::end(int lane) {
  // Forced: an end whose begin was accepted must land even at capacity, or
  // the exported span tree would tear. Overshoot is bounded by the open-span
  // depth at the moment the ring filled.
  push(EventType::kEnd, {}, {}, lane, {}, /*force=*/true);
}

void TraceBuffer::instant(std::string_view name, std::string_view cat,
                          int lane, std::initializer_list<TraceArg> args) {
  push(EventType::kInstant, name, cat, lane, args, /*force=*/false);
}

void TraceBuffer::flow_start(std::uint64_t id, int lane) {
  if (push(EventType::kFlowStart, "msg", "flow", lane, {}, /*force=*/false)) {
    events_.back().flow = id;
  }
}

void TraceBuffer::flow_end(std::uint64_t id, int lane) {
  if (push(EventType::kFlowEnd, "msg", "flow", lane, {}, /*force=*/false)) {
    events_.back().flow = id;
  }
}

// --------------------------------------------------------------------------
// JSON export
// --------------------------------------------------------------------------

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

void write_args(std::ostream& os, const TraceEvent& e) {
  bool any = false;
  for (const TraceArg& a : e.args) {
    if (a.key.empty()) {
      continue;
    }
    os << (any ? ", " : ", \"args\": {") << "\"";
    write_escaped(os, a.key);
    os << "\": " << a.value;
    any = true;
  }
  if (any) {
    os << "}";
  }
}

const char* clock_domain_name(std::string_view backend) {
  return backend == "sim" ? "virtual-seconds" : "wall-seconds";
}

}  // namespace

// --------------------------------------------------------------------------
// TraceRecorder
// --------------------------------------------------------------------------

TraceRecorder::TraceRecorder(TraceConfig cfg) : cfg_(std::move(cfg)) {}

int TraceRecorder::begin_session(std::string_view backend) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.push_back(Session{std::string(backend), true});
  return static_cast<int>(sessions_.size()) - 1;
}

TraceBuffer* TraceRecorder::open_stream(int session, int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  const Session& s = sessions_.at(static_cast<std::size_t>(session));
  if (!s.active) {
    throw std::logic_error("TraceRecorder::open_stream: session ended");
  }
  // Reuse the lowest-instance free buffer for (backend, rank); a concurrent
  // session of the same shape gets a fresh instance instead of a second
  // writer on the same ring.
  Slot* best = nullptr;
  int instances = 0;
  for (const auto& slot : slots_) {
    if (slot->backend != s.backend || slot->rank != rank) {
      continue;
    }
    ++instances;
    if (slot->session == -1 &&
        (best == nullptr || slot->instance < best->instance)) {
      best = slot.get();
    }
  }
  if (best == nullptr) {
    auto slot = std::make_unique<Slot>();
    slot->backend = s.backend;
    slot->rank = rank;
    slot->instance = instances;
    slot->buf = std::make_unique<TraceBuffer>(cfg_.events_per_rank);
    best = slot.get();
    slots_.push_back(std::move(slot));
  }
  best->session = session;
  best->buf->set_session(static_cast<std::uint32_t>(session));
  return best->buf.get();
}

void TraceRecorder::end_session(int session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session < 0 || session >= static_cast<int>(sessions_.size())) {
    return;
  }
  sessions_[static_cast<std::size_t>(session)].active = false;
  for (auto& slot : slots_) {
    if (slot->session == session) {
      slot->session = -1;
    }
  }
}

const TraceRecorder::Slot* TraceRecorder::find_slot(std::string_view backend,
                                                    int rank,
                                                    int instance) const {
  for (const auto& slot : slots_) {
    if (slot->backend == backend && slot->rank == rank &&
        slot->instance == instance) {
      return slot.get();
    }
  }
  return nullptr;
}

std::string TraceRecorder::file_name(std::string_view backend, int rank,
                                     int instance) {
  std::string name(backend);
  name += "-rank";
  std::string digits = std::to_string(rank);
  name.append(digits.size() < 5 ? 5 - digits.size() : 0, '0');
  name += digits;
  if (instance > 0) {
    name += "-i" + std::to_string(instance);
  }
  name += ".trace.json";
  return name;
}

namespace {

void write_slot_json(std::ostream& os, std::string_view backend, int rank,
                     const TraceBuffer& buf) {
  const auto& events = buf.events();
  // Perfetto process/thread naming: every session in this file is one
  // process; each lane (tag stream) is one named thread of it.
  std::set<std::uint32_t> sessions;
  std::set<std::pair<std::uint32_t, std::uint16_t>> lanes;
  for (const TraceEvent& e : events) {
    sessions.insert(e.session);
    lanes.insert({e.session, e.lane});
  }
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\n"
     << "  \"backend\": \"" << backend << "\",\n"
     << "  \"clock_domain\": \"" << clock_domain_name(backend) << "\",\n"
     << "  \"rank\": " << rank << ",\n";
  if (buf.world_rank() >= 0) {
    os << "  \"world_rank\": " << buf.world_rank() << ",\n";
  }
  const ClockCalibration& calib = buf.calibration();
  if (calib.valid) {
    // The merge tool maps this stream into the reference (rank 0) timebase:
    // aligned = ts - offset - drift * (ts - base).
    os << std::setprecision(17) << "  \"clock_offset_s\": " << calib.offset_s
       << ",\n  \"clock_drift\": " << calib.drift
       << ",\n  \"clock_min_rtt_s\": " << calib.min_rtt_s
       << ",\n  \"clock_base_s\": " << calib.base_local_s
       << ",\n  \"clock_sync_probes\": " << calib.probes
       << ",\n  \"clock_sync_rounds\": " << calib.rounds << ",\n";
  }
  os << "  \"dropped_events\": " << buf.dropped() << "\n},\n"
     << "\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  for (std::uint32_t s : sessions) {
    sep();
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << s
       << ", \"tid\": 0, \"args\": {\"name\": \"" << backend << " session "
       << s << " rank " << rank << "\"}}";
  }
  for (const auto& [s, lane] : lanes) {
    sep();
    os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << s
       << ", \"tid\": " << lane << ", \"args\": {\"name\": \"rank " << rank;
    if (lane != 0) {
      os << " stream " << lane;
    }
    os << "\"}}";
  }
  os << std::setprecision(17);
  for (const TraceEvent& e : events) {
    sep();
    const double ts_us = e.ts * 1e6;
    switch (e.type) {
      case EventType::kBegin:
        os << "{\"ph\": \"B\", \"name\": \"";
        write_escaped(os, e.name);
        os << "\", \"cat\": \"";
        write_escaped(os, e.cat);
        os << "\", \"ts\": " << ts_us << ", \"pid\": " << e.session
           << ", \"tid\": " << e.lane;
        write_args(os, e);
        os << "}";
        break;
      case EventType::kEnd:
        os << "{\"ph\": \"E\", \"ts\": " << ts_us << ", \"pid\": "
           << e.session << ", \"tid\": " << e.lane << "}";
        break;
      case EventType::kInstant:
        os << "{\"ph\": \"i\", \"s\": \"t\", \"name\": \"";
        write_escaped(os, e.name);
        os << "\", \"cat\": \"";
        write_escaped(os, e.cat);
        os << "\", \"ts\": " << ts_us << ", \"pid\": " << e.session
           << ", \"tid\": " << e.lane;
        write_args(os, e);
        os << "}";
        break;
      case EventType::kFlowStart:
      case EventType::kFlowEnd:
        // Chrome flow events: both ends share name/cat/id; the finish end
        // binds to the *enclosing* slice (bp=e) so the arrow lands on the
        // receiving span, not the next slice to start. Ids are emitted as
        // hex strings — 64-bit ints would lose precision in JS parsers.
        os << "{\"ph\": \"" << (e.type == EventType::kFlowStart ? 's' : 'f')
           << "\"";
        if (e.type == EventType::kFlowEnd) {
          os << ", \"bp\": \"e\"";
        }
        os << ", \"id\": \"0x" << std::hex << e.flow << std::dec
           << "\", \"name\": \"";
        write_escaped(os, e.name);
        os << "\", \"cat\": \"";
        write_escaped(os, e.cat);
        os << "\", \"ts\": " << ts_us << ", \"pid\": " << e.session
           << ", \"tid\": " << e.lane << "}";
        break;
    }
  }
  os << "\n]\n}\n";
}

}  // namespace

void TraceRecorder::write_stream(std::ostream& os, std::string_view backend,
                                 int rank, int instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Slot* slot = find_slot(backend, rank, instance);
  if (slot == nullptr) {
    throw std::out_of_range("TraceRecorder::write_stream: no such stream");
  }
  write_slot_json(os, slot->backend, slot->rank, *slot->buf);
}

const TraceBuffer* TraceRecorder::stream(std::string_view backend, int rank,
                                         int instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Slot* slot = find_slot(backend, rank, instance);
  return slot == nullptr ? nullptr : slot->buf.get();
}

void TraceRecorder::write_all() {
  std::lock_guard<std::mutex> lock(mu_);
  if (cfg_.dir.empty()) {
    return;
  }
  std::filesystem::create_directories(cfg_.dir);
  for (const auto& slot : slots_) {
    const std::string path =
        cfg_.dir + "/" + file_name(slot->backend, slot->rank, slot->instance);
    std::ofstream os(path);
    if (!os) {
      throw std::runtime_error("A2A_TRACE: cannot open " + path);
    }
    write_slot_json(os, slot->backend, slot->rank, *slot->buf);
  }
}

// --------------------------------------------------------------------------
// Active recorder (env singleton + test override)
// --------------------------------------------------------------------------

namespace {

TraceRecorder* g_override = nullptr;

void write_env_traces_at_exit();

TraceRecorder* env_recorder() {
  static std::unique_ptr<TraceRecorder> rec = [] {
    const auto dir = rt::env::get_string("A2A_TRACE");
    if (!dir) {
      return std::unique_ptr<TraceRecorder>();
    }
    TraceConfig cfg;
    cfg.dir = *dir;
    cfg.events_per_rank = rt::env::get_size(
        "A2A_TRACE_EVENTS", cfg.events_per_rank, 1, std::size_t{1} << 32);
    return std::make_unique<TraceRecorder>(std::move(cfg));
  }();
  static const bool hooked = [] {
    if (rec != nullptr) {
      std::atexit(&write_env_traces_at_exit);
    }
    return true;
  }();
  (void)hooked;
  return rec.get();
}

void write_env_traces_at_exit() {
  try {
    if (TraceRecorder* r = env_recorder()) {
      r->write_all();
    }
  } catch (...) {
    // Exit path: a failed trace write must not abort the process.
  }
}

}  // namespace

TraceRecorder* active_recorder() {
  return g_override != nullptr ? g_override : env_recorder();
}

void set_active_recorder(TraceRecorder* r) { g_override = r; }

void flush_env_writers() noexcept {
  try {
    if (g_override == nullptr) {
      if (TraceRecorder* r = env_recorder()) {
        r->write_all();
      }
    }
  } catch (...) {
    // Teardown path: a failed trace write must not abort the process.
  }
  try {
    if (const auto path = rt::env::get_string("A2A_METRICS")) {
      write_metrics_files(*path);
    }
  } catch (...) {
  }
}

}  // namespace mca2a::obs
