#pragma once
/// \file metrics.hpp
/// Unified metrics registry: typed counters, gauges and log-bucketed
/// histograms with O(1) lock-free hot paths.
///
/// The registry is the common export surface for the counters the subsystems
/// used to hoard privately (plan cache hits, tag-stream draws, scratch-arena
/// bytes, autotune decisions, per-level wire bytes). Registration (name
/// lookup) takes a mutex and may allocate; call sites therefore register
/// once — typically through a function-local static reference — and then
/// increment through plain relaxed atomics. Because the instruments never
/// touch a rank clock or allocate on the increment path, keeping them
/// always-on perturbs neither simulated virtual time nor warm-execute
/// allocation counts.
///
/// Snapshots are queryable in-process (tests, benches) and, when the
/// A2A_METRICS environment knob names a file, serialized at process exit as
/// both text (`path`) and JSON (`path`.json). See docs/observability.md.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mca2a::obs {

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value, with a lock-free running-maximum update.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if `v` exceeds the current value (CAS loop;
  /// contention is bounded by the number of concurrent raisers).
  void update_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> v_{0};
};

/// Histogram over non-negative integers with logarithmic (power-of-two)
/// buckets: bucket 0 holds the value 0, bucket i >= 1 holds values in
/// [2^(i-1), 2^i). One relaxed fetch_add per observation.
class Histogram {
 public:
  /// 0 plus one bucket per bit of a 64-bit value.
  static constexpr int kBuckets = 65;

  static int bucket_of(std::uint64_t v) noexcept {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  /// Inclusive upper bound of bucket `b` (0 for bucket 0).
  static std::uint64_t bucket_bound(int b) noexcept {
    return b == 0 ? 0
           : b >= 64
               ? UINT64_MAX
               : (std::uint64_t{1} << b) - 1;
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Upper bound of the bucket holding the q-th quantile sample (q in
  /// [0, 1], nearest-rank over the bucketed distribution); 0 when empty.
  std::uint64_t quantile_bound(double q) const noexcept;

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time view of every registered instrument, sorted by name.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;  ///< quantile_bound(0.50)
    std::uint64_t p99 = 0;  ///< quantile_bound(0.99)
    /// (bucket upper bound, count) for every non-empty bucket.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
};

/// Name-addressed registry of instruments with stable addresses: the
/// reference returned by counter()/gauge()/histogram() stays valid for the
/// registry's lifetime, so hot paths cache it once and increment locklessly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find or create the named instrument (thread-safe; may allocate).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Current value of a named counter/gauge, 0 when never registered
  /// (tests read deltas around a workload, so absence reads as zero).
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  /// Named histogram, or nullptr when never registered.
  const Histogram* find_histogram(std::string_view name) const;

  MetricsSnapshot snapshot() const;

  /// Human-readable table, one `name value` row per instrument.
  void write_text(std::ostream& os) const;
  /// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& os) const;

  /// Zero every instrument, keeping registrations (cached references stay
  /// valid). Test isolation helper.
  void reset();

 private:
  mutable std::mutex mu_;
  // Map nodes have stable addresses; unique_ptr keeps the instruments
  // immovable so the atomics never relocate under a concurrent increment.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-global registry. First use arms the A2A_METRICS exit dump
/// (no-op when the variable is unset).
MetricsRegistry& metrics();

/// Serialize the global registry to `path` (text) and `path`.json (JSON)
/// right now; what A2A_METRICS triggers at exit. Throws on I/O failure.
void write_metrics_files(const std::string& path);

}  // namespace mca2a::obs
