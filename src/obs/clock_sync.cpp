#include "obs/clock_sync.hpp"

namespace mca2a::obs {

ClockCalibration estimate_offset(std::span<const ProbeSample> samples) {
  ClockCalibration c;
  const ProbeSample* best = nullptr;
  double best_rtt = 0.0;
  int usable = 0;
  for (const ProbeSample& s : samples) {
    const double rtt = s.t_recv - s.t_send;
    if (rtt <= 0.0) {
      continue;  // clock hiccup or wrapped probe: untrustworthy
    }
    ++usable;
    if (best == nullptr || rtt < best_rtt) {
      best = &s;
      best_rtt = rtt;
    }
  }
  if (best == nullptr) {
    return c;
  }
  c.valid = true;
  c.offset_s = (best->t_send + best->t_recv) / 2.0 - best->t_remote;
  c.min_rtt_s = best_rtt;
  c.base_local_s = (best->t_send + best->t_recv) / 2.0;
  c.probes = usable;
  return c;
}

ClockCalibration fit_drift(std::span<const ClockCalibration> rounds) {
  ClockCalibration latest;
  // Least squares of offset over local time: slope = drift. Accumulate in
  // a base-shifted frame (first valid round's anchor) for conditioning.
  double t0 = 0.0;
  double sum_t = 0.0;
  double sum_o = 0.0;
  double sum_tt = 0.0;
  double sum_to = 0.0;
  int n = 0;
  for (const ClockCalibration& r : rounds) {
    if (!r.valid) {
      continue;
    }
    if (n == 0) {
      t0 = r.base_local_s;
    }
    const double t = r.base_local_s - t0;
    sum_t += t;
    sum_o += r.offset_s;
    sum_tt += t * t;
    sum_to += t * r.offset_s;
    ++n;
    latest = r;  // rounds arrive oldest-first; keep the newest anchor
    latest.rounds = n;
  }
  if (n < 2) {
    return latest;
  }
  const double denom = n * sum_tt - sum_t * sum_t;
  if (denom <= 0.0) {
    return latest;
  }
  latest.drift = (n * sum_to - sum_t * sum_o) / denom;
  return latest;
}

}  // namespace mca2a::obs
