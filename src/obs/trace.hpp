#pragma once
/// \file trace.hpp
/// Flight recorder: per-rank span/instant event buffers exported as Chrome
/// trace-event JSON (loadable in ui.perfetto.dev or chrome://tracing).
///
/// Every rank owns one TraceBuffer — a bounded, lock-free-append ring of
/// fixed-size events written only by that rank's coroutine (sim) or thread
/// (smp), so the hot path is a bounds check plus a struct store. When the
/// ring fills, new begin/instant events are dropped (and counted) while end
/// events still land, keeping begin/end pairs balanced in the export: the
/// recorder preserves the earliest window of the flight rather than tearing
/// span trees mid-run.
///
/// Buffers are owned by a TraceRecorder, keyed by (backend, world rank):
/// every simulated or threaded cluster a process creates opens a *session*
/// (one Perfetto process, pid = session id) and reuses the per-rank buffers,
/// so a bench that builds hundreds of clusters still writes one file per
/// rank, not per cluster. Timestamps come from a per-buffer clock injected
/// by the backend — virtual seconds on the simulator, wall seconds on the
/// threads backend — and the two clock domains are never mixed in one file.
///
/// Enabled by `A2A_TRACE=dir` (one `<backend>-rank<NNNN>.trace.json` per
/// rank, written at process exit) or programmatically via
/// set_active_recorder() for tests. When disabled, rt::Comm::tracer()
/// returns nullptr and every instrumentation site reduces to one branch:
/// no events, no clock reads, no allocations, bit-for-bit identical virtual
/// times. See docs/observability.md.

#include <array>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock_sync.hpp"

namespace mca2a::obs {

/// One integer-valued event argument. Keys must point at storage that
/// outlives the recorder (string literals, in practice).
struct TraceArg {
  std::string_view key;
  std::int64_t value = 0;
};

enum class EventType : std::uint8_t {
  kBegin,
  kEnd,
  kInstant,
  kFlowStart,  ///< Perfetto "s": source end of a sender->receiver arrow
  kFlowEnd,    ///< Perfetto "f" (bp=e): arrow head, binds to enclosing slice
};

/// Fixed-size stored event. `name`/`cat` must be backed by static storage;
/// the buffer never copies strings.
struct TraceEvent {
  double ts = 0.0;           ///< seconds in the buffer's clock domain
  std::uint32_t session = 0; ///< exported as the Perfetto pid
  std::uint16_t lane = 0;    ///< exported as the tid (tag stream, usually)
  EventType type = EventType::kInstant;
  std::string_view name{};
  std::string_view cat{};
  std::uint64_t flow = 0;    ///< flow binding id (kFlowStart/kFlowEnd only)
  std::array<TraceArg, 4> args{};  ///< entries with empty keys are unused
};

/// Deterministic flow id for one message: both ends derive the same id from
/// the match identity plus a per-(comm, src, dst, tag) sequence number that
/// each side counts locally — FIFO ordering of matching-relevant traffic
/// keeps the two counters in lockstep. Never returns 0 (0 = "no flow").
std::uint64_t flow_id(std::uint64_t comm_key, int src_world, int dst_world,
                      int tag, std::uint64_t seq) noexcept;

/// Per-rank append-only event ring. Single writer (the owning rank);
/// export happens only after the writing session ended.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : capacity_(capacity) {}
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Install the clock this buffer stamps events with. Re-bound by each
  /// session (a fresh cluster brings a fresh clock over the same buffer).
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }
  /// Session id stamped on subsequent events.
  void set_session(std::uint32_t s) noexcept { session_ = s; }

  /// Current time in this buffer's clock domain (0 when no clock bound).
  double now() const { return clock_ ? clock_() : 0.0; }

  /// Open a span. Returns false when the ring is full (the matching end
  /// must then be suppressed — Span handles this).
  bool begin(std::string_view name, std::string_view cat, int lane = 0,
             std::initializer_list<TraceArg> args = {});
  /// Close the innermost open span on `lane`. Always lands (ends may
  /// overshoot the capacity by the open-span depth) so pairs stay balanced.
  void end(int lane);
  /// Zero-duration event.
  void instant(std::string_view name, std::string_view cat, int lane = 0,
               std::initializer_list<TraceArg> args = {});
  /// Source end of a message arrow. Emit inside the span that produced the
  /// message (Perfetto binds both ends to their enclosing slice). Droppable
  /// like begins/instants when the ring is full.
  void flow_start(std::uint64_t id, int lane = 0);
  /// Arrow head; emit inside the receiving span.
  void flow_end(std::uint64_t id, int lane = 0);

  /// Clock calibration stamped into this stream's exported metadata so the
  /// merge tool can map its timestamps into the reference timebase.
  void set_calibration(const ClockCalibration& c) noexcept { calib_ = c; }
  const ClockCalibration& calibration() const noexcept { return calib_; }
  /// World rank stamped into the exported metadata (-1 = unknown; the
  /// per-process backends set it so merged rows are labeled correctly).
  void set_world_rank(int r) noexcept { world_rank_ = r; }
  int world_rank() const noexcept { return world_rank_; }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  bool push(EventType type, std::string_view name, std::string_view cat,
            int lane, std::initializer_list<TraceArg> args, bool force);

  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::function<double()> clock_;
  std::uint32_t session_ = 0;
  ClockCalibration calib_{};
  int world_rank_ = -1;
};

/// RAII begin/end pair. A Span constructed with a null buffer (tracing
/// disabled) is inert; one whose begin was dropped suppresses its end.
/// Lives happily inside coroutine frames: the destructor runs when the
/// frame completes or is destroyed, so even an abandoned operation closes
/// its span.
class Span {
 public:
  Span() noexcept = default;
  Span(TraceBuffer* tb, std::string_view name, std::string_view cat,
       int lane = 0, std::initializer_list<TraceArg> args = {}) noexcept
      : tb_(tb), lane_(lane) {
    if (tb_ != nullptr) {
      open_ = tb_->begin(name, cat, lane_, args);
    }
  }
  Span(Span&& other) noexcept
      : tb_(other.tb_), lane_(other.lane_), open_(other.open_) {
    other.open_ = false;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      close();
      tb_ = other.tb_;
      lane_ = other.lane_;
      open_ = other.open_;
      other.open_ = false;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// Close now (idempotent); the destructor closes otherwise.
  void close() noexcept {
    if (open_) {
      tb_->end(lane_);
      open_ = false;
    }
  }

 private:
  TraceBuffer* tb_ = nullptr;
  int lane_ = 0;
  bool open_ = false;
};

struct TraceConfig {
  /// Output directory for write_all(); empty = in-memory only (tests).
  std::string dir;
  /// Event capacity per rank buffer (A2A_TRACE_EVENTS overrides for the
  /// env-configured recorder).
  std::size_t events_per_rank = 1 << 16;
};

/// Owns every per-rank buffer and writes the Chrome trace-event files.
///
/// Lifecycle: a backend cluster calls begin_session() in its constructor,
/// open_stream() per rank, and end_session() in its destructor. Buffers are
/// keyed (backend, rank) and reused by later sessions — each session shows
/// up as its own Perfetto process in the same per-rank file. If two live
/// clusters of the same backend overlap, the second gets distinct overflow
/// buffers (an `-i<k>` file suffix) rather than interleaving writers.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig cfg = {});
  ~TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const TraceConfig& config() const noexcept { return cfg_; }

  /// Open a session (one cluster run context). `backend` must be a static
  /// string ("sim", "smp"); returns the session id stamped on its events.
  int begin_session(std::string_view backend);
  /// Buffer for `rank` within `session`; stays valid for the recorder's
  /// lifetime. The caller must set_clock() before emitting events.
  TraceBuffer* open_stream(int session, int rank);
  /// Mark the session's buffers reusable by future sessions.
  void end_session(int session);

  /// Write every stream's JSON file into config().dir (no-op when dir is
  /// empty). Safe to call repeatedly; files are rewritten whole. Throws on
  /// I/O failure. Must not race live writers (call between sessions or at
  /// exit).
  void write_all();
  /// Serialize one stream as Chrome trace JSON (test hook).
  void write_stream(std::ostream& os, std::string_view backend, int rank,
                    int instance = 0) const;

  /// In-memory lookup for tests; nullptr when the stream never opened.
  const TraceBuffer* stream(std::string_view backend, int rank,
                            int instance = 0) const;
  /// File name a stream writes to (relative to config().dir).
  static std::string file_name(std::string_view backend, int rank,
                               int instance);

 private:
  struct Slot {
    std::string backend;
    int rank = 0;
    int instance = 0;
    int session = -1;  ///< owning active session, -1 when free
    std::unique_ptr<TraceBuffer> buf;
  };
  struct Session {
    std::string backend;
    bool active = false;
  };

  const Slot* find_slot(std::string_view backend, int rank,
                        int instance) const;

  mutable std::mutex mu_;
  TraceConfig cfg_;
  std::vector<Session> sessions_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// The active recorder: the test override when set, else the env-configured
/// singleton (A2A_TRACE=dir, exit-time write_all), else nullptr — tracing
/// disabled.
TraceRecorder* active_recorder();
/// Install `r` as the active recorder (nullptr restores env behaviour).
/// The caller keeps ownership and must keep `r` alive while any cluster
/// created under it exists.
void set_active_recorder(TraceRecorder* r);

/// Flush the env-configured exit writers (A2A_TRACE files, A2A_METRICS
/// dump) right now. The multi-process net backend calls this from its
/// world teardown so a rank that exits through the normal path has its
/// observability files on disk before process-global statics unwind —
/// the atexit hooks then merely rewrite identical files. Never throws;
/// a no-op when the knobs are unset or a test recorder overrides the env
/// one (test-managed streams are not written to disk behind the test's
/// back).
void flush_env_writers() noexcept;

}  // namespace mca2a::obs
