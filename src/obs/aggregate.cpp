#include "obs/aggregate.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "runtime/comm.hpp"

namespace mca2a::obs {

namespace {

/// Aggregation tag space. reduce() must run on a fresh sub-communicator,
/// so plain small tags cannot collide with application traffic.
constexpr int kTagLen = 0;
constexpr int kTagBlob = 1;
constexpr int kTagAck = 2;

void wait_one(rt::Comm& comm, rt::Request r) {
  const std::array<rt::Request, 1> reqs{r};
  comm.wait_try(reqs);
}

}  // namespace

const ClusterMetrics::Item* ClusterMetrics::find(
    std::string_view name) const noexcept {
  const auto it = std::find_if(items.begin(), items.end(),
                               [&](const Item& i) { return i.name == name; });
  return it == items.end() ? nullptr : &*it;
}

MetricsAggregator::MetricsAggregator(const MetricsRegistry& reg)
    : reg_(&reg), base_(reg.snapshot()) {}

void MetricsAggregator::rebase() { base_ = reg_->snapshot(); }

MetricsSnapshot MetricsAggregator::delta() const {
  const MetricsSnapshot cur = reg_->snapshot();
  std::map<std::string, std::uint64_t> base_counters;
  for (const auto& c : base_.counters) {
    base_counters.emplace(c.name, c.value);
  }
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> base_hists;
  for (const auto& h : base_.histograms) {
    base_hists.emplace(h.name, std::make_pair(h.count, h.sum));
  }

  MetricsSnapshot d;
  for (const auto& c : cur.counters) {
    const auto it = base_counters.find(c.name);
    const std::uint64_t base = it == base_counters.end() ? 0 : it->second;
    if (c.value != base) {
      d.counters.push_back({c.name, c.value - base});
    }
  }
  d.gauges = cur.gauges;  // last-written semantics: deltas are meaningless
  for (const auto& h : cur.histograms) {
    const auto it = base_hists.find(h.name);
    const std::uint64_t bc = it == base_hists.end() ? 0 : it->second.first;
    const std::uint64_t bs = it == base_hists.end() ? 0 : it->second.second;
    if (h.count != bc) {
      MetricsSnapshot::HistogramEntry e;
      e.name = h.name;
      e.count = h.count - bc;
      e.sum = h.sum - bs;
      d.histograms.push_back(std::move(e));
    }
  }
  return d;
}

std::string MetricsAggregator::serialize(const MetricsSnapshot& s) {
  std::ostringstream os;
  for (const auto& c : s.counters) {
    os << "c " << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : s.gauges) {
    os << "g " << g.name << ' ' << g.value << '\n';
  }
  for (const auto& h : s.histograms) {
    os << "h " << h.name << ' ' << h.count << ' ' << h.sum << '\n';
  }
  return os.str();
}

MetricsSnapshot MetricsAggregator::parse(const std::string& text) {
  MetricsSnapshot s;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    char kind = 0;
    std::string name;
    if (!(ls >> kind >> name)) {
      throw std::runtime_error("cluster metrics: malformed line: " + line);
    }
    if (kind == 'c') {
      std::uint64_t v = 0;
      ls >> v;
      s.counters.push_back({name, v});
    } else if (kind == 'g') {
      std::int64_t v = 0;
      ls >> v;
      s.gauges.push_back({name, v});
    } else if (kind == 'h') {
      MetricsSnapshot::HistogramEntry e;
      e.name = name;
      ls >> e.count >> e.sum;
      s.histograms.push_back(std::move(e));
    } else {
      throw std::runtime_error("cluster metrics: unknown record kind in: " +
                               line);
    }
    if (ls.fail()) {
      throw std::runtime_error("cluster metrics: malformed line: " + line);
    }
  }
  return s;
}

ClusterMetrics MetricsAggregator::combine(
    std::span<const MetricsSnapshot> per_rank) {
  const int n = static_cast<int>(per_rank.size());
  // name -> (kind, per-rank values); map keeps the output name-sorted.
  std::map<std::string, std::pair<char, std::vector<double>>> acc;
  const auto slot = [&](const std::string& name, char kind)
      -> std::vector<double>& {
    auto [it, inserted] =
        acc.emplace(name, std::make_pair(kind, std::vector<double>()));
    if (inserted) {
      it->second.second.assign(static_cast<std::size_t>(n), 0.0);
    }
    return it->second.second;
  };
  for (int r = 0; r < n; ++r) {
    const MetricsSnapshot& s = per_rank[static_cast<std::size_t>(r)];
    for (const auto& c : s.counters) {
      slot(c.name, 'c')[static_cast<std::size_t>(r)] =
          static_cast<double>(c.value);
    }
    for (const auto& g : s.gauges) {
      slot(g.name, 'g')[static_cast<std::size_t>(r)] =
          static_cast<double>(g.value);
    }
    for (const auto& h : s.histograms) {
      slot(h.name + ".count", 'h')[static_cast<std::size_t>(r)] =
          static_cast<double>(h.count);
      slot(h.name + ".sum", 'h')[static_cast<std::size_t>(r)] =
          static_cast<double>(h.sum);
    }
  }

  ClusterMetrics cm;
  cm.ranks = n;
  cm.items.reserve(acc.size());
  for (auto& [name, entry] : acc) {
    ClusterMetrics::Item item;
    item.name = name;
    item.kind = entry.first;
    item.per_rank = std::move(entry.second);
    item.min_rank = 0;
    item.max_rank = 0;
    for (int r = 0; r < n; ++r) {
      const double v = item.per_rank[static_cast<std::size_t>(r)];
      item.total += v;
      if (r == 0 || v < item.min) {
        item.min = v;
        item.min_rank = r;
      }
      if (r == 0 || v > item.max) {
        item.max = v;
        item.max_rank = r;
      }
    }
    item.mean = n > 0 ? item.total / n : 0.0;
    item.imbalance = item.mean != 0.0 ? item.max / item.mean : 0.0;
    cm.items.push_back(std::move(item));
  }
  return cm;
}

ClusterMetrics MetricsAggregator::reduce(rt::Comm& comm) const {
  const int rank = comm.rank();
  const int size = comm.size();
  const MetricsSnapshot mine = delta();
  if (size == 1) {
    const std::array<MetricsSnapshot, 1> one{mine};
    return combine(one);
  }

  if (rank != 0) {
    const std::string blob = serialize(mine);
    std::uint64_t len = blob.size();
    // Both sends stay posted until waited: the length is eager-small, the
    // blob may go rendezvous on the net backend.
    const std::array<rt::Request, 2> reqs{
        comm.isend(rt::ConstView{reinterpret_cast<const std::byte*>(&len),
                                 sizeof(len)},
                   0, kTagLen),
        comm.isend(rt::ConstView{reinterpret_cast<const std::byte*>(
                                     blob.data()),
                                 blob.size()},
                   0, kTagBlob)};
    comm.wait_try(reqs);
    // Barrier release half: rank 0 acks only once every blob landed, so
    // no rank proceeds to teardown with aggregation traffic in flight.
    std::byte ack{};
    wait_one(comm, comm.irecv(rt::MutView{&ack, 1}, 0, kTagAck));
    return ClusterMetrics{};
  }

  std::vector<MetricsSnapshot> per_rank(static_cast<std::size_t>(size));
  per_rank[0] = mine;
  for (int r = 1; r < size; ++r) {
    std::uint64_t len = 0;
    wait_one(comm,
             comm.irecv(rt::MutView{reinterpret_cast<std::byte*>(&len),
                                    sizeof(len)},
                        r, kTagLen));
    std::string blob(static_cast<std::size_t>(len), '\0');
    wait_one(comm,
             comm.irecv(rt::MutView{reinterpret_cast<std::byte*>(blob.data()),
                                    blob.size()},
                        r, kTagBlob));
    per_rank[static_cast<std::size_t>(r)] = parse(blob);
  }
  ClusterMetrics cm = combine(per_rank);
  for (int r = 1; r < size; ++r) {
    const std::byte ack{};
    wait_one(comm, comm.isend(rt::ConstView{&ack, 1}, r, kTagAck));
  }
  return cm;
}

void MetricsAggregator::write_json(const ClusterMetrics& cm,
                                   std::ostream& os) {
  os << std::setprecision(17);
  os << "{\n  \"ranks\": " << cm.ranks << ",\n  \"metrics\": {";
  bool first = true;
  for (const auto& item : cm.items) {
    os << (first ? "\n" : ",\n");
    first = false;
    const char* kind = item.kind == 'c'   ? "counter"
                       : item.kind == 'g' ? "gauge"
                                          : "histogram";
    os << "    \"" << item.name << "\": {\"kind\": \"" << kind
       << "\", \"total\": " << item.total << ", \"min\": " << item.min
       << ", \"max\": " << item.max << ", \"mean\": " << item.mean
       << ", \"min_rank\": " << item.min_rank
       << ", \"max_rank\": " << item.max_rank
       << ", \"imbalance\": " << item.imbalance << ", \"per_rank\": [";
    for (std::size_t r = 0; r < item.per_rank.size(); ++r) {
      os << (r == 0 ? "" : ", ") << item.per_rank[r];
    }
    os << "]}";
  }
  os << "\n  }\n}\n";
}

void MetricsAggregator::write_json_file(const ClusterMetrics& cm,
                                        const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cluster metrics: cannot open " + path);
  }
  write_json(cm, os);
  os.flush();
  if (!os) {
    throw std::runtime_error("cluster metrics: write failed for " + path);
  }
}

}  // namespace mca2a::obs
