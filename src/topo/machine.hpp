#pragma once
/// \file machine.hpp
/// Machine topology model: nodes x sockets x NUMA domains x cores.
///
/// Ranks are mapped block-wise (the default MPI mapping the paper uses):
/// rank r lives on node r / ppn at node-local index r % ppn, with local
/// indices filling NUMA domains and sockets consecutively. The locality
/// level of a rank pair drives every cost in the performance model and the
/// group arithmetic of the locality-aware algorithms.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mca2a::topo {

/// Locality level of a pair of ranks, from closest to farthest.
enum class Level : std::uint8_t {
  kSelf = 0,     ///< same rank
  kNuma = 1,     ///< same NUMA domain
  kSocket = 2,   ///< same socket, different NUMA domain
  kNode = 3,     ///< same node, different socket
  kNetwork = 4,  ///< different nodes
};

inline constexpr int kNumLevels = 5;

/// Human-readable name of a level ("self", "numa", ...).
const char* to_string(Level level);

/// Declarative description of a machine.
struct MachineDesc {
  std::string name = "generic";
  int nodes = 1;
  int sockets_per_node = 1;
  int numa_per_socket = 1;
  int cores_per_numa = 1;

  int numa_per_node() const { return sockets_per_node * numa_per_socket; }
  int cores_per_socket() const { return numa_per_socket * cores_per_numa; }
  int cores_per_node() const { return sockets_per_node * cores_per_socket(); }
  int total_cores() const { return nodes * cores_per_node(); }
};

/// Validated machine with rank/locality arithmetic. One rank per core.
class Machine {
 public:
  /// Validates the description; throws std::invalid_argument on nonsense.
  explicit Machine(MachineDesc desc);

  const MachineDesc& desc() const noexcept { return desc_; }
  const std::string& name() const noexcept { return desc_.name; }

  int nodes() const noexcept { return desc_.nodes; }
  /// Processes (ranks) per node.
  int ppn() const noexcept { return ppn_; }
  int total_ranks() const noexcept { return desc_.nodes * ppn_; }

  /// Node index of a world rank.
  int node_of(int rank) const { return check(rank) / ppn_; }
  /// Node-local index of a world rank (0..ppn-1).
  int local_rank(int rank) const { return check(rank) % ppn_; }
  /// Global socket index of a world rank.
  int socket_of(int rank) const {
    return node_of(rank) * desc_.sockets_per_node +
           local_rank(rank) / desc_.cores_per_socket();
  }
  /// Global NUMA-domain index of a world rank.
  int numa_of(int rank) const {
    return node_of(rank) * desc_.numa_per_node() +
           local_rank(rank) / desc_.cores_per_numa;
  }
  /// World rank of node-local index `local` on node `node`.
  int world_rank(int node, int local) const;

  /// Locality level of the pair (a, b).
  Level level(int a, int b) const;

  // --- group arithmetic for the locality-aware algorithms ------------------
  // Groups are `group_size` consecutive node-local ranks; group_size must
  // divide ppn. These helpers are the single source of truth for the
  // communicator construction in runtime/comm_bundle.

  /// Number of groups per node for a given group size.
  int groups_per_node(int group_size) const;
  /// Node-local group index of a rank (0..groups_per_node-1).
  int group_of(int rank, int group_size) const;
  /// Rank's index within its group (0..group_size-1).
  int group_local(int rank, int group_size) const;
  /// True if `rank` is the first rank (leader) of its group.
  bool is_group_leader(int rank, int group_size) const {
    return group_local(rank, group_size) == 0;
  }

 private:
  int check(int rank) const {
    if (rank < 0 || rank >= total_ranks()) {
      throw std::out_of_range("Machine: rank out of range");
    }
    return rank;
  }

  MachineDesc desc_;
  int ppn_ = 1;
};

}  // namespace mca2a::topo
