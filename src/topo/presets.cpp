#include "topo/presets.hpp"

#include <stdexcept>

namespace mca2a::topo {

Machine dane(int nodes) {
  MachineDesc d;
  d.name = "dane";
  d.nodes = nodes;
  d.sockets_per_node = 2;
  d.numa_per_socket = 4;
  d.cores_per_numa = 14;
  return Machine(d);
}

Machine amber(int nodes) {
  MachineDesc d;
  d.name = "amber";
  d.nodes = nodes;
  d.sockets_per_node = 2;
  d.numa_per_socket = 4;
  d.cores_per_numa = 14;
  return Machine(d);
}

Machine tuolomne(int nodes) {
  MachineDesc d;
  d.name = "tuolomne";
  d.nodes = nodes;
  d.sockets_per_node = 4;
  d.numa_per_socket = 1;
  d.cores_per_numa = 24;
  return Machine(d);
}

Machine generic(int nodes, int ppn) {
  MachineDesc d;
  d.name = "generic";
  d.nodes = nodes;
  d.sockets_per_node = 1;
  d.numa_per_socket = 1;
  d.cores_per_numa = ppn;
  return Machine(d);
}

Machine generic_hier(int nodes, int sockets_per_node, int numa_per_socket,
                     int cores_per_numa) {
  MachineDesc d;
  d.name = "generic-hier";
  d.nodes = nodes;
  d.sockets_per_node = sockets_per_node;
  d.numa_per_socket = numa_per_socket;
  d.cores_per_numa = cores_per_numa;
  return Machine(d);
}

Machine by_name(const std::string& name, int nodes) {
  if (name == "dane") return dane(nodes);
  if (name == "amber") return amber(nodes);
  if (name == "tuolomne") return tuolomne(nodes);
  throw std::invalid_argument("unknown machine preset: " + name);
}

}  // namespace mca2a::topo
