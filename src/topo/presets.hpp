#pragma once
/// \file presets.hpp
/// Machine presets matching Table 1 of the paper.
///
///  * Dane (LLNL) and Amber (SNL): Intel Sapphire Rapids, 112 cores per node
///    as 2 sockets x 4 NUMA domains x 14 cores, Cornelis Omni-Path network.
///  * Tuolomne (LLNL): AMD Instinct MI300A, 96 cores per node as 4 APU
///    sockets x 24 cores, HPE Slingshot-11 network.
///  * generic(): small configurable machines for tests and examples.

#include "topo/machine.hpp"

namespace mca2a::topo {

/// LLNL Dane: Sapphire Rapids, 112 cores/node (2 sockets, 4 NUMA each).
Machine dane(int nodes);
/// SNL Amber: same node architecture as Dane.
Machine amber(int nodes);
/// LLNL Tuolomne: MI300A, 96 cores/node (4 sockets, 1 NUMA each).
Machine tuolomne(int nodes);

/// Flat generic machine: `nodes` nodes of `ppn` cores, one socket and one
/// NUMA domain per node.
Machine generic(int nodes, int ppn);

/// Generic hierarchical machine for tests that need all locality levels.
Machine generic_hier(int nodes, int sockets_per_node, int numa_per_socket,
                     int cores_per_numa);

/// Look up a preset by name ("dane", "amber", "tuolomne"); throws
/// std::invalid_argument for unknown names.
Machine by_name(const std::string& name, int nodes);

}  // namespace mca2a::topo
