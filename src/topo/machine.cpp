#include "topo/machine.hpp"

namespace mca2a::topo {

const char* to_string(Level level) {
  switch (level) {
    case Level::kSelf:
      return "self";
    case Level::kNuma:
      return "numa";
    case Level::kSocket:
      return "socket";
    case Level::kNode:
      return "node";
    case Level::kNetwork:
      return "network";
  }
  return "?";
}

Machine::Machine(MachineDesc desc) : desc_(std::move(desc)) {
  if (desc_.nodes < 1 || desc_.sockets_per_node < 1 ||
      desc_.numa_per_socket < 1 || desc_.cores_per_numa < 1) {
    throw std::invalid_argument("MachineDesc: all extents must be >= 1");
  }
  ppn_ = desc_.cores_per_node();
}

int Machine::world_rank(int node, int local) const {
  if (node < 0 || node >= desc_.nodes || local < 0 || local >= ppn_) {
    throw std::out_of_range("Machine::world_rank out of range");
  }
  return node * ppn_ + local;
}

Level Machine::level(int a, int b) const {
  check(a);
  check(b);
  if (a == b) {
    return Level::kSelf;
  }
  if (node_of(a) != node_of(b)) {
    return Level::kNetwork;
  }
  if (socket_of(a) != socket_of(b)) {
    return Level::kNode;
  }
  if (numa_of(a) != numa_of(b)) {
    return Level::kSocket;
  }
  return Level::kNuma;
}

int Machine::groups_per_node(int group_size) const {
  if (group_size < 1 || ppn_ % group_size != 0) {
    throw std::invalid_argument(
        "Machine: group size must be >= 1 and divide processes-per-node (" +
        std::to_string(ppn_) + "), got " + std::to_string(group_size));
  }
  return ppn_ / group_size;
}

int Machine::group_of(int rank, int group_size) const {
  groups_per_node(group_size);  // validate
  return local_rank(rank) / group_size;
}

int Machine::group_local(int rank, int group_size) const {
  groups_per_node(group_size);  // validate
  return local_rank(rank) % group_size;
}

}  // namespace mca2a::topo
