#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace mca2a::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_sockaddr(const std::string& host, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (host.empty()) {
    sa.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    const std::string ip = resolve_ipv4(host);
    if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1) {
      throw std::runtime_error("net: cannot parse address " + host);
    }
  }
  return sa;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Address parse_address(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    throw std::invalid_argument("net: expected host:port, got '" + s + "'");
  }
  Address a;
  a.host = s.substr(0, colon);
  const long p = std::strtol(s.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) {
    throw std::invalid_argument("net: bad port in '" + s + "'");
  }
  a.port = static_cast<std::uint16_t>(p);
  return a;
}

std::string resolve_ipv4(const std::string& host) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    throw std::runtime_error("net: cannot resolve host " + host);
  }
  char buf[INET_ADDRSTRLEN] = {};
  const auto* sa = reinterpret_cast<const sockaddr_in*>(res->ai_addr);
  ::inet_ntop(AF_INET, &sa->sin_addr, buf, sizeof(buf));
  ::freeaddrinfo(res);
  return buf;
}

std::pair<Fd, std::uint16_t> listen_tcp(const std::string& host,
                                        std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw_errno("net: socket");
  }
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = make_sockaddr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw_errno("net: bind");
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw_errno("net: listen");
  }
  return {std::move(fd), local_address(fd.get()).port};
}

Fd connect_tcp(const Address& addr, double timeout_s) {
  const sockaddr_in sa = make_sockaddr(addr.host, addr.port);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      throw_errno("net: socket");
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                  sizeof(sa)) == 0) {
      set_nodelay(fd.get());
      return fd;
    }
    // The peer's listener (typically the rendezvous root) may simply not
    // be up yet; back off briefly and retry until the deadline.
    if ((errno != ECONNREFUSED && errno != ETIMEDOUT && errno != EINTR) ||
        std::chrono::steady_clock::now() >= deadline) {
      throw std::system_error(errno, std::generic_category(),
                              "net: connect to " + addr.host + ":" +
                                  std::to_string(addr.port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Fd accept_tcp(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Fd(fd);
    }
    if (errno != EINTR) {
      throw_errno("net: accept");
    }
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("net: fcntl O_NONBLOCK");
  }
}

void write_all(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that died mid-exchange must surface as EPIPE,
    // never as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("net: write");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void read_all(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n == 0) {
      throw std::runtime_error("net: unexpected EOF");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("net: read");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

Address local_address(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_errno("net: getsockname");
  }
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf));
  return Address{buf, ntohs(sa.sin_port)};
}

}  // namespace mca2a::net
