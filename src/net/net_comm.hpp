#pragma once
/// \file net_comm.hpp
/// rt::Comm over real TCP sockets: the third backend.
///
/// Where the simulator models a cluster inside one process and the smp
/// backend runs ranks as threads of one process, the net backend runs each
/// rank as its *own process*, connected to every peer by a mesh of TCP
/// connections (net/endpoint.hpp). A rank program built against rt::Comm
/// runs unchanged: `tools/a2arun -n 8 ./prog` launches eight processes,
/// each of which calls net::process_world() to join the job described by
/// its A2A_NET_* environment and gets back the world communicator.
///
/// The backend is blocking in the smp sense: wait_try drives the progress
/// engine until the requests complete and returns true; wait_suspend (a
/// simulator facility) throws. now() is this process's wall clock, so
/// autotune profiles recorded under backend "net" are real end-to-end
/// socket measurements and never pool with sim or smp samples.

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "net/endpoint.hpp"
#include "runtime/comm.hpp"

namespace mca2a::obs {
class MetricsAggregator;
}  // namespace mca2a::obs

namespace mca2a::net {

class NetComm final : public rt::Comm {
 public:
  /// World communicator: bootstrap the mesh described by `opts` (blocking;
  /// every process of the job must call this concurrently).
  static std::unique_ptr<NetComm> connect_world(NetOptions opts);
  /// World communicator from the A2A_NET_* environment (what a process
  /// launched by tools/a2arun calls first).
  static std::unique_ptr<NetComm> process_world();

  ~NetComm() override;

  rt::Request isend(rt::ConstView buf, int dst, int tag) override;
  rt::Request irecv(rt::MutView buf, int src, int tag) override;
  bool wait_try(std::span<const rt::Request> reqs) override;
  [[noreturn]] void wait_suspend(std::span<const rt::Request> reqs,
                                 std::coroutine_handle<> h) override;
  double now() const override;
  std::string_view backend_name() const noexcept override { return "net"; }
  rt::Buffer alloc_buffer(std::size_t bytes) const override;
  void charge_copy(std::size_t /*bytes*/) override {}  // wall time is real
  std::unique_ptr<rt::Comm> create_subcomm(
      std::span<const int> members) override;
  obs::TraceBuffer* tracer() const noexcept override;

  /// The endpoint shared by this communicator tree (test access).
  Endpoint& endpoint() noexcept { return *ep_; }

  /// Orderly leave: kBye handshake, drain, close every socket. Implied by
  /// destroying the world communicator; explicit calls are idempotent.
  void shutdown() noexcept;

 private:
  NetComm(std::shared_ptr<Endpoint> ep, std::uint64_t comm_key,
          std::vector<int> members, int rank);

  /// World teardown under A2A_CLUSTER_METRICS: gather every rank's metric
  /// deltas over a fresh subcomm; rank 0 writes the combined JSON.
  void aggregate_cluster_metrics();

  std::shared_ptr<Endpoint> ep_;  ///< shared with every subcomm
  std::uint64_t comm_key_;
  std::vector<int> members_;  ///< comm rank -> world rank
  bool is_world_;
  /// Armed by connect_world when A2A_CLUSTER_METRICS names an output file;
  /// its construction (before the endpoint's) opens the metrics epoch.
  std::unique_ptr<obs::MetricsAggregator> cluster_agg_;
};

}  // namespace mca2a::net
