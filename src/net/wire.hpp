#pragma once
/// \file wire.hpp
/// Wire framing for the real-network (TCP) backend.
///
/// Every byte on a data connection is a sequence of fixed-size frame
/// headers, each optionally followed by `bytes` of payload. Frames carry
/// the library's existing tag-stream tags (runtime/tags.hpp) plus a
/// communicator key, so concurrent collectives and overlapping
/// sub-communicators keep their never-cross-match guarantee over a real
/// wire exactly as they do in-process.
///
/// Protocol summary (docs/networking.md has the full walkthrough):
///  * kHello  — first frame on every connection; binds it to (peer, rail).
///  * kEager  — small message: header + payload, matched on arrival.
///  * kRts    — rendezvous request for a large message (no payload).
///  * kCts    — receiver's clear-to-send, echoing the sender's op token
///              and assigning a receiver token.
///  * kData   — rendezvous body chunk: written straight into the user
///              buffer at `offset`; chunks of one message may arrive on
///              different rails in any order.
///  * kBye    — orderly shutdown marker; an EOF *without* a preceding Bye
///              means the peer died mid-run and pending operations error
///              out instead of hanging.
///  * kPing   — clock-calibration probe toward rank 0 (token = probe id);
///              served reactively whenever the reference rank progresses.
///  * kPong   — rank 0's reply: token echoed, token2 = rank-0 clock in
///              integer nanoseconds at service time (obs/clock_sync.hpp).
///
/// All integers are little-endian on the wire. The header is 48 bytes; a
/// magic nibble in the kind word catches stream desynchronization early.

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace mca2a::net {

enum class FrameKind : std::uint32_t {
  kHello = 1,
  kEager = 2,
  kRts = 3,
  kCts = 4,
  kData = 5,
  kBye = 6,
  kPing = 7,
  kPong = 8,
};

/// Magic prefix in the kind word (high 20 bits) so a desynchronized or
/// corrupted stream fails decode() instead of silently misrouting bytes.
inline constexpr std::uint32_t kFrameMagic = 0xA2A00000u;
inline constexpr std::uint32_t kKindMask = 0xFFFu;

/// Decoded frame header. Field meaning by kind:
///   kHello: src = sender's world rank, rail = rail index.
///   kEager: comm_key/src/tag identify the match; bytes of payload follow.
///   kRts:   as kEager but no payload; bytes = total message size,
///           token = sender-side op id.
///   kCts:   token = echoed sender op id, token2 = receiver-assigned token.
///   kData:  token = receiver token, token2 = offset into the user buffer,
///           bytes of payload follow.
///   kBye:   no other fields.
///   kPing:  token = probe id.
///   kPong:  token = echoed probe id, token2 = serving rank's clock in ns.
struct FrameHeader {
  FrameKind kind = FrameKind::kBye;
  std::int32_t tag = 0;
  std::uint64_t comm_key = 0;
  std::int32_t src = 0;
  std::uint32_t rail = 0;
  std::uint64_t bytes = 0;
  std::uint64_t token = 0;
  std::uint64_t token2 = 0;
};

inline constexpr std::size_t kHeaderBytes = 48;

namespace detail {
inline void store32(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}
inline void store64(std::byte* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}
inline std::uint32_t load32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}
inline std::uint64_t load64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}
}  // namespace detail

/// Serialize `h` into exactly kHeaderBytes at `out`.
inline void encode(const FrameHeader& h, std::byte* out) noexcept {
  detail::store32(out + 0, kFrameMagic | static_cast<std::uint32_t>(h.kind));
  detail::store32(out + 4, static_cast<std::uint32_t>(h.tag));
  detail::store64(out + 8, h.comm_key);
  detail::store32(out + 16, static_cast<std::uint32_t>(h.src));
  detail::store32(out + 20, h.rail);
  detail::store64(out + 24, h.bytes);
  detail::store64(out + 32, h.token);
  detail::store64(out + 40, h.token2);
}

/// Parse kHeaderBytes at `in`. Throws std::runtime_error on a bad magic or
/// unknown kind — the stream is unrecoverable at that point.
inline FrameHeader decode(const std::byte* in) {
  const std::uint32_t kind_word = detail::load32(in + 0);
  if ((kind_word & ~kKindMask) != kFrameMagic) {
    throw std::runtime_error("net: bad frame magic (stream desynchronized)");
  }
  const std::uint32_t k = kind_word & kKindMask;
  if (k < static_cast<std::uint32_t>(FrameKind::kHello) ||
      k > static_cast<std::uint32_t>(FrameKind::kPong)) {
    throw std::runtime_error("net: unknown frame kind");
  }
  FrameHeader h;
  h.kind = static_cast<FrameKind>(k);
  h.tag = static_cast<std::int32_t>(detail::load32(in + 4));
  h.comm_key = detail::load64(in + 8);
  h.src = static_cast<std::int32_t>(detail::load32(in + 16));
  h.rail = detail::load32(in + 20);
  h.bytes = detail::load64(in + 24);
  h.token = detail::load64(in + 32);
  h.token2 = detail::load64(in + 40);
  return h;
}

}  // namespace mca2a::net
