#include "net/net_comm.hpp"

#include <numeric>
#include <stdexcept>

#include "obs/aggregate.hpp"
#include "obs/trace.hpp"
#include "runtime/env.hpp"

namespace mca2a::net {

std::unique_ptr<NetComm> NetComm::connect_world(NetOptions opts) {
  // Cluster metrics epoch opens BEFORE the endpoint exists, so the
  // bootstrap's own counters (net.bootstrap_micros, net.connections)
  // are part of the aggregated delta.
  std::unique_ptr<obs::MetricsAggregator> agg;
  if (rt::env::get_string("A2A_CLUSTER_METRICS")) {
    agg = std::make_unique<obs::MetricsAggregator>();
  }
  auto ep = std::make_shared<Endpoint>(std::move(opts));
  std::vector<int> members(static_cast<std::size_t>(ep->world_size()));
  std::iota(members.begin(), members.end(), 0);
  const std::uint64_t key = ep->intern_comm(members);
  const int rank = ep->world_rank();
  auto comm = std::unique_ptr<NetComm>(
      new NetComm(std::move(ep), key, std::move(members), rank));
  comm->is_world_ = true;
  comm->cluster_agg_ = std::move(agg);
  return comm;
}

std::unique_ptr<NetComm> NetComm::process_world() {
  return connect_world(options_from_env());
}

NetComm::NetComm(std::shared_ptr<Endpoint> ep, std::uint64_t comm_key,
                 std::vector<int> members, int rank)
    : rt::Comm(rank, static_cast<int>(members.size())),
      ep_(std::move(ep)),
      comm_key_(comm_key),
      members_(std::move(members)),
      is_world_(false) {}

NetComm::~NetComm() {
  if (is_world_) {
    // Order matters: (1) the aggregation needs the mesh still up, (2) the
    // kBye handshake ends all traffic, (3) flushing the env-configured
    // writers here — not at atexit — guarantees this rank's trace and
    // metrics files are complete on disk even when the world lives in a
    // process-global static whose destructor interleaves with other
    // exit-time machinery. The atexit hooks then rewrite identical files.
    if (cluster_agg_ != nullptr) {
      try {
        aggregate_cluster_metrics();
      } catch (...) {
        // Teardown context: a failed aggregation (peer died mid-run) must
        // not turn a clean exit path into a terminate().
      }
    }
    ep_->shutdown();
    obs::flush_env_writers();
  }
}

void NetComm::aggregate_cluster_metrics() {
  std::vector<int> all(static_cast<std::size_t>(size_));
  std::iota(all.begin(), all.end(), 0);
  // Fresh subcomm = fresh comm key: the aggregation's fixed tags cannot
  // collide with any application traffic, even unconsumed leftovers.
  const std::unique_ptr<rt::Comm> sub = create_subcomm(all);
  const obs::ClusterMetrics cm = cluster_agg_->reduce(*sub);
  if (rank_ == 0) {
    if (const auto path = rt::env::get_string("A2A_CLUSTER_METRICS")) {
      obs::MetricsAggregator::write_json_file(cm, *path);
    }
  }
}

void NetComm::shutdown() noexcept { ep_->shutdown(); }

rt::Request NetComm::isend(rt::ConstView buf, int dst, int tag) {
  if (dst < 0 || dst >= size_) {
    throw std::invalid_argument("net: isend destination out of range");
  }
  return ep_->post_send(comm_key_, members_, rank_, dst, tag, buf);
}

rt::Request NetComm::irecv(rt::MutView buf, int src, int tag) {
  if (src != rt::kAnySource && (src < 0 || src >= size_)) {
    throw std::invalid_argument("net: irecv source out of range");
  }
  return ep_->post_recv(comm_key_, members_, src, tag, buf);
}

bool NetComm::wait_try(std::span<const rt::Request> reqs) {
  ep_->wait(reqs);
  return true;  // blocking backend: complete on return, like smp
}

void NetComm::wait_suspend(std::span<const rt::Request>,
                           std::coroutine_handle<>) {
  throw std::logic_error(
      "net: wait_suspend is a simulator facility; the TCP backend blocks "
      "in wait_try");
}

double NetComm::now() const { return ep_->now(); }

rt::Buffer NetComm::alloc_buffer(std::size_t bytes) const {
  return rt::Buffer::real(bytes);  // sockets move real bytes, always
}

obs::TraceBuffer* NetComm::tracer() const noexcept { return ep_->tracer(); }

std::unique_ptr<rt::Comm> NetComm::create_subcomm(
    std::span<const int> members) {
  std::vector<int> world;
  world.reserve(members.size());
  int my_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int m = members[i];
    if (m < 0 || m >= size_) {
      throw std::invalid_argument("net: subcomm member out of range");
    }
    if (m == rank_) {
      my_rank = static_cast<int>(i);
    }
    world.push_back(members_[static_cast<std::size_t>(m)]);
  }
  if (my_rank < 0) {
    throw std::invalid_argument(
        "net: create_subcomm members must include the calling rank");
  }
  const std::uint64_t key = ep_->intern_comm(world);
  return std::unique_ptr<rt::Comm>(
      new NetComm(ep_, key, std::move(world), my_rank));
}

}  // namespace mca2a::net
