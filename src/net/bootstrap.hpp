#pragma once
/// \file bootstrap.hpp
/// Out-of-band bootstrap for the TCP backend.
///
/// Before any collective traffic can flow, every rank must learn where
/// every other rank listens. The scheme is the classic rendezvous-server
/// one (what `tools/a2arun` arranges):
///
///  1. Every rank opens one data listener per configured local interface
///     (A2A_NET_IFACE, comma-separated; one INADDR_ANY listener otherwise)
///     on an ephemeral port.
///  2. Rank 0 listens on the rendezvous address (A2A_NET_REND=host:port).
///     Peers connect to it and send a registration line
///     `a2a-reg <rank> <naddr> <ip> <port> [<ip> <port> ...]`.
///  3. Once all `size` registrations are in (rank 0 adds its own locally),
///     rank 0 replies to every peer with the full table and closes the
///     connection. The exchange is newline-delimited text — trivially
///     debuggable with `nc`.
///  4. Each rank then opens `rails` TCP connections to every lower-ranked
///     peer (rail k targets the peer's address k mod naddr — distinct
///     NICs when the peer advertised several, parallel streams otherwise)
///     and accepts the corresponding connections from higher-ranked
///     peers. Because every listener exists before any table is
///     published, the connect phase never needs the accept phase of the
///     same rank to be running: lower ranks' listen backlogs absorb the
///     SYNs, so "connect to all lower, then accept from all higher" is
///     deadlock-free.

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace mca2a::net {

/// Backend configuration, usually parsed from the environment the
/// launcher sets (options_from_env); tests fill it directly.
struct NetOptions {
  int rank = -1;
  int size = 0;
  Address rendezvous;           ///< rank 0 binds it, everyone else connects
  /// Rank 0 only: an already-bound, already-listening rendezvous socket
  /// inherited from the launcher (A2A_NET_REND_FD). Launchers that pick an
  /// ephemeral port keep the listener open and pass it down so the port
  /// cannot be claimed by another process between pick and bind; -1 means
  /// rank 0 binds `rendezvous` itself. rendezvous_exchange takes ownership.
  int rendezvous_fd = -1;
  int rails = 2;                ///< connections per peer pair (A2A_NET_RAILS)
  std::size_t eager_max = 16 * 1024;    ///< eager/rendezvous switch (bytes)
  std::size_t stripe_min = 256 * 1024;  ///< stripe-across-rails threshold
  std::vector<std::string> ifaces;      ///< local addresses to bind/advertise
  double timeout_s = 60.0;              ///< bootstrap + shutdown deadline

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

/// Parse A2A_NET_RANK / A2A_NET_SIZE / A2A_NET_REND / A2A_NET_REND_FD /
/// A2A_NET_RAILS / A2A_NET_EAGER / A2A_NET_STRIPE / A2A_NET_IFACE /
/// A2A_NET_TIMEOUT.
/// Throws std::runtime_error when the three mandatory variables are
/// missing (i.e. the process was not started by a launcher).
NetOptions options_from_env();
/// True when A2A_NET_RANK is present (cheap "was I launched?" probe).
bool env_configured() noexcept;

/// One rank's advertised data listeners.
struct PeerInfo {
  int rank = -1;
  std::vector<Address> addrs;
};

/// Run the rendezvous exchange: rank 0 serves, everyone else registers.
/// `self` describes this rank's listeners. Returns the table indexed by
/// rank. Blocking; throws on timeout, duplicate ranks or protocol errors.
std::vector<PeerInfo> rendezvous_exchange(const NetOptions& opts,
                                          const PeerInfo& self);

}  // namespace mca2a::net
