#include "net/endpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/env.hpp"

namespace mca2a::net {

namespace {

/// Discard sink for payload bytes beyond a truncated receive buffer: the
/// stream must stay framed even when the application posted too little.
std::byte* thrash_buffer(std::size_t& cap) {
  static thread_local std::vector<std::byte> thrash(64 * 1024);
  cap = thrash.size();
  return thrash.data();
}

/// Truncation diagnostic: enough context to identify the offending message
/// (matching site, comm-rank source, tag, sizes) from the thrown error.
std::string trunc_msg(const char* site, int src, int tag, std::uint64_t bytes,
                      std::size_t buf_len) {
  return "message truncation: receive buffer smaller than incoming message (" +
         std::string(site) + ": src " + std::to_string(src) + " tag " +
         std::to_string(tag) + ", " + std::to_string(bytes) + " B into " +
         std::to_string(buf_len) + " B)";
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Local IPv4 this host would use to reach `toward` (the classic
/// UDP-connect trick; no packet is sent).
std::string route_source_ip(const Address& toward) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) {
    return "127.0.0.1";
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(toward.port == 0 ? 9 : toward.port);
  const std::string ip = resolve_ipv4(toward.host);
  if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1 ||
      ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
          0) {
    return "127.0.0.1";
  }
  return local_address(fd.get()).host;
}

}  // namespace

Endpoint::Endpoint(NetOptions opts)
    : opts_(std::move(opts)), epoch_(std::chrono::steady_clock::now()) {
  opts_.validate();
  epoll_ = Fd(::epoll_create1(0));
  if (!epoll_.valid()) {
    throw std::runtime_error("net: epoll_create1 failed");
  }

  // Observability: per-rail counters registered once; one flight-recorder
  // stream for this process's rank (wall-clock domain).
  obs::MetricsRegistry& reg = obs::metrics();
  for (int r = 0; r < opts_.rails; ++r) {
    const std::string base = "net.rail." + std::to_string(r) + ".";
    rail_tx_.push_back(&reg.counter(base + "tx_bytes"));
    rail_rx_.push_back(&reg.counter(base + "rx_bytes"));
    rail_retry_.push_back(&reg.counter(base + "tx_retries"));
  }
  frames_tx_ = &reg.counter("net.frames_tx");
  frames_rx_ = &reg.counter("net.frames_rx");
  eager_tx_ = &reg.counter("net.eager_tx");
  rndv_tx_ = &reg.counter("net.rndv_tx");
  if (obs::TraceRecorder* rec = obs::active_recorder()) {
    trace_rec_ = rec;
    trace_session_ = rec->begin_session("net");
    tracer_ = rec->open_stream(trace_session_, opts_.rank);
    tracer_->set_clock([this] { return now(); });
    tracer_->set_world_rank(opts_.rank);
    sync_period_s_ =
        rt::env::get_double("A2A_TRACE_SYNC", 0.0, 0.0, 86400.0);
  }

  build_mesh();
}

Endpoint::~Endpoint() {
  shutdown();
  if (trace_rec_ != nullptr) {
    trace_rec_->end_session(trace_session_);
    // The clock lambda captures `this`; unbind it so nothing dangling
    // survives into the exit-time writers.
    tracer_->set_clock({});
  }
}

double Endpoint::now() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(d).count();
}

// --- bootstrap ---------------------------------------------------------------

void Endpoint::build_mesh() {
  const double t_start = now();
  obs::Span bootstrap_sp(tracer_, "net.bootstrap", "net", 0,
                         {{"ranks", opts_.size}, {"rails", opts_.rails}});
  peers_.resize(static_cast<std::size_t>(opts_.size));
  for (Peer& p : peers_) {
    p.conns.assign(static_cast<std::size_t>(opts_.rails), -1);
  }
  if (opts_.size == 1) {
    Fd{opts_.rendezvous_fd};  // consume an inherited listener, if any
    opts_.rendezvous_fd = -1;
    return;  // all traffic is self-delivery
  }

  // Data listeners: one per configured interface, or one wildcard
  // listener advertised as the address this host uses to reach the
  // rendezvous server.
  PeerInfo self;
  self.rank = opts_.rank;
  const int backlog = std::max(64, opts_.size * opts_.rails + 8);
  {
    obs::Span sp(tracer_, "net.listen", "net", 0);
    if (opts_.ifaces.empty()) {
      auto [fd, port] = listen_tcp("", 0, backlog);
      listeners_.push_back(std::move(fd));
      self.addrs.push_back(Address{route_source_ip(opts_.rendezvous), port});
    } else {
      for (const std::string& iface : opts_.ifaces) {
        const std::string ip = resolve_ipv4(iface);
        auto [fd, port] = listen_tcp(ip, 0, backlog);
        listeners_.push_back(std::move(fd));
        self.addrs.push_back(Address{ip, port});
      }
    }
  }

  std::vector<PeerInfo> table;
  {
    // Register with the rendezvous server and block for the full table —
    // the startup phase that scales with job size and server placement.
    obs::Span sp(tracer_, "net.rendezvous", "net", 0,
                 {{"ranks", opts_.size}});
    table = rendezvous_exchange(opts_, self);
  }
  opts_.rendezvous_fd = -1;  // rendezvous_exchange owned and closed it

  // Connect to every lower-ranked peer (all rails), then accept from every
  // higher-ranked one. Every listener already existed before the table was
  // published, so the connect phase completes against listen backlogs and
  // the strict connect-then-accept order cannot deadlock.
  for (int q = 0; q < opts_.rank; ++q) {
    const PeerInfo& peer = table[static_cast<std::size_t>(q)];
    if (peer.addrs.empty()) {
      throw std::runtime_error("net: rank " + std::to_string(q) +
                               " missing from rendezvous table");
    }
    obs::Span sp(tracer_, "net.connect", "net", 0,
                 {{"peer", q}, {"rails", opts_.rails}});
    for (int r = 0; r < opts_.rails; ++r) {
      const Address& a = peer.addrs[static_cast<std::size_t>(r) %
                                    peer.addrs.size()];
      Fd fd = connect_tcp(a, opts_.timeout_s);
      FrameHeader hello;
      hello.kind = FrameKind::kHello;
      hello.src = opts_.rank;
      hello.rail = static_cast<std::uint32_t>(r);
      std::byte hdr[kHeaderBytes];
      encode(hello, hdr);
      write_all(fd.get(), hdr, kHeaderBytes);
      register_conn(std::move(fd), q, r);
    }
  }

  int expected = (opts_.size - 1 - opts_.rank) * opts_.rails;
  obs::Span accept_sp(tracer_, "net.accept", "net", 0,
                      {{"expected", expected}});
  std::vector<pollfd> pfds;
  for (const Fd& l : listeners_) {
    pfds.push_back(pollfd{l.get(), POLLIN, 0});
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opts_.timeout_s);
  while (expected > 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("net: timed out accepting peer connections");
    }
    const int n = ::poll(pfds.data(), pfds.size(), 200);
    if (n < 0 && errno != EINTR) {
      throw std::runtime_error("net: poll failed during bootstrap");
    }
    for (pollfd& p : pfds) {
      if ((p.revents & POLLIN) == 0) {
        continue;
      }
      Fd fd = accept_tcp(p.fd);
      std::byte hdr[kHeaderBytes];
      read_all(fd.get(), hdr, kHeaderBytes);
      const FrameHeader h = decode(hdr);
      if (h.kind != FrameKind::kHello || h.src <= opts_.rank ||
          h.src >= opts_.size ||
          h.rail >= static_cast<std::uint32_t>(opts_.rails)) {
        throw std::runtime_error("net: bad hello during bootstrap");
      }
      if (peers_[static_cast<std::size_t>(h.src)]
              .conns[static_cast<std::size_t>(h.rail)] != -1) {
        throw std::runtime_error("net: duplicate rail connection");
      }
      register_conn(std::move(fd), h.src, static_cast<int>(h.rail));
      --expected;
    }
  }
  accept_sp.close();
  listeners_.clear();  // the mesh is complete; nobody else will connect
  obs::metrics().counter("net.connections").add(conns_.size());

  // Clock calibration against rank 0 rides the freshly built mesh; only
  // meaningful (and only paid for) when the flight recorder is on.
  if (tracer_ != nullptr) {
    run_calibration();
  }
  bootstrap_sp.close();
  obs::metrics()
      .counter("net.bootstrap_micros")
      .add(static_cast<std::uint64_t>((now() - t_start) * 1e6));
}

void Endpoint::run_calibration() {
  last_sync_s_ = now();
  if (opts_.size <= 1 || opts_.rank == 0 || fatal_ || shut_down_) {
    return;
  }
  Peer& ref = peers_[0];
  if (ref.dead || ref.bye_seen || ref.finished) {
    return;
  }
  obs::Span sp(tracer_, "net.calibrate", "net", 0);
  constexpr int kProbes = 16;
  std::vector<obs::ProbeSample> samples;
  samples.reserve(kProbes);
  // Rank 0 serves pings reactively whenever it progresses (a wait, a
  // shutdown drain), so a probe answers as soon as the reference rank
  // touches the engine. If it never does — it exited, or sits in compute —
  // bail at the deadline and keep the previous calibration.
  const double deadline = now() + std::min(2.0, opts_.timeout_s);
  for (int i = 0; i < kProbes; ++i) {
    FrameHeader ping;
    ping.kind = FrameKind::kPing;
    ping.token = ++ping_token_;
    pong_pending_ = true;
    const double t_send = now();
    enqueue(ref.conns[0], ping, rt::ConstView{}, {}, UINT32_MAX);
    while (pong_pending_) {
      if (fatal_ || ref.dead || ref.bye_seen || now() >= deadline) {
        pong_pending_ = false;
        return;
      }
      progress(1);
    }
    samples.push_back(obs::ProbeSample{t_send, pong_remote_s_, now()});
  }
  const obs::ClockCalibration round = obs::estimate_offset(samples);
  if (!round.valid) {
    return;
  }
  calib_rounds_.push_back(round);
  tracer_->set_calibration(obs::fit_drift(calib_rounds_));
}

std::uint64_t Endpoint::next_tx_flow(std::uint64_t comm_key, int dst_world,
                                     int tag) {
  if (tracer_ == nullptr) {
    return 0;
  }
  const std::uint64_t seq = flow_tx_seq_[{comm_key, dst_world, tag}]++;
  return obs::flow_id(comm_key, opts_.rank, dst_world, tag, seq);
}

std::uint64_t Endpoint::next_rx_flow(std::uint64_t comm_key, int src_world,
                                     int tag) {
  if (tracer_ == nullptr) {
    return 0;
  }
  const std::uint64_t seq = flow_rx_seq_[{comm_key, src_world, tag}]++;
  return obs::flow_id(comm_key, src_world, opts_.rank, tag, seq);
}

int Endpoint::register_conn(Fd fd, int peer, int rail) {
  set_nonblocking(fd.get());
  const int ci = static_cast<int>(conns_.size());
  Conn& c = conns_.emplace_back();
  c.fd = std::move(fd);
  c.peer = peer;
  c.rail = rail;
  c.open = true;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = static_cast<std::uint32_t>(ci);
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, c.fd.get(), &ev) != 0) {
    throw std::runtime_error("net: epoll_ctl ADD failed");
  }
  peers_[static_cast<std::size_t>(peer)]
      .conns[static_cast<std::size_t>(rail)] = ci;
  return ci;
}

// --- op pool -----------------------------------------------------------------

std::uint32_t Endpoint::alloc_op() {
  std::uint32_t slot;
  if (!free_ops_.empty()) {
    slot = free_ops_.back();
    free_ops_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(ops_.size());
    ops_.emplace_back();
  }
  Op& op = ops_[slot];
  const std::uint32_t serial = op.serial;
  op = Op{};
  op.serial = serial;
  op.in_use = true;
  return slot;
}

Endpoint::Op& Endpoint::op_checked(const rt::Request& r) {
  if (r.slot >= ops_.size()) {
    throw std::logic_error("net: request refers to unknown operation");
  }
  Op& op = ops_[r.slot];
  if (!op.in_use || op.serial != r.serial) {
    throw std::logic_error("net: request already completed (stale)");
  }
  return op;
}

Endpoint::Conn& Endpoint::rail0(int peer) {
  return conns_[static_cast<std::size_t>(
      peers_[static_cast<std::size_t>(peer)].conns[0])];
}

Endpoint::CommState& Endpoint::comm_state(std::uint64_t key) {
  return comms_[key];
}

std::uint64_t Endpoint::intern_comm(std::span<const int> members) {
  std::vector<int> key(members.begin(), members.end());
  const std::uint32_t occurrence = comm_uses_[key]++;
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, static_cast<std::uint64_t>(key.size()));
  for (int m : key) {
    h = fnv1a(h, static_cast<std::uint64_t>(m));
  }
  return fnv1a(h, occurrence);
}

// --- posting -----------------------------------------------------------------

rt::Request Endpoint::post_send(std::uint64_t comm_key,
                                std::span<const int> members, int me,
                                int dst, int tag, rt::ConstView buf) {
  if (fatal_) {
    throw std::runtime_error(fatal_msg_);
  }
  if (buf.is_virtual()) {
    throw std::invalid_argument(
        "net: the TCP backend moves real bytes; virtual payloads are only "
        "meaningful on the simulator");
  }
  const int dst_world = members[static_cast<std::size_t>(dst)];
  if (dst_world == opts_.rank) {
    deliver_eager_local(comm_key, me, tag, buf);
    return rt::Request{};  // locally delivered: already complete
  }
  Peer& peer = peers_[static_cast<std::size_t>(dst_world)];
  if (peer.dead || peer.bye_seen || peer.finished) {
    throw std::runtime_error("net: send to rank " + std::to_string(dst_world) +
                             " which already shut down");
  }

  if (buf.len <= opts_.eager_max) {
    FrameHeader h;
    h.kind = FrameKind::kEager;
    h.tag = tag;
    h.comm_key = comm_key;
    h.src = me;
    h.bytes = buf.len;
    std::vector<std::byte> owned;
    if (buf.len > 0) {
      owned.assign(buf.ptr, buf.ptr + buf.len);
    }
    eager_tx_->add(1);
    const std::uint64_t flow =
        buf.len > 0 ? next_tx_flow(comm_key, dst_world, tag) : 0;
    enqueue(peer.conns[0], h, rt::ConstView{}, std::move(owned), UINT32_MAX,
            flow);
    return rt::Request{};  // buffered: complete on return
  }

  const std::uint32_t slot = alloc_op();
  Op& op = ops_[slot];
  op.kind = Op::Kind::kSend;
  op.sbuf = buf;
  op.dst_world = dst_world;
  // The RTS is the matching-relevant frame: draw the flow id now, emit the
  // arrow source later from the first data chunk's net.send span.
  op.flow_id = next_tx_flow(comm_key, dst_world, tag);
  FrameHeader h;
  h.kind = FrameKind::kRts;
  h.tag = tag;
  h.comm_key = comm_key;
  h.src = me;
  h.bytes = buf.len;
  h.token = slot;
  rndv_tx_->add(1);
  enqueue(peer.conns[0], h, rt::ConstView{}, {}, UINT32_MAX);
  return rt::Request{slot, op.serial};
}

rt::Request Endpoint::post_recv(std::uint64_t comm_key,
                                std::span<const int> members, int src,
                                int tag, rt::MutView buf) {
  if (fatal_) {
    throw std::runtime_error(fatal_msg_);
  }
  if (buf.is_virtual()) {
    throw std::invalid_argument("net: virtual receive buffer");
  }
  const std::uint32_t slot = alloc_op();
  Op& op = ops_[slot];
  op.kind = Op::Kind::kRecv;
  op.rbuf = buf;
  op.comm_key = comm_key;
  op.src = src;
  op.src_world =
      src == rt::kAnySource ? -1 : members[static_cast<std::size_t>(src)];
  op.tag = tag;

  CommState& cs = comm_state(comm_key);
  op.post_seq = cs.next_post_seq++;
  // Match the earliest eligible unexpected message (arrival order).
  for (auto it = cs.unexpected.begin(); it != cs.unexpected.end(); ++it) {
    const bool src_ok = src == rt::kAnySource || src == it->src;
    const bool tag_ok = tag == rt::kAnyTag || tag == it->tag;
    if (!src_ok || !tag_ok) {
      continue;
    }
    op.matched = true;
    if (it->rndv) {
      const int peer = it->peer_world;
      const std::uint64_t token = it->sender_token;
      const std::uint64_t bytes = it->bytes;
      const std::uint64_t flow = it->flow_id;
      cs.unexpected.erase(it);
      start_rndv_recv(slot, peer, token, bytes, flow);
    } else {
      op.received = std::min<std::size_t>(it->bytes, buf.len);
      if (it->bytes > buf.len) {
        op.error = true;
        op.error_msg = trunc_msg("unexpected", it->src, it->tag, it->bytes,
                                 buf.len);
      }
      if (op.received > 0) {
        std::memcpy(buf.ptr, it->payload.data(), op.received);
      }
      op.complete = true;
      cs.unexpected.erase(it);
    }
    return rt::Request{slot, op.serial};
  }
  // A receive from an already-departed peer can never match more than the
  // unexpected queue we just searched.
  if (op.src_world >= 0) {
    const Peer& peer = peers_[static_cast<std::size_t>(op.src_world)];
    if (op.src_world != opts_.rank && (peer.finished || peer.dead)) {
      op.complete = true;
      op.error = true;
      op.error_msg = "net: receive posted for rank " +
                     std::to_string(op.src_world) +
                     " which already shut down";
      return rt::Request{slot, op.serial};
    }
  }
  cs.posted.push_back(slot);
  return rt::Request{slot, op.serial};
}

void Endpoint::deliver_eager_local(std::uint64_t comm_key, int src, int tag,
                                   rt::ConstView payload) {
  CommState& cs = comm_state(comm_key);
  const std::uint32_t opid = match_posted(cs, src, tag);
  if (opid != UINT32_MAX) {
    Op& op = ops_[opid];
    op.received = std::min<std::size_t>(payload.len, op.rbuf.len);
    if (payload.len > op.rbuf.len) {
      op.error = true;
      op.error_msg = trunc_msg("self", src, tag, payload.len, op.rbuf.len);
    }
    if (op.received > 0) {
      std::memcpy(op.rbuf.ptr, payload.ptr, op.received);
    }
    op.complete = true;
    return;
  }
  Unexpected u;
  u.src = src;
  u.tag = tag;
  u.bytes = payload.len;
  if (payload.len > 0) {
    u.payload.assign(payload.ptr, payload.ptr + payload.len);
  }
  cs.unexpected.push_back(std::move(u));
}

std::uint32_t Endpoint::match_posted(CommState& cs, int src, int tag) {
  for (auto it = cs.posted.begin(); it != cs.posted.end(); ++it) {
    Op& op = ops_[*it];
    const bool src_ok = op.src == rt::kAnySource || op.src == src;
    const bool tag_ok = op.tag == rt::kAnyTag || op.tag == tag;
    if (src_ok && tag_ok) {
      const std::uint32_t id = *it;
      cs.posted.erase(it);
      ops_[id].matched = true;
      return id;
    }
  }
  return UINT32_MAX;
}

void Endpoint::start_rndv_recv(std::uint32_t recv_op, int peer_world,
                               std::uint64_t sender_token,
                               std::uint64_t bytes, std::uint64_t flow) {
  Op& op = ops_[recv_op];
  Peer& peer = peers_[static_cast<std::size_t>(peer_world)];
  if (peer.dead || peer.finished) {
    op.complete = true;
    op.error = true;
    op.error_msg = "net: rendezvous peer " + std::to_string(peer_world) +
                   " shut down before sending";
    return;
  }
  const std::uint64_t token = next_rndv_token_++;
  RndvRecv rr;
  rr.op = recv_op;
  rr.bytes = bytes;
  rr.remaining = bytes;
  rr.peer_world = peer_world;
  rr.flow_id = flow;
  rr.overflow = bytes > op.rbuf.len;
  rr.dest = rt::MutView{op.rbuf.ptr,
                        std::min<std::size_t>(bytes, op.rbuf.len)};
  op.received = rr.dest.len;
  if (rr.overflow) {
    op.error = true;
    op.error_msg = trunc_msg("rndv", op.src, op.tag, bytes, op.rbuf.len);
  }
  rndv_recvs_.emplace(token, rr);
  FrameHeader h;
  h.kind = FrameKind::kCts;
  h.token = sender_token;
  h.token2 = token;
  enqueue(peer.conns[0], h, rt::ConstView{}, {}, UINT32_MAX);
}

void Endpoint::send_data_frames(std::uint32_t send_op,
                                std::uint64_t recv_token) {
  Op& op = ops_[send_op];
  op.cts_seen = true;
  Peer& peer = peers_[static_cast<std::size_t>(op.dst_world)];
  const std::size_t bytes = op.sbuf.len;
  const int rails = opts_.rails;
  if (bytes >= opts_.stripe_min && rails > 1) {
    // Stripe: one contiguous chunk per rail, so a single large message
    // (the locality algorithms' aggregated leader exchange) drives every
    // connection of the pair at once.
    const std::size_t chunk =
        (bytes + static_cast<std::size_t>(rails) - 1) /
        static_cast<std::size_t>(rails);
    // Count the chunks BEFORE enqueueing: enqueue flushes synchronously,
    // and a frame that completes while frames_left undercounts would
    // complete (and release) the send operation with stripes still queued.
    op.frames_left = static_cast<std::uint32_t>((bytes + chunk - 1) / chunk);
    std::size_t off = 0;
    int rail = 0;
    while (off < bytes) {
      const std::size_t n = std::min(chunk, bytes - off);
      FrameHeader h;
      h.kind = FrameKind::kData;
      h.bytes = n;
      h.token = recv_token;
      h.token2 = off;
      enqueue(peer.conns[static_cast<std::size_t>(rail)], h,
              op.sbuf.sub(off, n), {}, send_op,
              off == 0 ? op.flow_id : 0);
      off += n;
      ++rail;
    }
  } else {
    const int rail = static_cast<int>(peer.next_rail++ %
                                      static_cast<std::uint64_t>(rails));
    FrameHeader h;
    h.kind = FrameKind::kData;
    h.bytes = bytes;
    h.token = recv_token;
    h.token2 = 0;
    op.frames_left = 1;
    enqueue(peer.conns[static_cast<std::size_t>(rail)], h, op.sbuf, {},
            send_op, op.flow_id);
  }
}

// --- waiting -----------------------------------------------------------------

void Endpoint::wait(std::span<const rt::Request> reqs) {
  // Periodic re-sync (A2A_TRACE_SYNC): refresh the clock calibration at
  // the first wait past the period — the engine is between frames here,
  // and the probes ride the same progress loop the wait is about to spin.
  if (tracer_ != nullptr && sync_period_s_ > 0.0 && opts_.rank != 0 &&
      !shut_down_ && !fatal_ && now() - last_sync_s_ >= sync_period_s_) {
    run_calibration();
  }
  drive_until(
      [&] {
        for (const rt::Request& r : reqs) {
          if (r.valid() && !op_checked(r).complete) {
            return false;
          }
        }
        return true;
      },
      "wait");
  bool failed = false;
  std::string msg;
  for (const rt::Request& r : reqs) {
    if (!r.valid()) {
      continue;
    }
    Op& op = op_checked(r);
    if (op.error && !failed) {
      failed = true;
      msg = op.error_msg;
    }
    ++op.serial;
    op.in_use = false;
    free_ops_.push_back(r.slot);
  }
  if (failed) {
    throw std::runtime_error(msg);
  }
}

void Endpoint::drive_until(const std::function<bool()>& done,
                           const char* what) {
  while (!done()) {
    if (fatal_) {
      throw std::runtime_error(fatal_msg_ + std::string(" (during ") + what +
                               ")");
    }
    progress(200);
  }
}

void Endpoint::progress(int timeout_ms) {
  epoll_event events[64];
  const int n =
      ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      return;
    }
    fatal_ = true;
    fatal_msg_ = "net: epoll_wait failed";
    return;
  }
  for (int i = 0; i < n; ++i) {
    const int ci = static_cast<int>(events[i].data.u32);
    if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
      handle_readable(ci);
    }
    if ((events[i].events & EPOLLOUT) != 0) {
      handle_writable(ci);
    }
  }
}

// --- receive path ------------------------------------------------------------

void Endpoint::handle_readable(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  while (c.open) {
    if (!c.rx_in_payload) {
      const std::size_t need = kHeaderBytes - c.rx_header_got;
      const ssize_t n =
          ::read(c.fd.get(), c.rx_header + c.rx_header_got, need);
      if (n == 0) {
        conn_lost(ci);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        if (errno == EINTR) {
          continue;
        }
        conn_lost(ci);
        return;
      }
      c.rx_header_got += static_cast<std::size_t>(n);
      if (c.rx_header_got == kHeaderBytes) {
        on_frame(ci);
      }
    } else {
      // Stream payload: into the matched destination while it lasts, into
      // the discard sink beyond it (truncated receives stay framed).
      const std::size_t total = c.rx_frame.bytes;
      std::size_t got = c.rx_payload_got;
      std::byte* dst;
      std::size_t cap;
      if (got < c.rx_dest.len) {
        dst = c.rx_dest.ptr + got;
        cap = c.rx_dest.len - got;
      } else {
        dst = thrash_buffer(cap);
      }
      const std::size_t want = std::min<std::size_t>(cap, total - got);
      const ssize_t n = ::read(c.fd.get(), dst, want);
      if (n == 0) {
        conn_lost(ci);
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return;
        }
        if (errno == EINTR) {
          continue;
        }
        conn_lost(ci);
        return;
      }
      c.rx_payload_got += static_cast<std::size_t>(n);
      rail_rx_[static_cast<std::size_t>(c.rail)]->add(
          static_cast<std::uint64_t>(n));
      if (c.rx_payload_got == total) {
        finish_rx(ci);
      }
    }
  }
}

void Endpoint::on_frame(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  FrameHeader h;
  try {
    h = decode(c.rx_header);
  } catch (const std::exception& e) {
    fatal_ = true;
    fatal_msg_ = std::string("net: ") + e.what();
    conn_lost(ci);
    return;
  }
  frames_rx_->add(1);
  c.rx_header_got = 0;
  c.rx_frame = h;
  c.rx_payload_got = 0;
  c.rx_dest = rt::MutView{};
  c.rx_recv_op = UINT32_MAX;
  c.rx_flow_id = 0;

  switch (h.kind) {
    case FrameKind::kHello: {
      fatal_ = true;
      fatal_msg_ = "net: unexpected hello after bootstrap";
      conn_lost(ci);
      return;
    }
    case FrameKind::kBye: {
      peers_[static_cast<std::size_t>(c.peer)].bye_seen = true;
      return;
    }
    case FrameKind::kEager: {
      CommState& cs = comm_state(h.comm_key);
      const std::uint32_t opid = match_posted(cs, h.src, h.tag);
      if (h.bytes == 0) {
        if (opid != UINT32_MAX) {
          Op& op = ops_[opid];
          op.received = 0;
          op.complete = true;
        } else {
          Unexpected u;
          u.src = h.src;
          u.tag = h.tag;
          cs.unexpected.push_back(std::move(u));
        }
        return;
      }
      if (opid != UINT32_MAX) {
        Op& op = ops_[opid];
        op.received = std::min<std::size_t>(h.bytes, op.rbuf.len);
        if (h.bytes > op.rbuf.len) {
          op.error = true;
          op.error_msg =
              trunc_msg("eager", h.src, h.tag, h.bytes, op.rbuf.len);
        }
        c.rx_dest = rt::MutView{op.rbuf.ptr, op.received};
        c.rx_recv_op = opid;
      } else {
        c.rx_owned.resize(h.bytes);
        c.rx_dest = rt::MutView{c.rx_owned.data(), h.bytes};
      }
      c.rx_in_payload = true;
      // Seq drawn at frame ARRIVAL, not match time: arrival order is what
      // the sender's counter mirrors (rail-0 FIFO), match order is not.
      c.rx_flow_id = next_rx_flow(h.comm_key, c.peer, h.tag);
      if (tracer_ != nullptr) {
        c.rx_span_open = tracer_->begin(
            "net.recv", "net", ci + 1,
            {{"bytes", static_cast<std::int64_t>(h.bytes)},
             {"peer", c.peer},
             {"rail", c.rail}});
      }
      return;
    }
    case FrameKind::kRts: {
      CommState& cs = comm_state(h.comm_key);
      const std::uint64_t flow = next_rx_flow(h.comm_key, c.peer, h.tag);
      const std::uint32_t opid = match_posted(cs, h.src, h.tag);
      if (opid != UINT32_MAX) {
        start_rndv_recv(opid, c.peer, h.token, h.bytes, flow);
      } else {
        Unexpected u;
        u.src = h.src;
        u.tag = h.tag;
        u.rndv = true;
        u.bytes = h.bytes;
        u.peer_world = c.peer;
        u.sender_token = h.token;
        u.flow_id = flow;
        cs.unexpected.push_back(std::move(u));
      }
      return;
    }
    case FrameKind::kCts: {
      if (h.token >= ops_.size() || !ops_[h.token].in_use ||
          ops_[h.token].kind != Op::Kind::kSend) {
        fatal_ = true;
        fatal_msg_ = "net: CTS for unknown send operation";
        return;
      }
      send_data_frames(static_cast<std::uint32_t>(h.token), h.token2);
      return;
    }
    case FrameKind::kData: {
      auto it = rndv_recvs_.find(h.token);
      if (it == rndv_recvs_.end()) {
        fatal_ = true;
        fatal_msg_ = "net: data frame for unknown rendezvous token";
        return;
      }
      RndvRecv& rr = it->second;
      const std::uint64_t off = h.token2;
      std::size_t avail = 0;
      if (off < rr.dest.len) {
        avail = std::min<std::size_t>(h.bytes, rr.dest.len -
                                                   static_cast<std::size_t>(
                                                       off));
      }
      c.rx_dest = rt::MutView{
          avail > 0 ? rr.dest.ptr + off : nullptr, avail};
      c.rx_in_payload = true;
      if (tracer_ != nullptr) {
        c.rx_span_open = tracer_->begin(
            "net.recv", "net", ci + 1,
            {{"bytes", static_cast<std::int64_t>(h.bytes)},
             {"peer", c.peer},
             {"rail", c.rail}});
      }
      return;
    }
    case FrameKind::kPing: {
      // Clock-calibration probe: echo the token with our clock reading.
      // Served reactively (not gated on tracer_ — the prober's tracing
      // state is what matters) unless this side already half-closed.
      if (c.open && !c.shut_wr) {
        FrameHeader pong;
        pong.kind = FrameKind::kPong;
        pong.token = h.token;
        pong.token2 = static_cast<std::uint64_t>(now() * 1e9);
        enqueue(ci, pong, rt::ConstView{}, {}, UINT32_MAX);
      }
      return;
    }
    case FrameKind::kPong: {
      // Stale pongs (an abandoned earlier probe) fail the token check.
      if (pong_pending_ && h.token == ping_token_) {
        pong_remote_s_ = static_cast<double>(h.token2) * 1e-9;
        pong_pending_ = false;
      }
      return;
    }
  }
}

void Endpoint::finish_rx(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  const FrameHeader& h = c.rx_frame;
  // Arrow head first, still inside the net.recv span (Perfetto binds the
  // "f" event to its enclosing slice); the span closes after bookkeeping.
  if (c.rx_span_open && h.kind == FrameKind::kEager && c.rx_flow_id != 0) {
    tracer_->flow_end(c.rx_flow_id, ci + 1);
  }
  if (h.kind == FrameKind::kEager) {
    if (c.rx_recv_op != UINT32_MAX) {
      ops_[c.rx_recv_op].complete = true;
    } else {
      // The receive may have been posted while this payload was still
      // streaming into the staging buffer; it must match NOW — parking
      // unmatched would let the pair's next frame overtake this one.
      CommState& cs = comm_state(h.comm_key);
      const std::uint32_t opid = match_posted(cs, h.src, h.tag);
      if (opid != UINT32_MAX) {
        Op& op = ops_[opid];
        op.received = std::min<std::size_t>(h.bytes, op.rbuf.len);
        if (h.bytes > op.rbuf.len) {
          op.error = true;
          op.error_msg =
              trunc_msg("late-eager", h.src, h.tag, h.bytes, op.rbuf.len);
        }
        if (op.received > 0) {
          std::memcpy(op.rbuf.ptr, c.rx_owned.data(), op.received);
        }
        op.complete = true;
        c.rx_owned.clear();
      } else {
        Unexpected u;
        u.src = h.src;
        u.tag = h.tag;
        u.bytes = h.bytes;
        u.payload = std::move(c.rx_owned);
        c.rx_owned = {};
        cs.unexpected.push_back(std::move(u));
      }
    }
  } else if (h.kind == FrameKind::kData) {
    auto it = rndv_recvs_.find(h.token);
    // The token is guaranteed live: it is only erased below, after its
    // last data byte, and on_frame validated it for this frame.
    RndvRecv& rr = it->second;
    rr.remaining -= h.bytes;
    if (rr.remaining == 0) {
      // The completing chunk hosts the arrow head: the message is only
      // semantically received once every stripe landed.
      if (c.rx_span_open && rr.flow_id != 0) {
        tracer_->flow_end(rr.flow_id, ci + 1);
      }
      ops_[rr.op].complete = true;
      rndv_recvs_.erase(it);
    }
  }
  if (c.rx_span_open) {
    tracer_->end(ci + 1);
    c.rx_span_open = false;
  }
  c.rx_in_payload = false;
  c.rx_header_got = 0;
  c.rx_payload_got = 0;
  c.rx_dest = rt::MutView{};
  c.rx_recv_op = UINT32_MAX;
  c.rx_flow_id = 0;
}

// --- transmit path -----------------------------------------------------------

void Endpoint::enqueue(int ci, const FrameHeader& h, rt::ConstView payload,
                       std::vector<std::byte> owned, std::uint32_t send_op,
                       std::uint64_t flow) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  if (!c.open) {
    if (send_op != UINT32_MAX) {
      Op& op = ops_[send_op];
      op.complete = true;
      op.error = true;
      op.error_msg = "net: connection to rank " + std::to_string(c.peer) +
                     " is closed";
    }
    return;
  }
  TxFrame f;
  encode(h, f.header);
  f.owned = std::move(owned);
  f.payload = f.owned.empty() ? payload
                              : rt::ConstView{f.owned.data(), f.owned.size()};
  f.send_op = send_op;
  f.flow_id = flow;
  c.txq.push_back(std::move(f));
  frames_tx_->add(1);
  handle_writable(ci);  // opportunistic flush; EPOLLOUT arms on EAGAIN
}

void Endpoint::handle_writable(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  while (c.open && !c.txq.empty()) {
    TxFrame& f = c.txq.front();
    if (tracer_ != nullptr && !f.span_open && f.header_sent == 0 &&
        f.payload.len > 0) {
      f.span_open = tracer_->begin(
          "net.send", "net", ci + 1,
          {{"bytes", static_cast<std::int64_t>(f.payload.len)},
           {"peer", c.peer},
           {"rail", c.rail}});
      if (f.span_open && f.flow_id != 0) {
        tracer_->flow_start(f.flow_id, ci + 1);
        f.flow_id = 0;  // one arrow per message, even across retries
      }
    }
    bool blocked = false;
    while (f.header_sent < kHeaderBytes) {
      // MSG_NOSIGNAL everywhere we write a socket: a dead peer must come
      // back as EPIPE -> conn_lost() -> the documented runtime_error, not
      // as a SIGPIPE that kills the whole rank process.
      const ssize_t n = ::send(c.fd.get(), f.header + f.header_sent,
                               kHeaderBytes - f.header_sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;
          break;
        }
        if (errno == EINTR) {
          continue;
        }
        conn_lost(ci);
        return;
      }
      f.header_sent += static_cast<std::size_t>(n);
    }
    if (blocked) {
      rail_retry_[static_cast<std::size_t>(c.rail)]->add(1);
      break;
    }
    while (f.payload_sent < f.payload.len) {
      const ssize_t n =
          ::send(c.fd.get(), f.payload.ptr + f.payload_sent,
                 f.payload.len - f.payload_sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          blocked = true;
          break;
        }
        if (errno == EINTR) {
          continue;
        }
        conn_lost(ci);
        return;
      }
      f.payload_sent += static_cast<std::size_t>(n);
      rail_tx_[static_cast<std::size_t>(c.rail)]->add(
          static_cast<std::uint64_t>(n));
    }
    if (blocked) {
      rail_retry_[static_cast<std::size_t>(c.rail)]->add(1);
      break;
    }
    // Frame fully handed to the kernel.
    if (f.span_open) {
      tracer_->end(ci + 1);
    }
    if (f.send_op != UINT32_MAX) {
      Op& op = ops_[f.send_op];
      if (op.frames_left > 0) {
        --op.frames_left;
      }
      if (op.cts_seen && op.frames_left == 0) {
        op.complete = true;
      }
    }
    c.txq.pop_front();
  }
  const bool need_out = c.open && !c.txq.empty();
  if (need_out != c.want_out) {
    c.want_out = need_out;
    update_epoll(ci);
  }
  if (c.open && c.txq.empty() && shut_down_ && !c.shut_wr) {
    ::shutdown(c.fd.get(), SHUT_WR);
    c.shut_wr = true;
  }
}

void Endpoint::update_epoll(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  if (!c.open) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_out ? EPOLLOUT : 0u);
  ev.data.u32 = static_cast<std::uint32_t>(ci);
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
}

// --- failure and teardown ----------------------------------------------------

void Endpoint::conn_lost(int ci) {
  Conn& c = conns_[static_cast<std::size_t>(ci)];
  if (!c.open) {
    return;
  }
  if (c.rx_span_open) {
    tracer_->end(ci + 1);
    c.rx_span_open = false;
  }
  c.open = false;
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
  c.fd.reset();
  // Queued frames die with the connection; fail their send operations.
  for (TxFrame& f : c.txq) {
    if (f.span_open) {
      tracer_->end(ci + 1);
      f.span_open = false;
    }
    if (f.send_op != UINT32_MAX) {
      Op& op = ops_[f.send_op];
      op.complete = true;
      op.error = true;
      op.error_msg =
          "net: connection to rank " + std::to_string(c.peer) + " lost";
    }
  }
  c.txq.clear();

  Peer& peer = peers_[static_cast<std::size_t>(c.peer)];
  if (!peer.bye_seen && !shut_down_) {
    mark_peer_dead(c.peer);
    return;
  }
  // Orderly close: once every rail is gone the peer is finished.
  bool all_closed = true;
  for (int conn : peer.conns) {
    if (conn >= 0 && conns_[static_cast<std::size_t>(conn)].open) {
      all_closed = false;
      break;
    }
  }
  if (all_closed && !peer.finished) {
    peer.finished = true;
    on_peer_finished(c.peer);
  }
}

void Endpoint::mark_peer_dead(int peer_rank) {
  Peer& peer = peers_[static_cast<std::size_t>(peer_rank)];
  if (peer.dead) {
    return;
  }
  peer.dead = true;
  // A peer vanished mid-run: no pending or future operation can be trusted
  // to complete, so the whole endpoint fails loudly instead of hanging.
  fatal_ = true;
  fatal_msg_ = "net: connection to rank " + std::to_string(peer_rank) +
               " lost (peer closed mid-message or crashed)";
  for (int conn : peer.conns) {
    if (conn >= 0) {
      conn_lost(conn);
    }
  }
}

void Endpoint::on_peer_finished(int peer_rank) {
  // The peer exited cleanly; any receive still expecting data from it is
  // an application-level mismatch — error it rather than hang.
  for (auto& [key, cs] : comms_) {
    for (auto it = cs.posted.begin(); it != cs.posted.end();) {
      Op& op = ops_[*it];
      if (op.src_world == peer_rank) {
        op.complete = true;
        op.error = true;
        op.error_msg = "net: rank " + std::to_string(peer_rank) +
                       " finished while a receive from it was pending";
        it = cs.posted.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto it = rndv_recvs_.begin(); it != rndv_recvs_.end();) {
    if (it->second.peer_world == peer_rank) {
      Op& op = ops_[it->second.op];
      op.complete = true;
      op.error = true;
      op.error_msg = "net: rank " + std::to_string(peer_rank) +
                     " finished mid-rendezvous";
      it = rndv_recvs_.erase(it);
    } else {
      ++it;
    }
  }
}

void Endpoint::shutdown() noexcept {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  try {
    // Announce Bye on every open rail (so an EOF on any of them reads as
    // orderly), flush, half-close, then drain until every connection saw
    // its peer's EOF — an implicit barrier that guarantees all in-flight
    // frames were delivered before any socket disappears.
    for (std::size_t p = 0; p < peers_.size(); ++p) {
      Peer& peer = peers_[p];
      if (peer.dead) {
        continue;
      }
      for (int conn : peer.conns) {
        if (conn >= 0 && conns_[static_cast<std::size_t>(conn)].open) {
          FrameHeader bye;
          bye.kind = FrameKind::kBye;
          enqueue(conn, bye, rt::ConstView{}, {}, UINT32_MAX);
        }
      }
      peer.bye_sent = true;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(opts_.timeout_s);
    for (;;) {
      bool any_open = false;
      for (std::size_t ci = 0; ci < conns_.size(); ++ci) {
        Conn& c = conns_[ci];
        if (!c.open) {
          continue;
        }
        any_open = true;
        if (c.txq.empty() && !c.shut_wr) {
          ::shutdown(c.fd.get(), SHUT_WR);
          c.shut_wr = true;
        }
      }
      if (!any_open) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        break;  // force-close below rather than hang forever
      }
      progress(100);
      if (fatal_) {
        break;  // a peer died during teardown; just close up
      }
    }
  } catch (...) {
    // Destructor context: fall through to the force-close.
  }
  for (Conn& c : conns_) {
    c.open = false;
    c.txq.clear();
    c.fd.reset();
  }
  listeners_.clear();
  epoll_.reset();
}

void Endpoint::abort_for_test() noexcept {
  // Simulate a crash: drop every socket on the floor, no Bye, no flush.
  for (Conn& c : conns_) {
    c.open = false;
    c.txq.clear();
    c.fd.reset();
  }
  listeners_.clear();
  epoll_.reset();
  shut_down_ = true;  // the destructor must not attempt a handshake
}

}  // namespace mca2a::net
