#include "net/bootstrap.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "runtime/env.hpp"

namespace mca2a::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Block until `fd` is readable or `deadline` passes. The rendezvous obeys
/// the same "error instead of hang" contract as build_mesh: a rank that
/// never starts, or a stray client that connects and writes nothing, must
/// turn into a thrown timeout, not an eternal blocking read/accept.
void wait_readable(int fd, Clock::time_point deadline, const char* what) {
  for (;;) {
    const auto now = Clock::now();
    if (now >= deadline) {
      throw std::runtime_error(std::string("net: rendezvous timed out ") +
                               what);
    }
    const auto left_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    pollfd p{fd, POLLIN, 0};
    const int n =
        ::poll(&p, 1, static_cast<int>(std::min<long long>(left_ms, 200)));
    if (n > 0) {
      return;
    }
    if (n < 0 && errno != EINTR) {
      throw std::system_error(errno, std::generic_category(), "net: poll");
    }
  }
}

/// Read one '\n'-terminated line from a blocking socket, polling before
/// every byte so a silent peer cannot stall the exchange past `deadline`
/// (bootstrap only; byte-at-a-time is fine for a dozen short lines).
std::string read_line(int fd, Clock::time_point deadline) {
  std::string line;
  char c = 0;
  for (;;) {
    wait_readable(fd, deadline, "reading a registration line");
    read_all(fd, &c, 1);
    if (c == '\n') {
      return line;
    }
    line.push_back(c);
    if (line.size() > 1 << 16) {
      throw std::runtime_error("net: oversized bootstrap line");
    }
  }
}

void write_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  write_all(fd, out.data(), out.size());
}

PeerInfo parse_reg(const std::string& line, int size) {
  std::istringstream is(line);
  std::string word;
  PeerInfo p;
  std::size_t naddr = 0;
  if (!(is >> word >> p.rank >> naddr) || word != "a2a-reg") {
    throw std::runtime_error("net: malformed registration '" + line + "'");
  }
  if (p.rank < 0 || p.rank >= size || naddr == 0 || naddr > 64) {
    throw std::runtime_error("net: registration out of range: " + line);
  }
  for (std::size_t i = 0; i < naddr; ++i) {
    Address a;
    if (!(is >> a.host >> a.port)) {
      throw std::runtime_error("net: truncated registration: " + line);
    }
    p.addrs.push_back(std::move(a));
  }
  return p;
}

std::string format_reg(const PeerInfo& p) {
  std::ostringstream os;
  os << "a2a-reg " << p.rank << ' ' << p.addrs.size();
  for (const Address& a : p.addrs) {
    os << ' ' << a.host << ' ' << a.port;
  }
  return os.str();
}

}  // namespace

void NetOptions::validate() const {
  if (size < 1) {
    throw std::invalid_argument("net: world size must be >= 1");
  }
  if (rank < 0 || rank >= size) {
    throw std::invalid_argument("net: rank out of range");
  }
  if (rails < 1 || rails > 64) {
    throw std::invalid_argument("net: rails must be in [1, 64]");
  }
  if (size > 1 && (rendezvous.host.empty() || rendezvous.port == 0)) {
    throw std::invalid_argument("net: rendezvous address required");
  }
  if (stripe_min == 0 || timeout_s <= 0.0) {
    throw std::invalid_argument("net: bad stripe threshold or timeout");
  }
}

bool env_configured() noexcept {
  return rt::env::is_set("A2A_NET_RANK");
}

NetOptions options_from_env() {
  const auto rend = rt::env::get_string("A2A_NET_REND");
  if (!rt::env::is_set("A2A_NET_RANK") || !rt::env::is_set("A2A_NET_SIZE") ||
      !rend) {
    throw std::runtime_error(
        "net: A2A_NET_RANK/A2A_NET_SIZE/A2A_NET_REND not set — launch this "
        "program with tools/a2arun");
  }
  NetOptions o;
  o.size = static_cast<int>(rt::env::get_int("A2A_NET_SIZE", 1, 1, 1 << 20));
  o.rank =
      static_cast<int>(rt::env::get_int("A2A_NET_RANK", 0, 0, o.size - 1));
  o.rendezvous = parse_address(rend->c_str());
  o.rendezvous_fd = static_cast<int>(
      rt::env::get_int("A2A_NET_REND_FD", o.rendezvous_fd, -1, INT_MAX));
  o.rails = static_cast<int>(rt::env::get_int("A2A_NET_RAILS", o.rails, 1, 64));
  o.eager_max = rt::env::get_size("A2A_NET_EAGER", o.eager_max, 0,
                                  std::size_t{1} << 40);
  o.stripe_min = rt::env::get_size("A2A_NET_STRIPE", o.stripe_min, 1,
                                   std::size_t{1} << 40);
  o.timeout_s = rt::env::get_double("A2A_NET_TIMEOUT", o.timeout_s, 1e-3, 1e6);
  o.ifaces = rt::env::get_list("A2A_NET_IFACE");
  o.validate();
  return o;
}

std::vector<PeerInfo> rendezvous_exchange(const NetOptions& opts,
                                          const PeerInfo& self) {
  std::vector<PeerInfo> table(static_cast<std::size_t>(opts.size));
  if (opts.size == 1) {
    Fd{opts.rendezvous_fd};  // consume an inherited listener, if any
    table[0] = self;
    return table;
  }

  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts.timeout_s));

  if (opts.rank == 0) {
    // Serve: collect size-1 registrations, then publish the table. A
    // launcher that already bound the rendezvous port hands the listener
    // down as an inherited fd (closing the race between picking a port
    // and re-binding it); otherwise bind it here.
    Fd listener(opts.rendezvous_fd);
    if (!listener.valid()) {
      listener = std::move(
          listen_tcp("", opts.rendezvous.port, opts.size + 8).first);
    }
    table[0] = self;
    std::vector<Fd> conns;
    conns.reserve(static_cast<std::size_t>(opts.size) - 1);
    std::vector<int> conn_rank(static_cast<std::size_t>(opts.size) - 1, -1);
    for (int i = 0; i < opts.size - 1; ++i) {
      wait_readable(listener.get(), deadline,
                    "waiting for rank registrations");
      Fd c = accept_tcp(listener.get());
      PeerInfo p = parse_reg(read_line(c.get(), deadline), opts.size);
      if (!table[static_cast<std::size_t>(p.rank)].addrs.empty() ||
          p.rank == 0) {
        throw std::runtime_error("net: duplicate registration for rank " +
                                 std::to_string(p.rank));
      }
      conn_rank[static_cast<std::size_t>(i)] = p.rank;
      table[static_cast<std::size_t>(p.rank)] = std::move(p);
      conns.push_back(std::move(c));
    }
    std::ostringstream os;
    os << "a2a-table " << opts.size << "\n";
    for (const PeerInfo& p : table) {
      os << format_reg(p) << "\n";
    }
    const std::string blob = os.str();
    for (Fd& c : conns) {
      write_all(c.get(), blob.data(), blob.size());
    }
    return table;
  }

  // Register, then read the table back. Rank 0 legitimately waits for the
  // slowest rank before publishing, so the table read gets its own
  // timeout_s window starting after our connect succeeded.
  Fd c = connect_tcp(opts.rendezvous, opts.timeout_s);
  write_line(c.get(), format_reg(self));
  const auto table_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts.timeout_s));
  const std::string head = read_line(c.get(), table_deadline);
  std::istringstream is(head);
  std::string word;
  int n = 0;
  if (!(is >> word >> n) || word != "a2a-table" || n != opts.size) {
    throw std::runtime_error("net: bad rendezvous table header '" + head +
                             "'");
  }
  for (int i = 0; i < n; ++i) {
    PeerInfo p = parse_reg(read_line(c.get(), table_deadline), opts.size);
    table[static_cast<std::size_t>(p.rank)] = std::move(p);
  }
  return table;
}

}  // namespace mca2a::net
