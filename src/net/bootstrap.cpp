#include "net/bootstrap.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mca2a::net {

namespace {

/// Read one '\n'-terminated line from a blocking socket (bootstrap only;
/// byte-at-a-time is fine for a dozen short lines).
std::string read_line(int fd) {
  std::string line;
  char c = 0;
  for (;;) {
    read_all(fd, &c, 1);
    if (c == '\n') {
      return line;
    }
    line.push_back(c);
    if (line.size() > 1 << 16) {
      throw std::runtime_error("net: oversized bootstrap line");
    }
  }
}

void write_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  write_all(fd, out.data(), out.size());
}

PeerInfo parse_reg(const std::string& line, int size) {
  std::istringstream is(line);
  std::string word;
  PeerInfo p;
  std::size_t naddr = 0;
  if (!(is >> word >> p.rank >> naddr) || word != "a2a-reg") {
    throw std::runtime_error("net: malformed registration '" + line + "'");
  }
  if (p.rank < 0 || p.rank >= size || naddr == 0 || naddr > 64) {
    throw std::runtime_error("net: registration out of range: " + line);
  }
  for (std::size_t i = 0; i < naddr; ++i) {
    Address a;
    if (!(is >> a.host >> a.port)) {
      throw std::runtime_error("net: truncated registration: " + line);
    }
    p.addrs.push_back(std::move(a));
  }
  return p;
}

std::string format_reg(const PeerInfo& p) {
  std::ostringstream os;
  os << "a2a-reg " << p.rank << ' ' << p.addrs.size();
  for (const Address& a : p.addrs) {
    os << ' ' << a.host << ' ' << a.port;
  }
  return os.str();
}

}  // namespace

void NetOptions::validate() const {
  if (size < 1) {
    throw std::invalid_argument("net: world size must be >= 1");
  }
  if (rank < 0 || rank >= size) {
    throw std::invalid_argument("net: rank out of range");
  }
  if (rails < 1 || rails > 64) {
    throw std::invalid_argument("net: rails must be in [1, 64]");
  }
  if (size > 1 && (rendezvous.host.empty() || rendezvous.port == 0)) {
    throw std::invalid_argument("net: rendezvous address required");
  }
  if (stripe_min == 0 || timeout_s <= 0.0) {
    throw std::invalid_argument("net: bad stripe threshold or timeout");
  }
}

bool env_configured() noexcept {
  return std::getenv("A2A_NET_RANK") != nullptr;
}

NetOptions options_from_env() {
  const char* rank = std::getenv("A2A_NET_RANK");
  const char* size = std::getenv("A2A_NET_SIZE");
  const char* rend = std::getenv("A2A_NET_REND");
  if (rank == nullptr || size == nullptr || rend == nullptr) {
    throw std::runtime_error(
        "net: A2A_NET_RANK/A2A_NET_SIZE/A2A_NET_REND not set — launch this "
        "program with tools/a2arun");
  }
  NetOptions o;
  o.rank = std::atoi(rank);
  o.size = std::atoi(size);
  o.rendezvous = parse_address(rend);
  if (const char* v = std::getenv("A2A_NET_RAILS")) {
    o.rails = std::atoi(v);
  }
  if (const char* v = std::getenv("A2A_NET_EAGER")) {
    o.eager_max = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("A2A_NET_STRIPE")) {
    o.stripe_min = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("A2A_NET_TIMEOUT")) {
    o.timeout_s = std::atof(v);
  }
  if (const char* v = std::getenv("A2A_NET_IFACE")) {
    std::string s(v);
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = s.find(',', pos);
      const std::string part = s.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!part.empty()) {
        o.ifaces.push_back(part);
      }
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }
  o.validate();
  return o;
}

std::vector<PeerInfo> rendezvous_exchange(const NetOptions& opts,
                                          const PeerInfo& self) {
  std::vector<PeerInfo> table(static_cast<std::size_t>(opts.size));
  if (opts.size == 1) {
    table[0] = self;
    return table;
  }

  if (opts.rank == 0) {
    // Serve: collect size-1 registrations, then publish the table.
    auto [listener, port] =
        listen_tcp("", opts.rendezvous.port, opts.size + 8);
    (void)port;
    table[0] = self;
    std::vector<Fd> conns;
    conns.reserve(static_cast<std::size_t>(opts.size) - 1);
    std::vector<int> conn_rank(static_cast<std::size_t>(opts.size) - 1, -1);
    for (int i = 0; i < opts.size - 1; ++i) {
      Fd c = accept_tcp(listener.get());
      PeerInfo p = parse_reg(read_line(c.get()), opts.size);
      if (!table[static_cast<std::size_t>(p.rank)].addrs.empty() ||
          p.rank == 0) {
        throw std::runtime_error("net: duplicate registration for rank " +
                                 std::to_string(p.rank));
      }
      conn_rank[static_cast<std::size_t>(i)] = p.rank;
      table[static_cast<std::size_t>(p.rank)] = std::move(p);
      conns.push_back(std::move(c));
    }
    std::ostringstream os;
    os << "a2a-table " << opts.size << "\n";
    for (const PeerInfo& p : table) {
      os << format_reg(p) << "\n";
    }
    const std::string blob = os.str();
    for (Fd& c : conns) {
      write_all(c.get(), blob.data(), blob.size());
    }
    return table;
  }

  // Register, then read the table back.
  Fd c = connect_tcp(opts.rendezvous, opts.timeout_s);
  write_line(c.get(), format_reg(self));
  const std::string head = read_line(c.get());
  std::istringstream is(head);
  std::string word;
  int n = 0;
  if (!(is >> word >> n) || word != "a2a-table" || n != opts.size) {
    throw std::runtime_error("net: bad rendezvous table header '" + head +
                             "'");
  }
  for (int i = 0; i < n; ++i) {
    PeerInfo p = parse_reg(read_line(c.get()), opts.size);
    table[static_cast<std::size_t>(p.rank)] = std::move(p);
  }
  return table;
}

}  // namespace mca2a::net
