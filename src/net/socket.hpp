#pragma once
/// \file socket.hpp
/// Thin RAII and address helpers over POSIX TCP sockets, shared by the
/// bootstrap (blocking, sequential) and the progress engine (nonblocking,
/// epoll-driven). Nothing here knows about frames or ranks.

#include <cstdint>
#include <string>
#include <utility>

namespace mca2a::net {

/// Owning file descriptor. Closing is best-effort (destructors must not
/// throw); every other error surfaces as std::system_error at the call
/// site that hit it.
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Release ownership without closing.
  int release() noexcept { return std::exchange(fd_, -1); }
  /// Close now (idempotent).
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// IPv4 endpoint as the bootstrap protocol exchanges it.
struct Address {
  std::string host;  ///< dotted-quad or resolvable name
  std::uint16_t port = 0;
};

/// Parse "host:port". Throws std::invalid_argument on malformed input.
Address parse_address(const std::string& s);

/// Resolve `host` (name or dotted quad) to a dotted-quad IPv4 string.
/// Throws std::runtime_error when resolution fails.
std::string resolve_ipv4(const std::string& host);

/// Create a listening TCP socket bound to `host` (empty = INADDR_ANY) and
/// `port` (0 = ephemeral). Returns the socket and the actually-bound port.
std::pair<Fd, std::uint16_t> listen_tcp(const std::string& host,
                                        std::uint16_t port, int backlog);

/// Blocking connect with retry until `timeout_s` (the peer's listener may
/// come up later during bootstrap). TCP_NODELAY is set on the result.
Fd connect_tcp(const Address& addr, double timeout_s);

/// Blocking accept; TCP_NODELAY is set on the result. Throws on error.
Fd accept_tcp(int listen_fd);

/// Switch the descriptor to nonblocking mode.
void set_nonblocking(int fd);

/// Write exactly `len` bytes (blocking socket). Throws on error/EOF.
void write_all(int fd, const void* buf, std::size_t len);
/// Read exactly `len` bytes (blocking socket). Throws on error/EOF.
void read_all(int fd, void* buf, std::size_t len);

/// Local address of a connected/bound socket as dotted quad + port.
/// Launchers picking an ephemeral rendezvous port bind with listen_tcp
/// (port 0), read the port from here, and KEEP the listener open, passing
/// it to rank 0 (NetOptions::rendezvous_fd) — closing and re-binding would
/// race against any other process grabbing the port in between.
Address local_address(int fd);

}  // namespace mca2a::net
