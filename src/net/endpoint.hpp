#pragma once
/// \file endpoint.hpp
/// The TCP backend's per-process progress engine.
///
/// One Endpoint per rank process: it owns every data socket of the mesh
/// (rails × peers, built by the bootstrap), one epoll instance driving
/// them all, and the MPI matching state of every communicator that routes
/// through it. The engine is single-threaded by design — the rank program
/// runs on the process's main thread and *is* the progress thread: every
/// blocking wait (rt::Comm::wait_try) spins the epoll loop, which flushes
/// outgoing frames, reads incoming ones and completes operations, exactly
/// like an MPI library progressing inside MPI_Wait.
///
/// Message protocol (net/wire.hpp has the frame format):
///  * messages with payload <= eager_max travel as one kEager frame whose
///    payload is copied out of the user buffer at isend time — buffered
///    semantics, the send request completes immediately;
///  * larger messages use rendezvous: a kRts frame announces (comm, src,
///    tag, bytes); when the receiver matches it against a posted receive
///    it replies kCts, and only then does the sender stream the body as
///    kData frames written *directly from the user buffer* into the
///    receiver's user buffer — no intermediate copy on either side;
///  * bodies at or above stripe_min are split into `rails` contiguous
///    chunks, one per rail, so a single large leader-exchange message
///    drives every connection of the pair concurrently. Smaller bodies
///    pick one rail round-robin.
///
/// Ordering: all matching-relevant frames (kEager, kRts) of a peer pair
/// travel on rail 0, so TCP's FIFO gives the same non-overtaking matching
/// guarantee the in-process backends provide; kData frames are tagged
/// with (receiver token, offset) and may arrive on any rail in any order.
///
/// Failure model: an EOF or reset on any connection *before* the peer's
/// kBye marks that peer dead; every pending or future operation that
/// depends on it completes with an error (surfaced as std::runtime_error
/// from the wait), never a hang. Orderly shutdown (Endpoint::shutdown)
/// exchanges kBye over every rail and drains, so a clean exit leaks
/// neither processes nor file descriptors.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/bootstrap.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/clock_sync.hpp"
#include "runtime/buffer.hpp"
#include "runtime/comm.hpp"

namespace mca2a::obs {
class Counter;
class TraceBuffer;
class TraceRecorder;
}  // namespace mca2a::obs

namespace mca2a::net {

class Endpoint {
 public:
  /// Bootstrap the full mesh: listeners, rendezvous, rails to every peer.
  /// Blocking; throws on any bootstrap failure.
  explicit Endpoint(NetOptions opts);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const NetOptions& options() const noexcept { return opts_; }
  int world_rank() const noexcept { return opts_.rank; }
  int world_size() const noexcept { return opts_.size; }

  /// Wall seconds since this endpoint's construction.
  double now() const;

  /// Flight-recorder stream for this process's rank (nullptr when off).
  obs::TraceBuffer* tracer() const noexcept { return tracer_; }

  // --- operations (called by NetComm; ranks/`src` are in-comm) -------------

  /// `members[i]` = world rank of comm rank i; `me` = caller's comm rank.
  rt::Request post_send(std::uint64_t comm_key,
                        std::span<const int> members, int me, int dst,
                        int tag, rt::ConstView buf);
  rt::Request post_recv(std::uint64_t comm_key,
                        std::span<const int> members, int src, int tag,
                        rt::MutView buf);
  /// Drive the progress engine until every listed request completes, then
  /// release them. Throws std::runtime_error on truncation or peer loss.
  void wait(std::span<const rt::Request> reqs);

  /// Deterministic communicator key for `members` (world ranks, comm
  /// order): the k-th key drawn for a given member list is identical on
  /// every member process as long as they create communicators in the
  /// same order — the collective contract, same rule as the smp backend's
  /// registry.
  std::uint64_t intern_comm(std::span<const int> members);

  /// Orderly shutdown: exchange kBye on every rail, drain, close all fds.
  /// Idempotent; swallows peer-loss errors (the destructor calls it).
  void shutdown() noexcept;

  /// Test hook: close every data socket *without* the kBye handshake,
  /// simulating a crashed process (peers must error out, not hang).
  void abort_for_test() noexcept;

 private:
  // One queued outgoing frame. `payload` points into the user buffer for
  // rendezvous data (zero-copy), into `owned` for eager copies.
  struct TxFrame {
    std::byte header[kHeaderBytes];
    std::size_t header_sent = 0;
    rt::ConstView payload{};
    std::size_t payload_sent = 0;
    std::vector<std::byte> owned;
    std::uint32_t send_op = UINT32_MAX;  ///< op to credit when fully sent
    bool span_open = false;              ///< net.send span in flight
    std::uint64_t flow_id = 0;  ///< flow arrow source, emitted on first flush
  };

  // One data connection (= one rail of one peer pair).
  struct Conn {
    Fd fd;
    int peer = -1;
    int rail = 0;
    bool open = false;
    bool want_out = false;  ///< EPOLLOUT armed
    bool shut_wr = false;   ///< SHUT_WR issued during orderly shutdown
    std::deque<TxFrame> txq;
    // Receive state machine: header assembly, then payload streaming.
    std::byte rx_header[kHeaderBytes];
    std::size_t rx_header_got = 0;
    bool rx_in_payload = false;
    FrameHeader rx_frame{};
    std::size_t rx_payload_got = 0;
    rt::MutView rx_dest{};               ///< matched destination (or null)
    std::vector<std::byte> rx_owned;     ///< unexpected-eager staging
    std::uint32_t rx_recv_op = UINT32_MAX;
    bool rx_span_open = false;
    std::uint64_t rx_flow_id = 0;  ///< flow arrow head for an eager frame
  };

  struct Peer {
    std::vector<int> conns;  ///< index into conns_, one per rail
    bool bye_sent = false;
    bool bye_seen = false;
    bool dead = false;      ///< EOF/reset before kBye
    bool finished = false;  ///< kBye seen and every rail closed cleanly
    std::uint64_t next_rail = 0;  ///< round-robin for sub-stripe bodies
  };

  // A pending operation (send or recv) owned by a Request slot.
  struct Op {
    enum class Kind { kSend, kRecv } kind = Kind::kRecv;
    bool in_use = false;
    bool complete = false;
    bool error = false;
    std::string error_msg;
    std::uint32_t serial = 1;
    // Recv fields.
    rt::MutView rbuf{};
    std::uint64_t comm_key = 0;
    int src = 0;        ///< in-comm rank or rt::kAnySource
    int src_world = -1; ///< resolved world rank, -1 for any-source
    int tag = 0;
    std::uint64_t post_seq = 0;
    bool matched = false;       ///< consumed from the posted queue
    std::size_t received = 0;
    std::size_t rndv_remaining = 0;
    // Send fields.
    rt::ConstView sbuf{};
    int dst_world = -1;
    std::uint32_t frames_left = 0;  ///< rendezvous data frames unsent
    bool cts_seen = false;
    std::uint64_t flow_id = 0;  ///< rendezvous flow, stamped on chunk 0
  };

  // An eager message or RTS that arrived before its receive was posted.
  struct Unexpected {
    int src = 0;  ///< in-comm rank
    int tag = 0;
    bool rndv = false;
    // Eager: copied payload. Rendezvous: size + sender handle.
    std::vector<std::byte> payload;
    std::size_t bytes = 0;
    int peer_world = -1;
    std::uint64_t sender_token = 0;
    std::uint64_t flow_id = 0;  ///< assigned at RTS arrival (rndv only)
  };

  // Matching state of one communicator key (created on demand — a peer
  // may send before this process created the matching sub-communicator).
  struct CommState {
    std::deque<std::uint32_t> posted;  ///< recv op ids, post order
    std::deque<Unexpected> unexpected; ///< arrival order
    std::uint64_t next_post_seq = 0;
  };

  // A rendezvous receive in flight, keyed by receiver token.
  struct RndvRecv {
    std::uint32_t op = UINT32_MAX;
    rt::MutView dest{};     ///< clamped to the posted buffer
    std::uint64_t bytes = 0;
    std::uint64_t remaining = 0;
    bool overflow = false;  ///< message larger than the posted buffer
    int peer_world = -1;
    std::uint64_t flow_id = 0;  ///< emitted when the last chunk lands
  };

  // --- bootstrap -----------------------------------------------------------
  void build_mesh();
  int register_conn(Fd fd, int peer, int rail);

  // --- clock calibration (obs/clock_sync.hpp) ------------------------------
  /// Run one pingpong round against rank 0 and update the tracer's
  /// calibration (no-op on rank 0 / size 1; bails on timeout or peer exit
  /// keeping the previous calibration). Only called with tracing active.
  void run_calibration();
  /// Sender-side flow id for the next matching-relevant frame to
  /// (dst_world, tag) on comm_key; 0 when tracing is off.
  std::uint64_t next_tx_flow(std::uint64_t comm_key, int dst_world, int tag);
  /// Receiver-side flow id for a matching-relevant arrival.
  std::uint64_t next_rx_flow(std::uint64_t comm_key, int src_world, int tag);

  // --- progress ------------------------------------------------------------
  void progress(int timeout_ms);
  void drive_until(const std::function<bool()>& done, const char* what);
  void handle_readable(int ci);
  void handle_writable(int ci);
  void on_frame(int ci);         ///< header complete: route by kind
  void finish_rx(int ci);        ///< payload complete
  void enqueue(int ci, const FrameHeader& h, rt::ConstView payload,
               std::vector<std::byte> owned, std::uint32_t send_op,
               std::uint64_t flow = 0);
  void update_epoll(int ci);
  void conn_lost(int ci);
  /// Unexpected EOF/reset: the whole endpoint fails (every pending and
  /// future wait throws) — a clean error beats a silent hang.
  void mark_peer_dead(int peer);
  /// Orderly peer exit with our receives still pending: op-level errors.
  void on_peer_finished(int peer);

  // --- matching ------------------------------------------------------------
  CommState& comm_state(std::uint64_t key);
  /// First posted receive in `cs` matching (src, tag), or UINT32_MAX.
  std::uint32_t match_posted(CommState& cs, int src, int tag);
  void deliver_eager_local(std::uint64_t comm_key, int src, int tag,
                           rt::ConstView payload);
  void start_rndv_recv(std::uint32_t recv_op, int peer_world,
                       std::uint64_t sender_token, std::uint64_t bytes,
                       std::uint64_t flow = 0);
  void send_data_frames(std::uint32_t send_op, std::uint64_t recv_token);

  std::uint32_t alloc_op();
  Op& op_checked(const rt::Request& r);
  Conn& rail0(int peer);

  NetOptions opts_;
  std::chrono::steady_clock::time_point epoch_;
  Fd epoll_;
  std::vector<Fd> listeners_;
  std::deque<Conn> conns_;
  std::vector<Peer> peers_;
  std::deque<Op> ops_;
  std::vector<std::uint32_t> free_ops_;
  std::unordered_map<std::uint64_t, CommState> comms_;
  std::map<std::vector<int>, std::uint32_t> comm_uses_;
  std::unordered_map<std::uint64_t, RndvRecv> rndv_recvs_;
  std::uint64_t next_rndv_token_ = 1;
  bool shut_down_ = false;
  bool fatal_ = false;
  std::string fatal_msg_;

  // Observability: per-rail tx/rx byte and retry counters plus frame
  // totals, registered once; the flight-recorder stream for this rank.
  std::vector<obs::Counter*> rail_tx_;
  std::vector<obs::Counter*> rail_rx_;
  std::vector<obs::Counter*> rail_retry_;
  obs::Counter* frames_tx_ = nullptr;
  obs::Counter* frames_rx_ = nullptr;
  obs::Counter* eager_tx_ = nullptr;
  obs::Counter* rndv_tx_ = nullptr;
  obs::TraceRecorder* trace_rec_ = nullptr;
  int trace_session_ = -1;
  obs::TraceBuffer* tracer_ = nullptr;

  // Distributed tracing: per-(comm, peer, tag) message sequence counters —
  // both ends count matching-relevant frames, which travel rail 0 in FIFO
  // order, so sender and receiver derive identical flow ids. Calibration
  // state implements the pingpong protocol of obs/clock_sync.hpp.
  std::map<std::tuple<std::uint64_t, int, int>, std::uint64_t> flow_tx_seq_;
  std::map<std::tuple<std::uint64_t, int, int>, std::uint64_t> flow_rx_seq_;
  std::vector<obs::ClockCalibration> calib_rounds_;
  double sync_period_s_ = 0.0;  ///< A2A_TRACE_SYNC (0 = bootstrap only)
  double last_sync_s_ = 0.0;
  std::uint64_t ping_token_ = 0;
  bool pong_pending_ = false;
  double pong_remote_s_ = 0.0;
};

}  // namespace mca2a::net
