#pragma once
/// \file op_desc.hpp
/// Typed operation descriptors for the whole collective family — the front
/// door of the plan/execute subsystem (plan/plan.hpp).
///
/// Every collective this codebase implements is described by one small
/// value type: what is exchanged (block sizes, counts, combiner) and,
/// optionally, which algorithm to use (nullopt lets the tuner pick from the
/// closed-form cost model, family-wide). A descriptor knows how to
/// validate itself against a communicator — catching the size/contract
/// violations that would otherwise surface as deadlock or truncation — and
/// produces a stable key() used by plan::PlanCache and plan::TuningTable,
/// so one cache and one tuning table serve all four collectives.
///
/// `OpDesc` is the std::variant-backed sum of the family; each member
/// descriptor converts implicitly, so call sites read
///
///   auto plan = plan::make_plan(world, machine, net,
///                               coll::AllgatherDesc{.block = 64});
///
/// Keys are stable within a process (AllreduceDesc includes the combiner's
/// function pointer so sum/max/min plans of the same shape never alias);
/// tuning-table keys, which must survive serialization, use only the op tag
/// and payload size (plan/tuning_table.hpp).

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "coll_ext/allreduce.hpp"
#include "core/alltoall.hpp"
#include "runtime/comm.hpp"

namespace mca2a::coll {

/// The collective family. Values are stable (used as array indices by the
/// per-op cache counters and as tags in the tuning-table file format).
enum class OpKind : int {
  kAlltoall = 0,
  kAlltoallv,
  kAllgather,
  kAllreduce,
  kCount_,
};
inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kCount_);

/// Human-readable name ("alltoall", "allgather", ...).
std::string_view op_kind_name(OpKind k);
/// Short stable tag used in keys and the tuning-table file format
/// ("a2a", "a2av", "ag", "ar").
std::string_view op_kind_tag(OpKind k);
/// Inverse of op_kind_tag; nullopt for an unknown tag.
std::optional<OpKind> op_kind_from_tag(std::string_view tag);
/// Number of algorithm enum values for the op kind (serialized algorithm
/// indices are validated against this range); 0 for kCount_.
int num_algos(OpKind k);

// --- per-op algorithm enums --------------------------------------------------

/// Allgather variants (coll_ext/allgather.hpp).
enum class AllgatherAlgo : int {
  kRing = 0,
  kBruck,
  kHierarchical,
  kLocalityAware,
  kCount_,
};
inline constexpr int kNumAllgatherAlgos = static_cast<int>(AllgatherAlgo::kCount_);
std::string_view allgather_algo_name(AllgatherAlgo a);
/// True if the variant needs a rt::LocalityComms bundle.
bool needs_locality(AllgatherAlgo a);

/// Allreduce variants (coll_ext/allreduce.hpp).
enum class AllreduceAlgo : int {
  kRecursiveDoubling = 0,
  kRabenseifner,
  kNodeAware,
  kCount_,
};
inline constexpr int kNumAllreduceAlgos = static_cast<int>(AllreduceAlgo::kCount_);
std::string_view allreduce_algo_name(AllreduceAlgo a);
bool needs_locality(AllreduceAlgo a);

/// Alltoallv variants (coll_ext/alltoallv.hpp). The locality variants are
/// the vector counterparts of the paper's Algorithms 3 and 5: they
/// aggregate per-node traffic at leaders (preceded by a count-metadata
/// exchange) and need a rt::LocalityComms bundle plus a data-carrying
/// transport (counts must actually move).
enum class AlltoallvAlgo : int {
  kPairwise = 0,
  kNonblocking,
  kHierarchical,          ///< leader gather / leader exchange / scatter
  kMultileaderNodeAware,  ///< G leaders per node, node-aware leader exchange
  kCount_,
};
inline constexpr int kNumAlltoallvAlgos = static_cast<int>(AlltoallvAlgo::kCount_);
std::string_view alltoallv_algo_name(AlltoallvAlgo a);
/// True if the variant needs a rt::LocalityComms bundle.
bool needs_locality(AlltoallvAlgo a);
/// True if the variant uses the leader communicators (Algorithm 5 shape).
bool needs_leader_comms(AlltoallvAlgo a);

/// Collective skew signature of an alltoallv: the tuner's input. Unlike a
/// fixed block size, one rank's count vectors do not determine the global
/// traffic shape, so the signature summarizes the whole p x p count matrix:
/// total bytes and the largest single (src, dst) transfer. Like every other
/// make_plan argument it is part of the collective contract — every rank
/// must pass the same values for the tuner to reach the same decision on
/// every rank. estimate_alltoallv_skew() derives it from one rank's vectors
/// (exact only when traffic is statistically homogeneous across ranks);
/// workloads with systematic per-rank structure should agree on the real
/// signature first (e.g. an allgather of per-rank totals/maxima, see
/// examples/ml_shuffle.cpp).
struct AlltoallvSkew {
  std::size_t total_bytes = 0;  ///< sum over the whole count matrix
  std::size_t max_bytes = 0;    ///< largest single (src, dst) count

  /// max/mean imbalance factor over the p*p matrix entries (>= 1.0; 1.0
  /// for an empty exchange). `ranks` is the communicator size.
  double imbalance(int ranks) const;
};

/// Local-view estimate: scales this rank's send row (and recv column) up to
/// the full matrix. Every rank of a statistically homogeneous exchange gets
/// approximately — not bit-exactly — the same signature; see AlltoallvSkew.
AlltoallvSkew estimate_alltoallv_skew(std::span<const std::size_t> send_counts,
                                      std::span<const std::size_t> recv_counts);

// --- descriptors -------------------------------------------------------------

/// MPI_Alltoall: `block` bytes between every ordered rank pair.
struct AlltoallDesc {
  std::size_t block = 0;
  /// Algorithm override; nullopt lets the tuner pick (algorithm and group
  /// size) from the closed-form cost model.
  std::optional<Algo> algo;

  void validate(const rt::Comm& comm) const;
  std::string key() const;
};

/// MPI_Alltoallv: per-peer byte counts; blocks are packed contiguously in
/// peer order (displacements are the exclusive prefix sums of the counts).
/// recv_counts must match the peers' send_counts — like MPI this is the
/// callers' collective contract, but the extents it implies are enforced
/// locally at execute time.
struct AlltoallvDesc {
  std::vector<std::size_t> send_counts;
  std::vector<std::size_t> recv_counts;
  std::optional<AlltoallvAlgo> algo;
  /// Collective skew signature consulted when `algo` is empty; when absent
  /// the tuner falls back to estimate_alltoallv_skew over this rank's
  /// vectors (see AlltoallvSkew for the cross-rank agreement caveat).
  std::optional<AlltoallvSkew> skew;

  std::size_t send_total() const;
  std::size_t recv_total() const;
  void validate(const rt::Comm& comm) const;
  std::string key() const;
};

/// MPI_Allgather: every rank contributes `block` bytes; everyone ends with
/// all size() blocks in rank order.
struct AllgatherDesc {
  std::size_t block = 0;
  std::optional<AllgatherAlgo> algo;

  void validate(const rt::Comm& comm) const;
  std::string key() const;
};

/// MPI_Allreduce: `count` elements combined element-wise across all ranks.
struct AllreduceDesc {
  std::size_t count = 0;  ///< elements, not bytes
  Combiner combiner;
  std::optional<AllreduceAlgo> algo;

  std::size_t bytes() const { return count * combiner.elem_size; }
  void validate(const rt::Comm& comm) const;
  std::string key() const;
};

// --- the sum type ------------------------------------------------------------

/// One descriptor for any collective in the family. Implicitly
/// constructible from each member type; kind()/key()/validate() dispatch.
class OpDesc {
 public:
  using Variant =
      std::variant<AlltoallDesc, AlltoallvDesc, AllgatherDesc, AllreduceDesc>;

  OpDesc(AlltoallDesc d) : v_(std::move(d)) {}    // NOLINT(google-explicit-constructor)
  OpDesc(AlltoallvDesc d) : v_(std::move(d)) {}   // NOLINT(google-explicit-constructor)
  OpDesc(AllgatherDesc d) : v_(std::move(d)) {}   // NOLINT(google-explicit-constructor)
  OpDesc(AllreduceDesc d) : v_(std::move(d)) {}   // NOLINT(google-explicit-constructor)

  OpKind kind() const noexcept {
    return static_cast<OpKind>(static_cast<int>(v_.index()));
  }

  /// Process-stable cache key: op tag + every execution-relevant field of
  /// the descriptor (including the explicit algorithm choice, if any).
  std::string key() const;

  /// Throws std::invalid_argument on size/contract violations against
  /// `comm` (count-vector lengths, null combiners, ...).
  void validate(const rt::Comm& comm) const;

  const Variant& v() const noexcept { return v_; }
  /// Typed accessors; throw std::bad_variant_access on kind mismatch.
  const AlltoallDesc& alltoall() const { return std::get<AlltoallDesc>(v_); }
  const AlltoallvDesc& alltoallv() const { return std::get<AlltoallvDesc>(v_); }
  const AllgatherDesc& allgather() const { return std::get<AllgatherDesc>(v_); }
  const AllreduceDesc& allreduce() const { return std::get<AllreduceDesc>(v_); }

 private:
  Variant v_;
};

}  // namespace mca2a::coll
