#include "coll_ext/allgather.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/scratch.hpp"

namespace mca2a::coll {

rt::Task<void> allgather_ring(rt::Comm& comm, rt::ConstView send,
                              rt::MutView recv, int tag_stream) {
  co_await rt::allgather(comm, send, recv, tag_stream);
}

rt::Task<void> allgather_bruck(rt::Comm& comm, rt::ConstView send,
                               rt::MutView recv, rt::ScratchArena* scratch,
                               int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kExtAllgatherBruck, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t block = send.len;
  if (recv.len < block * static_cast<std::size_t>(p)) {
    throw std::invalid_argument("allgather_bruck: receive buffer too small");
  }
  // tmp block i holds the contribution of rank (me + i) mod p.
  rt::ScratchBuffer tmp =
      rt::alloc_scratch(comm, scratch, block * static_cast<std::size_t>(p));
  comm.copy_and_charge(tmp.view(0, block), send);
  int have = 1;
  for (int pof2 = 1; have < p; pof2 <<= 1) {
    const int dst = (me - pof2 + p) % p;
    const int src = (me + pof2) % p;
    const int chunk = std::min(have, p - have);
    co_await comm.sendrecv(
        rt::ConstView(tmp.view(0, static_cast<std::size_t>(chunk) * block)),
        dst, kTag,
        tmp.view(static_cast<std::size_t>(have) * block,
                 static_cast<std::size_t>(chunk) * block),
        src, kTag);
    have += chunk;
  }
  // Rotate into rank order: contribution of rank r sits at (r - me) mod p.
  for (int i = 0; i < p; ++i) {
    comm.copy_and_charge(recv.sub(((me + i) % p) * block, block),
                         rt::ConstView(tmp.view(i * block, block)));
  }
}

rt::Task<void> allgather_hierarchical(const rt::LocalityComms& lc,
                                      rt::ConstView send, rt::MutView recv,
                                      rt::ScratchArena* scratch,
                                      int tag_stream) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  const int g = lc.group_size;
  const std::size_t block = send.len;
  const std::size_t total = block * static_cast<std::size_t>(world.size());
  if (recv.len < total) {
    throw std::invalid_argument(
        "allgather_hierarchical: receive buffer too small");
  }

  // Gather the group's blocks at the leader...
  rt::ScratchBuffer agg;
  if (lc.is_leader) {
    agg = rt::alloc_scratch(world, scratch,
                            static_cast<std::size_t>(g) * block);
  }
  co_await rt::gather(local, send, agg.view(), /*root=*/0, scratch,
                      tag_stream);

  // ...leaders allgather aggregated blocks (leaders' group_cross covers all
  // regions in region-major order, which equals world rank order)...
  if (lc.is_leader) {
    co_await rt::allgather(*lc.group_cross, rt::ConstView(agg.view()), recv,
                           tag_stream);
  }
  // ...and every group broadcasts the full result.
  co_await rt::bcast(local, recv, /*root=*/0, tag_stream);
}

rt::Task<void> allgather_locality_aware(const rt::LocalityComms& lc,
                                        rt::ConstView send, rt::MutView recv,
                                        rt::ScratchArena* scratch,
                                        int tag_stream) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  const int g = lc.group_size;
  const std::size_t block = send.len;
  const std::size_t total = block * static_cast<std::size_t>(world.size());
  if (recv.len < total) {
    throw std::invalid_argument(
        "allgather_locality_aware: receive buffer too small");
  }

  // Phase 1: everyone aggregates their group's blocks.
  rt::ScratchBuffer agg =
      rt::alloc_scratch(world, scratch, static_cast<std::size_t>(g) * block);
  co_await rt::allgather(local, send, agg.view(), tag_stream);

  // Phase 2: exchange group aggregates across regions. Region j's blocks
  // land at offset j*g*block, which is exactly world order.
  co_await rt::allgather(*lc.group_cross, rt::ConstView(agg.view()), recv,
                         tag_stream);
}

}  // namespace mca2a::coll
