#pragma once
/// \file allgather.hpp
/// Allgather algorithms — the paper's §5 future work ("we plan to extend
/// this work by applying this approach on other HPC critical collectives
/// (allgather, broadcast, ...)"), following the locality-aware allgather of
/// Bienz, Gautam & Kharel (EuroMPI '22), the paper's reference [1].
///
/// Every rank contributes `send` (one block); `recv` must hold
/// size() * send.len bytes and ends up identical everywhere, ordered by
/// rank.
///
/// Variants:
///   * ring          — p-1 neighbor steps, bandwidth-optimal.
///   * bruck         — ceil(log2 p) doubling steps, latency-optimal.
///   * hierarchical  — gather to group leaders, allgather among leaders,
///                     broadcast within the group.
///   * locality_aware— allgather within the group, then an inter-region
///                     allgather of aggregated group blocks (region-major
///                     regions tile the world, so the result lands in rank
///                     order with no final shuffle).

#include "runtime/collectives.hpp"
#include "runtime/comm.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/task.hpp"

namespace mca2a::coll {

/// Ring allgather (alias of the runtime building block, re-exported here so
/// the extension API is complete). Allocates nothing.
rt::Task<void> allgather_ring(rt::Comm& comm, rt::ConstView send,
                              rt::MutView recv, int tag_stream = 0);

/// Bruck (recursive doubling) allgather: log2 p steps. The rotation buffer
/// recycles through `scratch` when given (persistent plans pass theirs).
rt::Task<void> allgather_bruck(rt::Comm& comm, rt::ConstView send,
                               rt::MutView recv,
                               rt::ScratchArena* scratch = nullptr,
                               int tag_stream = 0);

/// Hierarchical allgather over a locality bundle. `scratch` as for Bruck.
rt::Task<void> allgather_hierarchical(const rt::LocalityComms& lc,
                                      rt::ConstView send, rt::MutView recv,
                                      rt::ScratchArena* scratch = nullptr,
                                      int tag_stream = 0);

/// Locality-aware allgather: intra-group aggregation, then inter-region
/// exchange among same-position ranks (every rank participates; no
/// broadcast phase). `scratch` as for Bruck.
rt::Task<void> allgather_locality_aware(const rt::LocalityComms& lc,
                                        rt::ConstView send, rt::MutView recv,
                                        rt::ScratchArena* scratch = nullptr,
                                        int tag_stream = 0);

}  // namespace mca2a::coll
