#include "coll_ext/op_desc.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace mca2a::coll {

namespace {

/// FNV-1a over a size_t sequence; compresses alltoallv count vectors into
/// the key without embedding every entry (the low-order totals are included
/// alongside, so a collision would additionally need matching sums).
std::uint64_t fnv1a(const std::vector<std::size_t>& values) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t v : values) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace

std::string_view op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kAlltoall:
      return "alltoall";
    case OpKind::kAlltoallv:
      return "alltoallv";
    case OpKind::kAllgather:
      return "allgather";
    case OpKind::kAllreduce:
      return "allreduce";
    case OpKind::kCount_:
      break;
  }
  return "?";
}

std::string_view op_kind_tag(OpKind k) {
  switch (k) {
    case OpKind::kAlltoall:
      return "a2a";
    case OpKind::kAlltoallv:
      return "a2av";
    case OpKind::kAllgather:
      return "ag";
    case OpKind::kAllreduce:
      return "ar";
    case OpKind::kCount_:
      break;
  }
  return "?";
}

std::optional<OpKind> op_kind_from_tag(std::string_view tag) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    const auto k = static_cast<OpKind>(i);
    if (op_kind_tag(k) == tag) {
      return k;
    }
  }
  return std::nullopt;
}

int num_algos(OpKind k) {
  switch (k) {
    case OpKind::kAlltoall:
      return kNumAlgos;
    case OpKind::kAlltoallv:
      return kNumAlltoallvAlgos;
    case OpKind::kAllgather:
      return kNumAllgatherAlgos;
    case OpKind::kAllreduce:
      return kNumAllreduceAlgos;
    case OpKind::kCount_:
      break;
  }
  return 0;
}

std::string_view allgather_algo_name(AllgatherAlgo a) {
  switch (a) {
    case AllgatherAlgo::kRing:
      return "Ring";
    case AllgatherAlgo::kBruck:
      return "Bruck";
    case AllgatherAlgo::kHierarchical:
      return "Hierarchical";
    case AllgatherAlgo::kLocalityAware:
      return "Locality-Aware";
    case AllgatherAlgo::kCount_:
      break;
  }
  return "?";
}

bool needs_locality(AllgatherAlgo a) {
  return a == AllgatherAlgo::kHierarchical ||
         a == AllgatherAlgo::kLocalityAware;
}

std::string_view allreduce_algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling:
      return "Recursive Doubling";
    case AllreduceAlgo::kRabenseifner:
      return "Rabenseifner";
    case AllreduceAlgo::kNodeAware:
      return "Node-Aware";
    case AllreduceAlgo::kCount_:
      break;
  }
  return "?";
}

bool needs_locality(AllreduceAlgo a) { return a == AllreduceAlgo::kNodeAware; }

std::string_view alltoallv_algo_name(AlltoallvAlgo a) {
  switch (a) {
    case AlltoallvAlgo::kPairwise:
      return "Pairwise";
    case AlltoallvAlgo::kNonblocking:
      return "Nonblocking";
    case AlltoallvAlgo::kHierarchical:
      return "Hierarchical";
    case AlltoallvAlgo::kMultileaderNodeAware:
      return "Multileader Node-Aware";
    case AlltoallvAlgo::kCount_:
      break;
  }
  return "?";
}

bool needs_locality(AlltoallvAlgo a) {
  return a == AlltoallvAlgo::kHierarchical ||
         a == AlltoallvAlgo::kMultileaderNodeAware;
}

bool needs_leader_comms(AlltoallvAlgo a) {
  return a == AlltoallvAlgo::kMultileaderNodeAware;
}

double AlltoallvSkew::imbalance(int ranks) const {
  if (total_bytes == 0 || ranks <= 0) {
    return 1.0;
  }
  const double mean = static_cast<double>(total_bytes) /
                      (static_cast<double>(ranks) * ranks);
  return mean > 0.0 ? static_cast<double>(max_bytes) / mean : 1.0;
}

AlltoallvSkew estimate_alltoallv_skew(
    std::span<const std::size_t> send_counts,
    std::span<const std::size_t> recv_counts) {
  AlltoallvSkew sk;
  std::size_t row = 0;
  for (std::size_t c : send_counts) {
    row += c;
    sk.max_bytes = std::max(sk.max_bytes, c);
  }
  for (std::size_t c : recv_counts) {
    sk.max_bytes = std::max(sk.max_bytes, c);
  }
  // This rank sees one row (its sends) of the matrix; assume the other
  // rows carry comparable volume.
  sk.total_bytes = row * std::max<std::size_t>(send_counts.size(), 1);
  return sk;
}

// --- AlltoallDesc ------------------------------------------------------------

void AlltoallDesc::validate(const rt::Comm& comm) const {
  (void)comm;  // any block size is exchangeable on any communicator
  if (algo && (*algo < Algo::kSystemMpi || *algo >= Algo::kCount_)) {
    throw std::invalid_argument("AlltoallDesc: algorithm out of range");
  }
}

std::string AlltoallDesc::key() const {
  std::string k = "a2a:b=" + std::to_string(block);
  if (algo) {
    k += ",alg=" + std::to_string(static_cast<int>(*algo));
  }
  return k;
}

// --- AlltoallvDesc -----------------------------------------------------------

std::size_t AlltoallvDesc::send_total() const {
  std::size_t t = 0;
  for (std::size_t c : send_counts) {
    t += c;
  }
  return t;
}

std::size_t AlltoallvDesc::recv_total() const {
  std::size_t t = 0;
  for (std::size_t c : recv_counts) {
    t += c;
  }
  return t;
}

void AlltoallvDesc::validate(const rt::Comm& comm) const {
  const auto p = static_cast<std::size_t>(comm.size());
  if (send_counts.size() != p || recv_counts.size() != p) {
    throw std::invalid_argument(
        "AlltoallvDesc: counts must have one entry per rank (got send " +
        std::to_string(send_counts.size()) + ", recv " +
        std::to_string(recv_counts.size()) + " for " + std::to_string(p) +
        " ranks)");
  }
  if (algo && (*algo < AlltoallvAlgo::kPairwise ||
               *algo >= AlltoallvAlgo::kCount_)) {
    throw std::invalid_argument("AlltoallvDesc: algorithm out of range");
  }
}

std::string AlltoallvDesc::key() const {
  std::string k = "a2av:p=" + std::to_string(send_counts.size()) +
                  ",st=" + std::to_string(send_total()) +
                  ",rt=" + std::to_string(recv_total()) +
                  ",h=" + std::to_string(fnv1a(send_counts)) + "." +
                  std::to_string(fnv1a(recv_counts));
  if (algo) {
    k += ",alg=" + std::to_string(static_cast<int>(*algo));
  } else if (skew) {
    // The skew signature feeds the tuner, so two descriptors differing only
    // in it can resolve to different algorithms — it must not alias.
    k += ",sk=" + std::to_string(skew->total_bytes) + "." +
         std::to_string(skew->max_bytes);
  }
  return k;
}

// --- AllgatherDesc -----------------------------------------------------------

void AllgatherDesc::validate(const rt::Comm& comm) const {
  (void)comm;
  if (algo &&
      (*algo < AllgatherAlgo::kRing || *algo >= AllgatherAlgo::kCount_)) {
    throw std::invalid_argument("AllgatherDesc: algorithm out of range");
  }
}

std::string AllgatherDesc::key() const {
  std::string k = "ag:b=" + std::to_string(block);
  if (algo) {
    k += ",alg=" + std::to_string(static_cast<int>(*algo));
  }
  return k;
}

// --- AllreduceDesc -----------------------------------------------------------

void AllreduceDesc::validate(const rt::Comm& comm) const {
  (void)comm;
  if (combiner.fn == nullptr) {
    throw std::invalid_argument("AllreduceDesc: combiner must be set");
  }
  if (combiner.elem_size == 0) {
    throw std::invalid_argument("AllreduceDesc: element size must be >= 1");
  }
  if (algo && (*algo < AllreduceAlgo::kRecursiveDoubling ||
               *algo >= AllreduceAlgo::kCount_)) {
    throw std::invalid_argument("AllreduceDesc: algorithm out of range");
  }
}

std::string AllreduceDesc::key() const {
  // The combiner's function pointer distinguishes sum/max/min plans of the
  // same shape; it is stable within a process, which is all the plan cache
  // needs (tuning tables use only the op tag and payload size).
  std::string k = "ar:n=" + std::to_string(count) +
                  ",e=" + std::to_string(combiner.elem_size) + ",cb=" +
                  std::to_string(reinterpret_cast<std::uintptr_t>(combiner.fn));
  if (algo) {
    k += ",alg=" + std::to_string(static_cast<int>(*algo));
  }
  return k;
}

// --- OpDesc ------------------------------------------------------------------

std::string OpDesc::key() const {
  return std::visit([](const auto& d) { return d.key(); }, v_);
}

void OpDesc::validate(const rt::Comm& comm) const {
  std::visit([&comm](const auto& d) { d.validate(comm); }, v_);
}

}  // namespace mca2a::coll
