#include "coll_ext/alltoallv.hpp"

#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mca2a::coll {

namespace {

/// Metric-name tag per vector algorithm (alltoallv_algo_name() is the
/// human display string).
std::string_view alltoallv_algo_tag(AlltoallvAlgo a) {
  switch (a) {
    case AlltoallvAlgo::kPairwise:
      return "pairwise";
    case AlltoallvAlgo::kNonblocking:
      return "nonblocking";
    case AlltoallvAlgo::kHierarchical:
      return "hierarchical";
    case AlltoallvAlgo::kMultileaderNodeAware:
      return "multileader_node_aware";
    case AlltoallvAlgo::kCount_:
      break;
  }
  return "unknown";
}

struct VAlgoBytes {
  obs::Counter* bytes[static_cast<int>(AlltoallvAlgo::kCount_)];
  VAlgoBytes() {
    for (int a = 0; a < static_cast<int>(AlltoallvAlgo::kCount_); ++a) {
      bytes[a] = &obs::metrics().counter(
          std::string("coll.v_bytes_by_algo.") +
          std::string(alltoallv_algo_tag(static_cast<AlltoallvAlgo>(a))));
    }
  }
};

VAlgoBytes& valgo_bytes() {
  static VAlgoBytes b;
  return b;
}

void check_args(const rt::Comm& comm, rt::ConstView send,
                std::span<const std::size_t> send_counts,
                std::span<const std::size_t> send_displs, rt::MutView recv,
                std::span<const std::size_t> recv_counts,
                std::span<const std::size_t> recv_displs) {
  const auto p = static_cast<std::size_t>(comm.size());
  if (send_counts.size() != p || send_displs.size() != p ||
      recv_counts.size() != p || recv_displs.size() != p) {
    throw std::invalid_argument("alltoallv: counts/displs must have one "
                                "entry per rank");
  }
  for (std::size_t r = 0; r < p; ++r) {
    if (send_displs[r] + send_counts[r] > send.len) {
      throw std::out_of_range("alltoallv: send block out of range");
    }
    if (recv_displs[r] + recv_counts[r] > recv.len) {
      throw std::out_of_range("alltoallv: recv block out of range");
    }
  }
}

}  // namespace

std::vector<std::size_t> displs_from_counts(
    std::span<const std::size_t> counts) {
  std::vector<std::size_t> displs(counts.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    displs[i] = off;
    off += counts[i];
  }
  return displs;
}

bool alltoallv_dense_layout(std::span<const std::size_t> counts,
                            std::span<const std::size_t> displs) {
  std::size_t off = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (displs[i] != off) {
      return false;
    }
    off += counts[i];
  }
  return true;
}

rt::Task<void> alltoallv_inner(Inner inner, rt::Comm& comm, rt::ConstView send,
                               std::span<const std::size_t> send_counts,
                               std::span<const std::size_t> send_displs,
                               rt::MutView recv,
                               std::span<const std::size_t> recv_counts,
                               std::span<const std::size_t> recv_displs,
                               int tag_stream) {
  if (inner == Inner::kPairwise) {
    co_await alltoallv_pairwise(comm, send, send_counts, send_displs, recv,
                                recv_counts, recv_displs, tag_stream);
  } else {
    co_await alltoallv_nonblocking(comm, send, send_counts, send_displs, recv,
                                   recv_counts, recv_displs, tag_stream);
  }
}

rt::Task<void> run_alltoallv(AlltoallvAlgo algo, rt::Comm& world,
                             const rt::LocalityComms* lc, rt::ConstView send,
                             std::span<const std::size_t> send_counts,
                             std::span<const std::size_t> send_displs,
                             rt::MutView recv,
                             std::span<const std::size_t> recv_counts,
                             std::span<const std::size_t> recv_displs,
                             const Options& opts) {
  if (needs_locality(algo) && lc == nullptr) {
    throw std::invalid_argument(
        "run_alltoallv: this algorithm needs a LocalityComms bundle");
  }
  const std::size_t total_send = std::accumulate(
      send_counts.begin(), send_counts.end(), std::size_t{0});
  valgo_bytes().bytes[static_cast<int>(algo)]->add(total_send);
  obs::Span dispatch_span(
      world.tracer(), alltoallv_algo_name(algo), "coll.alltoallv",
      opts.tag_stream, {{"bytes", static_cast<std::int64_t>(total_send)}});
  switch (algo) {
    case AlltoallvAlgo::kPairwise:
      co_await alltoallv_pairwise(world, send, send_counts, send_displs, recv,
                                  recv_counts, recv_displs, opts.tag_stream);
      co_return;
    case AlltoallvAlgo::kNonblocking:
      co_await alltoallv_nonblocking(world, send, send_counts, send_displs,
                                     recv, recv_counts, recv_displs,
                                     opts.tag_stream);
      co_return;
    case AlltoallvAlgo::kHierarchical:
      co_await alltoallv_hierarchical(*lc, send, send_counts, send_displs,
                                      recv, recv_counts, recv_displs, opts);
      co_return;
    case AlltoallvAlgo::kMultileaderNodeAware:
      co_await alltoallv_multileader_node_aware(*lc, send, send_counts,
                                                send_displs, recv, recv_counts,
                                                recv_displs, opts);
      co_return;
    case AlltoallvAlgo::kCount_:
      break;
  }
  throw std::invalid_argument("run_alltoallv: unknown algorithm");
}

rt::Task<void> alltoallv_pairwise(rt::Comm& comm, rt::ConstView send,
                                  std::span<const std::size_t> send_counts,
                                  std::span<const std::size_t> send_displs,
                                  rt::MutView recv,
                                  std::span<const std::size_t> recv_counts,
                                  std::span<const std::size_t> recv_displs,
                                  int tag_stream) {
  check_args(comm, send, send_counts, send_displs, recv, recv_counts,
             recv_displs);
  const int kTag = rt::tags::make(rt::tags::kExtAlltoallv, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  comm.copy_and_charge(recv.sub(recv_displs[me], recv_counts[me]),
                       send.sub(send_displs[me], send_counts[me]));
  for (int i = 1; i < p; ++i) {
    const int dst = (me + i) % p;
    const int src = (me - i + p) % p;
    co_await comm.sendrecv(send.sub(send_displs[dst], send_counts[dst]), dst,
                           kTag,
                           recv.sub(recv_displs[src], recv_counts[src]), src,
                           kTag);
  }
}

rt::Task<void> alltoallv_nonblocking(rt::Comm& comm, rt::ConstView send,
                                     std::span<const std::size_t> send_counts,
                                     std::span<const std::size_t> send_displs,
                                     rt::MutView recv,
                                     std::span<const std::size_t> recv_counts,
                                     std::span<const std::size_t> recv_displs,
                                     int tag_stream) {
  check_args(comm, send, send_counts, send_displs, recv, recv_counts,
             recv_displs);
  const int kTag = rt::tags::make(rt::tags::kExtAlltoallv, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  comm.copy_and_charge(recv.sub(recv_displs[me], recv_counts[me]),
                       send.sub(send_displs[me], send_counts[me]));
  std::vector<rt::Request> reqs;
  reqs.reserve(2 * (p - 1));
  for (int i = 1; i < p; ++i) {
    const int src = (me - i + p) % p;
    reqs.push_back(
        comm.irecv(recv.sub(recv_displs[src], recv_counts[src]), src, kTag));
  }
  for (int i = 1; i < p; ++i) {
    const int dst = (me + i) % p;
    reqs.push_back(
        comm.isend(send.sub(send_displs[dst], send_counts[dst]), dst, kTag));
  }
  co_await comm.wait_all(reqs);
}

}  // namespace mca2a::coll
