#include "coll_ext/allreduce.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "runtime/scratch.hpp"

namespace mca2a::coll {

namespace {

/// Fold `in` into `acc` when both are real; always charge the arithmetic
/// (modelled at the packing rate — one pass over the data).
void combine(rt::Comm& comm, rt::MutView acc, rt::ConstView in,
             const Combiner& op) {
  if (acc.len != in.len) {
    throw std::invalid_argument("allreduce: combine length mismatch");
  }
  if (acc.ptr != nullptr && in.ptr != nullptr && acc.len > 0) {
    op.fn(acc.ptr, in.ptr, acc.len / op.elem_size);
  }
  comm.charge_copy(acc.len);
}

}  // namespace

rt::Task<void> reduce_binomial(rt::Comm& comm, rt::MutView data, Combiner op,
                               int root, rt::ScratchArena* scratch,
                               int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kExtAllreduce, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  if (root < 0 || root >= n) {
    throw std::out_of_range("reduce: root out of range");
  }
  const int vr = (me - root + n) % n;
  rt::ScratchBuffer tmp = rt::alloc_scratch(comm, scratch, data.len);
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vr & mask) {
      const int parent = ((vr - mask) + root) % n;
      co_await comm.send(rt::ConstView(data), parent, kTag);
      co_return;
    }
    const int child = vr + mask;
    if (child < n) {
      co_await comm.recv(tmp.view(0, data.len), (child + root) % n, kTag);
      combine(comm, data, rt::ConstView(tmp.view(0, data.len)), op);
    }
  }
}

rt::Task<void> allreduce_recursive_doubling(rt::Comm& comm, rt::MutView data,
                                            Combiner op,
                                            rt::ScratchArena* scratch,
                                            int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kExtAllreduce, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  rt::ScratchBuffer tmp = rt::alloc_scratch(comm, scratch, data.len);

  // Fold the surplus beyond the largest power of two (MPICH scheme):
  // of the first 2*rem ranks, evens park their data with the odd neighbor.
  int pof2 = 1;
  while (pof2 * 2 <= p) {
    pof2 *= 2;
  }
  const int rem = p - pof2;
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      co_await comm.send(rt::ConstView(data), me + 1, kTag);
      newrank = -1;  // idle during the doubling rounds
    } else {
      co_await comm.recv(tmp.view(0, data.len), me - 1, kTag);
      combine(comm, data, rt::ConstView(tmp.view(0, data.len)), op);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      co_await comm.sendrecv(rt::ConstView(data), partner, kTag,
                             tmp.view(0, data.len), partner, kTag);
      combine(comm, data, rt::ConstView(tmp.view(0, data.len)), op);
    }
  }

  // Return results to the parked even ranks.
  if (me < 2 * rem) {
    if (me % 2 == 1) {
      co_await comm.send(rt::ConstView(data), me - 1, kTag);
    } else {
      co_await comm.recv(data, me + 1, kTag);
    }
  }
}

rt::Task<void> allreduce_rabenseifner(rt::Comm& comm, rt::MutView data,
                                      Combiner op, rt::ScratchArena* scratch,
                                      int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kExtAllreduce, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  const std::size_t elems = data.len / op.elem_size;
  if (elems * op.elem_size != data.len) {
    throw std::invalid_argument(
        "allreduce_rabenseifner: buffer not a whole number of elements");
  }
  if (static_cast<std::size_t>(p) > elems && p > 1) {
    throw std::invalid_argument(
        "allreduce_rabenseifner: fewer elements than ranks (use recursive "
        "doubling)");
  }
  if (p == 1) {
    co_return;
  }

  // Element ranges per chunk: base elements each, first `extra` get one more.
  const std::size_t base = elems / p;
  const std::size_t extra = elems % p;
  auto chunk_begin = [&](int c) {
    return static_cast<std::size_t>(c) * base +
           std::min<std::size_t>(c, extra);
  };
  auto chunk_bytes = [&](int c) {
    return (base + (static_cast<std::size_t>(c) < extra ? 1 : 0)) *
           op.elem_size;
  };
  auto chunk_view = [&](int c) {
    return data.sub(chunk_begin(c) * op.elem_size, chunk_bytes(c));
  };

  rt::ScratchBuffer tmp =
      rt::alloc_scratch(comm, scratch, (base + 1) * op.elem_size);
  const int right = (me + 1) % p;
  const int left = (me - 1 + p) % p;

  // Ring reduce-scatter: after p-1 steps rank r owns chunk (r+1) mod p.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = (me - s + p) % p;
    const int recv_c = (me - s - 1 + p) % p;
    co_await comm.sendrecv(rt::ConstView(chunk_view(send_c)), right, kTag,
                           tmp.view(0, chunk_bytes(recv_c)), left, kTag);
    combine(comm, chunk_view(recv_c),
            rt::ConstView(tmp.view(0, chunk_bytes(recv_c))), op);
  }

  // Ring allgather of the reduced chunks.
  for (int s = 0; s < p - 1; ++s) {
    const int send_c = (me + 1 - s + p) % p;
    const int recv_c = (me - s + p) % p;
    co_await comm.sendrecv(rt::ConstView(chunk_view(send_c)), right, kTag,
                           chunk_view(recv_c), left, kTag);
  }
}

rt::Task<void> allreduce_node_aware(const rt::LocalityComms& lc,
                                    rt::MutView data, Combiner op,
                                    rt::ScratchArena* scratch,
                                    int tag_stream) {
  rt::Comm& local = *lc.local_comm;
  // Reduce each group's contribution at its leader...
  co_await reduce_binomial(local, data, op, /*root=*/0, scratch, tag_stream);
  // ...combine across all region leaders (their group_cross covers every
  // region, hence every rank's data)...
  if (lc.is_leader) {
    co_await allreduce_recursive_doubling(*lc.group_cross, data, op, scratch,
                                          tag_stream);
  }
  // ...and distribute the result within each group.
  co_await rt::bcast(local, data, /*root=*/0, tag_stream);
}

}  // namespace mca2a::coll
