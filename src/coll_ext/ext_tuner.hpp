#pragma once
/// \file ext_tuner.hpp
/// Closed-form algorithm selection for the extension collectives, mirroring
/// core/tuner for all-to-all: evaluate a critical-path estimate of every
/// (algorithm, group size) candidate from the same model::NetParams the
/// simulator charges, and pick the fastest. This is what lets
/// plan::make_plan resolve `algo = nullopt` family-wide — the paper's §5
/// dynamic selection applied to the allgather ([1]), allreduce ([3]) and
/// alltoallv extensions as well.
///
/// The alltoallv selection is *skew-aware*: its input is an AlltoallvSkew
/// signature (total bytes + max/mean imbalance factor) rather than a block
/// size. Pairwise exchange synchronizes on the heaviest transfer of every
/// step, so its estimate scales with the imbalance; the locality
/// algorithms aggregate many (src, dst) pairs per message, which averages
/// the skew away — at high imbalance the leader funnels win even after
/// paying for their count-metadata exchange. See docs/tuning.md.

#include <cstddef>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::coll {

/// Closed-form time estimate for one allgather variant; `block` is the
/// per-rank contribution in bytes, `group_size` the locality group width
/// (ignored by the flat variants).
double predict_allgather_seconds(AllgatherAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net,
                                 std::size_t block, int group_size);

/// Closed-form time estimate for one allreduce variant; `bytes` is the
/// whole vector (count * elem_size).
double predict_allreduce_seconds(AllreduceAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net, std::size_t bytes,
                                 int group_size);

/// Closed-form time estimate for one alltoallv variant under `skew`.
/// `group_size` is the leader-group width (ignored by the direct
/// variants). The estimate covers the count-metadata exchange too.
double predict_alltoallv_seconds(AlltoallvAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net,
                                 const AlltoallvSkew& skew, int group_size);

struct AllgatherChoice {
  AllgatherAlgo algo = AllgatherAlgo::kRing;
  int group_size = 1;
  double predicted_seconds = 0.0;
};

struct AllreduceChoice {
  AllreduceAlgo algo = AllreduceAlgo::kRecursiveDoubling;
  int group_size = 1;
  double predicted_seconds = 0.0;
};

/// Pick the fastest allgather (algorithm, group size) for a per-rank block
/// of `block` bytes. Candidate group sizes default to {4, 8, 16, ppn}
/// filtered to divisors of ppn, like coll::select_algorithm.
AllgatherChoice select_allgather_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, std::vector<int> candidate_group_sizes = {});

/// Candidate pruning for measurement-driven selection (autotune/), the
/// allgather twin of coll::rank_alltoall_candidates: every combination
/// select_allgather_algorithm scores, sorted by predicted time and pruned
/// to within `plausible_factor` of the best, at most `max_candidates`. The
/// head is exactly select_allgather_algorithm's choice.
std::vector<AllgatherChoice> rank_allgather_candidates(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, double plausible_factor = 4.0,
    std::size_t max_candidates = 4);

/// Pick the fastest allreduce (algorithm, group size) for `count` elements
/// of `elem_size` bytes. Rabenseifner is only considered when count >=
/// total ranks (its algorithmic requirement).
AllreduceChoice select_allreduce_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t count, std::size_t elem_size,
    std::vector<int> candidate_group_sizes = {});

struct AlltoallvChoice {
  AlltoallvAlgo algo = AlltoallvAlgo::kPairwise;
  int group_size = 1;
  double predicted_seconds = 0.0;
  /// The max/mean imbalance factor the decision was made for.
  double imbalance = 1.0;
};

/// Pick the fastest alltoallv (algorithm, group size) for a traffic shape
/// summarized by `skew` (see AlltoallvSkew for the cross-rank agreement
/// contract). Candidate group sizes as for the other selectors.
AlltoallvChoice select_alltoallv_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    const AlltoallvSkew& skew, std::vector<int> candidate_group_sizes = {});

/// Quantized size class a skew signature falls into — the TuningTable key
/// for alltoallv entries (one decision per class, and coarse enough that
/// ranks estimating the signature locally still land in the same class):
/// bits [8..) hold ceil(log2(total_bytes + 1)), bits [0..8) the imbalance
/// bucket round(4 * log2(max/mean)).
std::size_t alltoallv_size_class(const topo::Machine& machine,
                                 const AlltoallvSkew& skew);

}  // namespace mca2a::coll
