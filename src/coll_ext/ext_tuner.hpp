#pragma once
/// \file ext_tuner.hpp
/// Closed-form algorithm selection for the extension collectives, mirroring
/// core/tuner for all-to-all: evaluate a critical-path estimate of every
/// (algorithm, group size) candidate from the same model::NetParams the
/// simulator charges, and pick the fastest. This is what lets
/// plan::make_plan resolve `algo = nullopt` family-wide — the paper's §5
/// dynamic selection applied to the allgather ([1]) and allreduce ([3])
/// extensions as well.

#include <cstddef>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::coll {

/// Closed-form time estimate for one allgather variant; `block` is the
/// per-rank contribution in bytes, `group_size` the locality group width
/// (ignored by the flat variants).
double predict_allgather_seconds(AllgatherAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net,
                                 std::size_t block, int group_size);

/// Closed-form time estimate for one allreduce variant; `bytes` is the
/// whole vector (count * elem_size).
double predict_allreduce_seconds(AllreduceAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net, std::size_t bytes,
                                 int group_size);

struct AllgatherChoice {
  AllgatherAlgo algo = AllgatherAlgo::kRing;
  int group_size = 1;
  double predicted_seconds = 0.0;
};

struct AllreduceChoice {
  AllreduceAlgo algo = AllreduceAlgo::kRecursiveDoubling;
  int group_size = 1;
  double predicted_seconds = 0.0;
};

/// Pick the fastest allgather (algorithm, group size) for a per-rank block
/// of `block` bytes. Candidate group sizes default to {4, 8, 16, ppn}
/// filtered to divisors of ppn, like coll::select_algorithm.
AllgatherChoice select_allgather_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, std::vector<int> candidate_group_sizes = {});

/// Pick the fastest allreduce (algorithm, group size) for `count` elements
/// of `elem_size` bytes. Rabenseifner is only considered when count >=
/// total ranks (its algorithmic requirement).
AllreduceChoice select_allreduce_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t count, std::size_t elem_size,
    std::vector<int> candidate_group_sizes = {});

}  // namespace mca2a::coll
