#include "coll_ext/ext_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/tuner.hpp"
#include "model/cost.hpp"

namespace mca2a::coll {

namespace {

using topo::Level;

/// Latency-chain time for `steps` sequential exchanges at `level` of
/// `msg_bytes` each (the same shape core/tuner uses).
double chain_time(const model::NetParams& net, Level level, double steps,
                  double msg_bytes) {
  const model::LevelParams& l = net.at(level);
  return steps *
         (l.alpha + msg_bytes * l.beta + l.o_send + l.o_recv +
          2.0 * model::cpu_copy_time(net, level,
                                     static_cast<std::size_t>(msg_bytes)));
}

double pack(const model::NetParams& net, double bytes) {
  return bytes * net.pack_beta;
}

}  // namespace

double predict_allgather_seconds(AllgatherAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net,
                                 std::size_t block, int group_size) {
  const int n = machine.nodes();
  const int ppn = machine.ppn();
  const int p = machine.total_ranks();
  const double s = static_cast<double>(block);
  const int g = group_size == 0 ? ppn : group_size;  // 0 = one group per node
  if (g < 1 || ppn % g != 0) {
    throw std::invalid_argument(
        "predict_allgather: group size must divide ppn");
  }
  const int nreg = n * (ppn / g);

  switch (algo) {
    case AllgatherAlgo::kRing:
      // p-1 neighbor steps of one block each; the ring crosses node
      // boundaries n times per lap but every step waits for the slowest
      // (network) link, so charge the network level throughout.
      return chain_time(net, Level::kNetwork, static_cast<double>(p - 1), s);
    case AllgatherAlgo::kBruck: {
      // ceil(log2 p) doubling steps moving 1, 2, 4, ... blocks; total
      // volume (p-1) blocks, total latency log2 p network alphas.
      const double steps = std::ceil(std::log2(std::max(2, p)));
      const double vol = static_cast<double>(p - 1) * s;
      return chain_time(net, Level::kNetwork, steps, vol / steps) +
             pack(net, 2.0 * static_cast<double>(p) * s);
    }
    case AllgatherAlgo::kHierarchical: {
      // Gather g blocks to the leader, leaders ring-allgather aggregated
      // g-blocks over nreg regions, broadcast the p-block result locally.
      const double gather =
          chain_time(net, Level::kNuma, std::ceil(std::log2(std::max(2, g))),
                     static_cast<double>(g) * s / 2.0);
      const double leaders =
          chain_time(net, Level::kNetwork, static_cast<double>(nreg - 1),
                     static_cast<double>(g) * s);
      const double bc =
          chain_time(net, Level::kNuma, std::ceil(std::log2(std::max(2, g))),
                     static_cast<double>(p) * s);
      return gather + leaders + bc;
    }
    case AllgatherAlgo::kLocalityAware: {
      // Intra-group allgather of single blocks, then every rank joins an
      // inter-region allgather of g-blocks — no broadcast phase.
      const double intra =
          chain_time(net, Level::kNuma, static_cast<double>(g - 1), s);
      const double inter =
          chain_time(net, Level::kNetwork, static_cast<double>(nreg - 1),
                     static_cast<double>(g) * s);
      return intra + inter;
    }
    case AllgatherAlgo::kCount_:
      break;
  }
  throw std::invalid_argument("predict_allgather: unknown algorithm");
}

double predict_allreduce_seconds(AllreduceAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net, std::size_t bytes,
                                 int group_size) {
  const int ppn = machine.ppn();
  const int p = machine.total_ranks();
  const double v = static_cast<double>(bytes);
  const int g = group_size == 0 ? ppn : group_size;
  if (g < 1 || ppn % g != 0) {
    throw std::invalid_argument(
        "predict_allreduce: group size must divide ppn");
  }
  const int nreg = machine.nodes() * (ppn / g);
  // Element-wise combining is charged at the repack rate (one pass).
  const auto combine = [&](double b) { return pack(net, b); };

  switch (algo) {
    case AllreduceAlgo::kRecursiveDoubling: {
      const double rounds = std::ceil(std::log2(std::max(2, p)));
      return rounds * (chain_time(net, Level::kNetwork, 1.0, v) + combine(v));
    }
    case AllreduceAlgo::kRabenseifner: {
      // Ring reduce-scatter then ring allgather: 2(p-1) steps of v/p bytes,
      // combining v*(p-1)/p bytes along the way.
      const double chunk = v / static_cast<double>(p);
      const double steps = 2.0 * static_cast<double>(p - 1);
      return chain_time(net, Level::kNetwork, steps, chunk) +
             combine(chunk * static_cast<double>(p - 1));
    }
    case AllreduceAlgo::kNodeAware: {
      // Binomial reduce to the group leader, recursive doubling among the
      // nreg leaders, binomial broadcast back — all on the full vector.
      const double local_rounds = std::ceil(std::log2(std::max(2, g)));
      const double leader_rounds = std::ceil(std::log2(std::max(2, nreg)));
      return local_rounds *
                 (chain_time(net, Level::kNuma, 1.0, v) + combine(v)) +
             leader_rounds *
                 (chain_time(net, Level::kNetwork, 1.0, v) + combine(v)) +
             local_rounds * chain_time(net, Level::kNuma, 1.0, v);
    }
    case AllreduceAlgo::kCount_:
      break;
  }
  throw std::invalid_argument("predict_allreduce: unknown algorithm");
}

double predict_alltoallv_seconds(AlltoallvAlgo algo,
                                 const topo::Machine& machine,
                                 const model::NetParams& net,
                                 const AlltoallvSkew& skew, int group_size) {
  const int p = machine.total_ranks();
  const int ppn = machine.ppn();
  const double mean =
      p > 0 ? static_cast<double>(skew.total_bytes) /
                  (static_cast<double>(p) * p)
            : 0.0;
  const double imb = skew.imbalance(p);
  const auto fixed = [&](Algo a, double block, int g) {
    return predict_alltoall_seconds(
        a, machine, net, static_cast<std::size_t>(std::max(0.0, block)), g);
  };
  // Skew model: interpolate between the uniform estimate at the mean block
  // and the (pessimistic) one at the max block. `exposure` is how much of
  // the worst case an algorithm actually sees: pairwise synchronizes on
  // the heaviest transfer of many steps (1/2); nonblocking pays the hot
  // transfer once, through one NIC (1/8); the locality funnels carry hot
  // pairs inside aggregated blocks whose sizes concentrate around the mean
  // (1/16).
  const auto skewed = [&](Algo a, int g, double exposure) {
    const double at_mean = fixed(a, mean, g);
    return at_mean + exposure * (fixed(a, mean * imb, g) - at_mean);
  };
  // The count-metadata exchange the locality variants prepay: a regular
  // alltoall of per-peer byte counts through the same leader structure.
  const auto count_cost = [&](Algo a, int g) {
    return fixed(a, static_cast<double>(sizeof(std::size_t)), g);
  };

  switch (algo) {
    case AlltoallvAlgo::kPairwise:
      return skewed(Algo::kPairwiseDirect, ppn, 0.5);
    case AlltoallvAlgo::kNonblocking:
      return skewed(Algo::kNonblockingDirect, ppn, 0.125);
    case AlltoallvAlgo::kHierarchical: {
      const Algo a =
          group_size == ppn ? Algo::kHierarchical : Algo::kMultileader;
      return skewed(a, group_size, 1.0 / 16.0) + count_cost(a, group_size);
    }
    case AlltoallvAlgo::kMultileaderNodeAware:
      return skewed(Algo::kMultileaderNodeAware, group_size, 1.0 / 16.0) +
             count_cost(Algo::kMultileaderNodeAware, group_size);
    case AlltoallvAlgo::kCount_:
      break;
  }
  throw std::invalid_argument("predict_alltoallv: unknown algorithm");
}

AlltoallvChoice select_alltoallv_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    const AlltoallvSkew& skew, std::vector<int> candidate_group_sizes) {
  const int ppn = machine.ppn();
  AlltoallvChoice best;
  best.imbalance = skew.imbalance(machine.total_ranks());
  best.predicted_seconds = std::numeric_limits<double>::infinity();
  const auto consider = [&](AlltoallvAlgo a, int g) {
    const double t = predict_alltoallv_seconds(a, machine, net, skew, g);
    if (t < best.predicted_seconds) {
      best.algo = a;
      best.group_size = g;
      best.predicted_seconds = t;
    }
  };
  consider(AlltoallvAlgo::kPairwise, ppn);
  consider(AlltoallvAlgo::kNonblocking, ppn);
  consider(AlltoallvAlgo::kHierarchical, ppn);
  for (int g : candidate_groups(machine, std::move(candidate_group_sizes))) {
    if (g < ppn) {
      consider(AlltoallvAlgo::kHierarchical, g);
      consider(AlltoallvAlgo::kMultileaderNodeAware, g);
    }
  }
  return best;
}

std::size_t alltoallv_size_class(const topo::Machine& machine,
                                 const AlltoallvSkew& skew) {
  std::size_t tb = 0;
  while (tb < 63 && (std::size_t{1} << tb) < skew.total_bytes + 1) {
    ++tb;
  }
  const double imb = skew.imbalance(machine.total_ranks());
  const auto ib = static_cast<std::size_t>(
      std::min(255.0, std::max(0.0, std::round(4.0 * std::log2(imb)))));
  return (tb << 8) | ib;
}

namespace {

/// Shared enumeration (see core/tuner's enumerate_alltoall_candidates):
/// select_allgather_algorithm and rank_allgather_candidates must agree on
/// candidate order for their tie-breaking to stay identical.
template <typename F>
void enumerate_allgather_candidates(const topo::Machine& machine,
                                    const std::vector<int>& groups,
                                    F&& consider) {
  const int ppn = machine.ppn();
  consider(AllgatherAlgo::kRing, ppn);
  consider(AllgatherAlgo::kBruck, ppn);
  consider(AllgatherAlgo::kHierarchical, ppn);
  for (int g : groups) {
    consider(AllgatherAlgo::kLocalityAware, g);
  }
}

}  // namespace

AllgatherChoice select_allgather_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, std::vector<int> candidate_group_sizes) {
  AllgatherChoice best;
  best.predicted_seconds = std::numeric_limits<double>::infinity();
  enumerate_allgather_candidates(
      machine, candidate_groups(machine, std::move(candidate_group_sizes)),
      [&](AllgatherAlgo a, int g) {
        const double t = predict_allgather_seconds(a, machine, net, block, g);
        if (t < best.predicted_seconds) {
          best = AllgatherChoice{a, g, t};
        }
      });
  return best;
}

std::vector<AllgatherChoice> rank_allgather_candidates(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, double plausible_factor, std::size_t max_candidates) {
  std::vector<AllgatherChoice> all;
  enumerate_allgather_candidates(
      machine, candidate_groups(machine), [&](AllgatherAlgo a, int g) {
        all.push_back(AllgatherChoice{
            a, g, predict_allgather_seconds(a, machine, net, block, g)});
      });
  std::stable_sort(all.begin(), all.end(),
                   [](const AllgatherChoice& x, const AllgatherChoice& y) {
                     return x.predicted_seconds < y.predicted_seconds;
                   });
  const double cutoff =
      all.front().predicted_seconds * std::max(1.0, plausible_factor);
  const std::size_t cap = std::max<std::size_t>(1, max_candidates);
  std::vector<AllgatherChoice> kept;
  for (const AllgatherChoice& c : all) {
    if (kept.size() >= cap || c.predicted_seconds > cutoff) {
      break;
    }
    kept.push_back(c);
  }
  return kept;
}

AllreduceChoice select_allreduce_algorithm(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t count, std::size_t elem_size,
    std::vector<int> candidate_group_sizes) {
  const int p = machine.total_ranks();
  const std::size_t bytes = count * elem_size;
  AllreduceChoice best;
  best.predicted_seconds = std::numeric_limits<double>::infinity();
  const auto consider = [&](AllreduceAlgo a, int g) {
    const double t = predict_allreduce_seconds(a, machine, net, bytes, g);
    if (t < best.predicted_seconds) {
      best = AllreduceChoice{a, g, t};
    }
  };
  consider(AllreduceAlgo::kRecursiveDoubling, machine.ppn());
  if (count >= static_cast<std::size_t>(p)) {
    consider(AllreduceAlgo::kRabenseifner, machine.ppn());
  }
  for (int g : candidate_groups(machine, std::move(candidate_group_sizes))) {
    consider(AllreduceAlgo::kNodeAware, g);
  }
  return best;
}

}  // namespace mca2a::coll
