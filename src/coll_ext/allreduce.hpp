#pragma once
/// \file allreduce.hpp
/// Allreduce algorithms — the AI-critical collective of the paper's §5
/// future work, with the node-aware structure of Bienz, Olson & Gropp
/// (ExaMPI '19), the paper's reference [3].
///
/// Data is a typed contiguous vector reduced element-wise across all ranks;
/// every rank ends with the full reduction. Reductions run through a
/// type-erased Combiner so the exchange code is written once.
///
/// With virtual buffers (simulator at scale) the arithmetic is skipped but
/// every exchange and combine is still charged to the clock, so timing
/// studies work; the numerical result is only defined for real buffers.
///
/// Variants:
///   * recursive_doubling — log2 p rounds on the full vector (small data).
///   * reduce_scatter + allgather (Rabenseifner) — bandwidth-optimal for
///     large vectors; requires the element count to be >= size().
///   * node_aware — binomial reduce to the group leader, recursive doubling
///     among leaders, broadcast back (reference [3]'s structure over the
///     same locality bundle the all-to-all algorithms use).

#include <cstdint>

#include "runtime/collectives.hpp"
#include "runtime/comm.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/task.hpp"

namespace mca2a::coll {

/// Type-erased element-wise reduction: fold `count` elements of `in` into
/// `acc`. `elem_size` is carried alongside for block arithmetic.
struct Combiner {
  void (*fn)(std::byte* acc, const std::byte* in, std::size_t count) = nullptr;
  std::size_t elem_size = 1;
};

namespace detail {
template <typename T, typename Op>
void combine_impl(std::byte* acc, const std::byte* in, std::size_t count) {
  T* a = reinterpret_cast<T*>(acc);
  const T* b = reinterpret_cast<const T*>(in);
  Op op;
  for (std::size_t i = 0; i < count; ++i) {
    a[i] = op(a[i], b[i]);
  }
}
template <typename T>
struct SumOp {
  T operator()(T a, T b) const { return a + b; }
};
template <typename T>
struct MaxOp {
  T operator()(T a, T b) const { return a > b ? a : b; }
};
template <typename T>
struct MinOp {
  T operator()(T a, T b) const { return a < b ? a : b; }
};
}  // namespace detail

/// Element-wise sum / max / min combiners for arithmetic T.
template <typename T>
Combiner sum_combiner() {
  return Combiner{&detail::combine_impl<T, detail::SumOp<T>>, sizeof(T)};
}
template <typename T>
Combiner max_combiner() {
  return Combiner{&detail::combine_impl<T, detail::MaxOp<T>>, sizeof(T)};
}
template <typename T>
Combiner min_combiner() {
  return Combiner{&detail::combine_impl<T, detail::MinOp<T>>, sizeof(T)};
}

/// Recursive doubling on the whole vector (`data` is input and output).
/// The receive staging buffer recycles through `scratch` when given
/// (persistent plans pass theirs).
rt::Task<void> allreduce_recursive_doubling(rt::Comm& comm, rt::MutView data,
                                            Combiner op,
                                            rt::ScratchArena* scratch = nullptr,
                                            int tag_stream = 0);

/// Rabenseifner: ring reduce-scatter then ring allgather. Requires
/// data.len / op.elem_size >= size(). `scratch` as above.
rt::Task<void> allreduce_rabenseifner(rt::Comm& comm, rt::MutView data,
                                      Combiner op,
                                      rt::ScratchArena* scratch = nullptr,
                                      int tag_stream = 0);

/// Node-/locality-aware allreduce over a locality bundle: binomial reduce
/// to each group leader, recursive doubling among leaders, binomial
/// broadcast back. `scratch` as above.
rt::Task<void> allreduce_node_aware(const rt::LocalityComms& lc,
                                    rt::MutView data, Combiner op,
                                    rt::ScratchArena* scratch = nullptr,
                                    int tag_stream = 0);

/// Binomial-tree reduction to `root` (building block, also exposed for
/// tests): after completion `data` at root holds the reduction; other
/// ranks' buffers are clobbered with partial results. `scratch` as above.
rt::Task<void> reduce_binomial(rt::Comm& comm, rt::MutView data, Combiner op,
                               int root,
                               rt::ScratchArena* scratch = nullptr,
                               int tag_stream = 0);

}  // namespace mca2a::coll
