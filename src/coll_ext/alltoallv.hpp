#pragma once
/// \file alltoallv.hpp
/// Variable-count all-to-all (MPI_Alltoallv) — the irregular counterpart
/// the paper's related-work section discusses ([12], [7]) — including the
/// locality-aware family that extends the paper's Algorithms 3 and 5 to
/// vector exchanges (graph exchange, sparse FFT, MoE token shuffle).
///
/// Counts and displacements are in bytes; each rank may send a different
/// amount to every peer. recv_counts must match the peers' send_counts
/// (like MPI, this is the callers' collective contract; a mismatch surfaces
/// as truncation or deadlock).
///
/// Four algorithms:
///  * alltoallv_pairwise / alltoallv_nonblocking — direct exchanges, data
///    oblivious (they also run on virtual payloads in the simulator).
///  * alltoallv_hierarchical / alltoallv_multileader_node_aware — the
///    locality algorithms: members funnel their payload through group
///    leaders, leaders exchange aggregated per-region (or per-node) blocks,
///    then scatter back. Because the aggregated block sizes depend on the
///    data distribution, both begin with a *count-metadata exchange* (a
///    gather of member count vectors plus an inner regular alltoall of
///    per-peer byte counts among leaders) before any payload moves. That
///    metadata must genuinely travel, so these two require a data-carrying
///    transport — real buffers on either backend; virtual-payload
///    simulation throws std::invalid_argument.
///
/// All staging (counts and payload alike) recycles through
/// Options::scratch when set, so a persistent plan (plan/plan.hpp) executes
/// warm with zero arena allocations.

#include <span>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "runtime/comm.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/task.hpp"

namespace mca2a::coll {

/// Contiguous displacements for `counts` (exclusive prefix sum).
std::vector<std::size_t> displs_from_counts(std::span<const std::size_t> counts);

/// True when `displs` are exactly the exclusive prefix sums of `counts`
/// (blocks packed contiguously in peer order — the layout CollectivePlan
/// uses and the locality algorithms forward without staging).
bool alltoallv_dense_layout(std::span<const std::size_t> counts,
                            std::span<const std::size_t> displs);

/// Pairwise-exchange alltoallv: p-1 synchronized sendrecv steps.
rt::Task<void> alltoallv_pairwise(rt::Comm& comm, rt::ConstView send,
                                  std::span<const std::size_t> send_counts,
                                  std::span<const std::size_t> send_displs,
                                  rt::MutView recv,
                                  std::span<const std::size_t> recv_counts,
                                  std::span<const std::size_t> recv_displs,
                                  int tag_stream = 0);

/// Fully nonblocking alltoallv: post everything, wait once.
rt::Task<void> alltoallv_nonblocking(rt::Comm& comm, rt::ConstView send,
                                     std::span<const std::size_t> send_counts,
                                     std::span<const std::size_t> send_displs,
                                     rt::MutView recv,
                                     std::span<const std::size_t> recv_counts,
                                     std::span<const std::size_t> recv_displs,
                                     int tag_stream = 0);

/// Dispatch the direct exchange used *inside* the locality algorithms for
/// their aggregated-payload phases (Inner::kBruck maps to nonblocking: a
/// Bruck rotation needs equal blocks).
rt::Task<void> alltoallv_inner(Inner inner, rt::Comm& comm, rt::ConstView send,
                               std::span<const std::size_t> send_counts,
                               std::span<const std::size_t> send_displs,
                               rt::MutView recv,
                               std::span<const std::size_t> recv_counts,
                               std::span<const std::size_t> recv_displs,
                               int tag_stream = 0);

// --- locality algorithms (vector Algorithms 3 and 5) -------------------------

/// Vector Algorithm 3: members send their counts then their (densely
/// packed) payload to the group leader; leaders exchange per-region count
/// matrices through an inner regular alltoall, then the aggregated
/// variable-size region blocks; leaders scatter per-member results back.
/// group_size == ppn is the classic single-leader hierarchical variant,
/// smaller groups the multi-leader one. Uses Options::inner for the leader
/// exchanges, Options::scratch for all staging, Options::trace for
/// per-phase timings (leaders only, like the fixed-size algorithm).
rt::Task<void> alltoallv_hierarchical(const rt::LocalityComms& lc,
                                      rt::ConstView send,
                                      std::span<const std::size_t> send_counts,
                                      std::span<const std::size_t> send_displs,
                                      rt::MutView recv,
                                      std::span<const std::size_t> recv_counts,
                                      std::span<const std::size_t> recv_displs,
                                      const Options& opts = {});

/// Vector Algorithm 5: gather to the node's G leaders, node-aware exchange
/// of per-destination-node aggregates among same-group leaders across nodes
/// (one message per node pair per leader), redistribution among a node's
/// leaders, scatter. Each payload phase is preceded by the matching count
/// exchange. Needs a bundle built with leader communicators.
rt::Task<void> alltoallv_multileader_node_aware(
    const rt::LocalityComms& lc, rt::ConstView send,
    std::span<const std::size_t> send_counts,
    std::span<const std::size_t> send_displs, rt::MutView recv,
    std::span<const std::size_t> recv_counts,
    std::span<const std::size_t> recv_displs, const Options& opts = {});

/// Run any AlltoallvAlgo with uniform arguments. `lc` may be null for the
/// direct algorithms and must be a bundle built over `world` when given
/// (the locality variants run on its sub-communicators, the direct ones
/// on `world` itself).
rt::Task<void> run_alltoallv(AlltoallvAlgo algo, rt::Comm& world,
                             const rt::LocalityComms* lc, rt::ConstView send,
                             std::span<const std::size_t> send_counts,
                             std::span<const std::size_t> send_displs,
                             rt::MutView recv,
                             std::span<const std::size_t> recv_counts,
                             std::span<const std::size_t> recv_displs,
                             const Options& opts = {});

}  // namespace mca2a::coll
