#pragma once
/// \file alltoallv.hpp
/// Variable-count all-to-all (MPI_Alltoallv), the irregular counterpart the
/// paper's related-work section discusses ([12], [7]). Counts and
/// displacements are in bytes; each rank may send a different amount to
/// every peer. recv_counts must match the peers' send_counts (like MPI,
/// this is the caller's contract; a mismatch surfaces as truncation or
/// deadlock).

#include <span>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/task.hpp"

namespace mca2a::coll {

/// Contiguous displacements for `counts` (exclusive prefix sum).
std::vector<std::size_t> displs_from_counts(std::span<const std::size_t> counts);

/// Pairwise-exchange alltoallv: p-1 synchronized sendrecv steps.
rt::Task<void> alltoallv_pairwise(rt::Comm& comm, rt::ConstView send,
                                  std::span<const std::size_t> send_counts,
                                  std::span<const std::size_t> send_displs,
                                  rt::MutView recv,
                                  std::span<const std::size_t> recv_counts,
                                  std::span<const std::size_t> recv_displs,
                                  int tag_stream = 0);

/// Fully nonblocking alltoallv: post everything, wait once.
rt::Task<void> alltoallv_nonblocking(rt::Comm& comm, rt::ConstView send,
                                     std::span<const std::size_t> send_counts,
                                     std::span<const std::size_t> send_displs,
                                     rt::MutView recv,
                                     std::span<const std::size_t> recv_counts,
                                     std::span<const std::size_t> recv_displs,
                                     int tag_stream = 0);

}  // namespace mca2a::coll
