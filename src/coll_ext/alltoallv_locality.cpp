/// \file alltoallv_locality.cpp
/// Locality-aware variable-count all-to-all: the vector counterparts of the
/// paper's Algorithms 3 (hierarchical / multi-leader) and 5 (multi-leader
/// node-aware).
///
/// The fixed-size algorithms know every block size a priori; here the
/// aggregated message sizes depend on the data distribution, so each
/// payload phase is preceded by the matching *count-metadata* exchange:
///
///   1. members gather their per-peer byte-count vectors at the group
///      leader (an equal-block rt::gather of p counts);
///   2. leaders run an inner *regular* alltoall of per-peer count matrices
///      (fixed block: g*g counts for the hierarchical leader exchange,
///      g*ppn / n*g*g counts for the two phases of the node-aware one);
///   3. only then do the variable-size aggregated payloads move.
///
/// Payload funnels (member -> leader and back) are variable-size, so they
/// use dedicated gatherv/scatterv point-to-point fan-ins on tags
/// kExtAlltoallvGatherv / kExtAlltoallvScatterv. Every staging buffer —
/// count matrices included — recycles through Options::scratch; sizes are
/// a pure function of the (fixed) count vectors, so a persistent plan's
/// warm executions allocate nothing from the arena.
///
/// Because the count metadata must genuinely travel, these algorithms
/// require a data-carrying transport: real user buffers, and a backend
/// that delivers bytes (the threads backend always, the simulator only
/// with carry_data). Virtual payloads throw std::invalid_argument — the
/// direct pairwise/nonblocking variants remain the data-oblivious choice.

#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "coll_ext/alltoallv.hpp"
#include "obs/trace.hpp"
#include "runtime/collectives.hpp"
#include "runtime/scratch.hpp"

namespace mca2a::coll {

namespace {

using SizeSpan = std::span<const std::size_t>;

std::size_t sum_counts(SizeSpan counts) {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

void check_vector_args(const rt::Comm& world, rt::ConstView send,
                       SizeSpan send_counts, SizeSpan send_displs,
                       rt::MutView recv, SizeSpan recv_counts,
                       SizeSpan recv_displs) {
  const auto p = static_cast<std::size_t>(world.size());
  if (send_counts.size() != p || send_displs.size() != p ||
      recv_counts.size() != p || recv_displs.size() != p) {
    throw std::invalid_argument(
        "alltoallv: counts/displs must have one entry per rank");
  }
  for (std::size_t r = 0; r < p; ++r) {
    if (send_displs[r] + send_counts[r] > send.len) {
      throw std::out_of_range("alltoallv: send block out of range");
    }
    if (recv_displs[r] + recv_counts[r] > recv.len) {
      throw std::out_of_range("alltoallv: recv block out of range");
    }
  }
  if (send.is_virtual() || recv.is_virtual()) {
    throw std::invalid_argument(
        "alltoallv: the locality algorithms route count metadata through "
        "the payload path and need real buffers (virtual-payload "
        "simulation is only supported by the direct variants)");
  }
}

/// Counts live in scratch byte buffers (so they recycle like payload);
/// view them as size_t arrays. Buffer::real memory is new[]-aligned, which
/// is sufficient for std::size_t.
std::size_t* counts_of(rt::ScratchBuffer& b) {
  return reinterpret_cast<std::size_t*>(b.data());
}

constexpr std::size_t kC = sizeof(std::size_t);

/// Throws when the transport cannot deliver the count metadata (scratch
/// allocated through a virtual-buffer communicator).
void require_carrying(const rt::ScratchBuffer& counts, std::size_t bytes) {
  if (bytes > 0 && counts.data() == nullptr) {
    throw std::invalid_argument(
        "alltoallv: locality algorithms need a data-carrying transport "
        "(enable carry_data on the simulator)");
  }
}

/// Member-side dense send staging: the leader funnel ships one contiguous
/// message per member, so a gappy user layout is packed first.
struct DenseSend {
  rt::ScratchBuffer stage;  ///< holds the packed bytes when staging happened
  rt::ConstView view;       ///< what to forward (== send when already dense)
};

DenseSend make_dense_send(rt::Comm& world, rt::ScratchArena* scratch,
                          rt::ConstView send, SizeSpan counts,
                          SizeSpan displs, std::size_t total) {
  DenseSend d;
  if (alltoallv_dense_layout(counts, displs)) {
    d.view = send.sub(0, total);
    return d;
  }
  d.stage = rt::alloc_scratch(world, scratch, total);
  std::size_t off = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    rt::copy_bytes(d.stage.view(off, counts[r]), send.sub(displs[r], counts[r]));
    off += counts[r];
  }
  world.charge_copy(total);
  d.view = d.stage.view();
  return d;
}

/// Member-side result unpack: the leader delivers one dense source-ordered
/// block; spread it to the user's displacements (no copy when the target
/// is the staging buffer itself — callers pass recv directly when dense).
void unpack_dense_recv(rt::Comm& world, rt::ConstView dense, rt::MutView recv,
                       SizeSpan counts, SizeSpan displs) {
  std::size_t off = 0;
  for (std::size_t r = 0; r < counts.size(); ++r) {
    rt::copy_bytes(recv.sub(displs[r], counts[r]), dense.sub(off, counts[r]));
    off += counts[r];
  }
  world.charge_copy(off);
}

/// Non-leader body shared by both algorithms: ship counts (via the
/// collective gather below), payload to the leader, then await the dense
/// source-ordered result.
rt::Task<void> member_exchange(const rt::LocalityComms& lc, rt::ConstView send,
                              SizeSpan send_counts, SizeSpan send_displs,
                              rt::MutView recv, SizeSpan recv_counts,
                              SizeSpan recv_displs, const Options& opts) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  const std::size_t stotal = sum_counts(send_counts);
  const std::size_t rtotal = sum_counts(recv_counts);
  const int gather_tag =
      rt::tags::make(rt::tags::kExtAlltoallvGatherv, opts.tag_stream);
  const int scatter_tag =
      rt::tags::make(rt::tags::kExtAlltoallvScatterv, opts.tag_stream);

  DenseSend ds = make_dense_send(world, opts.scratch, send, send_counts,
                                 send_displs, stotal);
  co_await local.send(ds.view, /*dst=*/0, gather_tag);

  const bool dense_recv = alltoallv_dense_layout(recv_counts, recv_displs);
  if (dense_recv) {
    co_await local.recv(recv.sub(0, rtotal), /*src=*/0, scatter_tag);
    co_return;
  }
  rt::ScratchBuffer stage = rt::alloc_scratch(world, opts.scratch, rtotal);
  co_await local.recv(stage.view(), /*src=*/0, scatter_tag);
  unpack_dense_recv(world, rt::ConstView(stage.view()), recv, recv_counts,
                    recv_displs);
}

/// What the shared funnel prologue hands the leader-side algorithm body.
struct FunnelIngest {
  /// True when this rank is a member whose whole exchange (payload to the
  /// leader, dense result back) was already handled — the caller returns.
  bool is_member = false;
  rt::ScratchBuffer cnt_all;               ///< leaders: cnt[i * p + w]
  std::vector<std::size_t> member_totals;  ///< leaders: per-member send bytes
  std::vector<std::size_t> member_off;
  rt::ScratchBuffer gathered;              ///< leaders: members' dense payload
};

/// Leader-side variable gather: receive each member's dense payload at its
/// offset (member totals come from the already-gathered count matrix).
rt::Task<void> gatherv_payload(rt::Comm& world, rt::Comm& local,
                               rt::ConstView my_dense, rt::MutView gathered,
                               const std::vector<std::size_t>& member_offsets,
                               const std::vector<std::size_t>& member_totals,
                               int tag) {
  std::vector<rt::Request> reqs;
  reqs.reserve(member_totals.size());
  for (std::size_t i = 1; i < member_totals.size(); ++i) {
    reqs.push_back(local.irecv(
        gathered.sub(member_offsets[i], member_totals[i]), static_cast<int>(i),
        tag));
  }
  world.copy_and_charge(gathered.sub(member_offsets[0], member_totals[0]),
                        my_dense);
  co_await local.wait_all(reqs);
}

/// Leader-side variable scatter: ship member m its dense block; unpack the
/// leader's own slice into its user recv buffer.
rt::Task<void> scatterv_payload(rt::Comm& world, rt::Comm& local,
                                rt::ConstView packed,
                                const std::vector<std::size_t>& member_offsets,
                                const std::vector<std::size_t>& member_totals,
                                rt::MutView recv, SizeSpan recv_counts,
                                SizeSpan recv_displs, int tag) {
  std::vector<rt::Request> reqs;
  reqs.reserve(member_totals.size());
  for (std::size_t m = 1; m < member_totals.size(); ++m) {
    reqs.push_back(local.isend(
        packed.sub(member_offsets[m], member_totals[m]), static_cast<int>(m),
        tag));
  }
  unpack_dense_recv(world, packed.sub(member_offsets[0], member_totals[0]),
                    recv, recv_counts, recv_displs);
  co_await local.wait_all(reqs);
}

/// The funnel prologue both locality algorithms share: gather every
/// member's count vector at the group leader, handle the member early path
/// entirely (payload up, dense result down), and — at leaders — gather the
/// members' dense payloads. The kGather phase window (count + payload
/// gather) is recorded here; `trace` must already be leader-filtered.
rt::Task<FunnelIngest> funnel_ingest(const rt::LocalityComms& lc,
                                     rt::ConstView send, SizeSpan send_counts,
                                     SizeSpan send_displs, rt::MutView recv,
                                     SizeSpan recv_counts,
                                     SizeSpan recv_displs, const Options& opts,
                                     Trace* trace) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  const auto P = static_cast<std::size_t>(world.size());
  const int g = lc.group_size;
  const int gather_tag =
      rt::tags::make(rt::tags::kExtAlltoallvGatherv, opts.tag_stream);

  FunnelIngest in;
  rt::ScratchBuffer cnt_mine = rt::alloc_scratch(world, opts.scratch, P * kC);
  require_carrying(cnt_mine, P * kC);
  std::memcpy(cnt_mine.data(), send_counts.data(), P * kC);
  if (lc.is_leader) {
    in.cnt_all = rt::alloc_scratch(world, opts.scratch,
                                   static_cast<std::size_t>(g) * P * kC);
  }
  obs::TraceBuffer* tb = world.tracer();
  obs::Span gather_span(tb, "gather", "phase", opts.tag_stream,
                        {{"leader", lc.is_leader ? 1 : 0}});
  const double t0 = world.now();
  co_await rt::gather(local, rt::ConstView(cnt_mine.view()),
                      in.cnt_all.view(), /*root=*/0, opts.scratch,
                      opts.tag_stream);

  if (!lc.is_leader) {
    gather_span.close();
    obs::Span sp(tb, "member-exchange", "phase", opts.tag_stream);
    co_await member_exchange(lc, send, send_counts, send_displs, recv,
                             recv_counts, recv_displs, opts);
    in.is_member = true;
    co_return in;
  }

  const std::size_t* cnt = counts_of(in.cnt_all);  // cnt[i*p + w]
  in.member_totals.resize(g);
  for (int i = 0; i < g; ++i) {
    in.member_totals[i] =
        sum_counts(SizeSpan(cnt + static_cast<std::size_t>(i) * P, P));
  }
  in.member_off = displs_from_counts(in.member_totals);
  in.gathered = rt::alloc_scratch(
      world, opts.scratch, in.member_off.back() + in.member_totals.back());
  DenseSend ds = make_dense_send(world, opts.scratch, send, send_counts,
                                 send_displs, in.member_totals[0]);
  co_await gatherv_payload(world, local, ds.view, in.gathered.view(),
                           in.member_off, in.member_totals, gather_tag);
  gather_span.close();
  if (trace) trace->add(Phase::kGather, world.now() - t0);
  co_return in;
}

}  // namespace

rt::Task<void> alltoallv_hierarchical(const rt::LocalityComms& lc,
                                      rt::ConstView send,
                                      SizeSpan send_counts,
                                      SizeSpan send_displs, rt::MutView recv,
                                      SizeSpan recv_counts,
                                      SizeSpan recv_displs,
                                      const Options& opts) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  check_vector_args(world, send, send_counts, send_displs, recv, recv_counts,
                    recv_displs);
  const int p = world.size();
  const int g = lc.group_size;
  const int nreg = lc.regions();
  const std::size_t P = static_cast<std::size_t>(p);
  // Leaders only, like the fixed-size algorithm: a member's phase times
  // would mostly measure waiting for its leader.
  Trace* trace = lc.is_leader ? opts.trace : nullptr;
  obs::TraceBuffer* tb = world.tracer();
  const int scatter_tag =
      rt::tags::make(rt::tags::kExtAlltoallvScatterv, opts.tag_stream);

  // --- count gather + payload funnel (members return inside) ---------------
  FunnelIngest in = co_await funnel_ingest(lc, send, send_counts, send_displs,
                                           recv, recv_counts, recv_displs,
                                           opts, trace);
  if (in.is_member) {
    co_return;
  }
  const std::size_t* cnt = counts_of(in.cnt_all);  // cnt[i*p + w]
  const std::vector<std::size_t>& member_off = in.member_off;
  rt::ScratchBuffer& gathered = in.gathered;
  double t0 = 0.0;

  // --- count alltoall among leaders (block g*g counts) ----------------------
  const std::size_t gg = static_cast<std::size_t>(g) * g;
  rt::ScratchBuffer csend =
      rt::alloc_scratch(world, opts.scratch, nreg * gg * kC);
  rt::ScratchBuffer crecv =
      rt::alloc_scratch(world, opts.scratch, nreg * gg * kC);
  std::size_t* cs = counts_of(csend);
  for (int j = 0; j < nreg; ++j) {
    for (int i = 0; i < g; ++i) {
      for (int d = 0; d < g; ++d) {
        cs[(static_cast<std::size_t>(j) * g + i) * g + d] =
            cnt[static_cast<std::size_t>(i) * P + j * g + d];
      }
    }
  }
  world.charge_copy(2 * nreg * gg * kC);
  t0 = world.now();
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream, {{"meta", 1}});
    co_await alltoall_inner(opts.inner, *lc.group_cross,
                            rt::ConstView(csend.view()), crecv.view(), gg * kC,
                            opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);
  const std::size_t* cr = counts_of(crecv);  // cr[(j*g + i2)*g + m]

  // --- pack aggregated per-region blocks ------------------------------------
  t0 = world.now();
  std::vector<std::size_t> sb(nreg, 0), rb(nreg, 0);
  for (int j = 0; j < nreg; ++j) {
    for (std::size_t e = 0; e < gg; ++e) {
      sb[j] += cs[static_cast<std::size_t>(j) * gg + e];
      rb[j] += cr[static_cast<std::size_t>(j) * gg + e];
    }
  }
  const std::vector<std::size_t> sbd = displs_from_counts(sb);
  const std::vector<std::size_t> rbd = displs_from_counts(rb);
  rt::ScratchBuffer lsend =
      rt::alloc_scratch(world, opts.scratch, sbd.back() + sb.back());
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    std::vector<std::size_t> cur(member_off);  // per-member read cursor
    std::size_t off = 0;
    for (int j = 0; j < nreg; ++j) {
      for (int i = 0; i < g; ++i) {
        for (int d = 0; d < g; ++d) {
          const std::size_t c =
              cnt[static_cast<std::size_t>(i) * P + j * g + d];
          rt::copy_bytes(lsend.view(off, c), gathered.view(cur[i], c));
          cur[i] += c;
          off += c;
        }
      }
    }
    world.charge_copy(off);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- variable-size leader exchange ----------------------------------------
  t0 = world.now();
  rt::ScratchBuffer lrecv =
      rt::alloc_scratch(world, opts.scratch, rbd.back() + rb.back());
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream,
                 {{"bytes", static_cast<std::int64_t>(sbd.back() + sb.back())}});
    co_await alltoallv_inner(opts.inner, *lc.group_cross,
                             rt::ConstView(lsend.view()), sb, sbd, lrecv.view(),
                             rb, rbd, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);

  // --- repack into per-member, source-ordered scatter blocks ----------------
  t0 = world.now();
  // Absolute offset of chunk (region j, source member i2, my member m) in
  // lrecv, filled in layout order.
  std::vector<std::size_t> coff(static_cast<std::size_t>(nreg) * gg);
  {
    std::size_t off = 0;
    for (std::size_t e = 0; e < coff.size(); ++e) {
      coff[e] = off;
      off += cr[e];
    }
  }
  std::vector<std::size_t> out_totals(g, 0);
  for (int m = 0; m < g; ++m) {
    for (int j = 0; j < nreg; ++j) {
      for (int i2 = 0; i2 < g; ++i2) {
        out_totals[m] += cr[(static_cast<std::size_t>(j) * g + i2) * g + m];
      }
    }
  }
  const std::vector<std::size_t> out_off = displs_from_counts(out_totals);
  rt::ScratchBuffer sc = rt::alloc_scratch(world, opts.scratch,
                                           out_off.back() + out_totals.back());
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    std::size_t off = 0;
    for (int m = 0; m < g; ++m) {
      for (int j = 0; j < nreg; ++j) {
        for (int i2 = 0; i2 < g; ++i2) {
          const std::size_t e = (static_cast<std::size_t>(j) * g + i2) * g + m;
          rt::copy_bytes(sc.view(off, cr[e]), lrecv.view(coff[e], cr[e]));
          off += cr[e];
        }
      }
    }
    world.charge_copy(off);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- scatter ---------------------------------------------------------------
  t0 = world.now();
  {
    obs::Span sp(tb, "scatter", "phase", opts.tag_stream, {{"leader", 1}});
    co_await scatterv_payload(world, local, rt::ConstView(sc.view()), out_off,
                              out_totals, recv, recv_counts, recv_displs,
                              scatter_tag);
  }
  if (trace) trace->add(Phase::kScatter, world.now() - t0);
}

rt::Task<void> alltoallv_multileader_node_aware(
    const rt::LocalityComms& lc, rt::ConstView send, SizeSpan send_counts,
    SizeSpan send_displs, rt::MutView recv, SizeSpan recv_counts,
    SizeSpan recv_displs, const Options& opts) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  check_vector_args(world, send, send_counts, send_displs, recv, recv_counts,
                    recv_displs);
  const int p = world.size();
  const int g = lc.group_size;
  const int G = lc.groups_per_node;
  const int n = lc.nodes();
  const int ppn = lc.ppn();
  const std::size_t P = static_cast<std::size_t>(p);
  Trace* trace = lc.is_leader ? opts.trace : nullptr;
  obs::TraceBuffer* tb = world.tracer();
  const int scatter_tag =
      rt::tags::make(rt::tags::kExtAlltoallvScatterv, opts.tag_stream);

  if (lc.is_leader && (!lc.leader_cross || !lc.leaders_node)) {
    throw std::logic_error(
        "alltoallv_multileader_node_aware: bundle built without leader "
        "comms");
  }

  // --- count gather + payload funnel (members return inside) ---------------
  FunnelIngest in = co_await funnel_ingest(lc, send, send_counts, send_displs,
                                           recv, recv_counts, recv_displs,
                                           opts, trace);
  if (in.is_member) {
    co_return;
  }
  const std::size_t* cnt = counts_of(in.cnt_all);  // cnt[i*p + w]
  const std::vector<std::size_t>& member_off = in.member_off;
  rt::ScratchBuffer& gathered = in.gathered;
  double t0 = 0.0;

  // --- inter-node count alltoall among same-group leaders -------------------
  // Block: g*ppn counts — my g members' bytes for every local rank of the
  // destination node.
  const std::size_t gp = static_cast<std::size_t>(g) * ppn;
  rt::ScratchBuffer c2send = rt::alloc_scratch(world, opts.scratch, n * gp * kC);
  rt::ScratchBuffer c2recv = rt::alloc_scratch(world, opts.scratch, n * gp * kC);
  std::size_t* c2s = counts_of(c2send);
  for (int b2 = 0; b2 < n; ++b2) {
    for (int i = 0; i < g; ++i) {
      for (int d = 0; d < ppn; ++d) {
        c2s[(static_cast<std::size_t>(b2) * g + i) * ppn + d] =
            cnt[static_cast<std::size_t>(i) * P + b2 * ppn + d];
      }
    }
  }
  world.charge_copy(2 * n * gp * kC);
  t0 = world.now();
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream, {{"meta", 1}});
    co_await alltoall_inner(opts.inner, *lc.leader_cross,
                            rt::ConstView(c2send.view()), c2recv.view(),
                            gp * kC, opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);
  const std::size_t* c2r = counts_of(c2recv);  // c2r[(b2*g + i2)*ppn + d]

  // --- pack and exchange per-destination-node aggregates --------------------
  t0 = world.now();
  std::vector<std::size_t> nbs(n, 0), nbr(n, 0);
  for (int b2 = 0; b2 < n; ++b2) {
    for (std::size_t e = 0; e < gp; ++e) {
      nbs[b2] += c2s[static_cast<std::size_t>(b2) * gp + e];
      nbr[b2] += c2r[static_cast<std::size_t>(b2) * gp + e];
    }
  }
  const std::vector<std::size_t> nbsd = displs_from_counts(nbs);
  const std::vector<std::size_t> nbrd = displs_from_counts(nbr);
  rt::ScratchBuffer bsend =
      rt::alloc_scratch(world, opts.scratch, nbsd.back() + nbs.back());
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    std::vector<std::size_t> cur(member_off);
    std::size_t off = 0;
    for (int b2 = 0; b2 < n; ++b2) {
      for (int i = 0; i < g; ++i) {
        for (int d = 0; d < ppn; ++d) {
          const std::size_t c =
              cnt[static_cast<std::size_t>(i) * P + b2 * ppn + d];
          rt::copy_bytes(bsend.view(off, c), gathered.view(cur[i], c));
          cur[i] += c;
          off += c;
        }
      }
    }
    world.charge_copy(off);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);
  t0 = world.now();
  rt::ScratchBuffer brecv =
      rt::alloc_scratch(world, opts.scratch, nbrd.back() + nbr.back());
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream,
                 {{"bytes",
                   static_cast<std::int64_t>(nbsd.back() + nbs.back())}});
    co_await alltoallv_inner(opts.inner, *lc.leader_cross,
                             rt::ConstView(bsend.view()), nbs, nbsd,
                             brecv.view(), nbr, nbrd, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);

  // --- intra-node count alltoall among this node's leaders ------------------
  // Block: n*g*g counts — what I hold from every node's group-k2... members
  // for the destination group's g members.
  t0 = world.now();
  const std::size_t ngg = static_cast<std::size_t>(n) * g * g;
  rt::ScratchBuffer c3send =
      rt::alloc_scratch(world, opts.scratch, G * ngg * kC);
  rt::ScratchBuffer c3recv =
      rt::alloc_scratch(world, opts.scratch, G * ngg * kC);
  std::size_t* c3s = counts_of(c3send);
  for (int k2 = 0; k2 < G; ++k2) {
    for (int b2 = 0; b2 < n; ++b2) {
      for (int i2 = 0; i2 < g; ++i2) {
        for (int e = 0; e < g; ++e) {
          c3s[((static_cast<std::size_t>(k2) * n + b2) * g + i2) * g + e] =
              c2r[(static_cast<std::size_t>(b2) * g + i2) * ppn + k2 * g + e];
        }
      }
    }
  }
  world.charge_copy(2 * G * ngg * kC);
  {
    obs::Span sp(tb, "intra-a2a", "phase", opts.tag_stream, {{"meta", 1}});
    co_await alltoall_inner(opts.inner, *lc.leaders_node,
                            rt::ConstView(c3send.view()), c3recv.view(),
                            ngg * kC, opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kIntraA2A, world.now() - t0);
  const std::size_t* c3r = counts_of(c3recv);  // c3r[((k1*n+b2)*g+i2)*g+e]

  // --- pack and exchange per-leader redistribution blocks -------------------
  t0 = world.now();
  // Absolute offset of chunk (b2, i2, d) in brecv, layout order.
  std::vector<std::size_t> boff(static_cast<std::size_t>(n) * gp);
  {
    std::size_t off = 0;
    for (std::size_t e = 0; e < boff.size(); ++e) {
      boff[e] = off;
      off += c2r[e];
    }
  }
  std::vector<std::size_t> dbs(G, 0), dbr(G, 0);
  for (int k = 0; k < G; ++k) {
    for (std::size_t e = 0; e < ngg; ++e) {
      dbs[k] += c3s[static_cast<std::size_t>(k) * ngg + e];
      dbr[k] += c3r[static_cast<std::size_t>(k) * ngg + e];
    }
  }
  const std::vector<std::size_t> dbsd = displs_from_counts(dbs);
  const std::vector<std::size_t> dbrd = displs_from_counts(dbr);
  rt::ScratchBuffer dsend =
      rt::alloc_scratch(world, opts.scratch, dbsd.back() + dbs.back());
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    std::size_t off = 0;
    for (int k2 = 0; k2 < G; ++k2) {
      for (int b2 = 0; b2 < n; ++b2) {
        for (int i2 = 0; i2 < g; ++i2) {
          for (int e = 0; e < g; ++e) {
            const std::size_t c =
                c3s[((static_cast<std::size_t>(k2) * n + b2) * g + i2) * g + e];
            const std::size_t src =
                boff[(static_cast<std::size_t>(b2) * g + i2) * ppn + k2 * g +
                     e];
            rt::copy_bytes(dsend.view(off, c), brecv.view(src, c));
            off += c;
          }
        }
      }
    }
    world.charge_copy(off);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);
  t0 = world.now();
  rt::ScratchBuffer erecv =
      rt::alloc_scratch(world, opts.scratch, dbrd.back() + dbr.back());
  {
    obs::Span sp(tb, "intra-a2a", "phase", opts.tag_stream,
                 {{"bytes",
                   static_cast<std::int64_t>(dbsd.back() + dbs.back())}});
    co_await alltoallv_inner(opts.inner, *lc.leaders_node,
                             rt::ConstView(dsend.view()), dbs, dbsd,
                             erecv.view(), dbr, dbrd, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kIntraA2A, world.now() - t0);

  // --- repack into per-member, source-ordered scatter blocks ----------------
  t0 = world.now();
  // Absolute offset of chunk (k1, b2, i2, e) in erecv, layout order.
  std::vector<std::size_t> eoff(static_cast<std::size_t>(G) * ngg);
  {
    std::size_t off = 0;
    for (std::size_t e = 0; e < eoff.size(); ++e) {
      eoff[e] = off;
      off += c3r[e];
    }
  }
  std::vector<std::size_t> out_totals(g, 0);
  for (std::size_t e = 0; e < eoff.size(); ++e) {
    out_totals[e % g] += c3r[e];
  }
  const std::vector<std::size_t> out_off = displs_from_counts(out_totals);
  rt::ScratchBuffer sc = rt::alloc_scratch(world, opts.scratch,
                                           out_off.back() + out_totals.back());
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    std::size_t off = 0;
    // Source world rank b2*ppn + k1*g + i2 ascends with (b2, k1, i2).
    for (int e = 0; e < g; ++e) {
      for (int b2 = 0; b2 < n; ++b2) {
        for (int k1 = 0; k1 < G; ++k1) {
          for (int i2 = 0; i2 < g; ++i2) {
            const std::size_t idx =
                ((static_cast<std::size_t>(k1) * n + b2) * g + i2) * g + e;
            rt::copy_bytes(sc.view(off, c3r[idx]),
                           erecv.view(eoff[idx], c3r[idx]));
            off += c3r[idx];
          }
        }
      }
    }
    world.charge_copy(off);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- scatter ---------------------------------------------------------------
  t0 = world.now();
  {
    obs::Span sp(tb, "scatter", "phase", opts.tag_stream, {{"leader", 1}});
    co_await scatterv_payload(world, local, rt::ConstView(sc.view()), out_off,
                              out_totals, recv, recv_counts, recv_displs,
                              scatter_tag);
  }
  if (trace) trace->add(Phase::kScatter, world.now() - t0);
}

}  // namespace mca2a::coll
