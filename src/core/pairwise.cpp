/// \file pairwise.cpp
/// Algorithm 1 of the paper: pairwise exchange. p-1 disjoint steps; at step
/// i, rank r sends to r+i and receives from r-i via a combined sendrecv.
/// One exchange in flight limits contention and queue-search overheads at
/// the price of per-step synchronization with the partner.

#include "core/alltoall.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_pairwise(rt::Comm& comm, rt::ConstView send,
                                 rt::MutView recv, std::size_t block,
                                 int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kAlltoallPairwise, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  // Own block moves locally.
  comm.copy_and_charge(recv.sub(me * block, block),
                       send.sub(me * block, block));
  for (int i = 1; i < p; ++i) {
    const int dst = (me + i) % p;
    const int src = (me - i + p) % p;
    co_await comm.sendrecv(send.sub(dst * block, block), dst, kTag,
                           recv.sub(src * block, block), src, kTag);
  }
}

}  // namespace mca2a::coll
