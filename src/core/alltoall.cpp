#include "core/alltoall.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mca2a::coll {

namespace {

/// Metric-name tag per algorithm (lowercase, no spaces — algo_name() is the
/// human display string).
std::string_view algo_tag(Algo a) {
  switch (a) {
    case Algo::kSystemMpi:
      return "system_mpi";
    case Algo::kHierarchical:
      return "hierarchical";
    case Algo::kMultileader:
      return "multileader";
    case Algo::kNodeAware:
      return "node_aware";
    case Algo::kLocalityAware:
      return "locality_aware";
    case Algo::kMultileaderNodeAware:
      return "multileader_node_aware";
    case Algo::kPairwiseDirect:
      return "pairwise";
    case Algo::kNonblockingDirect:
      return "nonblocking";
    case Algo::kBruckDirect:
      return "bruck";
    case Algo::kBatchedDirect:
      return "batched";
    case Algo::kCount_:
      break;
  }
  return "unknown";
}

/// coll.bytes_by_algo.<tag> counters, resolved once per process so the
/// dispatch path pays a single relaxed add.
struct AlgoBytes {
  obs::Counter* bytes[static_cast<int>(Algo::kCount_)];
  AlgoBytes() {
    for (int a = 0; a < static_cast<int>(Algo::kCount_); ++a) {
      bytes[a] = &obs::metrics().counter(
          std::string("coll.bytes_by_algo.") +
          std::string(algo_tag(static_cast<Algo>(a))));
    }
  }
};

AlgoBytes& algo_bytes() {
  static AlgoBytes b;
  return b;
}

}  // namespace

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::kGather:
      return "gather";
    case Phase::kScatter:
      return "scatter";
    case Phase::kInterA2A:
      return "inter-a2a";
    case Phase::kIntraA2A:
      return "intra-a2a";
    case Phase::kPack:
      return "pack";
    case Phase::kCount_:
      break;
  }
  return "?";
}

std::string_view algo_name(Algo a) {
  switch (a) {
    case Algo::kSystemMpi:
      return "System MPI";
    case Algo::kHierarchical:
      return "Hierarchical";
    case Algo::kMultileader:
      return "Multileader";
    case Algo::kNodeAware:
      return "Node-Aware";
    case Algo::kLocalityAware:
      return "Locality-Aware";
    case Algo::kMultileaderNodeAware:
      return "Multileader + Locality";
    case Algo::kPairwiseDirect:
      return "Pairwise";
    case Algo::kNonblockingDirect:
      return "Nonblocking";
    case Algo::kBruckDirect:
      return "Bruck";
    case Algo::kBatchedDirect:
      return "Batched";
    case Algo::kCount_:
      break;
  }
  return "?";
}

bool needs_locality(Algo a) {
  switch (a) {
    case Algo::kHierarchical:
    case Algo::kMultileader:
    case Algo::kNodeAware:
    case Algo::kLocalityAware:
    case Algo::kMultileaderNodeAware:
      return true;
    default:
      return false;
  }
}

bool needs_leader_comms(Algo a) {
  return a == Algo::kMultileaderNodeAware;
}

rt::Task<void> alltoall_inner(Inner inner, rt::Comm& comm, rt::ConstView send,
                              rt::MutView recv, std::size_t block,
                              rt::ScratchArena* scratch, int tag_stream) {
  switch (inner) {
    case Inner::kPairwise:
      co_await alltoall_pairwise(comm, send, recv, block, tag_stream);
      co_return;
    case Inner::kNonblocking:
      co_await alltoall_nonblocking(comm, send, recv, block, tag_stream);
      co_return;
    case Inner::kBruck:
      co_await alltoall_bruck(comm, send, recv, block, scratch, tag_stream);
      co_return;
  }
  throw std::invalid_argument("alltoall_inner: unknown inner exchange");
}

rt::Task<void> run_alltoall(Algo algo, rt::Comm& world,
                            const rt::LocalityComms* lc, rt::ConstView send,
                            rt::MutView recv, std::size_t block,
                            const Options& opts) {
  if (needs_locality(algo) && lc == nullptr) {
    throw std::invalid_argument(std::string(algo_name(algo)) +
                                " requires a LocalityComms bundle");
  }
  // This rank contributes p*block bytes to the exchange, whatever route the
  // algorithm takes them through.
  algo_bytes().bytes[static_cast<int>(algo)]->add(
      static_cast<std::uint64_t>(world.size()) * block);
  obs::Span dispatch_span(
      world.tracer(), algo_name(algo), "coll.alltoall", opts.tag_stream,
      {{"block", static_cast<std::int64_t>(block)},
       {"bytes", static_cast<std::int64_t>(
                     static_cast<std::size_t>(world.size()) * block)}});
  switch (algo) {
    case Algo::kSystemMpi:
      co_await alltoall_system_mpi(world, send, recv, block, opts);
      co_return;
    case Algo::kHierarchical:
    case Algo::kMultileader:
      co_await alltoall_hierarchical(*lc, send, recv, block, opts);
      co_return;
    case Algo::kNodeAware:
    case Algo::kLocalityAware:
      co_await alltoall_node_aware(*lc, send, recv, block, opts);
      co_return;
    case Algo::kMultileaderNodeAware:
      co_await alltoall_multileader_node_aware(*lc, send, recv, block, opts);
      co_return;
    case Algo::kPairwiseDirect:
      co_await alltoall_pairwise(world, send, recv, block, opts.tag_stream);
      co_return;
    case Algo::kNonblockingDirect:
      co_await alltoall_nonblocking(world, send, recv, block, opts.tag_stream);
      co_return;
    case Algo::kBruckDirect:
      co_await alltoall_bruck(world, send, recv, block, opts.scratch,
                              opts.tag_stream);
      co_return;
    case Algo::kBatchedDirect:
      co_await alltoall_batched(world, send, recv, block, opts.batch_window,
                                opts.tag_stream);
      co_return;
    case Algo::kCount_:
      break;
  }
  throw std::invalid_argument("run_alltoall: unknown algorithm");
}

}  // namespace mca2a::coll
