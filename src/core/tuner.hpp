#pragma once
/// \file tuner.hpp
/// Dynamic algorithm selection (the paper's §5 future work: "explore how
/// the optimal algorithm can be dynamically selected for a given computer,
/// system MPI, process count, and data size").
///
/// predict_alltoall_seconds evaluates a closed-form critical-path estimate
/// of each algorithm family from the same model::NetParams the simulator
/// charges, so selection is consistent with simulated results; tests check
/// that the prediction ranks algorithms the way full simulations do at the
/// extremes (latency-bound small blocks, bandwidth-bound large blocks).

#include <cstddef>
#include <vector>

#include "core/alltoall.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::coll {

/// Closed-form time estimate for one algorithm at one block size.
/// `group_size` is the leader/group width for the locality algorithms
/// (ignored by the direct ones).
double predict_alltoall_seconds(Algo algo, const topo::Machine& machine,
                                const model::NetParams& net,
                                std::size_t block, int group_size);

struct Choice {
  Algo algo = Algo::kNodeAware;
  int group_size = 1;
  double predicted_seconds = 0.0;
};

/// Candidate leader/group widths for the locality algorithms of any
/// collective: `candidates` (default {4, 8, 16, ppn}) filtered to divisors
/// of ppn, falling back to {ppn} when nothing survives. Shared by
/// select_algorithm and the extension tuners (coll_ext/ext_tuner) so the
/// candidate policy cannot drift between collectives.
std::vector<int> candidate_groups(const topo::Machine& machine,
                                  std::vector<int> candidates = {});

/// Pick the fastest (algorithm, group size) combination for `block` bytes
/// per pair. Candidate group sizes default to {4, 8, 16, ppn} filtered to
/// divisors of ppn.
Choice select_algorithm(const topo::Machine& machine,
                        const model::NetParams& net, std::size_t block,
                        std::vector<int> candidate_group_sizes = {});

/// Candidate pruning for measurement-driven selection (autotune/): every
/// (algorithm, group size) combination select_algorithm scores, sorted by
/// predicted time ascending and pruned to the candidates the model
/// considers plausible — within `plausible_factor` of the best prediction,
/// at most `max_candidates` of them. The head is exactly
/// select_algorithm's choice (same enumeration, same tie-breaking), so an
/// online selector that explores this list starts from the model's pick.
std::vector<Choice> rank_alltoall_candidates(const topo::Machine& machine,
                                             const model::NetParams& net,
                                             std::size_t block,
                                             double plausible_factor = 4.0,
                                             std::size_t max_candidates = 4);

}  // namespace mca2a::coll
