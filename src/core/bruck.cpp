/// \file bruck.cpp
/// The Bruck all-to-all [Bruck et al., TPDS 1997]: ceil(log2 p) steps, each
/// moving every block whose index has the step bit set. Latency-optimal
/// (log p messages) at the cost of each byte traveling ~log p / 2 hops,
/// which is why it wins only for small blocks.
///
/// Structure follows the MPICH implementation:
///   phase 1: local rotation   tmp[i] = send[(rank + i) mod p]
///   phase 2: for pof2 = 1,2,4,...: pack blocks with (i & pof2), send to
///            rank + pof2, receive from rank - pof2 into the same slots
///   phase 3: inverse rotation  recv[(rank - i) mod p] = tmp[i]

#include "core/alltoall.hpp"
#include "runtime/scratch.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_bruck(rt::Comm& comm, rt::ConstView send,
                              rt::MutView recv, std::size_t block,
                              rt::ScratchArena* scratch, int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kAlltoallBruck, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();

  rt::ScratchBuffer tmp =
      rt::alloc_scratch(comm, scratch, static_cast<std::size_t>(p) * block);
  // Phase 1: rotate so block i holds data destined for rank (me + i) mod p.
  for (int i = 0; i < p; ++i) {
    comm.copy_and_charge(tmp.view(i * block, block),
                         send.sub(((me + i) % p) * block, block));
  }

  // Phase 2: exchange the blocks whose index has the current bit set. The
  // selected indices are enumerated on the fly (i in [pof2, p) with the
  // pof2 bit set) so a warm persistent plan performs no allocation at all.
  const std::size_t half = (static_cast<std::size_t>(p) / 2 + 1) * block;
  rt::ScratchBuffer pack = rt::alloc_scratch(comm, scratch, half);
  rt::ScratchBuffer unpack = rt::alloc_scratch(comm, scratch, half);
  for (int pof2 = 1; pof2 < p; pof2 <<= 1) {
    const int dst = (me + pof2) % p;
    const int src = (me - pof2 + p) % p;
    std::size_t k = 0;
    for (int i = pof2; i < p; ++i) {
      if (i & pof2) {
        comm.copy_and_charge(pack.view(k * block, block),
                             rt::ConstView(tmp.view(i * block, block)));
        ++k;
      }
    }
    const std::size_t bytes = k * block;
    co_await comm.sendrecv(pack.view(0, bytes), dst, kTag,
                           unpack.view(0, bytes), src, kTag);
    k = 0;
    for (int i = pof2; i < p; ++i) {
      if (i & pof2) {
        comm.copy_and_charge(tmp.view(i * block, block),
                             rt::ConstView(unpack.view(k * block, block)));
        ++k;
      }
    }
  }

  // Phase 3: block i now holds the data originating at rank (me - i) mod p.
  for (int i = 0; i < p; ++i) {
    comm.copy_and_charge(recv.sub(((me - i + p) % p) * block, block),
                         rt::ConstView(tmp.view(i * block, block)));
  }
}

}  // namespace mca2a::coll
