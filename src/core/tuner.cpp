#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/cost.hpp"

namespace mca2a::coll {

namespace {

using topo::Level;

/// Aggregate NIC time per node for `volume` bytes in `msgs` messages of
/// `msg_bytes` each (injection side; ejection is symmetric here).
double nic_time(const model::NetParams& net, double msgs, double msg_bytes) {
  double per_msg = net.nic_msg_overhead + msg_bytes * net.nic_inject_beta;
  if (model::is_rendezvous(net, static_cast<std::size_t>(msg_bytes))) {
    per_msg *= net.rendezvous_nic_factor;
  }
  return msgs * per_msg;
}

/// Per-rank CPU time for sending/receiving `msgs` messages of `msg_bytes`.
double rank_msg_time(const model::NetParams& net, Level level, double msgs,
                     double msg_bytes) {
  const model::LevelParams& l = net.at(level);
  return msgs * (l.o_send + l.o_recv +
                 2.0 * model::cpu_copy_time(net, level,
                                            static_cast<std::size_t>(msg_bytes)) +
                 net.match_base);
}

/// Latency-chain time for `steps` sequential exchanges at `level` of
/// `msg_bytes` each (pairwise-style critical path).
double chain_time(const model::NetParams& net, Level level, double steps,
                  double msg_bytes) {
  const model::LevelParams& l = net.at(level);
  return steps * (l.alpha + msg_bytes * l.beta + l.o_send + l.o_recv +
                  2.0 * model::cpu_copy_time(net, level,
                                             static_cast<std::size_t>(msg_bytes)));
}

double pack(const model::NetParams& net, double bytes) {
  return bytes * net.pack_beta;
}

struct Shape {
  int n;       // nodes
  int ppn;     // ranks per node
  int p;       // total ranks
  double s;    // block bytes
  int g;       // group size
  int G;       // groups per node
  int nreg;    // regions
};

double predict_direct_pairwise(const model::NetParams& net, const Shape& sh) {
  // (p-1) synchronous steps; inter-node steps dominated by shared NIC.
  const double inter_steps = static_cast<double>(sh.n - 1) * sh.ppn;
  const double intra_steps = static_cast<double>(sh.ppn - 1);
  const double nic =
      nic_time(net, inter_steps * sh.ppn, sh.s);  // per node, all ranks
  const double lat = chain_time(net, Level::kNetwork, inter_steps, sh.s) +
                     chain_time(net, Level::kNuma, intra_steps, sh.s);
  return std::max(nic, lat);
}

double predict_direct_nonblocking(const model::NetParams& net,
                                  const Shape& sh) {
  const double inter_msgs = static_cast<double>(sh.n - 1) * sh.ppn;
  const double nic = nic_time(net, inter_msgs * sh.ppn, sh.s);
  // Queue search over ~p posted entries per message.
  const double match = static_cast<double>(sh.p - 1) *
                       model::match_time(net, static_cast<std::size_t>(sh.p));
  const double cpu =
      rank_msg_time(net, Level::kNetwork, static_cast<double>(sh.p - 1), sh.s);
  return std::max(nic, cpu + match) + net.at(Level::kNetwork).alpha;
}

double predict_bruck(const model::NetParams& net, const Shape& sh) {
  const double steps = std::ceil(std::log2(static_cast<double>(sh.p)));
  const double step_bytes = sh.s * sh.p / 2.0;
  const double nic_per_node =
      nic_time(net, static_cast<double>(sh.ppn), step_bytes);
  const double per_step =
      std::max(nic_per_node, chain_time(net, Level::kNetwork, 1.0, step_bytes)) +
      pack(net, 2.0 * step_bytes);
  return steps * per_step + pack(net, 2.0 * sh.s * sh.p);
}

double predict_hierarchical(const model::NetParams& net, const Shape& sh) {
  const double psz = sh.s * sh.p;
  const double leader_in = static_cast<double>(sh.g) * psz;
  // Gather/scatter funnel: the leader copies every member byte in and out.
  const double funnel = 2.0 * leader_in * net.cpu_copy_beta_intra +
                        chain_time(net, Level::kNuma, sh.g - 1, 0.0);
  const double repack = 2.0 * pack(net, 2.0 * leader_in);
  // Leader exchange: nreg-1 partners, block g*g*s; per node G leaders share
  // the NIC; inter-node portion is (nreg - G) of the partners.
  const double blk = sh.s * sh.g * sh.g;
  const double inter_msgs = static_cast<double>(sh.nreg - sh.G) * sh.G;
  const double nic = nic_time(net, inter_msgs, blk);
  const double lat = chain_time(net, Level::kNetwork,
                                static_cast<double>(sh.nreg - 1), blk);
  return funnel + repack + std::max(nic, lat);
}

double predict_node_aware(const model::NetParams& net, const Shape& sh) {
  // Phase 1: every rank exchanges with nreg-1 peers, block g*s.
  const double blk1 = sh.s * sh.g;
  const double inter_msgs_node =
      static_cast<double>(sh.n - 1) * sh.G * sh.ppn;  // per node
  const double nic = nic_time(net, inter_msgs_node, blk1);
  const double lat1 = chain_time(net, Level::kNetwork,
                                 static_cast<double>(sh.nreg - 1), blk1);
  // Phase 2: g-1 partners, block nreg*s, intra-node.
  const double blk2 = sh.s * sh.nreg;
  const double lat2 =
      chain_time(net, Level::kNuma, static_cast<double>(sh.g - 1), blk2);
  const double repack = 2.0 * pack(net, sh.s * sh.p);
  return std::max(nic, lat1) + lat2 + repack;
}

double predict_mlna(const model::NetParams& net, const Shape& sh) {
  const double psz = sh.s * sh.p;
  const double leader_in = static_cast<double>(sh.g) * psz;
  const double funnel = 2.0 * leader_in * net.cpu_copy_beta_intra +
                        chain_time(net, Level::kNuma, sh.g - 1, 0.0);
  const double repack = 2.0 * pack(net, 2.0 * leader_in);
  // Inter: n-1 partners, block g*ppn*s, G leaders per node share the NIC.
  const double blk1 = sh.s * sh.g * sh.ppn;
  const double nic =
      nic_time(net, static_cast<double>(sh.n - 1) * sh.G, blk1);
  const double lat1 =
      chain_time(net, Level::kNetwork, static_cast<double>(sh.n - 1), blk1);
  // Intra: G-1 partners, block n*g*g*s.
  const double blk2 = sh.s * sh.n * sh.g * sh.g;
  const double lat2 =
      chain_time(net, Level::kSocket, static_cast<double>(sh.G - 1), blk2);
  return funnel + repack + std::max(nic, lat1) + lat2;
}

}  // namespace

double predict_alltoall_seconds(Algo algo, const topo::Machine& machine,
                                const model::NetParams& net,
                                std::size_t block, int group_size) {
  Shape sh;
  sh.n = machine.nodes();
  sh.ppn = machine.ppn();
  sh.p = machine.total_ranks();
  sh.s = static_cast<double>(block);
  switch (algo) {
    case Algo::kHierarchical:
    case Algo::kNodeAware:
      sh.g = sh.ppn;
      break;
    default:
      sh.g = group_size;
  }
  if (sh.g < 1 || sh.ppn % sh.g != 0) {
    throw std::invalid_argument("predict: group size must divide ppn");
  }
  sh.G = sh.ppn / sh.g;
  sh.nreg = sh.n * sh.G;

  switch (algo) {
    case Algo::kSystemMpi: {
      Options o;
      const double t = block <= o.system_small_threshold
                           ? predict_bruck(net, sh)
                           : predict_direct_pairwise(net, sh);
      return t * net.vendor_factor;
    }
    case Algo::kHierarchical:
    case Algo::kMultileader:
      return predict_hierarchical(net, sh);
    case Algo::kNodeAware:
    case Algo::kLocalityAware:
      return predict_node_aware(net, sh);
    case Algo::kMultileaderNodeAware:
      return predict_mlna(net, sh);
    case Algo::kPairwiseDirect:
      return predict_direct_pairwise(net, sh);
    case Algo::kNonblockingDirect:
      return predict_direct_nonblocking(net, sh);
    case Algo::kBruckDirect:
      return predict_bruck(net, sh);
    case Algo::kBatchedDirect:
      return 0.5 * (predict_direct_pairwise(net, sh) +
                    predict_direct_nonblocking(net, sh));
    case Algo::kCount_:
      break;
  }
  throw std::invalid_argument("predict: unknown algorithm");
}

std::vector<int> candidate_groups(const topo::Machine& machine,
                                  std::vector<int> candidates) {
  const int ppn = machine.ppn();
  if (candidates.empty()) {
    candidates = {4, 8, 16, ppn};
  }
  std::vector<int> groups;
  for (int g : candidates) {
    if (g >= 1 && g <= ppn && ppn % g == 0) {
      groups.push_back(g);
    }
  }
  if (groups.empty()) {
    groups.push_back(ppn);
  }
  return groups;
}

namespace {

/// The one enumeration of scoreable (algorithm, group size) pairs, shared
/// by select_algorithm and rank_alltoall_candidates so their tie-breaking
/// (first-enumerated wins) can never drift apart.
template <typename F>
void enumerate_alltoall_candidates(const topo::Machine& machine,
                                   const std::vector<int>& groups,
                                   F&& consider) {
  const int ppn = machine.ppn();
  consider(Algo::kSystemMpi, ppn);
  consider(Algo::kBruckDirect, ppn);
  consider(Algo::kPairwiseDirect, ppn);
  consider(Algo::kNonblockingDirect, ppn);
  consider(Algo::kHierarchical, ppn);
  consider(Algo::kNodeAware, ppn);
  for (int g : groups) {
    if (g < ppn) {
      consider(Algo::kMultileader, g);
      consider(Algo::kLocalityAware, g);
      consider(Algo::kMultileaderNodeAware, g);
    }
  }
}

}  // namespace

Choice select_algorithm(const topo::Machine& machine,
                        const model::NetParams& net, std::size_t block,
                        std::vector<int> candidate_group_sizes) {
  const std::vector<int> groups =
      candidate_groups(machine, std::move(candidate_group_sizes));

  Choice best;
  best.predicted_seconds = std::numeric_limits<double>::infinity();
  enumerate_alltoall_candidates(machine, groups, [&](Algo a, int g) {
    const double t = predict_alltoall_seconds(a, machine, net, block, g);
    if (t < best.predicted_seconds) {
      best = Choice{a, g, t};
    }
  });
  return best;
}

std::vector<Choice> rank_alltoall_candidates(const topo::Machine& machine,
                                             const model::NetParams& net,
                                             std::size_t block,
                                             double plausible_factor,
                                             std::size_t max_candidates) {
  const std::vector<int> groups = candidate_groups(machine);
  std::vector<Choice> all;
  enumerate_alltoall_candidates(machine, groups, [&](Algo a, int g) {
    all.push_back(
        Choice{a, g, predict_alltoall_seconds(a, machine, net, block, g)});
  });
  // stable: ties keep enumeration order, so the head matches
  // select_algorithm's first-minimum-wins rule bit-for-bit.
  std::stable_sort(all.begin(), all.end(), [](const Choice& x, const Choice& y) {
    return x.predicted_seconds < y.predicted_seconds;
  });
  const double cutoff =
      all.front().predicted_seconds * std::max(1.0, plausible_factor);
  const std::size_t cap = std::max<std::size_t>(1, max_candidates);
  std::vector<Choice> kept;
  for (const Choice& c : all) {
    if (kept.size() >= cap || c.predicted_seconds > cutoff) {
      break;
    }
    kept.push_back(c);
  }
  return kept;
}

}  // namespace mca2a::coll
