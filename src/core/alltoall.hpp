#pragma once
/// \file alltoall.hpp
/// Public API of the all-to-all algorithm family.
///
/// Every algorithm exchanges `block` bytes between every ordered pair of
/// ranks: sendbuf holds size() blocks ordered by destination rank, recvbuf
/// receives size() blocks ordered by source rank. Direct algorithms run on
/// any communicator; the locality algorithms (paper Algorithms 3-5) take a
/// LocalityComms bundle built by rt::build_locality_comms.
///
/// Paper mapping:
///   Algorithm 1            -> alltoall_pairwise
///   Algorithm 2            -> alltoall_nonblocking
///   Bruck et al. [4]       -> alltoall_bruck
///   Batched [16]           -> alltoall_batched
///   Algorithm 3 (L=1)      -> alltoall_hierarchical  (Algo::kHierarchical)
///   Algorithm 3 (L>1)      -> alltoall_hierarchical  (Algo::kMultileader)
///   Algorithm 4 (G=1)      -> alltoall_node_aware    (Algo::kNodeAware)
///   Algorithm 4 (G>1)      -> alltoall_node_aware    (Algo::kLocalityAware)
///   Algorithm 5 (novel)    -> alltoall_multileader_node_aware
///   System MPI baseline    -> alltoall_system_mpi (surrogate: Bruck below a
///                             threshold, pairwise above, vendor-scaled)

#include <array>
#include <cstddef>
#include <string_view>

#include "runtime/buffer.hpp"
#include "runtime/comm.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/task.hpp"

namespace mca2a::rt {
class ScratchArena;
}

namespace mca2a::coll {

/// Exchange used for the internal MPI_Alltoall instances of Algorithms 3-5
/// (the solid-vs-dashed line distinction in the paper's figures).
enum class Inner {
  kPairwise,     ///< Algorithm 1 inside
  kNonblocking,  ///< Algorithm 2 inside
  kBruck,        ///< Bruck inside (latency-optimal for small blocks)
};

/// Phases for the timing-breakdown experiments (Figures 13-16).
enum class Phase : int {
  kGather = 0,
  kScatter,
  kInterA2A,
  kIntraA2A,
  kPack,
  kCount_,
};
inline constexpr int kNumPhases = static_cast<int>(Phase::kCount_);
std::string_view phase_name(Phase p);

/// Per-rank accumulated phase timings (seconds of comm.now()).
struct Trace {
  std::array<double, kNumPhases> seconds{};

  void add(Phase p, double dt) { seconds[static_cast<int>(p)] += dt; }
  double get(Phase p) const { return seconds[static_cast<int>(p)]; }
  void reset() { seconds.fill(0.0); }
};

struct Options {
  Inner inner = Inner::kPairwise;
  /// Window size for the batched algorithm.
  int batch_window = 32;
  /// Per-message-size threshold for the System MPI surrogate's switch from
  /// Bruck to pairwise.
  std::size_t system_small_threshold = 512;
  /// Optional per-rank phase timing sink.
  Trace* trace = nullptr;
  /// Optional reusable scratch arena (runtime/scratch.hpp). When set, every
  /// algorithm recycles its temporary buffers — the locality algorithms'
  /// staging (including the binomial gather/scatter trees) and the Bruck
  /// rotation/pack buffers alike — through it instead of allocating fresh
  /// ones per call; persistent plans (plan/plan.hpp) use this so repeated
  /// execute() calls allocate nothing after the first.
  rt::ScratchArena* scratch = nullptr;
  /// Tag stream (runtime/tags.hpp) this collective's internal traffic runs
  /// in. Started plans draw a fresh stream per operation so concurrent
  /// collectives on one communicator never cross-match; direct callers can
  /// leave the default (stream 0).
  int tag_stream = 0;
};

// --- direct algorithms ------------------------------------------------------

/// Algorithm 1: p-1 synchronous sendrecv steps, one partner at a time.
rt::Task<void> alltoall_pairwise(rt::Comm& comm, rt::ConstView send,
                                 rt::MutView recv, std::size_t block,
                                 int tag_stream = 0);
/// Algorithm 2: post every isend/irecv, then a single waitall.
rt::Task<void> alltoall_nonblocking(rt::Comm& comm, rt::ConstView send,
                                    rt::MutView recv, std::size_t block,
                                    int tag_stream = 0);
/// Bruck: ceil(log2 p) steps exchanging half the buffer each step. The
/// rotation and pack/unpack buffers recycle through `scratch` when given.
rt::Task<void> alltoall_bruck(rt::Comm& comm, rt::ConstView send,
                              rt::MutView recv, std::size_t block,
                              rt::ScratchArena* scratch = nullptr,
                              int tag_stream = 0);
/// Batched [16]: nonblocking with at most `window` outstanding pairs.
rt::Task<void> alltoall_batched(rt::Comm& comm, rt::ConstView send,
                                rt::MutView recv, std::size_t block,
                                int window, int tag_stream = 0);
/// Dispatch one of the three inner exchanges. `scratch` reaches the Bruck
/// buffers (the other inner exchanges allocate nothing).
rt::Task<void> alltoall_inner(Inner inner, rt::Comm& comm, rt::ConstView send,
                              rt::MutView recv, std::size_t block,
                              rt::ScratchArena* scratch = nullptr,
                              int tag_stream = 0);

// --- locality algorithms (paper Algorithms 3-5) -----------------------------

/// Algorithm 3: gather to the group leader, all-to-all among all leaders,
/// scatter back. group_size == ppn gives the classic hierarchical variant;
/// smaller groups give the multi-leader variant.
rt::Task<void> alltoall_hierarchical(const rt::LocalityComms& lc,
                                     rt::ConstView send, rt::MutView recv,
                                     std::size_t block, const Options& opts);

/// Algorithm 4: inter-region all-to-all on group_cross, then intra-region
/// redistribution. group_size == ppn gives node-aware aggregation; smaller
/// groups give the paper's locality-aware aggregation.
rt::Task<void> alltoall_node_aware(const rt::LocalityComms& lc,
                                   rt::ConstView send, rt::MutView recv,
                                   std::size_t block, const Options& opts);

/// Algorithm 5 (novel): gather to leaders, node-aware exchange among
/// same-index leaders across nodes, redistribution among a node's leaders,
/// scatter back.
rt::Task<void> alltoall_multileader_node_aware(const rt::LocalityComms& lc,
                                               rt::ConstView send,
                                               rt::MutView recv,
                                               std::size_t block,
                                               const Options& opts);

/// System MPI surrogate: Bruck for blocks <= opts.system_small_threshold,
/// pairwise otherwise, with the model's vendor tuning factor applied (the
/// simulator scales CPU costs on vendor-flagged communicators; on the
/// threads backend the factor is a no-op).
rt::Task<void> alltoall_system_mpi(rt::Comm& comm, rt::ConstView send,
                                   rt::MutView recv, std::size_t block,
                                   const Options& opts);

// --- registry ---------------------------------------------------------------

enum class Algo : int {
  kSystemMpi = 0,
  kHierarchical,   ///< Algorithm 3, one leader per node
  kMultileader,    ///< Algorithm 3, group_size leaders
  kNodeAware,      ///< Algorithm 4, one group per node
  kLocalityAware,  ///< Algorithm 4, groups of group_size
  kMultileaderNodeAware,
  kPairwiseDirect,
  kNonblockingDirect,
  kBruckDirect,
  kBatchedDirect,
  kCount_,
};
inline constexpr int kNumAlgos = static_cast<int>(Algo::kCount_);

/// Figure-legend name ("System MPI", "Node-Aware", ...).
std::string_view algo_name(Algo a);
/// True if the algorithm requires a LocalityComms bundle.
bool needs_locality(Algo a);
/// True if the algorithm uses the leader communicators of Algorithm 5.
bool needs_leader_comms(Algo a);

/// Run `algo` with uniform arguments. `lc` may be null for direct
/// algorithms; world is taken from lc->world when lc is given.
rt::Task<void> run_alltoall(Algo algo, rt::Comm& world,
                            const rt::LocalityComms* lc, rt::ConstView send,
                            rt::MutView recv, std::size_t block,
                            const Options& opts);

}  // namespace mca2a::coll
