/// \file multileader_node_aware.cpp
/// Algorithm 5 of the paper — the novel multi-leader + node-aware
/// all-to-all. The inter-node exchange of the hierarchical algorithm is
/// replaced by the node-aware one: leaders of group k on every node exchange
/// aggregated node-destined blocks among themselves (one message per node
/// pair per leader), then the leaders within a node redistribute, then
/// scatter. Gather/scatter funnels stay small (g ranks per leader) while
/// each leader sends only a single message to every other node.
///
/// Layouts at a leader of group k on node b (s = block, g = ppl, G leaders
/// per node, n nodes, ppn = G*g, p = n*ppn):
///   gathered  A[i][w]          i = my member, w = destination world rank
///   inter send B[b'][i][d]     d = destination local rank on node b'
///   inter recv C[b'][i'][d]    src = b'*ppn + k*g + i', d = dst local on b
///   intra send D[k2][b'][i'][e] e = dst position within group k2
///   intra recv E[k'][b'][i'][m] src = b'*ppn + k'*g + i', m = my member
///   scatter   S[m][w']         w' = source world rank

#include "core/alltoall.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/collectives.hpp"
#include "runtime/scratch.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_multileader_node_aware(const rt::LocalityComms& lc,
                                               rt::ConstView send,
                                               rt::MutView recv,
                                               std::size_t block,
                                               const Options& opts) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  const int p = world.size();
  const int g = lc.group_size;
  const int G = lc.groups_per_node;
  const int n = lc.nodes();
  const int ppn = lc.ppn();
  const std::size_t s = block;
  const std::size_t psz = static_cast<std::size_t>(p) * s;
  // Leaders only: non-leader phase times would measure leader waits.
  Trace* trace = lc.is_leader ? opts.trace : nullptr;
  obs::TraceBuffer* tb = world.tracer();

  // --- gather member buffers to the leader ----------------------------------
  rt::ScratchBuffer gathered;
  if (lc.is_leader) {
    if (!lc.leader_cross || !lc.leaders_node) {
      throw std::logic_error(
          "multileader_node_aware: bundle built without leader comms");
    }
    gathered = rt::alloc_scratch(world, opts.scratch,
                                 static_cast<std::size_t>(g) * psz);
  }
  double t0 = world.now();
  {
    obs::Span sp(tb, "gather", "phase", opts.tag_stream,
                 {{"leader", lc.is_leader ? 1 : 0}});
    co_await rt::gather(local, send, gathered.view(), /*root=*/0, opts.scratch,
                        opts.tag_stream);
  }
  if (trace) trace->add(Phase::kGather, world.now() - t0);

  if (!lc.is_leader) {
    t0 = world.now();
    obs::Span sp(tb, "scatter", "phase", opts.tag_stream, {{"leader", 0}});
    co_await rt::scatter(local, rt::ConstView{}, recv, /*root=*/0,
                         opts.scratch, opts.tag_stream);
    sp.close();
    if (trace) trace->add(Phase::kScatter, world.now() - t0);
    co_return;
  }

  const std::size_t node_blk =
      static_cast<std::size_t>(g) * ppn * s;  // inter-node block
  const std::size_t ppn_s = static_cast<std::size_t>(ppn) * s;

  // --- repack: per-target-node blocks (destinations are contiguous) ---------
  rt::ScratchBuffer bsend = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(n) * node_blk);
  t0 = world.now();
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    const bool real = bsend.data() != nullptr && gathered.data() != nullptr;
    std::size_t moved = 0;
    for (int b2 = 0; b2 < n; ++b2) {
      for (int i = 0; i < g; ++i) {
        if (real) {
          rt::copy_bytes(
              bsend.view(static_cast<std::size_t>(b2) * node_blk + i * ppn_s,
                         ppn_s),
              gathered.view(static_cast<std::size_t>(i) * psz + b2 * ppn_s,
                            ppn_s));
        }
        moved += ppn_s;
      }
    }
    world.charge_copy(moved);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- inter-node all-to-all among same-group leaders (block g*ppn*s) -------
  rt::ScratchBuffer crecv = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(n) * node_blk);
  t0 = world.now();
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream,
                 {{"bytes", static_cast<std::int64_t>(
                                static_cast<std::size_t>(n) * node_blk)}});
    co_await alltoall_inner(opts.inner, *lc.leader_cross,
                            rt::ConstView(bsend.view()), crecv.view(), node_blk,
                            opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);

  // --- repack: per-node-local-leader blocks ----------------------------------
  const std::size_t intra_blk = static_cast<std::size_t>(n) * g * g * s;
  rt::ScratchBuffer dsend = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(G) * intra_blk);
  t0 = world.now();
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    const bool real = dsend.data() != nullptr && crecv.data() != nullptr;
    const std::size_t run = static_cast<std::size_t>(g) * s;
    std::size_t moved = 0;
    for (int k2 = 0; k2 < G; ++k2) {
      for (int b2 = 0; b2 < n; ++b2) {
        for (int i2 = 0; i2 < g; ++i2) {
          if (real) {
            rt::copy_bytes(
                dsend.view(static_cast<std::size_t>(k2) * intra_blk +
                               (static_cast<std::size_t>(b2) * g + i2) * run,
                           run),
                crecv.view(static_cast<std::size_t>(b2) * node_blk +
                               static_cast<std::size_t>(i2) * ppn_s +
                               static_cast<std::size_t>(k2) * run,
                           run));
          }
          moved += run;
        }
      }
    }
    world.charge_copy(moved);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- intra-node all-to-all among this node's leaders (block n*g*g*s) ------
  rt::ScratchBuffer erecv = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(G) * intra_blk);
  t0 = world.now();
  {
    obs::Span sp(tb, "intra-a2a", "phase", opts.tag_stream,
                 {{"bytes", static_cast<std::int64_t>(
                                static_cast<std::size_t>(G) * intra_blk)}});
    co_await alltoall_inner(opts.inner, *lc.leaders_node,
                            rt::ConstView(dsend.view()), erecv.view(),
                            intra_blk, opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kIntraA2A, world.now() - t0);

  // --- repack into per-member, source-ordered scatter blocks ----------------
  rt::ScratchBuffer sc = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(g) * psz);
  t0 = world.now();
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    const bool real = sc.data() != nullptr && erecv.data() != nullptr;
    std::size_t moved = 0;
    for (int k1 = 0; k1 < G; ++k1) {
      for (int b2 = 0; b2 < n; ++b2) {
        for (int i1 = 0; i1 < g; ++i1) {
          const std::size_t src_w =
              static_cast<std::size_t>(b2) * ppn + k1 * g + i1;
          const std::size_t base =
              static_cast<std::size_t>(k1) * intra_blk +
              (static_cast<std::size_t>(b2) * g + i1) *
                  (static_cast<std::size_t>(g) * s);
          for (int m = 0; m < g; ++m) {
            if (real) {
              rt::copy_bytes(sc.view(static_cast<std::size_t>(m) * psz +
                                         src_w * s,
                                     s),
                             erecv.view(base + static_cast<std::size_t>(m) * s,
                                        s));
            }
            moved += s;
          }
        }
      }
    }
    world.charge_copy(moved);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- scatter ---------------------------------------------------------------
  t0 = world.now();
  {
    obs::Span sp(tb, "scatter", "phase", opts.tag_stream, {{"leader", 1}});
    co_await rt::scatter(local, rt::ConstView(sc.view()), recv, /*root=*/0,
                         opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kScatter, world.now() - t0);
}

}  // namespace mca2a::coll
