/// \file node_aware.cpp
/// Algorithm 4 of the paper: node-aware / locality-aware all-to-all.
///
/// Phase 1 exchanges aggregated per-region blocks among ranks that share an
/// in-group position (group_cross): rank r sends region j its data for all
/// g ranks of j. Because regions tile the world consecutively, the original
/// send buffer is already ordered by region — no pre-pack is needed.
/// Phase 2 redistributes within the region (local_comm). One group per node
/// (g == ppn) is classic node-aware aggregation; several groups per node is
/// the paper's locality-aware aggregation (cheaper redistribution, more
/// inter-node messages).
///
/// Layouts (s = block, nreg regions, my position ℓ):
///   after phase 1: T1[j][i]  = data  src (j*g+ℓ) -> dst (my_region*g + i)
///   pack:          T2[i][j]  = block for local peer i
///   after phase 2: T3[i'][j] = data  src (j*g+i') -> me
///   unpack:        recv[j*g+i'] = T3[i'][j]

#include "core/alltoall.hpp"
#include "obs/trace.hpp"
#include "runtime/scratch.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_node_aware(const rt::LocalityComms& lc,
                                   rt::ConstView send, rt::MutView recv,
                                   std::size_t block, const Options& opts) {
  rt::Comm& world = *lc.world;
  rt::Comm& cross = *lc.group_cross;
  rt::Comm& local = *lc.local_comm;
  const int g = lc.group_size;
  const int nreg = lc.regions();
  const std::size_t s = block;
  const std::size_t psz = static_cast<std::size_t>(world.size()) * s;
  Trace* trace = opts.trace;
  obs::TraceBuffer* tb = world.tracer();

  // --- phase 1: inter-region exchange (block g*s) ---------------------------
  rt::ScratchBuffer t1 = rt::alloc_scratch(world, opts.scratch, psz);
  double t0 = world.now();
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream,
                 {{"bytes", static_cast<std::int64_t>(psz)}});
    co_await alltoall_inner(opts.inner, cross, send, t1.view(),
                            static_cast<std::size_t>(g) * s, opts.scratch,
                            opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);

  // --- pack per-local-peer blocks -------------------------------------------
  rt::ScratchBuffer t2 = rt::alloc_scratch(world, opts.scratch, psz);
  t0 = world.now();
  {
    obs::Span sp(tb, "pack", "phase", opts.tag_stream);
    const bool real = t1.data() != nullptr && t2.data() != nullptr;
    std::size_t moved = 0;
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < nreg; ++j) {
        if (real) {
          rt::copy_bytes(
              t2.view((static_cast<std::size_t>(i) * nreg + j) * s, s),
              t1.view((static_cast<std::size_t>(j) * g + i) * s, s));
        }
        moved += s;
      }
    }
    world.charge_copy(moved);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- phase 2: intra-region redistribution (block nreg*s) ------------------
  rt::ScratchBuffer t3 = rt::alloc_scratch(world, opts.scratch, psz);
  t0 = world.now();
  {
    obs::Span sp(tb, "intra-a2a", "phase", opts.tag_stream,
                 {{"bytes", static_cast<std::int64_t>(psz)}});
    co_await alltoall_inner(opts.inner, local, rt::ConstView(t2.view()),
                            t3.view(), static_cast<std::size_t>(nreg) * s,
                            opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kIntraA2A, world.now() - t0);

  // --- unpack into source-rank order -----------------------------------------
  t0 = world.now();
  {
    obs::Span sp(tb, "unpack", "phase", opts.tag_stream);
    const bool real = t3.data() != nullptr && recv.ptr != nullptr;
    std::size_t moved = 0;
    for (int i2 = 0; i2 < g; ++i2) {
      for (int j = 0; j < nreg; ++j) {
        if (real) {
          rt::copy_bytes(
              recv.sub((static_cast<std::size_t>(j) * g + i2) * s, s),
              t3.view((static_cast<std::size_t>(i2) * nreg + j) * s, s));
        }
        moved += s;
      }
    }
    world.charge_copy(moved);
  }
  if (trace) trace->add(Phase::kPack, world.now() - t0);
}

}  // namespace mca2a::coll
