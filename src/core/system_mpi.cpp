/// \file system_mpi.cpp
/// Surrogate for the proprietary "System MPI" baseline of the paper's
/// figures. Both Intel MPI and Cray MPICH keep their all-to-all selection
/// logic closed; the paper observes the small-message behaviour is "likely
/// the Bruck algorithm". The surrogate follows the standard MPICH-style
/// decision: Bruck below a per-block threshold, pairwise exchange above it.
/// The vendor's advantage over portable implementations is modelled by the
/// simulator's per-communicator CPU cost scale (model::NetParams::
/// vendor_factor), which the benchmark harness applies to the communicator
/// the surrogate runs on.

#include "core/alltoall.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_system_mpi(rt::Comm& comm, rt::ConstView send,
                                   rt::MutView recv, std::size_t block,
                                   const Options& opts) {
  if (block <= opts.system_small_threshold) {
    co_await alltoall_bruck(comm, send, recv, block, opts.scratch,
                            opts.tag_stream);
  } else {
    co_await alltoall_pairwise(comm, send, recv, block, opts.tag_stream);
  }
}

}  // namespace mca2a::coll
