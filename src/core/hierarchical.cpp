/// \file hierarchical.cpp
/// Algorithm 3 of the paper: hierarchical / multi-leader all-to-all.
///
/// Each group of `g` consecutive node-local ranks gathers its members' full
/// send buffers at the group leader; leaders perform an all-to-all among all
/// n*G leaders (block g*g*s: my g members' data for the target region's g
/// members); leaders scatter results back. With g == ppn this is the classic
/// single-leader hierarchical algorithm; smaller g is the multi-leader
/// variant (more leaders shrink the gather/scatter funnel but multiply
/// inter-node message counts by L^2 per node pair).
///
/// Layouts (s = block, p = world size, region j covers world ranks
/// [j*g, (j+1)*g)):
///   gathered  G[i][w]        i = member, w = destination world rank
///   leader send L[j][i][d]   j = region, d = destination position in j
///   leader recv R[j][i'][m]  i' = source position in j, m = my member
///   scatter   S[m][w']       w' = source world rank

#include "core/alltoall.hpp"
#include "obs/trace.hpp"
#include "runtime/collectives.hpp"
#include "runtime/scratch.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_hierarchical(const rt::LocalityComms& lc,
                                     rt::ConstView send, rt::MutView recv,
                                     std::size_t block, const Options& opts) {
  rt::Comm& world = *lc.world;
  rt::Comm& local = *lc.local_comm;
  const int p = world.size();
  const int g = lc.group_size;
  const int nreg = lc.regions();
  const std::size_t s = block;
  const std::size_t psz = static_cast<std::size_t>(p) * s;
  // Phase timings are meaningful at the leaders (the ranks doing the work);
  // a non-leader's "scatter" time would mostly measure waiting for its
  // leader to get through the exchange. Flight-recorder spans are emitted
  // on every rank — each rank owns its own trace file, so a non-leader's
  // wait *is* the interesting shape there.
  Trace* trace = lc.is_leader ? opts.trace : nullptr;
  obs::TraceBuffer* tb = world.tracer();

  // --- gather members' send buffers to the leader --------------------------
  rt::ScratchBuffer gathered;
  if (lc.is_leader) {
    gathered = rt::alloc_scratch(world, opts.scratch,
                                 static_cast<std::size_t>(g) * psz);
  }
  double t0 = world.now();
  {
    obs::Span sp(tb, "gather", "phase", opts.tag_stream,
                 {{"leader", lc.is_leader ? 1 : 0}});
    co_await rt::gather(local, send, gathered.view(), /*root=*/0, opts.scratch,
                        opts.tag_stream);
  }
  if (trace) trace->add(Phase::kGather, world.now() - t0);

  if (!lc.is_leader) {
    t0 = world.now();
    obs::Span sp(tb, "scatter", "phase", opts.tag_stream,
                 {{"leader", 0}});
    co_await rt::scatter(local, rt::ConstView{}, recv, /*root=*/0,
                         opts.scratch, opts.tag_stream);
    sp.close();
    if (trace) trace->add(Phase::kScatter, world.now() - t0);
    co_return;
  }

  // --- leader: repack into per-region blocks --------------------------------
  const std::size_t gg = static_cast<std::size_t>(g) * g * s;  // region block
  rt::ScratchBuffer lsend = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(nreg) * gg);
  const bool real = lsend.data() != nullptr && gathered.data() != nullptr;
  t0 = world.now();
  obs::Span pack_span(tb, "pack", "phase", opts.tag_stream);
  std::size_t moved = 0;
  for (int j = 0; j < nreg; ++j) {
    for (int i = 0; i < g; ++i) {
      const std::size_t run = static_cast<std::size_t>(g) * s;
      if (real) {
        rt::copy_bytes(
            lsend.view(static_cast<std::size_t>(j) * gg + i * run, run),
            gathered.view(static_cast<std::size_t>(i) * psz +
                              static_cast<std::size_t>(j) * run,
                          run));
      }
      moved += run;
    }
  }
  world.charge_copy(moved);
  pack_span.close();
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- all-to-all among leaders (leaders' group_cross spans all leaders) ----
  rt::ScratchBuffer lrecv = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(nreg) * gg);
  t0 = world.now();
  {
    obs::Span sp(tb, "inter-a2a", "phase", opts.tag_stream,
                 {{"bytes", static_cast<std::int64_t>(
                                static_cast<std::size_t>(nreg) * gg)}});
    co_await alltoall_inner(opts.inner, *lc.group_cross,
                            rt::ConstView(lsend.view()), lrecv.view(), gg,
                            opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kInterA2A, world.now() - t0);

  // --- repack received region blocks into per-member scatter blocks ---------
  rt::ScratchBuffer sc = rt::alloc_scratch(
      world, opts.scratch, static_cast<std::size_t>(g) * psz);
  const bool real2 = sc.data() != nullptr && lrecv.data() != nullptr;
  t0 = world.now();
  obs::Span pack2_span(tb, "pack", "phase", opts.tag_stream);
  moved = 0;
  for (int j = 0; j < nreg; ++j) {
    for (int i2 = 0; i2 < g; ++i2) {
      const int src_world = j * g + i2;
      for (int m = 0; m < g; ++m) {
        if (real2) {
          rt::copy_bytes(
              sc.view(static_cast<std::size_t>(m) * psz +
                          static_cast<std::size_t>(src_world) * s,
                      s),
              lrecv.view(static_cast<std::size_t>(j) * gg +
                             (static_cast<std::size_t>(i2) * g + m) * s,
                         s));
        }
        moved += s;
      }
    }
  }
  world.charge_copy(moved);
  pack2_span.close();
  if (trace) trace->add(Phase::kPack, world.now() - t0);

  // --- scatter per-member results -------------------------------------------
  t0 = world.now();
  {
    obs::Span sp(tb, "scatter", "phase", opts.tag_stream, {{"leader", 1}});
    co_await rt::scatter(local, rt::ConstView(sc.view()), recv, /*root=*/0,
                         opts.scratch, opts.tag_stream);
  }
  if (trace) trace->add(Phase::kScatter, world.now() - t0);
}

}  // namespace mca2a::coll
