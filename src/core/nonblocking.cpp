/// \file nonblocking.cpp
/// Algorithm 2 of the paper: post every isend/irecv up front and wait once.
/// Minimizes synchronization but exposes queue-search and contention
/// overheads at scale (every rank's matching queues hold ~p entries).
///
/// Also home of the batched variant [16], which caps the number of
/// outstanding pairs to balance the two extremes.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/alltoall.hpp"

namespace mca2a::coll {

rt::Task<void> alltoall_nonblocking(rt::Comm& comm, rt::ConstView send,
                                    rt::MutView recv, std::size_t block,
                                    int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kAlltoallNonblocking, tag_stream);
  const int p = comm.size();
  const int me = comm.rank();
  comm.copy_and_charge(recv.sub(me * block, block),
                       send.sub(me * block, block));
  std::vector<rt::Request> reqs;
  reqs.reserve(2 * (p - 1));
  // Receives first so senders find them posted, then sends, mirroring the
  // staggered (rank +/- i) order of the paper's Algorithm 2.
  for (int i = 1; i < p; ++i) {
    const int src = (me - i + p) % p;
    reqs.push_back(comm.irecv(recv.sub(src * block, block), src, kTag));
  }
  for (int i = 1; i < p; ++i) {
    const int dst = (me + i) % p;
    reqs.push_back(comm.isend(send.sub(dst * block, block), dst, kTag));
  }
  co_await comm.wait_all(reqs);
}

rt::Task<void> alltoall_batched(rt::Comm& comm, rt::ConstView send,
                                rt::MutView recv, std::size_t block,
                                int window, int tag_stream) {
  const int kTag = rt::tags::make(rt::tags::kAlltoallNonblocking, tag_stream);
  if (window < 1) {
    throw std::invalid_argument("alltoall_batched: window must be >= 1");
  }
  const int p = comm.size();
  const int me = comm.rank();
  comm.copy_and_charge(recv.sub(me * block, block),
                       send.sub(me * block, block));
  std::vector<rt::Request> reqs;
  reqs.reserve(2 * window);
  for (int base = 1; base < p; base += window) {
    const int last = std::min(base + window, p);
    reqs.clear();
    for (int i = base; i < last; ++i) {
      const int src = (me - i + p) % p;
      reqs.push_back(comm.irecv(recv.sub(src * block, block), src, kTag));
    }
    for (int i = base; i < last; ++i) {
      const int dst = (me + i) % p;
      reqs.push_back(comm.isend(send.sub(dst * block, block), dst, kTag));
    }
    co_await comm.wait_all(reqs);
  }
}

}  // namespace mca2a::coll
