#pragma once
/// \file selector.hpp
/// Measurement-driven online algorithm selection.
///
/// The closed-form tuners answer "which algorithm *should* be fastest";
/// the OnlineSelector closes the loop with "which algorithm *was*
/// fastest". Wrapped around the model, it works in three modes:
///
///  * kOff      — inert: choices fall through to the pure model, nothing
///                is recorded. Bit-for-bit today's behavior.
///  * kObserve  — record every completed execution into the
///                ExecutionProfiler, but never influence selection.
///  * kAdapt    — bounded exploration, then exploitation: while any
///                model-plausible candidate (core/tuner and
///                coll_ext/ext_tuner's rank_*_candidates — within a factor
///                of the predicted best, capped in count) has fewer than
///                `explore_target` *executions* of evidence for this
///                (machine, op, size class, backend), pick the
///                least-sampled one (ties in model order); once all are
///                warmed, pick the measured winner by mean. A greedy
///                bandit whose exploration cost is bounded by
///                explore_target × max_candidates executions per size
///                class.
///
/// When the profiler holds enough evidence for a (machine, backend), the
/// candidate ranking itself runs on calibrated cost parameters
/// (autotune/calibrator.hpp), so size classes that were never explored
/// still benefit from what was measured elsewhere. The candidate set of a
/// size class is *frozen* at its first consult (whatever the calibration
/// knew at that moment shapes it): a set that re-ranked as samples arrive
/// would keep minting "new" under-sampled candidates and exploration
/// would never terminate.
///
/// Determinism contract (the collective twin of make_plan's): a choice is
/// a pure function of the profiler state, so every rank consulting one
/// shared selector gets the same answer as long as no execution completes
/// between the first and the last rank's matching make_plan call — which
/// is guaranteed whenever plan creation is separated from the previous
/// round's completions by a barrier (the harness's autotune mode does
/// exactly this). plan::make_plan consults a selector via
/// PlanOptions::autotune, or the process-global one configured by
/// A2A_AUTOTUNE (autotune/autotune.hpp).

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "autotune/calibrator.hpp"
#include "autotune/profiler.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "core/tuner.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::autotune {

enum class Mode : int {
  kOff = 0,
  kObserve,
  kAdapt,
};

std::string_view mode_name(Mode m);
/// Parse "off" / "observe" / "adapt"; nullopt for anything else.
std::optional<Mode> mode_from_string(std::string_view s);

class OnlineSelector {
 public:
  struct Config {
    /// Executions of evidence each plausible candidate needs before
    /// exploitation starts. Every collective execution contributes one
    /// sample per rank, so the sample threshold is explore_target *
    /// machine.total_ranks() — direct profiler feeders must match that
    /// convention.
    int explore_target = 3;
    /// Candidates predicted within this factor of the model's best are
    /// worth exploring (passed to rank_*_candidates).
    double plausible_factor = 4.0;
    /// Upper bound on explored candidates per size class.
    std::size_t max_candidates = 4;
    /// Distinct usable profile entries required before the candidate
    /// ranking switches to calibrated cost parameters.
    std::size_t calibration_min_entries = 4;
    /// Master switch for model calibration inside choose_* (exploration /
    /// exploitation work the same either way).
    bool calibrate = true;
  };

  explicit OnlineSelector(Mode mode = Mode::kAdapt);
  OnlineSelector(Mode mode, Config cfg);

  Mode mode() const noexcept { return mode_; }
  const Config& config() const noexcept { return cfg_; }

  /// The accumulated evidence. Exposed for persistence
  /// (plan::TuningTable::profile()), merging, and inspection.
  ExecutionProfiler& profiler() noexcept { return profiler_; }
  const ExecutionProfiler& profiler() const noexcept { return profiler_; }

  /// Feed one completed execution (plan layer calls this at handle
  /// completion). No-op in kOff.
  void record(const ProfileKey& key, double seconds);

  /// Online choice for an alltoall of `block` bytes per pair on `backend`,
  /// or nullopt when the model should decide (kOff/kObserve). Exploring
  /// choices carry the model's predicted_seconds; exploiting choices carry
  /// the measured mean they were picked for. When `explored` is non-null
  /// and a choice is returned, it is set to whether the choice was an
  /// exploration (under-sampled candidate) rather than an exploitation —
  /// the flight recorder stamps plan-build events with it.
  std::optional<coll::Choice> choose_alltoall(const topo::Machine& machine,
                                              const model::NetParams& net,
                                              std::size_t block,
                                              std::string_view backend,
                                              bool* explored = nullptr);

  /// Same for allgather (per-rank block). The other op kinds are recorded
  /// (and feed calibration) but keep model-driven selection.
  std::optional<coll::AllgatherChoice> choose_allgather(
      const topo::Machine& machine, const model::NetParams& net,
      std::size_t block, std::string_view backend, bool* explored = nullptr);

  /// The calibration the selector would rank candidates with right now
  /// (identity when below calibration_min_entries or disabled). Cached by
  /// profiler revision.
  Calibration calibration(const topo::Machine& machine,
                          const model::NetParams& net,
                          std::string_view backend);

  /// choose_*() calls answered by exploring an under-sampled candidate /
  /// by exploiting the measured winner. Counted per consult: with every
  /// rank of a communicator consulting one shared selector, one collective
  /// plan round adds world-size counts.
  std::uint64_t explorations() const noexcept {
    return explorations_.load(std::memory_order_relaxed);
  }
  std::uint64_t exploitations() const noexcept {
    return exploitations_.load(std::memory_order_relaxed);
  }

 private:
  /// One frozen (algorithm, group size) candidate with its model
  /// prediction at freeze time.
  struct Candidate {
    int algo = 0;
    int group_size = 1;
    double predicted_seconds = 0.0;
  };

  const std::vector<Candidate>& candidate_set(
      const topo::Machine& machine, const model::NetParams& net,
      coll::OpKind op, std::size_t size_key, std::string_view backend);
  std::optional<Candidate> pick(const topo::Machine& machine,
                                coll::OpKind op, std::size_t size_key,
                                std::string_view backend,
                                const std::vector<Candidate>& ranked,
                                bool* explored);
  model::NetParams ranking_params(const topo::Machine& machine,
                                  const model::NetParams& net,
                                  std::string_view backend);

  Mode mode_;
  Config cfg_;
  ExecutionProfiler profiler_;

  // choose_*/calibration bookkeeping (distinct from the profiler's locks;
  // record() never takes it). The explore/exploit tallies are relaxed
  // atomics — pure statistics, never ordering anything — so the hot
  // decision tail of pick() stays off this mutex.
  std::mutex mu_;
  std::atomic<std::uint64_t> explorations_{0};
  std::atomic<std::uint64_t> exploitations_{0};
  struct CalCacheEntry {
    std::string machine;
    int nodes = 0;
    int ppn = 0;
    std::string backend;
    std::uint64_t revision = 0;
    Calibration cal;
  };
  std::vector<CalCacheEntry> cal_cache_;
  /// Frozen candidate sets, keyed by "(machine shape, op, size class,
  /// backend)" rendered as a string.
  std::unordered_map<std::string, std::vector<Candidate>> cand_cache_;
};

}  // namespace mca2a::autotune
