#pragma once
/// \file profiler.hpp
/// Measured-execution statistics for the online autotuner.
///
/// Every completed plan execution (plan/plan.hpp records at
/// CollectiveHandle completion, which covers execute(), start()/wait() and
/// Schedule batches alike) feeds one sample — the exchange's elapsed
/// seconds on that rank — into an ExecutionProfiler under a ProfileKey:
/// what ran (op kind, size class, algorithm, group size) and where it ran
/// (machine shape, backend). The accumulator keeps Welford running
/// statistics `{n, mean, M2, min}` per key, so variance is available
/// without storing samples and two profiles merge exactly (Chan's
/// parallel-variance formula) — which is how profiles gathered by
/// different processes, or across restarts, combine.
///
/// Concurrency: the accumulator is sharded. Each recording thread pins
/// itself (round-robin, sticky per profiler) to one internal shard and
/// takes that shard's short mutex for an O(1) map update, so the threads
/// backend's rank threads sharing one profiler never serialize on a global
/// lock. Readers fold the shards *in shard index order*; because Welford /
/// Chan merging is exact but not floating-point-associative, the fixed
/// fold order is what makes repeated snapshots byte-identical — and a
/// single-threaded feed pins one shard, making the fold the identity and
/// the snapshot bit-identical to a serial (global-mutex) reference.
///
/// Profiles persist as the v3 section of plan::TuningTable
/// (plan/tuning_table.hpp): the model's memoized *decisions* and the
/// measured *evidence* travel in one artifact.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "topo/machine.hpp"

namespace mca2a::autotune {

/// What a sample describes: machine shape + collective + size class +
/// resolved (algorithm, group size) + backend. `size_key` uses the same
/// per-op convention as plan::TuningTable: bytes per rank pair (alltoall),
/// per rank (allgather), whole vector (allreduce), and
/// coll::alltoallv_size_class for alltoallv. `backend` is
/// rt::Comm::backend_name() — virtual-time and wall-clock samples must
/// never pool.
struct ProfileKey {
  std::string machine;
  int nodes = 0;
  int ppn = 0;
  coll::OpKind op = coll::OpKind::kAlltoall;
  std::size_t size_key = 0;
  int algo = 0;  ///< the op-specific enum value
  int group_size = 1;
  std::string backend;

  bool operator==(const ProfileKey&) const = default;
};

struct ProfileKeyHash {
  std::size_t operator()(const ProfileKey& k) const noexcept;
};

/// Build a validated key. Throws std::invalid_argument when the machine
/// name or backend is empty or contains whitespace (they could not
/// round-trip the whitespace-delimited TuningTable file format — the same
/// rule plan::TuningTable enforces on entry keys).
ProfileKey make_profile_key(const topo::Machine& machine, coll::OpKind op,
                            std::size_t size_key, int algo, int group_size,
                            std::string_view backend);

/// Welford running statistics over one key's samples.
struct SampleStats {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;   ///< sum of squared deviations from the running mean
  double min = 0.0;  ///< meaningful only when n > 0

  /// Welford single-sample update.
  void add(double x);
  /// Exact merge of two accumulators (Chan et al.'s parallel form).
  void merge(const SampleStats& other);
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const {
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  }
};

class ExecutionProfiler {
 public:
  /// `shards` = 0 picks the environment default: A2A_PROF_SHARDS when set,
  /// else min(hardware_concurrency, 16). Tests pass an explicit count so
  /// shard-merge behavior is exercised even on small machines.
  explicit ExecutionProfiler(std::size_t shards = 0);
  ~ExecutionProfiler();
  /// Copies preserve shard count and per-shard contents bit-for-bit.
  ExecutionProfiler(const ExecutionProfiler& other);
  /// Requires writers of *this* to be quiesced (readers of `other` are
  /// safe), like any standard-container assignment.
  ExecutionProfiler& operator=(const ExecutionProfiler& other);
  ExecutionProfiler(ExecutionProfiler&& other) noexcept;
  ExecutionProfiler& operator=(ExecutionProfiler&& other) noexcept;

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Fold one measured execution (elapsed seconds on one rank) into the
  /// key's statistics. Non-finite or negative samples are dropped (a
  /// poisoned sample must not corrupt the mean forever).
  void record(const ProfileKey& key, double seconds);

  /// Insert-or-merge a whole accumulator (deserialization, profile
  /// merging across processes).
  void merge_entry(const ProfileKey& key, const SampleStats& stats);
  /// Merge every entry of `other` into this profiler.
  void merge(const ExecutionProfiler& other);

  /// The key's statistics, or nullopt when never recorded.
  std::optional<SampleStats> lookup(const ProfileKey& key) const;
  /// Sample count for the key (0 when absent) — the exploration test.
  std::uint64_t samples(const ProfileKey& key) const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  /// Total samples folded in across all keys.
  std::uint64_t total_samples() const;
  /// Bumped on every record/merge; cheap staleness check for cached
  /// derivations (the selector's calibration cache keys on it). Sum of
  /// per-shard counters — monotone for any single observer.
  std::uint64_t revision() const;

  /// Stable copy of every (key, stats) pair: shards folded in index order
  /// (fixed fold order — see the file comment), then sorted by key fields
  /// so iteration (and serialization) order is deterministic.
  std::vector<std::pair<ProfileKey, SampleStats>> snapshot() const;

 private:
  struct Shard;

  /// The calling thread's shard for this profiler (sticky round-robin).
  Shard& my_shard() const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

// --- serialization (the TuningTable v3 profile section) ----------------------

/// One entry per line, sorted (deterministic files):
///   prof <machine> <nodes> <ppn> <op> <size_key> <algo> <group> <backend>
///        <n> <mean> <m2> <min>
/// with `op` a coll::op_kind_tag and doubles at max_digits10 so statistics
/// survive the text round trip exactly.
void write_profile_section(std::ostream& os, const ExecutionProfiler& p);

/// Parse one `prof ...` line (leading "prof" token included). Throws
/// std::runtime_error on a malformed line, unknown op tag, algorithm index
/// out of the op's range, or a zero sample count.
std::pair<ProfileKey, SampleStats> parse_profile_line(const std::string& line);

}  // namespace mca2a::autotune
