#pragma once
/// \file profiler.hpp
/// Measured-execution statistics for the online autotuner.
///
/// Every completed plan execution (plan/plan.hpp records at
/// CollectiveHandle completion, which covers execute(), start()/wait() and
/// Schedule batches alike) feeds one sample — the exchange's elapsed
/// seconds on that rank — into an ExecutionProfiler under a ProfileKey:
/// what ran (op kind, size class, algorithm, group size) and where it ran
/// (machine shape, backend). The accumulator keeps Welford running
/// statistics `{n, mean, M2, min}` per key, so variance is available
/// without storing samples and two profiles merge exactly (Chan's
/// parallel-variance formula) — which is how profiles gathered by
/// different processes, or across restarts, combine.
///
/// Concurrency: recording takes one short mutex-guarded O(1) map update
/// per completed collective — collectives complete at far below contention
/// rates ("lock-free enough"), and the threads backend's rank threads all
/// share one profiler. Reads snapshot under the same mutex.
///
/// Profiles persist as the v3 section of plan::TuningTable
/// (plan/tuning_table.hpp): the model's memoized *decisions* and the
/// measured *evidence* travel in one artifact.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "topo/machine.hpp"

namespace mca2a::autotune {

/// What a sample describes: machine shape + collective + size class +
/// resolved (algorithm, group size) + backend. `size_key` uses the same
/// per-op convention as plan::TuningTable: bytes per rank pair (alltoall),
/// per rank (allgather), whole vector (allreduce), and
/// coll::alltoallv_size_class for alltoallv. `backend` is
/// rt::Comm::backend_name() — virtual-time and wall-clock samples must
/// never pool.
struct ProfileKey {
  std::string machine;
  int nodes = 0;
  int ppn = 0;
  coll::OpKind op = coll::OpKind::kAlltoall;
  std::size_t size_key = 0;
  int algo = 0;  ///< the op-specific enum value
  int group_size = 1;
  std::string backend;

  bool operator==(const ProfileKey&) const = default;
};

struct ProfileKeyHash {
  std::size_t operator()(const ProfileKey& k) const noexcept;
};

/// Build a validated key. Throws std::invalid_argument when the machine
/// name or backend is empty or contains whitespace (they could not
/// round-trip the whitespace-delimited TuningTable file format — the same
/// rule plan::TuningTable enforces on entry keys).
ProfileKey make_profile_key(const topo::Machine& machine, coll::OpKind op,
                            std::size_t size_key, int algo, int group_size,
                            std::string_view backend);

/// Welford running statistics over one key's samples.
struct SampleStats {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;   ///< sum of squared deviations from the running mean
  double min = 0.0;  ///< meaningful only when n > 0

  /// Welford single-sample update.
  void add(double x);
  /// Exact merge of two accumulators (Chan et al.'s parallel form).
  void merge(const SampleStats& other);
  /// Unbiased sample variance; 0 with fewer than two samples.
  double variance() const {
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  }
};

class ExecutionProfiler {
 public:
  ExecutionProfiler() = default;
  ExecutionProfiler(const ExecutionProfiler& other);
  ExecutionProfiler& operator=(const ExecutionProfiler& other);
  ExecutionProfiler(ExecutionProfiler&& other) noexcept;
  ExecutionProfiler& operator=(ExecutionProfiler&& other) noexcept;

  /// Fold one measured execution (elapsed seconds on one rank) into the
  /// key's statistics. Non-finite or negative samples are dropped (a
  /// poisoned sample must not corrupt the mean forever).
  void record(const ProfileKey& key, double seconds);

  /// Insert-or-merge a whole accumulator (deserialization, profile
  /// merging across processes).
  void merge_entry(const ProfileKey& key, const SampleStats& stats);
  /// Merge every entry of `other` into this profiler.
  void merge(const ExecutionProfiler& other);

  /// The key's statistics, or nullopt when never recorded.
  std::optional<SampleStats> lookup(const ProfileKey& key) const;
  /// Sample count for the key (0 when absent) — the exploration test.
  std::uint64_t samples(const ProfileKey& key) const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  /// Total samples folded in across all keys.
  std::uint64_t total_samples() const;
  /// Bumped on every record/merge; cheap staleness check for cached
  /// derivations (the selector's calibration cache keys on it).
  std::uint64_t revision() const;

  /// Stable copy of every (key, stats) pair, sorted by key fields so
  /// iteration (and serialization) order is deterministic.
  std::vector<std::pair<ProfileKey, SampleStats>> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<ProfileKey, SampleStats, ProfileKeyHash> map_;
  std::uint64_t revision_ = 0;
};

// --- serialization (the TuningTable v3 profile section) ----------------------

/// One entry per line, sorted (deterministic files):
///   prof <machine> <nodes> <ppn> <op> <size_key> <algo> <group> <backend>
///        <n> <mean> <m2> <min>
/// with `op` a coll::op_kind_tag and doubles at max_digits10 so statistics
/// survive the text round trip exactly.
void write_profile_section(std::ostream& os, const ExecutionProfiler& p);

/// Parse one `prof ...` line (leading "prof" token included). Throws
/// std::runtime_error on a malformed line, unknown op tag, algorithm index
/// out of the op's range, or a zero sample count.
std::pair<ProfileKey, SampleStats> parse_profile_line(const std::string& line);

}  // namespace mca2a::autotune
