#pragma once
/// \file calibrator.hpp
/// Cost-model calibration from measured executions.
///
/// The closed-form tuners (core/tuner, coll_ext/ext_tuner) evaluate
/// model::NetParams that were set once per machine preset. On a real
/// system the effective latency (α-type terms: per-message latencies and
/// CPU overheads) and bandwidth (β-type terms: per-byte rates) drift from
/// the preset, which moves algorithm crossover points — the
/// model-vs-reality gap SuperMUC-scale deployments report. Rather than
/// learn every (op, size, algorithm) cell independently, the calibrator
/// fits just two global scale factors from whatever the ExecutionProfiler
/// has accumulated:
///
///   measured ≈ const + alpha_scale * T_alpha + beta_scale * T_beta
///
/// where T_alpha/T_beta are each sample's model-predicted α-/β-term
/// contributions (obtained by finite differencing the predictor — exact
/// where the predictor is linear in the scaled terms, a first-order
/// approximation across its max() seams). Weighted least squares over all
/// samples (relative weighting, so small and large messages count alike)
/// yields the two scales, which then benefit *every* size class — also the
/// ones the online selector has never explored.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "autotune/profiler.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::autotune {

/// A fitted (or identity) pair of cost-model scale factors.
struct Calibration {
  /// Multiplier on the α-type terms: per-level alpha/o_send/o_recv,
  /// per-message NIC and memory-channel overheads, matching costs.
  double alpha_scale = 1.0;
  /// Multiplier on the β-type terms: per-level beta, NIC inject/eject and
  /// memory-channel rates, CPU copy rates, pack rate.
  double beta_scale = 1.0;
  /// Whether a fit was performed (enough usable profile entries).
  bool fitted = false;
  /// Distinct profile entries and total executions behind the fit.
  std::size_t entries = 0;
  std::uint64_t samples = 0;
  /// Relative RMS error of the model against the measured means, before
  /// and after scaling (diagnostics; after <= before up to the linear
  /// approximation).
  double rms_before = 0.0;
  double rms_after = 0.0;

  /// `net` with the two scale factors applied (identity when !fitted).
  model::NetParams apply(const model::NetParams& net) const;
};

/// Scale a parameter set's α-/β-type terms (the transformation
/// Calibration::apply performs; exposed for the calibrator's own finite
/// differencing and for tests).
model::NetParams scale_params(const model::NetParams& net, double alpha_scale,
                              double beta_scale);

/// Fit the two scales from every profile entry matching (machine shape,
/// backend) whose op has a closed-form predictor (alltoall, allgather,
/// allreduce; alltoallv entries are keyed by quantized size class and are
/// skipped). Returns an identity Calibration (fitted == false) when fewer
/// than `min_entries` usable entries exist. Scales are clamped to
/// [0.05, 20] — a sample set pathological enough to leave that range says
/// "don't trust this fit", not "the network is 100x off".
Calibration fit_cost_model(const ExecutionProfiler& profiler,
                           const topo::Machine& machine,
                           const model::NetParams& net,
                           std::string_view backend,
                           std::size_t min_entries = 4);

}  // namespace mca2a::autotune
