#include "autotune/calibrator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "coll_ext/ext_tuner.hpp"
#include "core/tuner.hpp"

namespace mca2a::autotune {

namespace {

constexpr double kScaleMin = 0.05;
constexpr double kScaleMax = 20.0;

/// The model's prediction for one profile entry, or a negative value when
/// the entry has no closed-form predictor (unknown op, stale algorithm
/// index, group size that no longer divides ppn, ...). Deserialized
/// profiles can legitimately carry entries the current build cannot score.
double predict_entry(const ProfileKey& key, const topo::Machine& machine,
                     const model::NetParams& net) {
  try {
    switch (key.op) {
      case coll::OpKind::kAlltoall:
        return coll::predict_alltoall_seconds(static_cast<coll::Algo>(key.algo),
                                              machine, net, key.size_key,
                                              key.group_size);
      case coll::OpKind::kAllgather:
        return coll::predict_allgather_seconds(
            static_cast<coll::AllgatherAlgo>(key.algo), machine, net,
            key.size_key, key.group_size);
      case coll::OpKind::kAllreduce:
        return coll::predict_allreduce_seconds(
            static_cast<coll::AllreduceAlgo>(key.algo), machine, net,
            key.size_key, key.group_size);
      case coll::OpKind::kAlltoallv:  // size class is not a byte count
      case coll::OpKind::kCount_:
        return -1.0;
    }
  } catch (const std::exception&) {
    return -1.0;
  }
  return -1.0;
}

}  // namespace

model::NetParams scale_params(const model::NetParams& net, double alpha_scale,
                              double beta_scale) {
  model::NetParams out = net;
  for (auto& l : out.level) {
    l.alpha *= alpha_scale;
    l.o_send *= alpha_scale;
    l.o_recv *= alpha_scale;
    l.beta *= beta_scale;
  }
  out.nic_msg_overhead *= alpha_scale;
  out.mem_msg_overhead *= alpha_scale;
  out.match_base *= alpha_scale;
  out.match_per_item *= alpha_scale;
  out.nic_inject_beta *= beta_scale;
  out.nic_eject_beta *= beta_scale;
  out.mem_channel_beta *= beta_scale;
  out.cpu_copy_beta *= beta_scale;
  out.cpu_copy_beta_intra *= beta_scale;
  out.cpu_copy_beta_intra_cached *= beta_scale;
  out.pack_beta *= beta_scale;
  return out;
}

model::NetParams Calibration::apply(const model::NetParams& net) const {
  if (!fitted) {
    return net;
  }
  return scale_params(net, alpha_scale, beta_scale);
}

Calibration fit_cost_model(const ExecutionProfiler& profiler,
                           const topo::Machine& machine,
                           const model::NetParams& net,
                           std::string_view backend,
                           std::size_t min_entries) {
  struct Sample {
    double measured = 0.0;  // mean over executions
    double t0 = 0.0;        // model at scales (1, 1)
    double ta = 0.0;        // alpha-term contribution
    double tb = 0.0;        // beta-term contribution
    double w = 0.0;         // weight
    std::uint64_t n = 0;
  };
  std::vector<Sample> samples;
  std::uint64_t total_n = 0;

  const model::NetParams net_a2 = scale_params(net, 2.0, 1.0);
  const model::NetParams net_b2 = scale_params(net, 1.0, 2.0);

  for (const auto& [key, stats] : profiler.snapshot()) {
    if (key.machine != machine.name() || key.nodes != machine.nodes() ||
        key.ppn != machine.ppn() || key.backend != backend || stats.n == 0) {
      continue;
    }
    const double t0 = predict_entry(key, machine, net);
    if (t0 <= 0.0 || stats.mean <= 0.0) {
      continue;
    }
    Sample s;
    s.measured = stats.mean;
    s.t0 = t0;
    // Finite differences isolate the α- and β-term contributions: the
    // predictors are (piecewise) linear in the scaled terms, so doubling a
    // scale adds exactly that scale's contribution.
    s.ta = predict_entry(key, machine, net_a2) - t0;
    s.tb = predict_entry(key, machine, net_b2) - t0;
    // Relative weighting (normalize by measured²) so microsecond and
    // millisecond regimes pull equally; cap the per-entry sample count so
    // one hammered size class cannot drown the rest.
    s.n = stats.n;
    s.w = static_cast<double>(std::min<std::uint64_t>(stats.n, 16)) /
          (s.measured * s.measured);
    samples.push_back(s);
    total_n += stats.n;
  }

  Calibration cal;
  if (samples.size() < min_entries) {
    return cal;
  }
  cal.entries = samples.size();
  cal.samples = total_n;

  // Weighted least squares for (a, b) in  measured ≈ c + a·ta + b·tb,
  // c = t0 - ta - tb (the residual constant part of the model).
  double saa = 0.0, sab = 0.0, sbb = 0.0, say = 0.0, sby = 0.0;
  for (const Sample& s : samples) {
    const double y = s.measured - (s.t0 - s.ta - s.tb);
    saa += s.w * s.ta * s.ta;
    sab += s.w * s.ta * s.tb;
    sbb += s.w * s.tb * s.tb;
    say += s.w * s.ta * y;
    sby += s.w * s.tb * y;
  }
  const double det = saa * sbb - sab * sab;
  double a = 1.0;
  double b = 1.0;
  if (det > 1e-12 * std::max(saa * sbb, 1e-300)) {
    a = (say * sbb - sby * sab) / det;
    b = (sby * saa - say * sab) / det;
  } else {
    // Degenerate design (e.g. one size class only, or pure-α samples):
    // fall back to a single shared scale on both term families.
    double num = 0.0, den = 0.0;
    for (const Sample& s : samples) {
      const double t_ab = s.ta + s.tb;
      const double y = s.measured - (s.t0 - t_ab);
      num += s.w * t_ab * y;
      den += s.w * t_ab * t_ab;
    }
    if (den > 0.0) {
      a = b = num / den;
    }
  }
  cal.alpha_scale = std::clamp(a, kScaleMin, kScaleMax);
  cal.beta_scale = std::clamp(b, kScaleMin, kScaleMax);
  cal.fitted = true;

  double err0 = 0.0, err1 = 0.0;
  for (const Sample& s : samples) {
    const double before = (s.t0 - s.measured) / s.measured;
    const double fit =
        s.t0 - s.ta - s.tb + cal.alpha_scale * s.ta + cal.beta_scale * s.tb;
    const double after = (fit - s.measured) / s.measured;
    err0 += before * before;
    err1 += after * after;
  }
  cal.rms_before = std::sqrt(err0 / static_cast<double>(samples.size()));
  cal.rms_after = std::sqrt(err1 / static_cast<double>(samples.size()));
  return cal;
}

}  // namespace mca2a::autotune
