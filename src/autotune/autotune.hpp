#pragma once
/// \file autotune.hpp
/// Process-wide entry point of the online autotuning subsystem.
///
/// Two environment knobs configure a process-global OnlineSelector that
/// plan::make_plan consults whenever PlanOptions carries no explicit one:
///
///   A2A_AUTOTUNE=off|observe|adapt
///     off (or unset)  — no global selector; selection stays pure
///                       closed-form model, bit-for-bit (pinned by tests).
///     observe         — record every completed plan execution into the
///                       global profiler; selection unchanged.
///     adapt           — measurement-driven selection: bounded exploration
///                       of the model-plausible candidates, then
///                       exploitation of the measured winner
///                       (autotune/selector.hpp).
///
///   A2A_PROFILE=path
///     Persist the global profiler across runs: loaded (leniently — a
///     missing or unreadable file starts empty with a warning) before the
///     first decision, saved at process exit as a plan::TuningTable v3
///     file holding the measured-profile section. Only meaningful
///     together with A2A_AUTOTUNE=observe|adapt.
///
/// Library code never needs this header: pass an explicit selector via
/// PlanOptions::autotune instead. The global is for closing the loop in
/// deployed binaries without touching call sites.

#include <string>

#include "autotune/selector.hpp"

namespace mca2a::autotune {

/// A2A_AUTOTUNE parsed; kOff when unset, empty, or (with one stderr
/// warning) unrecognized.
Mode mode_from_env();

/// The env-configured process-global selector, or nullptr when the mode is
/// off. Constructed (and A2A_PROFILE loaded) on first call, thread-safely;
/// the environment is read once — tests wanting different modes construct
/// their own OnlineSelector instead of mutating the environment.
OnlineSelector* global_selector();

/// A2A_PROFILE, or "" when unset (resolved once, with the selector).
const std::string& global_profile_path();

/// Write the global profiler to A2A_PROFILE now (also registered atexit).
/// Returns false when there is nothing to save (no global selector or no
/// path) or the file could not be written.
bool save_global_profile();

/// Parse a TuningTable v3 stream's profile section into `out`, ignoring
/// decision entries and v1/v2 streams (which have no profiles). Throws
/// std::runtime_error on a stream that is not a tuning table at all or on
/// a malformed profile line. (plan::TuningTable::load is the full parser;
/// this lenient reader keeps the autotune layer below plan/.)
void load_profile_stream(std::istream& is, ExecutionProfiler& out);

}  // namespace mca2a::autotune
