#include "autotune/selector.hpp"

#include <limits>

#include "obs/metrics.hpp"

namespace mca2a::autotune {

std::string_view mode_name(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kObserve:
      return "observe";
    case Mode::kAdapt:
      return "adapt";
  }
  return "?";
}

std::optional<Mode> mode_from_string(std::string_view s) {
  if (s == "off") {
    return Mode::kOff;
  }
  if (s == "observe") {
    return Mode::kObserve;
  }
  if (s == "adapt") {
    return Mode::kAdapt;
  }
  return std::nullopt;
}

OnlineSelector::OnlineSelector(Mode mode) : OnlineSelector(mode, Config{}) {}

OnlineSelector::OnlineSelector(Mode mode, Config cfg)
    : mode_(mode), cfg_(cfg) {}

void OnlineSelector::record(const ProfileKey& key, double seconds) {
  if (mode_ == Mode::kOff) {
    return;
  }
  profiler_.record(key, seconds);
}

model::NetParams OnlineSelector::ranking_params(const topo::Machine& machine,
                                                const model::NetParams& net,
                                                std::string_view backend) {
  if (!cfg_.calibrate) {
    return net;
  }
  return calibration(machine, net, backend).apply(net);
}

Calibration OnlineSelector::calibration(const topo::Machine& machine,
                                        const model::NetParams& net,
                                        std::string_view backend) {
  if (!cfg_.calibrate || mode_ == Mode::kOff) {
    return Calibration{};
  }
  const std::uint64_t rev = profiler_.revision();
  std::lock_guard<std::mutex> lk(mu_);
  for (CalCacheEntry& e : cal_cache_) {
    if (e.machine == machine.name() && e.nodes == machine.nodes() &&
        e.ppn == machine.ppn() && e.backend == backend) {
      if (e.revision != rev) {
        e.cal = fit_cost_model(profiler_, machine, net, backend,
                               cfg_.calibration_min_entries);
        e.revision = rev;
      }
      return e.cal;
    }
  }
  CalCacheEntry e;
  e.machine = machine.name();
  e.nodes = machine.nodes();
  e.ppn = machine.ppn();
  e.backend = std::string(backend);
  e.revision = rev;
  e.cal = fit_cost_model(profiler_, machine, net, backend,
                         cfg_.calibration_min_entries);
  cal_cache_.push_back(e);
  return cal_cache_.back().cal;
}

const std::vector<OnlineSelector::Candidate>& OnlineSelector::candidate_set(
    const topo::Machine& machine, const model::NetParams& net,
    coll::OpKind op, std::size_t size_key, std::string_view backend) {
  std::string key = machine.name();
  key += ' ';
  key += std::to_string(machine.nodes());
  key += ' ';
  key += std::to_string(machine.ppn());
  key += ' ';
  key += coll::op_kind_tag(op);
  key += ' ';
  key += std::to_string(size_key);
  key += ' ';
  key += backend;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = cand_cache_.find(key);
  if (it != cand_cache_.end()) {
    return it->second;
  }
  // First consult for this size class: rank with whatever the calibration
  // knows right now, then freeze. (A set that re-ranked as samples arrive
  // would keep minting under-sampled candidates.)
  std::vector<Candidate> cands;
  switch (op) {
    case coll::OpKind::kAlltoall:
      for (const coll::Choice& c : coll::rank_alltoall_candidates(
               machine, net, size_key, cfg_.plausible_factor,
               cfg_.max_candidates)) {
        cands.push_back(Candidate{static_cast<int>(c.algo), c.group_size,
                                  c.predicted_seconds});
      }
      break;
    case coll::OpKind::kAllgather:
      for (const coll::AllgatherChoice& c : coll::rank_allgather_candidates(
               machine, net, size_key, cfg_.plausible_factor,
               cfg_.max_candidates)) {
        cands.push_back(Candidate{static_cast<int>(c.algo), c.group_size,
                                  c.predicted_seconds});
      }
      break;
    default:
      break;  // other op kinds are not online-selected
  }
  return cand_cache_.emplace(std::move(key), std::move(cands)).first->second;
}

std::optional<OnlineSelector::Candidate> OnlineSelector::pick(
    const topo::Machine& machine, coll::OpKind op, std::size_t size_key,
    std::string_view backend, const std::vector<Candidate>& ranked,
    bool* explored) {
  if (ranked.empty()) {
    return std::nullopt;
  }
  // Exploration: the least-sampled under-target candidate, model order on
  // ties — a pure function of the profiler state, so every rank of a
  // collective resolves the same candidate (see the determinism contract
  // in the header).
  // Every collective execution contributes one sample per rank, so the
  // per-candidate exploration budget is explore_target *executions*.
  const std::uint64_t target_samples =
      static_cast<std::uint64_t>(cfg_.explore_target) *
      static_cast<std::uint64_t>(machine.total_ranks());
  std::size_t explore_idx = ranked.size();
  std::uint64_t explore_n = std::numeric_limits<std::uint64_t>::max();
  std::size_t best_idx = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const ProfileKey key = make_profile_key(machine, op, size_key,
                                            ranked[i].algo,
                                            ranked[i].group_size, backend);
    const auto stats = profiler_.lookup(key);
    const std::uint64_t n = stats ? stats->n : 0;
    if (n < target_samples && n < explore_n) {
      explore_idx = i;
      explore_n = n;
    }
    // Exploit by the mean over all ranks and executions. The per-rank mean
    // preserves the collective-time ordering of the candidates (leader
    // algorithms idle their members, but proportionally), and averaging
    // across explore_target executions at different session positions
    // washes out the residual-skew noise a single back-to-back execution
    // carries; min/M2 stay in the stats for diagnostics and calibration.
    if (stats && stats->mean < best_mean) {
      best_idx = i;
      best_mean = stats->mean;
    }
  }
  static obs::Counter& m_explore =
      obs::metrics().counter("autotune.explorations");
  static obs::Counter& m_exploit =
      obs::metrics().counter("autotune.exploitations");
  if (explore_idx < ranked.size()) {
    explorations_.fetch_add(1, std::memory_order_relaxed);
    m_explore.add();
    if (explored != nullptr) {
      *explored = true;
    }
    return ranked[explore_idx];  // predicted_seconds: the model's estimate
  }
  exploitations_.fetch_add(1, std::memory_order_relaxed);
  m_exploit.add();
  if (explored != nullptr) {
    *explored = false;
  }
  Candidate c = ranked[best_idx];
  c.predicted_seconds = best_mean;  // the measured mean it was picked for
  return c;
}

std::optional<coll::Choice> OnlineSelector::choose_alltoall(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, std::string_view backend, bool* explored) {
  if (mode_ != Mode::kAdapt) {
    return std::nullopt;
  }
  const auto& ranked =
      candidate_set(machine, ranking_params(machine, net, backend),
                    coll::OpKind::kAlltoall, block, backend);
  const auto c = pick(machine, coll::OpKind::kAlltoall, block, backend,
                      ranked, explored);
  if (!c) {
    return std::nullopt;
  }
  return coll::Choice{static_cast<coll::Algo>(c->algo), c->group_size,
                      c->predicted_seconds};
}

std::optional<coll::AllgatherChoice> OnlineSelector::choose_allgather(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, std::string_view backend, bool* explored) {
  if (mode_ != Mode::kAdapt) {
    return std::nullopt;
  }
  const auto& ranked =
      candidate_set(machine, ranking_params(machine, net, backend),
                    coll::OpKind::kAllgather, block, backend);
  const auto c = pick(machine, coll::OpKind::kAllgather, block, backend,
                      ranked, explored);
  if (!c) {
    return std::nullopt;
  }
  return coll::AllgatherChoice{static_cast<coll::AllgatherAlgo>(c->algo),
                               c->group_size, c->predicted_seconds};
}

}  // namespace mca2a::autotune
