#include "autotune/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "runtime/env.hpp"

namespace mca2a::autotune {

std::size_t ProfileKeyHash::operator()(const ProfileKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.machine);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::size_t>(k.nodes));
  mix(static_cast<std::size_t>(k.ppn));
  mix(static_cast<std::size_t>(static_cast<int>(k.op)) + 1);
  mix(k.size_key);
  mix(static_cast<std::size_t>(k.algo) + 1);
  mix(static_cast<std::size_t>(k.group_size));
  mix(std::hash<std::string>{}(k.backend));
  return h;
}

namespace {

void check_token(std::string_view what, std::string_view s) {
  if (s.empty() || s.find_first_of(" \t\n\r") != std::string_view::npos) {
    throw std::invalid_argument(
        "autotune: " + std::string(what) +
        " must be non-empty and contain no whitespace: '" + std::string(s) +
        "'");
  }
}

/// Total order over key fields (snapshot determinism).
bool key_less(const ProfileKey& a, const ProfileKey& b) {
  return std::tie(a.machine, a.nodes, a.ppn, a.op, a.size_key, a.algo,
                  a.group_size, a.backend) <
         std::tie(b.machine, b.nodes, b.ppn, b.op, b.size_key, b.algo,
                  b.group_size, b.backend);
}

/// Process-wide default shard count: A2A_PROF_SHARDS, with 0/unset meaning
/// min(hardware_concurrency, 16).
std::size_t default_shard_count() {
  static const std::size_t n = [] {
    const auto v = static_cast<std::size_t>(
        rt::env::get_int("A2A_PROF_SHARDS", 0, 0, 1024));
    if (v != 0) {
      return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return std::min<std::size_t>(hw == 0 ? 1 : hw, 16);
  }();
  return n;
}

}  // namespace

/// One internal shard: a mutex-guarded slice of the accumulator plus its
/// own revision counter (summed by revision()).
struct ExecutionProfiler::Shard {
  mutable std::mutex mu;
  std::unordered_map<ProfileKey, SampleStats, ProfileKeyHash> map;
  std::atomic<std::uint64_t> revision{0};
};

ProfileKey make_profile_key(const topo::Machine& machine, coll::OpKind op,
                            std::size_t size_key, int algo, int group_size,
                            std::string_view backend) {
  check_token("machine name", machine.name());
  check_token("backend name", backend);
  ProfileKey k;
  k.machine = machine.name();
  k.nodes = machine.nodes();
  k.ppn = machine.ppn();
  k.op = op;
  k.size_key = size_key;
  k.algo = algo;
  k.group_size = group_size;
  k.backend = std::string(backend);
  return k;
}

void SampleStats::add(double x) {
  min = n == 0 ? x : std::min(min, x);
  ++n;
  const double delta = x - mean;
  mean += delta / static_cast<double>(n);
  m2 += delta * (x - mean);
}

void SampleStats::merge(const SampleStats& other) {
  if (other.n == 0) {
    return;
  }
  if (n == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n);
  const double nb = static_cast<double>(other.n);
  const double delta = other.mean - mean;
  const double total = na + nb;
  mean += delta * nb / total;
  m2 += other.m2 + delta * delta * na * nb / total;
  min = std::min(min, other.min);
  n += other.n;
}

ExecutionProfiler::ExecutionProfiler(std::size_t shards) {
  const std::size_t n = shards == 0 ? default_shard_count() : shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ExecutionProfiler::~ExecutionProfiler() = default;

ExecutionProfiler::ExecutionProfiler(const ExecutionProfiler& other) {
  // Shard-by-shard copy under each source shard's lock: the copy keeps the
  // same shard count and per-shard contents, so its snapshots fold in the
  // same order and stay bit-identical to the original's.
  shards_.reserve(other.shards_.size());
  for (const auto& sp : other.shards_) {
    auto ns = std::make_unique<Shard>();
    std::lock_guard<std::mutex> lk(sp->mu);
    ns->map = sp->map;
    ns->revision.store(sp->revision.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    shards_.push_back(std::move(ns));
  }
}

ExecutionProfiler& ExecutionProfiler::operator=(
    const ExecutionProfiler& other) {
  if (this != &other) {
    ExecutionProfiler copy(other);
    shards_.swap(copy.shards_);
  }
  return *this;
}

ExecutionProfiler::ExecutionProfiler(ExecutionProfiler&& other) noexcept
    : shards_(std::move(other.shards_)) {
  // Leave the moved-from profiler usable (it may still be queried or
  // recorded into); a failed shard allocation here terminates, which is
  // the usual noexcept-move bargain.
  other.shards_.clear();
  other.shards_.push_back(std::make_unique<Shard>());
}

ExecutionProfiler& ExecutionProfiler::operator=(
    ExecutionProfiler&& other) noexcept {
  if (this != &other) {
    shards_.swap(other.shards_);
  }
  return *this;
}

ExecutionProfiler::Shard& ExecutionProfiler::my_shard() const {
  // Threads pin to shards round-robin on first touch of each profiler; the
  // pin is sticky, so one thread's samples for one profiler always land in
  // the same shard. A single-threaded feed therefore populates exactly one
  // shard and the snapshot fold reduces to the identity. The pin list may
  // retain entries for destroyed profilers; a recycled address just
  // inherits the old pin, which the modulo keeps in range.
  thread_local std::vector<std::pair<const ExecutionProfiler*, std::size_t>>
      pins;
  for (const auto& [owner, idx] : pins) {
    if (owner == this) {
      return *shards_[idx % shards_.size()];
    }
  }
  static std::atomic<std::size_t> rr{0};
  const std::size_t idx = rr.fetch_add(1, std::memory_order_relaxed);
  pins.emplace_back(this, idx);
  return *shards_[idx % shards_.size()];
}

void ExecutionProfiler::record(const ProfileKey& key, double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) {
    return;
  }
  static obs::Counter& samples = obs::metrics().counter("autotune.samples");
  samples.add();
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lk(s.mu);
  s.map[key].add(seconds);
  s.revision.fetch_add(1, std::memory_order_relaxed);
}

void ExecutionProfiler::merge_entry(const ProfileKey& key,
                                    const SampleStats& stats) {
  if (stats.n == 0) {
    return;
  }
  Shard& s = my_shard();
  std::lock_guard<std::mutex> lk(s.mu);
  s.map[key].merge(stats);
  s.revision.fetch_add(1, std::memory_order_relaxed);
}

void ExecutionProfiler::merge(const ExecutionProfiler& other) {
  // Snapshot first: self-merge and lock-order concerns disappear.
  for (const auto& [key, stats] : other.snapshot()) {
    merge_entry(key, stats);
  }
}

std::optional<SampleStats> ExecutionProfiler::lookup(
    const ProfileKey& key) const {
  // Fold in shard index order: the fixed order makes repeated lookups of a
  // quiesced profiler return identical bits (Chan merging is exact but not
  // FP-associative).
  SampleStats acc;
  bool found = false;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    const auto it = sp->map.find(key);
    if (it != sp->map.end()) {
      acc.merge(it->second);
      found = true;
    }
  }
  if (!found) {
    return std::nullopt;
  }
  return acc;
}

std::uint64_t ExecutionProfiler::samples(const ProfileKey& key) const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    const auto it = sp->map.find(key);
    total += it == sp->map.end() ? 0 : it->second.n;
  }
  return total;
}

std::size_t ExecutionProfiler::size() const {
  // Distinct keys across shards (one key may have entries in several
  // shards when several threads recorded it).
  std::unordered_set<ProfileKey, ProfileKeyHash> keys;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    for (const auto& [key, stats] : sp->map) {
      keys.insert(key);
    }
  }
  return keys.size();
}

std::uint64_t ExecutionProfiler::total_samples() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    for (const auto& [key, stats] : sp->map) {
      total += stats.n;
    }
  }
  return total;
}

std::uint64_t ExecutionProfiler::revision() const {
  // Sum of monotone per-shard counters, each read once: monotone for any
  // single observer, which is all the staleness checks need.
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    total += sp->revision.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::pair<ProfileKey, SampleStats>> ExecutionProfiler::snapshot()
    const {
  // Per-key accumulators merged in shard index order (each shard holds at
  // most one entry per key, so within-shard map order is irrelevant);
  // fixed fold order + the final sort = deterministic, repeatable bytes.
  std::unordered_map<ProfileKey, SampleStats, ProfileKeyHash> acc;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    for (const auto& [key, stats] : sp->map) {
      acc[key].merge(stats);
    }
  }
  std::vector<std::pair<ProfileKey, SampleStats>> out;
  out.assign(acc.begin(), acc.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return key_less(a.first, b.first);
  });
  return out;
}

void write_profile_section(std::ostream& os, const ExecutionProfiler& p) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& [key, stats] : p.snapshot()) {
    os << "prof " << key.machine << ' ' << key.nodes << ' ' << key.ppn << ' '
       << coll::op_kind_tag(key.op) << ' ' << key.size_key << ' ' << key.algo
       << ' ' << key.group_size << ' ' << key.backend << ' ' << stats.n << ' '
       << stats.mean << ' ' << stats.m2 << ' ' << stats.min << "\n";
  }
}

std::pair<ProfileKey, SampleStats> parse_profile_line(
    const std::string& line) {
  std::istringstream ls(line);
  std::string head;
  std::string tag;
  ProfileKey key;
  SampleStats stats;
  if (!(ls >> head >> key.machine >> key.nodes >> key.ppn >> tag >>
        key.size_key >> key.algo >> key.group_size >> key.backend >> stats.n >>
        stats.mean >> stats.m2 >> stats.min) ||
      head != "prof") {
    throw std::runtime_error("autotune: malformed profile line: '" + line +
                             "'");
  }
  const auto op = coll::op_kind_from_tag(tag);
  if (!op) {
    throw std::runtime_error("autotune: unknown op tag '" + tag +
                             "' in profile line");
  }
  key.op = *op;
  if (key.algo < 0 || key.algo >= coll::num_algos(key.op)) {
    throw std::runtime_error(
        "autotune: algorithm index " + std::to_string(key.algo) +
        " out of range for " + std::string(coll::op_kind_name(key.op)));
  }
  if (stats.n == 0) {
    throw std::runtime_error(
        "autotune: profile line with zero samples: '" + line + "'");
  }
  return {std::move(key), stats};
}

}  // namespace mca2a::autotune
