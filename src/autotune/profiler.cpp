#include "autotune/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "obs/metrics.hpp"

namespace mca2a::autotune {

std::size_t ProfileKeyHash::operator()(const ProfileKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.machine);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::size_t>(k.nodes));
  mix(static_cast<std::size_t>(k.ppn));
  mix(static_cast<std::size_t>(static_cast<int>(k.op)) + 1);
  mix(k.size_key);
  mix(static_cast<std::size_t>(k.algo) + 1);
  mix(static_cast<std::size_t>(k.group_size));
  mix(std::hash<std::string>{}(k.backend));
  return h;
}

namespace {

void check_token(std::string_view what, std::string_view s) {
  if (s.empty() || s.find_first_of(" \t\n\r") != std::string_view::npos) {
    throw std::invalid_argument(
        "autotune: " + std::string(what) +
        " must be non-empty and contain no whitespace: '" + std::string(s) +
        "'");
  }
}

/// Total order over key fields (snapshot determinism).
bool key_less(const ProfileKey& a, const ProfileKey& b) {
  return std::tie(a.machine, a.nodes, a.ppn, a.op, a.size_key, a.algo,
                  a.group_size, a.backend) <
         std::tie(b.machine, b.nodes, b.ppn, b.op, b.size_key, b.algo,
                  b.group_size, b.backend);
}

}  // namespace

ProfileKey make_profile_key(const topo::Machine& machine, coll::OpKind op,
                            std::size_t size_key, int algo, int group_size,
                            std::string_view backend) {
  check_token("machine name", machine.name());
  check_token("backend name", backend);
  ProfileKey k;
  k.machine = machine.name();
  k.nodes = machine.nodes();
  k.ppn = machine.ppn();
  k.op = op;
  k.size_key = size_key;
  k.algo = algo;
  k.group_size = group_size;
  k.backend = std::string(backend);
  return k;
}

void SampleStats::add(double x) {
  min = n == 0 ? x : std::min(min, x);
  ++n;
  const double delta = x - mean;
  mean += delta / static_cast<double>(n);
  m2 += delta * (x - mean);
}

void SampleStats::merge(const SampleStats& other) {
  if (other.n == 0) {
    return;
  }
  if (n == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n);
  const double nb = static_cast<double>(other.n);
  const double delta = other.mean - mean;
  const double total = na + nb;
  mean += delta * nb / total;
  m2 += other.m2 + delta * delta * na * nb / total;
  min = std::min(min, other.min);
  n += other.n;
}

ExecutionProfiler::ExecutionProfiler(const ExecutionProfiler& other) {
  std::lock_guard<std::mutex> lk(other.mu_);
  map_ = other.map_;
  revision_ = other.revision_;
}

ExecutionProfiler& ExecutionProfiler::operator=(
    const ExecutionProfiler& other) {
  if (this != &other) {
    // Consistent lock order by address avoids a two-profiler deadlock.
    std::unique_lock<std::mutex> la(this < &other ? mu_ : other.mu_,
                                    std::defer_lock);
    std::unique_lock<std::mutex> lb(this < &other ? other.mu_ : mu_,
                                    std::defer_lock);
    la.lock();
    lb.lock();
    map_ = other.map_;
    revision_ = other.revision_;
  }
  return *this;
}

ExecutionProfiler::ExecutionProfiler(ExecutionProfiler&& other) noexcept {
  std::lock_guard<std::mutex> lk(other.mu_);
  map_ = std::move(other.map_);
  revision_ = other.revision_;
}

ExecutionProfiler& ExecutionProfiler::operator=(
    ExecutionProfiler&& other) noexcept {
  if (this != &other) {
    std::unique_lock<std::mutex> la(this < &other ? mu_ : other.mu_,
                                    std::defer_lock);
    std::unique_lock<std::mutex> lb(this < &other ? other.mu_ : mu_,
                                    std::defer_lock);
    la.lock();
    lb.lock();
    map_ = std::move(other.map_);
    revision_ = other.revision_;
  }
  return *this;
}

void ExecutionProfiler::record(const ProfileKey& key, double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) {
    return;
  }
  static obs::Counter& samples = obs::metrics().counter("autotune.samples");
  samples.add();
  std::lock_guard<std::mutex> lk(mu_);
  map_[key].add(seconds);
  ++revision_;
}

void ExecutionProfiler::merge_entry(const ProfileKey& key,
                                    const SampleStats& stats) {
  if (stats.n == 0) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  map_[key].merge(stats);
  ++revision_;
}

void ExecutionProfiler::merge(const ExecutionProfiler& other) {
  // Snapshot first: self-merge and lock-order concerns disappear.
  for (const auto& [key, stats] : other.snapshot()) {
    merge_entry(key, stats);
  }
}

std::optional<SampleStats> ExecutionProfiler::lookup(
    const ProfileKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::uint64_t ExecutionProfiler::samples(const ProfileKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second.n;
}

std::size_t ExecutionProfiler::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

std::uint64_t ExecutionProfiler::total_samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, stats] : map_) {
    total += stats.n;
  }
  return total;
}

std::uint64_t ExecutionProfiler::revision() const {
  std::lock_guard<std::mutex> lk(mu_);
  return revision_;
}

std::vector<std::pair<ProfileKey, SampleStats>> ExecutionProfiler::snapshot()
    const {
  std::vector<std::pair<ProfileKey, SampleStats>> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.assign(map_.begin(), map_.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return key_less(a.first, b.first); });
  return out;
}

void write_profile_section(std::ostream& os, const ExecutionProfiler& p) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& [key, stats] : p.snapshot()) {
    os << "prof " << key.machine << ' ' << key.nodes << ' ' << key.ppn << ' '
       << coll::op_kind_tag(key.op) << ' ' << key.size_key << ' ' << key.algo
       << ' ' << key.group_size << ' ' << key.backend << ' ' << stats.n << ' '
       << stats.mean << ' ' << stats.m2 << ' ' << stats.min << "\n";
  }
}

std::pair<ProfileKey, SampleStats> parse_profile_line(
    const std::string& line) {
  std::istringstream ls(line);
  std::string head;
  std::string tag;
  ProfileKey key;
  SampleStats stats;
  if (!(ls >> head >> key.machine >> key.nodes >> key.ppn >> tag >>
        key.size_key >> key.algo >> key.group_size >> key.backend >> stats.n >>
        stats.mean >> stats.m2 >> stats.min) ||
      head != "prof") {
    throw std::runtime_error("autotune: malformed profile line: '" + line +
                             "'");
  }
  const auto op = coll::op_kind_from_tag(tag);
  if (!op) {
    throw std::runtime_error("autotune: unknown op tag '" + tag +
                             "' in profile line");
  }
  key.op = *op;
  if (key.algo < 0 || key.algo >= coll::num_algos(key.op)) {
    throw std::runtime_error(
        "autotune: algorithm index " + std::to_string(key.algo) +
        " out of range for " + std::string(coll::op_kind_name(key.op)));
  }
  if (stats.n == 0) {
    throw std::runtime_error(
        "autotune: profile line with zero samples: '" + line + "'");
  }
  return {std::move(key), stats};
}

}  // namespace mca2a::autotune
