#include "autotune/autotune.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/env.hpp"

namespace mca2a::autotune {

namespace {

constexpr char kTableHeaderPrefix[] = "mca2a-tuning-table v";

struct GlobalState {
  Mode mode = Mode::kOff;
  std::string path;
  std::unique_ptr<OnlineSelector> selector;
};

GlobalState& global_state() {
  static GlobalState st = [] {
    GlobalState s;
    s.mode = mode_from_env();
    obs::metrics().gauge("autotune.mode").set(static_cast<int>(s.mode));
    if (s.mode == Mode::kOff) {
      return s;
    }
    s.selector = std::make_unique<OnlineSelector>(s.mode);
    if (const auto p = rt::env::get_string("A2A_PROFILE")) {
      s.path = *p;
      std::ifstream is(s.path);
      if (is) {
        try {
          load_profile_stream(is, s.selector->profiler());
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "mca2a: A2A_PROFILE=%s unreadable (%s); starting with "
                       "an empty profile\n",
                       s.path.c_str(), e.what());
        }
      }
    }
    return s;
  }();
  // The save hook must be registered *after* `st` finishes constructing:
  // exit handlers run in reverse registration order, and only this order
  // puts the save before the selector's destruction. A second static does
  // exactly that (its initializer runs after st's completes).
  static const bool save_hooked = [] {
    if (st.selector != nullptr && !st.path.empty()) {
      std::atexit([] { save_global_profile(); });
    }
    return true;
  }();
  (void)save_hooked;
  return st;
}

}  // namespace

Mode mode_from_env() {
  const auto v = rt::env::get_string("A2A_AUTOTUNE");
  if (!v) {
    return Mode::kOff;
  }
  if (const auto m = mode_from_string(*v)) {
    return *m;
  }
  throw rt::env::EnvError("env knob A2A_AUTOTUNE='" + *v +
                          "': expected off, observe or adapt");
}

OnlineSelector* global_selector() { return global_state().selector.get(); }

const std::string& global_profile_path() { return global_state().path; }

bool save_global_profile() {
  GlobalState& st = global_state();
  if (!st.selector || st.path.empty()) {
    return false;
  }
  std::ofstream os(st.path);
  if (!os) {
    std::fprintf(stderr, "mca2a: cannot write A2A_PROFILE=%s\n",
                 st.path.c_str());
    return false;
  }
  // A valid (entry-less) TuningTable v3 file: plan::TuningTable::load
  // reads it back, and so does load_profile_stream.
  os << kTableHeaderPrefix << "3\n";
  write_profile_section(os, st.selector->profiler());
  return static_cast<bool>(os);
}

void load_profile_stream(std::istream& is, ExecutionProfiler& out) {
  std::string line;
  if (!std::getline(is, line) ||
      line.rfind(kTableHeaderPrefix, 0) != 0) {
    throw std::runtime_error(
        "autotune: not a tuning-table stream (bad header: '" + line + "')");
  }
  while (std::getline(is, line)) {
    if (line.rfind("prof ", 0) != 0) {
      continue;  // decision entries, comments, blank lines
    }
    auto [key, stats] = parse_profile_line(line);
    out.merge_entry(key, stats);
  }
}

}  // namespace mca2a::autotune
