#pragma once
/// \file comm.hpp
/// The abstract communicator: an MPI-flavoured endpoint every backend
/// (shared-memory threads, discrete-event simulator) implements.
///
/// Semantics follow MPI-3 point-to-point matching:
///  * a message is matched by (source, tag) within a communicator;
///  * kAnySource / kAnyTag wildcards are honoured on the receive side;
///  * messages between a fixed (sender, receiver) pair are non-overtaking;
///  * receives match in post order (FIFO) among eligible candidates.
///
/// All blocking operations are expressed as awaitables so the same algorithm
/// coroutine runs on both backends: the threads backend completes awaiters
/// synchronously, the simulator suspends them until virtual time advances.

#include <array>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "runtime/buffer.hpp"
#include "runtime/tags.hpp"
#include "runtime/task.hpp"

namespace mca2a::obs {
class TraceBuffer;
}

namespace mca2a::rt {

/// Wildcard source rank (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Handle to an in-flight nonblocking operation. Backend-owned slot plus a
/// serial number to catch use-after-completion bugs.
struct Request {
  std::uint32_t slot = UINT32_MAX;
  std::uint32_t serial = 0;

  bool valid() const noexcept { return slot != UINT32_MAX; }
};

class Comm;

/// Awaiter for the completion of a set of requests.
class WaitAwaiter {
 public:
  WaitAwaiter(Comm& comm, std::span<const Request> reqs) noexcept
      : comm_(&comm), reqs_(reqs) {}

  bool await_ready();
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}

 private:
  Comm* comm_;
  std::span<const Request> reqs_;
};

/// Awaiter for a single request (owns the request storage).
class WaitOneAwaiter {
 public:
  WaitOneAwaiter(Comm& comm, Request r) noexcept : comm_(&comm), req_{r} {}

  bool await_ready();
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}

 private:
  Comm* comm_;
  std::array<Request, 1> req_;
};

/// Abstract per-rank communicator endpoint.
///
/// A Comm object belongs to exactly one rank: rank() is *this* process's
/// rank within the communicator. Sub-communicators are created with
/// create_subcomm (collective-free, deterministic) or the comm_split
/// collective in collectives.hpp.
class Comm {
 public:
  virtual ~Comm() = default;
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  /// This rank's index within the communicator.
  int rank() const noexcept { return rank_; }
  /// Number of ranks in the communicator.
  int size() const noexcept { return size_; }

  // --- nonblocking point-to-point -----------------------------------------

  /// Start a nonblocking send of `buf` to rank `dst` with tag `tag`.
  virtual Request isend(ConstView buf, int dst, int tag) = 0;
  /// Start a nonblocking receive into `buf` from `src` (or kAnySource) with
  /// tag `tag` (or kAnyTag). `buf.len` must be >= the matched message size.
  virtual Request irecv(MutView buf, int src, int tag) = 0;

  // --- completion (used by the awaiters; rarely called directly) ----------

  /// Try to complete all requests. The threads backend blocks until they are
  /// complete and returns true; the simulator polls and returns whether all
  /// are already complete. Completed requests are released.
  virtual bool wait_try(std::span<const Request> reqs) = 0;
  /// Simulator only: park `h` until all requests complete.
  virtual void wait_suspend(std::span<const Request> reqs,
                            std::coroutine_handle<> h) = 0;

  // --- environment ---------------------------------------------------------

  /// Current time in seconds: wall clock on the threads backend, virtual
  /// time on the simulator.
  virtual double now() const = 0;

  /// Short stable backend identifier ("sim", "smp"), one whitespace-free
  /// token. Keys measured performance profiles (autotune/): wall-clock and
  /// virtual-time samples must never pool, so every backend overrides.
  virtual std::string_view backend_name() const noexcept { return "host"; }

  /// Allocate a scratch buffer: real on the threads backend, virtual or real
  /// on the simulator depending on its carry-data configuration.
  virtual Buffer alloc_buffer(std::size_t bytes) const = 0;

  /// Allocate scratch whose initial contents are UNSPECIFIED — the
  /// allocation path of rt::ScratchArena, whose contract already requires
  /// algorithms to fully overwrite every region they later read. Defaults
  /// to alloc_buffer; backends on real memory may skip zero-initialization
  /// so the first writer's thread is the one that faults the pages in
  /// (NUMA first-touch places them on that thread's node).
  virtual Buffer alloc_scratch_buffer(std::size_t bytes) const {
    return alloc_buffer(bytes);
  }

  /// Account for a local repack of `bytes` (advances the simulator's rank
  /// clock by the model's packing cost; no-op on the threads backend).
  virtual void charge_copy(std::size_t bytes) = 0;

  /// Create a sub-communicator from `members`, an ordered, duplicate-free
  /// list of ranks *in this communicator* that must contain rank(). The
  /// list need not be sorted: the new communicator's rank numbering follows
  /// the order of `members` (member i becomes rank i). Every listed member
  /// must make an identical call; ranks not listed must not call.
  virtual std::unique_ptr<Comm> create_subcomm(std::span<const int> members) = 0;

  /// This rank's flight-recorder stream (obs/trace.hpp), or nullptr when
  /// tracing is disabled — the common case, which every instrumentation
  /// site must reduce to a single branch. Sub-communicators resolve to the
  /// same per-world-rank stream as their parent, so one rank's events land
  /// in one file no matter which communicator emitted them.
  virtual obs::TraceBuffer* tracer() const noexcept { return nullptr; }

  // --- sugar (implemented once over the virtuals) --------------------------

  /// Await completion of one request.
  WaitOneAwaiter wait(Request r) noexcept { return WaitOneAwaiter(*this, r); }
  /// Await completion of all requests (span must outlive the await).
  WaitAwaiter wait_all(std::span<const Request> reqs) noexcept {
    return WaitAwaiter(*this, reqs);
  }

  /// Blocking send (isend + wait).
  Task<void> send(ConstView buf, int dst, int tag);
  /// Blocking receive (irecv + wait).
  Task<void> recv(MutView buf, int src, int tag);
  /// Combined send+receive, the building block of pairwise exchange.
  Task<void> sendrecv(ConstView sbuf, int dst, int stag, MutView rbuf, int src,
                      int rtag);

  /// Copy bytes and charge the packing cost to this rank.
  void copy_and_charge(MutView dst, ConstView src) {
    charge_copy(copy_bytes(dst, src));
  }

  /// Draw a fresh tag stream for a collective about to start on this
  /// communicator (see runtime/tags.hpp). Deterministic and local: the n-th
  /// draw returns the same value on every rank, so ranks that start
  /// collectives on a communicator in the same order — the collective
  /// contract — agree on the stream without any communication. Stream 0 is
  /// never handed out: it belongs to direct (non-started) collective calls,
  /// which default to it, so a started operation can also overlap those.
  /// Draws are mirrored into the metrics registry (tags.acquired,
  /// tags.stream_high_water).
  int acquire_tag_stream() noexcept;

 protected:
  Comm(int rank, int size) noexcept : rank_(rank), size_(size) {}

  int rank_;
  int size_;

 private:
  int next_tag_stream_ = 1;  ///< stream 0 is reserved for direct calls
};

inline bool WaitAwaiter::await_ready() { return comm_->wait_try(reqs_); }
inline void WaitAwaiter::await_suspend(std::coroutine_handle<> h) {
  comm_->wait_suspend(reqs_, h);
}
inline bool WaitOneAwaiter::await_ready() {
  return comm_->wait_try(std::span<const Request>(req_.data(), 1));
}
inline void WaitOneAwaiter::await_suspend(std::coroutine_handle<> h) {
  comm_->wait_suspend(std::span<const Request>(req_.data(), 1), h);
}

}  // namespace mca2a::rt
