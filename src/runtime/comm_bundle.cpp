#include "runtime/comm_bundle.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

namespace mca2a::rt {

namespace {
// Relaxed is enough: tests only read the counter while ranks are quiescent.
std::atomic<std::uint64_t> g_locality_builds{0};
}  // namespace

std::uint64_t locality_build_count() {
  return g_locality_builds.load(std::memory_order_relaxed);
}

LocalityComms build_locality_comms(Comm& world, const topo::Machine& machine,
                                   int group_size, bool build_leader_comms) {
  g_locality_builds.fetch_add(1, std::memory_order_relaxed);
  if (world.size() != machine.total_ranks()) {
    throw std::invalid_argument(
        "build_locality_comms: world size does not match the machine");
  }
  const int g = group_size;
  const int G = machine.groups_per_node(g);  // validates divisibility
  const int ppn = machine.ppn();
  const int n = machine.nodes();
  const int me = world.rank();

  LocalityComms lc;
  lc.world = &world;
  lc.machine = &machine;
  lc.group_size = g;
  lc.groups_per_node = G;
  lc.my_node = machine.node_of(me);
  lc.my_local = machine.local_rank(me);
  lc.my_group = lc.my_local / g;
  lc.my_pos = lc.my_local % g;
  lc.my_region = lc.my_node * G + lc.my_group;
  lc.is_leader = lc.my_pos == 0;

  std::vector<int> members;

  // node_comm: all ranks on my node, by local rank.
  members.resize(ppn);
  for (int l = 0; l < ppn; ++l) {
    members[l] = machine.world_rank(lc.my_node, l);
  }
  lc.node_comm = world.create_subcomm(members);

  // local_comm: my group, by in-group position.
  members.resize(g);
  for (int i = 0; i < g; ++i) {
    members[i] = machine.world_rank(lc.my_node, lc.my_group * g + i);
  }
  lc.local_comm = world.create_subcomm(members);

  // group_cross: position my_pos of every region, by region index.
  members.resize(n * G);
  for (int node = 0; node < n; ++node) {
    for (int grp = 0; grp < G; ++grp) {
      members[node * G + grp] =
          machine.world_rank(node, grp * g + lc.my_pos);
    }
  }
  lc.group_cross = world.create_subcomm(members);

  if (build_leader_comms && lc.is_leader) {
    // leader_cross: group-my_group leaders across nodes, by node.
    members.resize(n);
    for (int node = 0; node < n; ++node) {
      members[node] = machine.world_rank(node, lc.my_group * g);
    }
    lc.leader_cross = world.create_subcomm(members);

    // leaders_node: leaders within my node, by group.
    members.resize(G);
    for (int grp = 0; grp < G; ++grp) {
      members[grp] = machine.world_rank(lc.my_node, grp * g);
    }
    lc.leaders_node = world.create_subcomm(members);
  }
  return lc;
}

}  // namespace mca2a::rt
