#pragma once
/// \file scratch.hpp
/// Reusable scratch-buffer arena for persistent collectives.
///
/// Every locality algorithm allocates the same sequence of temporary buffer
/// sizes on every call. A ScratchArena keeps those buffers alive between
/// calls so a persistent plan (plan/plan.hpp) pays the allocation cost once:
/// the first execute() populates the arena, subsequent executes recycle.
///
/// Ownership protocol: alloc_scratch() hands out a ScratchBuffer, an RAII
/// handle that returns its Buffer to the arena when destroyed (or frees it
/// normally when no arena was given). Reuse matches on exact byte size, which
/// is always the case for a plan executing a fixed (algorithm, block size)
/// pair. Recycled buffers keep their previous contents; the algorithms fully
/// overwrite every region they later read, so this is invisible to them.
///
/// An arena belongs to one rank (like the Comm whose alloc_buffer it wraps)
/// and is not thread-safe.

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "runtime/buffer.hpp"
#include "runtime/comm.hpp"

namespace mca2a::rt {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Pop a pooled buffer of exactly `bytes` bytes, or allocate a fresh one
  /// through `comm` (real on the threads backend, possibly virtual on the
  /// simulator).
  Buffer take(const Comm& comm, std::size_t bytes);

  /// Return a buffer for later reuse. Zero-size buffers are dropped.
  void give_back(Buffer b);

  /// Buffers created through take() because no pooled one matched.
  std::uint64_t allocations() const noexcept { return allocations_; }
  /// Buffers served from the pool.
  std::uint64_t reuses() const noexcept { return reuses_; }
  /// Buffers currently resting in the pool.
  std::size_t pooled() const noexcept { return pooled_; }
  /// Total bytes currently resting in the pool.
  std::size_t pooled_bytes() const noexcept { return pooled_bytes_; }
  /// Bytes handed out by take() and not yet returned.
  std::size_t outstanding_bytes() const noexcept { return outstanding_bytes_; }
  /// Peak of outstanding + pooled bytes — the arena's total footprint. Only
  /// a take() that misses the pool can raise it, so warm plan executes (all
  /// reuse) keep it flat; tests assert exactly that.
  std::size_t high_water_bytes() const noexcept { return high_water_bytes_; }

  /// Free every pooled buffer (counters are preserved).
  void clear();

 private:
  std::unordered_multimap<std::size_t, Buffer> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
  std::size_t pooled_ = 0;
  std::size_t pooled_bytes_ = 0;
  std::size_t outstanding_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
};

/// RAII handle over an arena-backed scratch Buffer. Mirrors the slice of the
/// Buffer interface the algorithms use so call sites read identically.
class ScratchBuffer {
 public:
  ScratchBuffer() = default;
  ScratchBuffer(ScratchArena* arena, Buffer b) noexcept
      : arena_(arena), buf_(std::move(b)) {}
  ScratchBuffer(ScratchBuffer&& other) noexcept
      : arena_(other.arena_), buf_(std::move(other.buf_)) {
    other.arena_ = nullptr;
  }
  ScratchBuffer& operator=(ScratchBuffer&& other) noexcept {
    if (this != &other) {
      release();
      arena_ = other.arena_;
      buf_ = std::move(other.buf_);
      other.arena_ = nullptr;
    }
    return *this;
  }
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;
  ~ScratchBuffer() { release(); }

  std::size_t size() const noexcept { return buf_.size(); }
  std::byte* data() noexcept { return buf_.data(); }
  const std::byte* data() const noexcept { return buf_.data(); }
  MutView view() noexcept { return buf_.view(); }
  ConstView view() const noexcept { return buf_.view(); }
  MutView view(std::size_t off, std::size_t n) { return buf_.view(off, n); }
  ConstView view(std::size_t off, std::size_t n) const {
    return buf_.view(off, n);
  }

 private:
  void release() {
    if (arena_ != nullptr) {
      arena_->give_back(std::move(buf_));
      arena_ = nullptr;
    }
    buf_ = Buffer{};
  }

  ScratchArena* arena_ = nullptr;
  Buffer buf_;
};

/// Allocate `bytes` of scratch: recycled from `arena` when one is given,
/// freshly from `comm.alloc_buffer` otherwise.
inline ScratchBuffer alloc_scratch(const Comm& comm, ScratchArena* arena,
                                   std::size_t bytes) {
  if (arena != nullptr) {
    return ScratchBuffer(arena, arena->take(comm, bytes));
  }
  return ScratchBuffer(nullptr, comm.alloc_buffer(bytes));
}

}  // namespace mca2a::rt
