#pragma once
/// \file collectives.hpp
/// Collective building blocks implemented over point-to-point operations,
/// mirroring the classic MPICH algorithms. The paper's hierarchical
/// all-to-all variants (Algorithms 3 and 5) call these for their intra-node
/// gather/scatter phases.
///
/// All operations use equal-sized blocks expressed in bytes. Tags come from
/// the runtime/tags.hpp registry: each operation owns one offset, and the
/// `tag_stream` parameter (default stream 0) shifts the whole set so
/// *concurrent* collectives on one communicator cannot cross-match.
/// Consecutive collectives on the same communicator are safe even within
/// one stream because matching is FIFO and delivery is non-overtaking per
/// rank pair.

#include <memory>

#include "runtime/comm.hpp"
#include "runtime/task.hpp"

namespace mca2a::rt {

class ScratchArena;

/// Dissemination barrier: ceil(log2 n) rounds of zero-byte exchanges.
Task<void> barrier(Comm& comm, int tag_stream = 0);

/// Binomial-tree broadcast of `buf` from `root`.
Task<void> bcast(Comm& comm, MutView buf, int root, int tag_stream = 0);

/// Gather equal blocks to `root`. `send` is this rank's block; `recv` must
/// hold size() * send.len bytes at the root (ignored elsewhere).
/// The `_linear` variant receives every block directly at the root (large
/// messages); `_binomial` combines up a tree (small messages); `gather`
/// selects automatically like a production MPI would. `scratch`, when
/// given, recycles the binomial tree's staging buffer across calls
/// (runtime/scratch.hpp; persistent plans pass their arena through here).
Task<void> gather(Comm& comm, ConstView send, MutView recv, int root,
                  ScratchArena* scratch = nullptr, int tag_stream = 0);
Task<void> gather_linear(Comm& comm, ConstView send, MutView recv, int root,
                         int tag_stream = 0);
Task<void> gather_binomial(Comm& comm, ConstView send, MutView recv, int root,
                           ScratchArena* scratch = nullptr, int tag_stream = 0);

/// Scatter equal blocks from `root`. `send` must hold size() * recv.len
/// bytes at the root (ignored elsewhere); `recv` is this rank's block.
/// `scratch` as for gather.
Task<void> scatter(Comm& comm, ConstView send, MutView recv, int root,
                   ScratchArena* scratch = nullptr, int tag_stream = 0);
Task<void> scatter_linear(Comm& comm, ConstView send, MutView recv, int root,
                          int tag_stream = 0);
Task<void> scatter_binomial(Comm& comm, ConstView send, MutView recv, int root,
                            ScratchArena* scratch = nullptr,
                            int tag_stream = 0);

/// Ring allgather: every rank contributes `send`; `recv` (size() * send.len
/// bytes) ends up identical everywhere, ordered by rank.
Task<void> allgather(Comm& comm, ConstView send, MutView recv,
                     int tag_stream = 0);

/// MPI_Comm_split: ranks with equal `color` form a sub-communicator, ordered
/// by (key, parent rank). Returns nullptr when color < 0 (undefined).
/// Requires a data-carrying transport (always true on the threads backend;
/// on the simulator only when carry_data is enabled) — the locality
/// communicators used by the algorithms are instead built arithmetically in
/// comm_bundle.hpp, which works in virtual-payload simulations too.
Task<std::unique_ptr<Comm>> comm_split(Comm& comm, int color, int key);

}  // namespace mca2a::rt
