#include "runtime/collectives.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "runtime/scratch.hpp"

namespace mca2a::rt {

namespace {

/// Total gathered bytes below which the tree algorithms win.
constexpr std::size_t kTreeThresholdBytes = 64 * 1024;

int relative_rank(int rank, int root, int n) { return (rank - root + n) % n; }
int absolute_rank(int vrank, int root, int n) { return (vrank + root) % n; }

}  // namespace

Task<void> barrier(Comm& comm, int tag_stream) {
  const int n = comm.size();
  const int me = comm.rank();
  const int tag = tags::make(tags::kBarrier, tag_stream);
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (me + k) % n;
    const int src = (me - k % n + n) % n;
    co_await comm.sendrecv(ConstView{}, dst, tag, MutView{}, src, tag);
  }
}

Task<void> bcast(Comm& comm, MutView buf, int root, int tag_stream) {
  const int tag = tags::make(tags::kBcast, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  if (root < 0 || root >= n) {
    throw std::out_of_range("bcast: root out of range");
  }
  const int vr = relative_rank(me, root, n);
  // Receive from the parent (the rank that clears our lowest set bit).
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int parent = absolute_rank(vr - mask, root, n);
      co_await comm.recv(buf, parent, tag);
      break;
    }
    mask <<= 1;
  }
  // Forward to children with decreasing mask.
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int child = absolute_rank(vr + mask, root, n);
      co_await comm.send(buf, child, tag);
    }
    mask >>= 1;
  }
}

// ---------------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------------

Task<void> gather_linear(Comm& comm, ConstView send, MutView recv, int root,
                         int tag_stream) {
  const int tag = tags::make(tags::kGather, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  if (root < 0 || root >= n) {
    throw std::out_of_range("gather: root out of range");
  }
  const std::size_t block = send.len;
  if (me != root) {
    co_await comm.send(send, root, tag);
    co_return;
  }
  if (recv.len < block * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("gather: receive buffer too small at root");
  }
  std::vector<Request> reqs;
  reqs.reserve(n - 1);
  for (int r = 0; r < n; ++r) {
    if (r == root) {
      comm.copy_and_charge(recv.sub(r * block, block), send);
    } else {
      reqs.push_back(comm.irecv(recv.sub(r * block, block), r, tag));
    }
  }
  co_await comm.wait_all(reqs);
}

Task<void> gather_binomial(Comm& comm, ConstView send, MutView recv, int root,
                           ScratchArena* scratch, int tag_stream) {
  const int tag = tags::make(tags::kGather, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  if (root < 0 || root >= n) {
    throw std::out_of_range("gather: root out of range");
  }
  const std::size_t block = send.len;
  const int vr = relative_rank(me, root, n);

  // Pre-compute how many blocks this rank accumulates (its subtree span).
  int span = 1;
  {
    int mask = 1;
    while (mask < n && !(vr & mask)) {
      if (vr + mask < n) {
        span += std::min(mask, n - (vr + mask));
      }
      mask <<= 1;
    }
  }
  ScratchBuffer tmp =
      alloc_scratch(comm, scratch, static_cast<std::size_t>(span) * block);
  comm.copy_and_charge(tmp.view(0, block), send);

  int mask = 1;
  int have = 1;
  while (mask < n) {
    if (vr & mask) {
      // Ship the accumulated subtree [vr, vr+have) to the parent and stop.
      const int parent = absolute_rank(vr - mask, root, n);
      co_await comm.send(tmp.view(0, have * block), parent, tag);
      co_return;
    }
    const int child = vr + mask;
    if (child < n) {
      const int child_cnt = std::min(mask, n - child);
      co_await comm.recv(
          tmp.view(static_cast<std::size_t>(child - vr) * block,
                   static_cast<std::size_t>(child_cnt) * block),
          absolute_rank(child, root, n), tag);
      have += child_cnt;
    }
    mask <<= 1;
  }
  // Root: tmp holds all blocks in relative order; rotate into rank order.
  if (recv.len < block * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("gather: receive buffer too small at root");
  }
  for (int i = 0; i < n; ++i) {
    const int abs = absolute_rank(i, root, n);
    comm.copy_and_charge(recv.sub(abs * block, block),
                         ConstView(tmp.view(i * block, block)));
  }
}

Task<void> gather(Comm& comm, ConstView send, MutView recv, int root,
                  ScratchArena* scratch, int tag_stream) {
  const std::size_t total = send.len * static_cast<std::size_t>(comm.size());
  if (total <= kTreeThresholdBytes) {
    co_await gather_binomial(comm, send, recv, root, scratch, tag_stream);
  } else {
    co_await gather_linear(comm, send, recv, root, tag_stream);
  }
}

// ---------------------------------------------------------------------------
// Scatter
// ---------------------------------------------------------------------------

Task<void> scatter_linear(Comm& comm, ConstView send, MutView recv, int root,
                          int tag_stream) {
  const int tag = tags::make(tags::kScatter, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  if (root < 0 || root >= n) {
    throw std::out_of_range("scatter: root out of range");
  }
  const std::size_t block = recv.len;
  if (me != root) {
    co_await comm.recv(recv, root, tag);
    co_return;
  }
  if (send.len < block * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("scatter: send buffer too small at root");
  }
  std::vector<Request> reqs;
  reqs.reserve(n - 1);
  for (int r = 0; r < n; ++r) {
    if (r == root) {
      comm.copy_and_charge(recv, send.sub(r * block, block));
    } else {
      reqs.push_back(comm.isend(send.sub(r * block, block), r, tag));
    }
  }
  co_await comm.wait_all(reqs);
}

Task<void> scatter_binomial(Comm& comm, ConstView send, MutView recv, int root,
                            ScratchArena* scratch, int tag_stream) {
  const int tag = tags::make(tags::kScatter, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  if (root < 0 || root >= n) {
    throw std::out_of_range("scatter: root out of range");
  }
  const std::size_t block = recv.len;
  const int vr = relative_rank(me, root, n);

  // The mask at which we receive determines our span [vr, vr + span).
  int mask = 1;
  while (mask < n && !(vr & mask)) {
    mask <<= 1;
  }
  const int span = std::min(mask, n - vr);
  ScratchBuffer tmp =
      alloc_scratch(comm, scratch, static_cast<std::size_t>(span) * block);

  if (vr == 0) {
    if (send.len < block * static_cast<std::size_t>(n)) {
      throw std::invalid_argument("scatter: send buffer too small at root");
    }
    // Rotate rank order into relative order.
    for (int i = 0; i < n; ++i) {
      const int abs = absolute_rank(i, root, n);
      comm.copy_and_charge(tmp.view(i * block, block),
                           send.sub(abs * block, block));
    }
  } else {
    const int parent = absolute_rank(vr - mask, root, n);
    co_await comm.recv(tmp.view(0, static_cast<std::size_t>(span) * block),
                       parent, tag);
  }

  for (int child_mask = mask >> 1; child_mask > 0; child_mask >>= 1) {
    const int child = vr + child_mask;
    if (child < n) {
      const int child_cnt = std::min(child_mask, n - child);
      co_await comm.send(
          tmp.view(static_cast<std::size_t>(child - vr) * block,
                   static_cast<std::size_t>(child_cnt) * block),
          absolute_rank(child, root, n), tag);
    }
  }
  comm.copy_and_charge(recv, ConstView(tmp.view(0, block)));
}

Task<void> scatter(Comm& comm, ConstView send, MutView recv, int root,
                   ScratchArena* scratch, int tag_stream) {
  const std::size_t total = recv.len * static_cast<std::size_t>(comm.size());
  if (total <= kTreeThresholdBytes) {
    co_await scatter_binomial(comm, send, recv, root, scratch, tag_stream);
  } else {
    co_await scatter_linear(comm, send, recv, root, tag_stream);
  }
}

// ---------------------------------------------------------------------------
// Allgather / split
// ---------------------------------------------------------------------------

Task<void> allgather(Comm& comm, ConstView send, MutView recv,
                     int tag_stream) {
  const int tag = tags::make(tags::kAllgather, tag_stream);
  const int n = comm.size();
  const int me = comm.rank();
  const std::size_t block = send.len;
  if (recv.len < block * static_cast<std::size_t>(n)) {
    throw std::invalid_argument("allgather: receive buffer too small");
  }
  comm.copy_and_charge(recv.sub(me * block, block), send);
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  // Ring: at step s forward the block that originated s hops to the left.
  for (int s = 0; s < n - 1; ++s) {
    const int send_idx = (me - s + n) % n;
    const int recv_idx = (me - s - 1 + n) % n;
    co_await comm.sendrecv(ConstView(recv.sub(send_idx * block, block)), right,
                           tag, recv.sub(recv_idx * block, block),
                           left, tag);
  }
}

Task<std::unique_ptr<Comm>> comm_split(Comm& comm, int color, int key) {
  const int n = comm.size();
  struct Entry {
    int color;
    int key;
    int rank;
  };
  Entry mine{color, key, comm.rank()};
  std::vector<Entry> all(n);
  co_await allgather(comm, const_view_of(mine),
                     MutView{reinterpret_cast<std::byte*>(all.data()),
                             n * sizeof(Entry)});
  if (color < 0) {
    co_return nullptr;
  }
  std::vector<Entry> mates;
  for (const Entry& e : all) {
    if (e.color == color) {
      mates.push_back(e);
    }
  }
  std::stable_sort(mates.begin(), mates.end(), [](const Entry& a,
                                                  const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });
  std::vector<int> members;
  members.reserve(mates.size());
  for (const Entry& e : mates) {
    members.push_back(e.rank);
  }
  co_return comm.create_subcomm(members);
}

}  // namespace mca2a::rt
