#pragma once
/// \file comm_bundle.hpp
/// Locality communicators used by the hierarchical / node-aware / leader
/// all-to-all algorithms (Algorithms 3-5 of the paper).
///
/// Ranks on a node are partitioned into `groups_per_node` consecutive groups
/// of `group_size` ranks (group_size must divide ppn). With g = group_size,
/// G = ppn/g, n = nodes, regions are numbered node-major: region(j) lives on
/// node j/G and is group j%G there; region j covers the g consecutive world
/// ranks [j*g, (j+1)*g).
///
/// The bundle is built *arithmetically* from the machine description — no
/// communication — so it works in virtual-payload simulations; it mirrors
/// what production implementations do once at communicator-creation time.
///
/// Communicator orderings (algorithms rely on these):
///  * node_comm:    by node-local rank.
///  * local_comm:   my group, by in-group position.
///  * group_cross:  all ranks sharing my in-group position, ordered by
///                  region index (the "group_comm" of Algorithm 4; for
///                  leaders, position 0, this is the all-leaders
///                  communicator of Algorithm 3).
///  * leader_cross: group-k leaders across nodes, ordered by node (the
///                  inter-node communicator of Algorithm 5; leaders only).
///  * leaders_node: leaders within my node, ordered by group (the
///                  leader_group_comm of Algorithm 5; leaders only).

#include <cstdint>
#include <memory>

#include "runtime/comm.hpp"
#include "topo/machine.hpp"

namespace mca2a::rt {

struct LocalityComms {
  Comm* world = nullptr;
  const topo::Machine* machine = nullptr;
  int group_size = 1;       ///< g: processes per group/leader
  int groups_per_node = 1;  ///< G

  int my_node = 0;
  int my_local = 0;        ///< node-local rank
  int my_group = 0;        ///< group index within node
  int my_pos = 0;          ///< position within group
  int my_region = 0;       ///< node-major region index
  bool is_leader = false;  ///< my_pos == 0

  std::unique_ptr<Comm> node_comm;
  std::unique_ptr<Comm> local_comm;
  std::unique_ptr<Comm> group_cross;
  std::unique_ptr<Comm> leader_cross;  ///< leaders only, else nullptr
  std::unique_ptr<Comm> leaders_node;  ///< leaders only, else nullptr

  int nodes() const { return machine->nodes(); }
  int ppn() const { return machine->ppn(); }
  int regions() const { return nodes() * groups_per_node; }
};

/// Build the bundle for the calling rank. Every rank of `world` must call
/// with the same machine and group_size; world.size() must equal
/// machine.total_ranks(). Set `build_leader_comms` when Algorithm 5 (or any
/// leader-only exchange) will be used.
LocalityComms build_locality_comms(Comm& world, const topo::Machine& machine,
                                   int group_size,
                                   bool build_leader_comms = true);

/// Process-wide count of build_locality_comms calls (all ranks, all
/// backends). Tests use deltas of this to assert that persistent plans stop
/// rebuilding communicators once constructed.
std::uint64_t locality_build_count();

}  // namespace mca2a::rt
