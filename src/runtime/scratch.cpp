#include "runtime/scratch.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mca2a::rt {

Buffer ScratchArena::take(const Comm& comm, std::size_t bytes) {
  auto it = free_.find(bytes);
  if (it != free_.end()) {
    Buffer b = std::move(it->second);
    free_.erase(it);
    --pooled_;
    pooled_bytes_ -= bytes;
    outstanding_bytes_ += bytes;
    ++reuses_;
    static obs::Counter& g_reuses = obs::metrics().counter("scratch.reuses");
    g_reuses.add();
    return b;
  }
  ++allocations_;
  outstanding_bytes_ += bytes;
  if (outstanding_bytes_ + pooled_bytes_ > high_water_bytes_) {
    high_water_bytes_ = outstanding_bytes_ + pooled_bytes_;
  }
  static obs::Counter& g_allocs = obs::metrics().counter("scratch.allocations");
  static obs::Counter& g_bytes =
      obs::metrics().counter("scratch.allocated_bytes");
  static obs::Gauge& g_high =
      obs::metrics().gauge("scratch.high_water_bytes");
  g_allocs.add();
  g_bytes.add(bytes);
  g_high.update_max(static_cast<std::int64_t>(high_water_bytes_));
  return comm.alloc_buffer(bytes);
}

void ScratchArena::give_back(Buffer b) {
  const std::size_t bytes = b.size();
  if (bytes == 0) {
    return;
  }
  // Clamped: a buffer adopted from outside (moved-in handles) may not have
  // been counted out by this arena's take().
  outstanding_bytes_ -= std::min(bytes, outstanding_bytes_);
  free_.emplace(bytes, std::move(b));
  ++pooled_;
  pooled_bytes_ += bytes;
}

void ScratchArena::clear() {
  free_.clear();
  pooled_ = 0;
  pooled_bytes_ = 0;
}

}  // namespace mca2a::rt
