#include "runtime/scratch.hpp"

#include <algorithm>
#include <string_view>

#include "obs/metrics.hpp"
#include "runtime/env.hpp"

namespace mca2a::rt {

namespace {

/// A2A_SMP_NUMA=first_touch: after an uninitialized scratch allocation,
/// write one byte per page from the allocating (rank) thread so the pages
/// fault in on its NUMA node, instead of wherever a zeroing memset (or a
/// later remote writer) happened to run. `none` (default) leaves placement
/// to the allocator.
bool first_touch_enabled() {
  static const bool on = [] {
    static constexpr std::string_view kModes[] = {"none", "first_touch"};
    return env::get_choice("A2A_SMP_NUMA", kModes, 0) == 1;
  }();
  return on;
}

constexpr std::size_t kPageBytes = 4096;

void first_touch(Buffer& b) {
  std::byte* p = b.data();
  if (p == nullptr) {
    return;
  }
  std::size_t pages = 0;
  for (std::size_t off = 0; off < b.size(); off += kPageBytes) {
    p[off] = std::byte{0};
    ++pages;
  }
  static obs::Counter& g_pages =
      obs::metrics().counter("scratch.first_touch_pages");
  g_pages.add(pages);
}

}  // namespace

Buffer ScratchArena::take(const Comm& comm, std::size_t bytes) {
  auto it = free_.find(bytes);
  if (it != free_.end()) {
    Buffer b = std::move(it->second);
    free_.erase(it);
    --pooled_;
    pooled_bytes_ -= bytes;
    outstanding_bytes_ += bytes;
    ++reuses_;
    static obs::Counter& g_reuses = obs::metrics().counter("scratch.reuses");
    g_reuses.add();
    return b;
  }
  ++allocations_;
  outstanding_bytes_ += bytes;
  if (outstanding_bytes_ + pooled_bytes_ > high_water_bytes_) {
    high_water_bytes_ = outstanding_bytes_ + pooled_bytes_;
  }
  static obs::Counter& g_allocs = obs::metrics().counter("scratch.allocations");
  static obs::Counter& g_bytes =
      obs::metrics().counter("scratch.allocated_bytes");
  static obs::Gauge& g_high =
      obs::metrics().gauge("scratch.high_water_bytes");
  g_allocs.add();
  g_bytes.add(bytes);
  g_high.update_max(static_cast<std::int64_t>(high_water_bytes_));
  // Fresh scratch may come back uninitialized (the backend's choice);
  // recycled pool buffers above are already dirty, so contents being
  // unspecified is uniform across both paths.
  Buffer b = comm.alloc_scratch_buffer(bytes);
  if (first_touch_enabled()) {
    first_touch(b);
  }
  return b;
}

void ScratchArena::give_back(Buffer b) {
  const std::size_t bytes = b.size();
  if (bytes == 0) {
    return;
  }
  // Clamped: a buffer adopted from outside (moved-in handles) may not have
  // been counted out by this arena's take().
  outstanding_bytes_ -= std::min(bytes, outstanding_bytes_);
  free_.emplace(bytes, std::move(b));
  ++pooled_;
  pooled_bytes_ += bytes;
}

void ScratchArena::clear() {
  free_.clear();
  pooled_ = 0;
  pooled_bytes_ = 0;
}

}  // namespace mca2a::rt
