#include "runtime/scratch.hpp"

namespace mca2a::rt {

Buffer ScratchArena::take(const Comm& comm, std::size_t bytes) {
  auto it = free_.find(bytes);
  if (it != free_.end()) {
    Buffer b = std::move(it->second);
    free_.erase(it);
    --pooled_;
    pooled_bytes_ -= bytes;
    ++reuses_;
    return b;
  }
  ++allocations_;
  return comm.alloc_buffer(bytes);
}

void ScratchArena::give_back(Buffer b) {
  const std::size_t bytes = b.size();
  if (bytes == 0) {
    return;
  }
  free_.emplace(bytes, std::move(b));
  ++pooled_;
  pooled_bytes_ += bytes;
}

void ScratchArena::clear() {
  free_.clear();
  pooled_ = 0;
  pooled_bytes_ = 0;
}

}  // namespace mca2a::rt
