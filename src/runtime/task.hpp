#pragma once
/// \file task.hpp
/// Lazy coroutine task used for every "rank program" in mca2a.
///
/// Algorithms (all-to-all variants, collectives) are written once as
/// coroutines returning Task<T>. On the shared-memory backend every comm
/// awaiter completes synchronously, so resuming the root handle runs the
/// whole task to completion on the calling thread. On the simulator backend
/// awaiters suspend and the discrete-event engine resumes them when the
/// corresponding virtual-time event fires.
///
/// Design notes:
///  * Tasks are lazy: the coroutine body does not run until the task is
///    awaited (or started via start_detached / sync_wait).
///  * Awaiting uses symmetric transfer, so arbitrarily deep chains of
///    sub-tasks do not grow the native stack.
///  * A root task may register a live counter; the counter is decremented
///    exactly once when the task finishes (used by the simulator to detect
///    completion and deadlock).

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

namespace mca2a::rt {

template <typename T>
class Task;

namespace detail {

/// State shared by all task promises: the continuation to transfer to at
/// final-suspend, an optional live counter (root tasks), and any exception.
class PromiseBase {
 public:
  std::coroutine_handle<> continuation{};
  int* live_counter = nullptr;
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.live_counter != nullptr) {
        --(*p.live_counter);
      }
      if (p.continuation) {
        return p.continuation;
      }
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }

  void rethrow_if_exception() {
    if (exception) {
      std::rethrow_exception(exception);
    }
  }
};

template <typename T>
class PromiseStorage : public PromiseBase {
 public:
  void return_value(T v) { value_.emplace(std::move(v)); }

  T take() {
    rethrow_if_exception();
    assert(value_.has_value() && "task finished without a value");
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
};

template <>
class PromiseStorage<void> : public PromiseBase {
 public:
  void return_void() noexcept {}
  void take() { rethrow_if_exception(); }
};

}  // namespace detail

/// A lazily-started, move-only coroutine task producing a value of type T.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseStorage<T> {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// True if this task owns a coroutine frame.
  bool valid() const noexcept { return static_cast<bool>(h_); }
  /// True once the coroutine has run to completion.
  bool done() const noexcept { return h_ && h_.done(); }

  /// Start the task as a root coroutine. `live_counter`, if given, is
  /// decremented when the task completes (it must outlive the task).
  /// Returns immediately if the task suspends on an asynchronous awaiter.
  void start(int* live_counter = nullptr) {
    assert(h_ && !h_.done());
    h_.promise().live_counter = live_counter;
    h_.resume();
  }

  /// Retrieve the result (rethrows any stored exception). Task must be done.
  T result() {
    assert(done());
    return h_.promise().take();
  }

  /// Awaiting a task starts it and transfers control symmetrically.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        h.promise().continuation = parent;
        return h;
      }
      T await_resume() { return h.promise().take(); }
    };
    assert(h_ && "awaiting an empty task");
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

/// Run a task to completion on the current thread. Only valid when every
/// awaiter the task reaches completes synchronously (the shared-memory
/// backend guarantees this); throws std::logic_error otherwise.
template <typename T>
T sync_wait(Task<T> task) {
  task.start(nullptr);
  if (!task.done()) {
    throw std::logic_error(
        "sync_wait: task suspended on an asynchronous awaiter; "
        "use the simulator engine to drive it");
  }
  return task.result();
}

}  // namespace mca2a::rt
