#include "runtime/async.hpp"

#include <utility>

namespace mca2a::rt {

namespace detail {

/// Fire-and-forget coroutine type for spawn_detached. Starts eagerly
/// (suspend_never initial suspend); at final suspend it destroys its own
/// frame first and only then marks the AsyncOp done and resumes the
/// waiters, so a waiter may safely release anything — including the last
/// reference to the object that owned this operation.
struct SpawnTask {
  struct promise_type {
    std::shared_ptr<AsyncOp> op;

    // Promise construction from the coroutine's arguments (the standard's
    // P0914 hook): grabs the shared state before the body runs.
    promise_type(std::shared_ptr<AsyncOp>& o, Task<void>&) : op(o) {}

    SpawnTask get_return_object() {
      op->frame_ = std::coroutine_handle<promise_type>::from_promise(*this);
      return {};
    }
    std::suspend_never initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Copy everything needed onto the machine stack: after destroy()
        // the promise (and this awaiter, which lives in the frame) is gone.
        std::shared_ptr<AsyncOp> op = std::move(h.promise().op);
        op->frame_ = {};
        h.destroy();
        op->done_ = true;
        std::vector<std::coroutine_handle<>> waiters =
            std::move(op->waiters_);
        for (std::coroutine_handle<> w : waiters) {
          w.resume();
        }
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      op->error_ = std::current_exception();
    }
  };
};

SpawnTask spawn_runner(std::shared_ptr<AsyncOp> op, Task<void> task) {
  (void)op;  // owned by the promise; the parameter keeps the state alive
  co_await std::move(task);
}

}  // namespace detail

void spawn_detached(Task<void> task, std::shared_ptr<AsyncOp> op) {
  detail::spawn_runner(std::move(op), std::move(task));
}

}  // namespace mca2a::rt
