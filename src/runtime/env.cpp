#include "runtime/env.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <sstream>

namespace mca2a::rt::env {

namespace {

// The one place the library reads the process environment. Everything else
// goes through the typed accessors below (enforced by tools/a2alint.py).
const char* raw(const char* name) { return std::getenv(name); }

[[noreturn]] void fail(const char* name, const std::string& value,
                       const std::string& expected) {
  throw EnvError(std::string("env knob ") + name + "='" + value +
                 "': " + expected);
}

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

bool is_set(const char* name) {
  const char* v = raw(name);
  return v != nullptr && *v != '\0';
}

std::optional<std::string> get_string(const char* name) {
  const char* v = raw(name);
  if (v == nullptr || *v == '\0') {
    return std::nullopt;
  }
  return std::string(v);
}

bool get_flag(const char* name, bool def) {
  const auto v = get_string(name);
  if (!v) {
    return def;
  }
  const std::string s = lower(*v);
  if (s == "1" || s == "true" || s == "on" || s == "yes") {
    return true;
  }
  if (s == "0" || s == "false" || s == "off" || s == "no") {
    return false;
  }
  fail(name, *v, "expected a boolean (1/true/on/yes or 0/false/off/no)");
}

long long get_int(const char* name, long long def, long long min,
                  long long max) {
  const auto v = get_string(name);
  if (!v) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(v->c_str(), &end, 10);
  std::ostringstream range;
  range << "expected an integer in [" << min << ", " << max << "]";
  if (end == v->c_str() || *end != '\0' || errno == ERANGE) {
    fail(name, *v, range.str());
  }
  if (n < min || n > max) {
    fail(name, *v, range.str());
  }
  return n;
}

std::size_t get_size(const char* name, std::size_t def, std::size_t min,
                     std::size_t max) {
  const long long cap = static_cast<long long>(
      std::min<std::size_t>(max, static_cast<std::size_t>(LLONG_MAX)));
  const long long n =
      get_int(name, static_cast<long long>(def),
              static_cast<long long>(std::min<std::size_t>(
                  min, static_cast<std::size_t>(LLONG_MAX))),
              cap);
  return static_cast<std::size_t>(n);
}

double get_double(const char* name, double def, double min, double max) {
  const auto v = get_string(name);
  if (!v) {
    return def;
  }
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  std::ostringstream range;
  range << "expected a number in [" << min << ", " << max << "]";
  if (end == v->c_str() || *end != '\0' || errno == ERANGE) {
    fail(name, *v, range.str());
  }
  if (!(d >= min && d <= max)) {  // NaN lands here too
    fail(name, *v, range.str());
  }
  return d;
}

int get_choice(const char* name, std::span<const std::string_view> allowed,
               int def_index) {
  const auto v = get_string(name);
  if (!v) {
    return def_index;
  }
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    if (*v == allowed[i]) {
      return static_cast<int>(i);
    }
  }
  std::string expected = "expected one of ";
  for (std::size_t i = 0; i < allowed.size(); ++i) {
    expected += (i == 0 ? "" : ", ");
    expected += allowed[i];
  }
  fail(name, *v, expected);
}

std::vector<std::string> get_list(const char* name) {
  std::vector<std::string> out;
  const auto v = get_string(name);
  if (!v) {
    return out;
  }
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const std::size_t comma = v->find(',', pos);
    const std::size_t end = comma == std::string::npos ? v->size() : comma;
    if (end > pos) {
      out.push_back(v->substr(pos, end - pos));
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace mca2a::rt::env
