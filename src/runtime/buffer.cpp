#include "runtime/buffer.hpp"

namespace mca2a::rt {

Buffer Buffer::real(std::size_t bytes) {
  Buffer b;
  b.size_ = bytes;
  b.virtual_ = false;
  if (bytes > 0) {
    b.mem_ = std::make_unique<std::byte[]>(bytes);  // value-initialized
  }
  return b;
}

Buffer Buffer::real_uninit(std::size_t bytes) {
  Buffer b;
  b.size_ = bytes;
  b.virtual_ = false;
  if (bytes > 0) {
    b.mem_ = std::unique_ptr<std::byte[]>(new std::byte[bytes]);  // no memset
  }
  return b;
}

Buffer Buffer::virt(std::size_t bytes) {
  Buffer b;
  b.size_ = bytes;
  b.virtual_ = true;
  return b;
}

MutView Buffer::view(std::size_t off, std::size_t n) {
  if (off + n > size_) {
    throw std::out_of_range("Buffer::view out of range");
  }
  return MutView{mem_ == nullptr ? nullptr : mem_.get() + off, n};
}

ConstView Buffer::view(std::size_t off, std::size_t n) const {
  if (off + n > size_) {
    throw std::out_of_range("Buffer::view out of range");
  }
  return ConstView{mem_ == nullptr ? nullptr : mem_.get() + off, n};
}

std::size_t copy_bytes(MutView dst, ConstView src) {
  if (dst.len != src.len) {
    throw std::invalid_argument("copy_bytes: length mismatch");
  }
  if (dst.ptr != nullptr && src.ptr != nullptr && dst.len > 0) {
    std::memmove(dst.ptr, src.ptr, dst.len);
  }
  return dst.len;
}

}  // namespace mca2a::rt
