#pragma once
/// \file buffer.hpp
/// Byte buffers and views used by the runtime.
///
/// A Buffer is either *real* (owns memory, payload bytes are moved) or
/// *virtual* (size-only). Virtual buffers let the simulator model exchanges
/// at paper scale (32 nodes x 112 ranks x 4 KiB per pair would need ~52 GB
/// of real payload) while executing exactly the same algorithm code; all
/// copy helpers degrade to cost-accounting no-ops when a side is virtual.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>

namespace mca2a::rt {

/// Non-owning read-only view of (possibly virtual) bytes. `ptr` is null for
/// virtual views; `len` is always meaningful.
struct ConstView {
  const std::byte* ptr = nullptr;
  std::size_t len = 0;

  bool is_virtual() const noexcept { return ptr == nullptr && len > 0; }

  /// Sub-view [off, off+n). Stays virtual if this view is virtual.
  ConstView sub(std::size_t off, std::size_t n) const {
    if (off + n > len) {
      throw std::out_of_range("ConstView::sub out of range");
    }
    return ConstView{ptr == nullptr ? nullptr : ptr + off, n};
  }
};

/// Non-owning mutable view of (possibly virtual) bytes.
struct MutView {
  std::byte* ptr = nullptr;
  std::size_t len = 0;

  bool is_virtual() const noexcept { return ptr == nullptr && len > 0; }

  operator ConstView() const noexcept { return ConstView{ptr, len}; }

  MutView sub(std::size_t off, std::size_t n) const {
    if (off + n > len) {
      throw std::out_of_range("MutView::sub out of range");
    }
    return MutView{ptr == nullptr ? nullptr : ptr + off, n};
  }
};

/// Owning buffer; real (allocated) or virtual (size-only).
class Buffer {
 public:
  Buffer() = default;

  /// Allocate `bytes` of zero-initialized real memory.
  static Buffer real(std::size_t bytes);
  /// Allocate `bytes` of real memory with UNSPECIFIED contents: no memset,
  /// so no page is touched at allocation time. For scratch whose consumers
  /// overwrite everything they read (rt::ScratchArena's contract) — the
  /// allocating thread's later first write, not this call, faults each page
  /// in, which is what places pages correctly under NUMA first-touch.
  static Buffer real_uninit(std::size_t bytes);
  /// Create a virtual buffer of `bytes` (no allocation).
  static Buffer virt(std::size_t bytes);

  std::size_t size() const noexcept { return size_; }
  bool is_virtual() const noexcept { return virtual_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Raw data pointer; null when virtual.
  std::byte* data() noexcept { return mem_.get(); }
  const std::byte* data() const noexcept { return mem_.get(); }

  /// Whole-buffer views.
  MutView view() noexcept { return MutView{mem_.get(), size_}; }
  ConstView view() const noexcept { return ConstView{mem_.get(), size_}; }

  /// Sub-views [off, off+n).
  MutView view(std::size_t off, std::size_t n);
  ConstView view(std::size_t off, std::size_t n) const;

  /// Typed access to real buffers; throws std::logic_error when virtual.
  template <typename T>
  std::span<T> typed() {
    require_real();
    return std::span<T>(reinterpret_cast<T*>(mem_.get()), size_ / sizeof(T));
  }
  template <typename T>
  std::span<const T> typed() const {
    require_real();
    return std::span<const T>(reinterpret_cast<const T*>(mem_.get()),
                              size_ / sizeof(T));
  }

 private:
  void require_real() const {
    if (virtual_ && size_ > 0) {
      throw std::logic_error("typed access to a virtual buffer");
    }
  }

  std::unique_ptr<std::byte[]> mem_;
  std::size_t size_ = 0;
  bool virtual_ = false;
};

/// Copy src into dst (lengths must match). Performs a memcpy only when both
/// views are real; virtual views make this a size-checked no-op. Returns the
/// number of (possibly virtual) bytes "moved" so callers can charge packing
/// cost to the performance model.
std::size_t copy_bytes(MutView dst, ConstView src);

/// View over a trivially-copyable object (for tests and examples).
template <typename T>
ConstView const_view_of(const T& v) {
  return ConstView{reinterpret_cast<const std::byte*>(&v), sizeof(T)};
}
template <typename T>
MutView mut_view_of(T& v) {
  return MutView{reinterpret_cast<std::byte*>(&v), sizeof(T)};
}

}  // namespace mca2a::rt
