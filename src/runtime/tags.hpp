#pragma once
/// \file tags.hpp
/// Central registry of library-internal message tags.
///
/// Every internal collective tags its point-to-point traffic as
///
///   kInternalTagBase + tag_stream * tags::kStreamStride + <op offset>
///
/// The op offsets below are the single source of truth; they used to be
/// ad-hoc `kInternalTagBase + 33`-style literals spread across files, with
/// nothing preventing a silent collision. The *tag stream* dimension
/// isolates concurrent collectives: every started collective draws a fresh
/// stream from its communicator (rt::Comm::acquire_tag_stream), so two
/// operations in flight on the same communicator — or on overlapping
/// sub-communicators they share — can never cross-match, even when they run
/// the same algorithm with the same offsets.

#include <cstdint>

namespace mca2a::rt {

/// Tags at or above this value are reserved for library-internal
/// collectives; user point-to-point traffic must stay below it.
inline constexpr int kInternalTagBase = 1 << 20;

namespace tags {

/// Per-operation offsets within one tag stream. Offset 0 is never used so
/// a raw kInternalTagBase tag from pre-registry code can't alias stream 0.
enum : int {
  // runtime/collectives.cpp building blocks
  kBarrier = 1,
  kBcast = 2,
  kGather = 3,
  kScatter = 4,
  kAllgather = 5,
  // core/ all-to-all family
  kAlltoallPairwise = 32,
  kAlltoallNonblocking = 33,
  kAlltoallBruck = 34,
  // coll_ext/ extensions
  kExtAllgatherBruck = 64,
  kExtAllreduce = 80,
  kExtAlltoallv = 96,
  // locality-aware alltoallv (coll_ext/alltoallv_locality.cpp): the
  // variable-size leader gather/scatter funnels. The count-metadata and
  // aggregated-payload exchanges reuse the regular alltoall / kExtAlltoallv
  // offsets (they run sequentially on their sub-communicators, which is
  // safe within one stream: matching is FIFO and non-overtaking per pair).
  kExtAlltoallvGatherv = 97,
  kExtAlltoallvScatterv = 98,
  kMaxOffset_ = 99,  ///< one past the highest offset in use
};

/// Tag values one stream owns; consecutive streams never overlap.
inline constexpr int kStreamStride = 128;
/// Streams per communicator before acquire_tag_stream wraps. Wrapping is
/// harmless as long as fewer than this many collectives are in flight on
/// one communicator at once.
inline constexpr int kNumStreams = 4096;

static_assert(kMaxOffset_ <= kStreamStride,
              "tag offsets overflow their stream: bump kStreamStride");
static_assert(kBarrier > 0, "offset 0 is reserved (see above)");
static_assert(static_cast<std::int64_t>(kInternalTagBase) +
                      static_cast<std::int64_t>(kNumStreams) * kStreamStride <=
                  INT32_MAX,
              "tag space exceeds a positive int: shrink kNumStreams");

/// The wire tag for op offset `op` in stream `stream`.
constexpr int make(int op, int stream = 0) noexcept {
  return kInternalTagBase + stream * kStreamStride + op;
}

/// The stream a wire tag belongs to; user (non-internal) tags map to
/// stream 0, the direct-call stream. Inverse of make() on its stream
/// dimension — used by the flight recorder to lane per-message events.
constexpr int stream_of(int tag) noexcept {
  return tag < kInternalTagBase ? 0 : (tag - kInternalTagBase) / kStreamStride;
}

}  // namespace tags

}  // namespace mca2a::rt
