#pragma once
/// \file env.hpp
/// Validated parsing for the `A2A_*` environment knobs.
///
/// Every knob the library and its benches read goes through these helpers —
/// the single `std::getenv` chokepoint lives in env.cpp, and
/// tools/a2alint.py (check `env-knob`) rejects any other `getenv` call in
/// the tree, plus any `A2A_*` knob name that does not appear in the knob
/// tables under docs/. The contract is fail-fast: a knob that is set to
/// garbage or to an out-of-range value throws rt::env::EnvError with the
/// knob name, the offending value and what was expected, instead of
/// silently falling back to a default the user did not ask for.
///
/// Unset (or set-but-empty) knobs always mean "use the default"; emptiness
/// is never an error. See docs/development.md for the knob inventory.

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mca2a::rt::env {

/// Thrown when a knob is set to a value that does not parse or is out of
/// range. The message always carries the knob name and the raw value.
class EnvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// True when `name` is set to a non-empty value.
bool is_set(const char* name);

/// The knob's raw value; nullopt when unset or empty.
std::optional<std::string> get_string(const char* name);

/// Boolean knob. Unset/empty -> `def`. Accepts 1/true/on/yes and
/// 0/false/off/no (case-insensitive); anything else throws.
bool get_flag(const char* name, bool def = false);

/// Integer knob in [min, max]. Unset/empty -> `def`. Garbage, trailing
/// junk, or an out-of-range value throws.
long long get_int(const char* name, long long def, long long min,
                  long long max);

/// Size knob (non-negative integer) in [min, max]. Unset/empty -> `def`.
std::size_t get_size(const char* name, std::size_t def, std::size_t min,
                     std::size_t max);

/// Floating-point knob in [min, max]. Unset/empty -> `def`.
double get_double(const char* name, double def, double min, double max);

/// Enumerated knob: the value must equal one of `allowed`
/// (case-sensitive). Unset/empty -> `def_index`. Returns the index into
/// `allowed`; anything not listed throws with the full choice list.
int get_choice(const char* name, std::span<const std::string_view> allowed,
               int def_index);

/// Comma-separated list knob; empty segments are skipped. Unset -> {}.
std::vector<std::string> get_list(const char* name);

}  // namespace mca2a::rt::env
