#pragma once
/// \file async.hpp
/// Detached execution of rank coroutines plus a multi-waiter completion
/// event — the machinery behind nonblocking collective handles
/// (plan/plan.hpp) and the dependency-aware batch schedule
/// (plan/schedule.hpp).
///
/// AsyncOp is the shared state of one detached task: whether it finished,
/// the exception it ended with, and the coroutines waiting on it. Unlike
/// Task (one continuation, resumed by symmetric transfer), an AsyncOp may
/// have any number of waiters, and they are resumed only *after* the
/// detached frame has been destroyed — so a resumed continuation may freely
/// drop its last reference to whatever owned the operation without pulling
/// the frame out from under itself.
///
/// Everything here is confined to one rank (one thread): the shared-memory
/// backend completes detached tasks synchronously inside spawn_detached
/// (its comm awaiters never suspend), the simulator resumes them from its
/// single-threaded event loop. No synchronization is needed or provided.

#include <coroutine>
#include <exception>
#include <memory>
#include <vector>

#include "runtime/task.hpp"

namespace mca2a::rt {

namespace detail {
struct SpawnTask;
}

/// Completion state of one detached task. Create with
/// std::make_shared<AsyncOp>() and pass to spawn_detached.
class AsyncOp {
 public:
  AsyncOp() = default;
  AsyncOp(const AsyncOp&) = delete;
  AsyncOp& operator=(const AsyncOp&) = delete;

  /// True once the detached task ran to completion (or ended with an
  /// exception, or was aborted).
  bool done() const noexcept { return done_; }
  /// The exception the task ended with, if any.
  std::exception_ptr error() const noexcept { return error_; }

  class WaitAwaiter {
   public:
    explicit WaitAwaiter(AsyncOp& op) noexcept : op_(&op) {}
    bool await_ready() const noexcept { return op_->done_; }
    void await_suspend(std::coroutine_handle<> h) {
      op_->waiters_.push_back(h);
    }
    void await_resume() const {
      if (op_->error_) {
        std::rethrow_exception(op_->error_);
      }
    }

   private:
    AsyncOp* op_;
  };

  /// Await completion. Any number of coroutines may wait on one op; they
  /// resume in wait order. Rethrows the task's exception, every time.
  WaitAwaiter wait() noexcept { return WaitAwaiter(*this); }

  /// Destroy a still-suspended frame: the operation never completes and its
  /// waiters are never resumed (the owner is tearing everything down).
  /// No-op once done. Used by handle destructors to avoid leaking frames of
  /// operations that were started but never awaited.
  void abort() noexcept {
    if (done_ || !frame_) {
      return;
    }
    const std::coroutine_handle<> f = frame_;
    frame_ = {};
    done_ = true;
    f.destroy();
  }

 private:
  friend struct detail::SpawnTask;

  bool done_ = false;
  std::exception_ptr error_;
  std::vector<std::coroutine_handle<>> waiters_;
  std::coroutine_handle<> frame_{};
};

/// Start `task` immediately as a detached root coroutine and tie its
/// completion to `op`. The frame owns itself: it is destroyed at final
/// suspend (before waiters resume) or by op->abort(). An exception escaping
/// the task lands in op->error() and is rethrown by every wait().
void spawn_detached(Task<void> task, std::shared_ptr<AsyncOp> op);

}  // namespace mca2a::rt
