#include "runtime/comm.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace mca2a::rt {

int Comm::acquire_tag_stream() noexcept {
  const int s = next_tag_stream_;
  next_tag_stream_ =
      next_tag_stream_ + 1 < tags::kNumStreams ? next_tag_stream_ + 1 : 1;
  // Registered once per process (cold); afterwards two relaxed atomic ops.
  // The high-water gauge tracks the deepest stream index any communicator
  // handed out — a proxy for the peak number of concurrently planned ops.
  static obs::Counter& acquired = obs::metrics().counter("tags.acquired");
  static obs::Gauge& high = obs::metrics().gauge("tags.stream_high_water");
  acquired.add();
  high.update_max(s);
  return s;
}

Task<void> Comm::send(ConstView buf, int dst, int tag) {
  Request r = isend(buf, dst, tag);
  co_await wait(r);
}

Task<void> Comm::recv(MutView buf, int src, int tag) {
  Request r = irecv(buf, src, tag);
  co_await wait(r);
}

Task<void> Comm::sendrecv(ConstView sbuf, int dst, int stag, MutView rbuf,
                          int src, int rtag) {
  std::array<Request, 2> reqs{isend(sbuf, dst, stag), irecv(rbuf, src, rtag)};
  co_await wait_all(reqs);
}

}  // namespace mca2a::rt
