#include "runtime/comm.hpp"

#include <stdexcept>

namespace mca2a::rt {

Task<void> Comm::send(ConstView buf, int dst, int tag) {
  Request r = isend(buf, dst, tag);
  co_await wait(r);
}

Task<void> Comm::recv(MutView buf, int src, int tag) {
  Request r = irecv(buf, src, tag);
  co_await wait(r);
}

Task<void> Comm::sendrecv(ConstView sbuf, int dst, int stag, MutView rbuf,
                          int src, int rtag) {
  std::array<Request, 2> reqs{isend(sbuf, dst, stag), irecv(rbuf, src, rtag)};
  co_await wait_all(reqs);
}

}  // namespace mca2a::rt
