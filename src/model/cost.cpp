#include "model/cost.hpp"

namespace mca2a::model {

bool is_rendezvous(const NetParams& p, std::size_t bytes) {
  return bytes > p.eager_threshold;
}

double wire_time(const NetParams& p, topo::Level level, std::size_t bytes) {
  const LevelParams& l = p.at(level);
  return l.alpha + static_cast<double>(bytes) * l.beta;
}

double nic_inject_time(const NetParams& p, std::size_t bytes) {
  double t = p.nic_msg_overhead +
             static_cast<double>(bytes) * p.nic_inject_beta;
  if (is_rendezvous(p, bytes)) {
    t *= p.rendezvous_nic_factor;
  }
  return t;
}

double nic_eject_time(const NetParams& p, std::size_t bytes) {
  double t = p.nic_msg_overhead + static_cast<double>(bytes) * p.nic_eject_beta;
  if (is_rendezvous(p, bytes)) {
    t *= p.rendezvous_nic_factor;
  }
  return t;
}

double mem_channel_time(const NetParams& p, std::size_t bytes) {
  return p.mem_msg_overhead + static_cast<double>(bytes) * p.mem_channel_beta;
}

double cpu_copy_time(const NetParams& p, topo::Level level,
                     std::size_t bytes) {
  const double b = static_cast<double>(bytes);
  if (level == topo::Level::kNetwork) {
    return b * p.cpu_copy_beta;
  }
  const double cached =
      static_cast<double>(std::min(bytes, p.intra_cache_bytes));
  return b * p.cpu_copy_beta_intra -
         cached * (p.cpu_copy_beta_intra - p.cpu_copy_beta_intra_cached);
}

double send_cpu_time(const NetParams& p, topo::Level level,
                     std::size_t bytes) {
  return p.at(level).o_send + cpu_copy_time(p, level, bytes);
}

double recv_cpu_time(const NetParams& p, topo::Level level,
                     std::size_t bytes) {
  return p.at(level).o_recv + cpu_copy_time(p, level, bytes);
}

double match_time(const NetParams& p, std::size_t queue_len) {
  return p.match_base + static_cast<double>(queue_len) * p.match_per_item;
}

double pack_time(const NetParams& p, std::size_t bytes) {
  return static_cast<double>(bytes) * p.pack_beta;
}

}  // namespace mca2a::model
