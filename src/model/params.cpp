#include "model/params.hpp"

#include <stdexcept>

namespace mca2a::model {

void validate(const NetParams& p) {
  auto require = [&](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string("NetParams '") + p.name +
                                  "': " + what);
    }
  };
  for (const LevelParams& l : p.level) {
    require(l.alpha >= 0.0, "alpha must be >= 0");
    require(l.beta >= 0.0, "beta must be >= 0");
    require(l.o_send >= 0.0 && l.o_recv >= 0.0, "overheads must be >= 0");
  }
  require(p.nic_inject_beta >= 0.0 && p.nic_eject_beta >= 0.0,
          "NIC rates must be >= 0");
  require(p.nic_msg_overhead >= 0.0, "NIC message overhead must be >= 0");
  require(p.mem_channel_beta >= 0.0 && p.mem_msg_overhead >= 0.0,
          "memory channel parameters must be >= 0");
  require(p.cpu_copy_beta >= 0.0, "cpu_copy_beta must be >= 0");
  require(p.cpu_copy_beta_intra >= 0.0, "cpu_copy_beta_intra must be >= 0");
  require((p.cpu_copy_beta_intra_cached >= 0.0 &&
           p.cpu_copy_beta_intra_cached <= p.cpu_copy_beta_intra) ||
              p.intra_cache_bytes == 0,
          "cached intra copy rate must be in [0, cpu_copy_beta_intra]");
  require(p.match_base >= 0.0 && p.match_per_item >= 0.0,
          "matching costs must be >= 0");
  require(p.pack_beta >= 0.0, "pack_beta must be >= 0");
  require(p.rendezvous_nic_factor >= 1.0, "rendezvous factor must be >= 1");
  require(p.noise_sigma >= 0.0, "noise sigma must be >= 0");
  require(p.vendor_factor > 0.0 && p.vendor_factor <= 1.0,
          "vendor factor must be in (0, 1]");
}

}  // namespace mca2a::model
