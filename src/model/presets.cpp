#include "model/presets.hpp"

#include <stdexcept>

namespace mca2a::model {

namespace {

void set_level(NetParams& p, topo::Level l, double alpha, double beta,
               double o_send, double o_recv) {
  p.at(l) = LevelParams{alpha, beta, o_send, o_recv};
}

}  // namespace

NetParams omni_path() {
  NetParams p;
  p.name = "omni-path";
  // level          alpha    beta      o_send   o_recv
  set_level(p, topo::Level::kSelf, 2.0e-8, 2.0e-12, 2.0e-8, 2.0e-8);
  set_level(p, topo::Level::kNuma, 1.5e-7, 5.0e-12, 8.0e-8, 8.0e-8);
  set_level(p, topo::Level::kSocket, 2.5e-7, 8.0e-12, 1.0e-7, 1.0e-7);
  set_level(p, topo::Level::kNode, 4.0e-7, 1.2e-11, 1.2e-7, 1.2e-7);
  set_level(p, topo::Level::kNetwork, 1.8e-6, 9.0e-11, 2.5e-7, 2.5e-7);
  p.nic_inject_beta = 8.5e-11;  // ~11.7 GB/s node injection (OPA 100)
  p.nic_eject_beta = 8.5e-11;
  p.nic_msg_overhead = 1.0e-7;  // ~10M msgs/s through the NIC
  p.mem_channel_beta = 2.5e-11;  // ~40 GB/s per NUMA-domain channel
  p.mem_msg_overhead = 4.0e-8;
  p.cpu_copy_beta = 2.0e-11;        // PSM2 moves network bytes mostly by DMA
  p.cpu_copy_beta_intra = 3.0e-10;  // DRAM-rate shm copy: ~3.3 GB/s per core
  p.cpu_copy_beta_intra_cached = 1.2e-10;  // cache-resident: ~8 GB/s
  p.intra_cache_bytes = 64 * 1024;
  p.match_base = 3.0e-8;
  p.match_per_item = 2.0e-9;
  p.pack_beta = 1.0e-10;
  p.eager_threshold = 65536;  // PSM2-style eager limit
  p.rendezvous_nic_factor = 1.15;
  p.vendor_factor = 0.8;
  return p;
}

NetParams slingshot() {
  NetParams p;
  p.name = "slingshot-11";
  set_level(p, topo::Level::kSelf, 2.0e-8, 2.0e-12, 2.0e-8, 2.0e-8);
  set_level(p, topo::Level::kNuma, 1.2e-7, 4.0e-12, 6.0e-8, 6.0e-8);
  set_level(p, topo::Level::kSocket, 2.0e-7, 6.0e-12, 8.0e-8, 8.0e-8);
  set_level(p, topo::Level::kNode, 2.5e-7, 8.0e-12, 1.0e-7, 1.0e-7);
  set_level(p, topo::Level::kNetwork, 1.4e-6, 4.5e-11, 2.0e-7, 2.0e-7);
  p.nic_inject_beta = 4.2e-11;  // ~24 GB/s node injection (SS-11 200G)
  p.nic_eject_beta = 4.2e-11;
  p.nic_msg_overhead = 2.5e-8;  // SS-11 sustains very high message rates
  p.mem_channel_beta = 2.0e-11;
  p.mem_msg_overhead = 3.0e-8;
  p.cpu_copy_beta = 1.5e-11;        // offload RDMA: little CPU per byte
  p.cpu_copy_beta_intra = 1.2e-10;  // HBM-backed shared memory
  p.cpu_copy_beta_intra_cached = 6.0e-11;
  p.intra_cache_bytes = 128 * 1024;
  p.match_base = 3.0e-8;
  p.match_per_item = 2.0e-9;
  p.pack_beta = 8.0e-11;
  p.eager_threshold = 16384;
  p.rendezvous_nic_factor = 1.03;
  p.vendor_factor = 0.55;  // Cray MPICH is strongly tuned for this fabric
  return p;
}

NetParams test_params() {
  NetParams p;
  p.name = "test";
  set_level(p, topo::Level::kSelf, 1.0e-7, 1.0e-9, 1.0e-7, 1.0e-7);
  set_level(p, topo::Level::kNuma, 2.0e-7, 1.0e-9, 1.0e-7, 1.0e-7);
  set_level(p, topo::Level::kSocket, 3.0e-7, 1.0e-9, 1.0e-7, 1.0e-7);
  set_level(p, topo::Level::kNode, 4.0e-7, 1.0e-9, 1.0e-7, 1.0e-7);
  set_level(p, topo::Level::kNetwork, 1.0e-6, 2.0e-9, 1.0e-7, 1.0e-7);
  p.nic_inject_beta = 1.0e-9;
  p.nic_eject_beta = 1.0e-9;
  p.nic_msg_overhead = 1.0e-7;
  p.mem_channel_beta = 5.0e-10;
  p.mem_msg_overhead = 5.0e-8;
  p.cpu_copy_beta = 1.0e-10;
  p.cpu_copy_beta_intra = 1.0e-10;
  p.cpu_copy_beta_intra_cached = 1.0e-10;  // linear: simplest test semantics
  p.intra_cache_bytes = 0;
  p.match_base = 1.0e-8;
  p.match_per_item = 1.0e-9;
  p.pack_beta = 1.0e-10;
  p.eager_threshold = SIZE_MAX;  // always eager: simplest semantics
  p.rendezvous_nic_factor = 1.0;
  p.vendor_factor = 1.0;
  return p;
}

NetParams for_machine(const std::string& machine_name) {
  if (machine_name == "dane" || machine_name == "amber") return omni_path();
  if (machine_name == "tuolomne") return slingshot();
  throw std::invalid_argument("no network preset for machine: " + machine_name);
}

}  // namespace mca2a::model
