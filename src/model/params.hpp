#pragma once
/// \file params.hpp
/// Parameters of the hierarchical communication performance model.
///
/// The model is LogGP-flavoured and charged per message:
///
///   sender:   o_send(level) + bytes * cpu_copy_beta     (rank clock)
///   channel:  serialization on a shared resource (NIC injection/ejection
///             for inter-node, per-NUMA memory channel for intra-node)
///   wire:     alpha(level) + bytes * beta(level)
///   receiver: matching cost (base + per-queue-item, the "queue search"
///             overhead the paper attributes to nonblocking exchanges)
///             + o_recv(level) + bytes * cpu_copy_beta   (rank clock)
///
/// Messages larger than `eager_threshold` use a rendezvous protocol: the
/// payload cannot leave before the matching receive is posted and an
/// RTS/CTS round-trip (2 * alpha) has completed, and — on onload networks
/// such as Omni-Path — the NIC moves rendezvous traffic at a reduced rate
/// (`rendezvous_nic_factor`). This is what separates few-large-message
/// schedules from many-small-message schedules at the same total volume,
/// a first-order effect in Figures 8 and 16 of the paper.
///
/// All times are seconds; rates are seconds per byte.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "topo/machine.hpp"

namespace mca2a::model {

/// Per-locality-level latency/bandwidth/overheads.
struct LevelParams {
  double alpha = 0.0;   ///< base latency (s)
  double beta = 0.0;    ///< per-byte wire time (s/B)
  double o_send = 0.0;  ///< sender CPU overhead per message (s)
  double o_recv = 0.0;  ///< receiver CPU overhead per message (s)
};

/// Full parameter set for one machine/network combination.
struct NetParams {
  std::string name = "generic";

  /// Indexed by topo::Level (kSelf..kNetwork).
  std::array<LevelParams, topo::kNumLevels> level{};

  // Shared-resource serialization.
  double nic_inject_beta = 0.0;   ///< s/B through a node's NIC, sending
  double nic_eject_beta = 0.0;    ///< s/B through a node's NIC, receiving
  double nic_msg_overhead = 0.0;  ///< s per message through the NIC
  double mem_channel_beta = 0.0;  ///< s/B through a NUMA domain's memory
  double mem_msg_overhead = 0.0;  ///< s per intra-node message

  /// Per-byte CPU time a rank spends moving an inter-node message payload
  /// in or out of the transport. Small on offloaded (RDMA) fabrics.
  double cpu_copy_beta = 0.0;
  /// Per-byte CPU time for intra-node messages once the working set spills
  /// out of cache (DRAM-rate shared-memory copies). This is the funnel cost
  /// of leader-based algorithms: the gather root touches every byte.
  double cpu_copy_beta_intra = 0.0;
  /// Per-byte CPU time for the first `intra_cache_bytes` of an intra-node
  /// message (cache-resident copy rate; <= cpu_copy_beta_intra).
  double cpu_copy_beta_intra_cached = 0.0;
  /// Bytes of an intra-node message copied at the cached rate.
  std::size_t intra_cache_bytes = 0;

  // Matching (queue search) cost: base + per_item * queue_length.
  double match_base = 0.0;
  double match_per_item = 0.0;

  /// Local repacking rate (s/B) charged by Comm::charge_copy.
  double pack_beta = 0.0;

  /// Messages strictly larger than this use the rendezvous protocol.
  std::size_t eager_threshold = SIZE_MAX;
  /// NIC serialization multiplier for rendezvous-protocol messages
  /// (>= 1; models CPU-mediated chunked injection on onload NICs).
  double rendezvous_nic_factor = 1.0;

  /// Log-normal sigma applied to alpha and overheads (0 = deterministic).
  double noise_sigma = 0.0;

  /// CPU-overhead multiplier applied to communicators flagged as
  /// vendor-optimized (the System MPI surrogate); < 1 means the vendor's
  /// tuned paths are faster than our portable ones.
  double vendor_factor = 1.0;

  const LevelParams& at(topo::Level l) const {
    return level[static_cast<std::size_t>(l)];
  }
  LevelParams& at(topo::Level l) { return level[static_cast<std::size_t>(l)]; }
};

/// Throws std::invalid_argument if any parameter is negative or otherwise
/// nonsensical (e.g. rendezvous factor < 1).
void validate(const NetParams& p);

}  // namespace mca2a::model
