#pragma once
/// \file presets.hpp
/// Network-model presets for the three systems in Table 1.
///
/// Absolute values are plausible published-order-of-magnitude figures for
/// Omni-Path 100 (Dane/Amber) and Slingshot-11 (Tuolomne) paired with
/// Sapphire Rapids / MI300A memory systems; they are calibrated so the
/// *shapes* of Figures 7-18 (winners per size, crossover locations) match
/// the paper, not to reproduce absolute microseconds (see EXPERIMENTS.md).

#include "model/params.hpp"

namespace mca2a::model {

/// Cornelis Omni-Path + Sapphire Rapids (Dane, Amber).
NetParams omni_path();
/// HPE Slingshot-11 + MI300A (Tuolomne). Higher bandwidth, lower latency,
/// strongly vendor-tuned system MPI (Cray MPICH).
NetParams slingshot();
/// Small friendly parameters for unit tests (fast, deterministic).
NetParams test_params();

/// Preset matching a topo machine preset name ("dane", "amber", "tuolomne").
NetParams for_machine(const std::string& machine_name);

}  // namespace mca2a::model
