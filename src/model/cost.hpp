#pragma once
/// \file cost.hpp
/// Closed-form per-message cost helpers shared by the simulator (which
/// charges them against shared resources in virtual time) and the analytic
/// algorithm-selection model in core/tuner (which sums them).

#include <cstddef>

#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::model {

/// True if a message of `bytes` uses the rendezvous protocol.
bool is_rendezvous(const NetParams& p, std::size_t bytes);

/// Pure wire time: alpha(level) + bytes * beta(level).
double wire_time(const NetParams& p, topo::Level level, std::size_t bytes);

/// Time a message occupies a node's NIC on injection (includes the
/// rendezvous factor when applicable).
double nic_inject_time(const NetParams& p, std::size_t bytes);
/// Time a message occupies a node's NIC on ejection.
double nic_eject_time(const NetParams& p, std::size_t bytes);

/// Time an intra-node message occupies its NUMA memory channel.
double mem_channel_time(const NetParams& p, std::size_t bytes);

/// CPU time to move a payload of `bytes` at `level`: linear at
/// cpu_copy_beta for network messages; piecewise for intra-node messages
/// (first intra_cache_bytes at the cached rate, remainder at DRAM rate).
double cpu_copy_time(const NetParams& p, topo::Level level, std::size_t bytes);

/// CPU time a rank spends per message on the send side (overhead + copy).
double send_cpu_time(const NetParams& p, topo::Level level, std::size_t bytes);
/// CPU time a rank spends per message on the receive side, excluding
/// matching (overhead + copy).
double recv_cpu_time(const NetParams& p, topo::Level level, std::size_t bytes);

/// Matching (queue search) cost for scanning `queue_len` entries.
double match_time(const NetParams& p, std::size_t queue_len);

/// Cost of repacking `bytes` locally.
double pack_time(const NetParams& p, std::size_t bytes);

}  // namespace mca2a::model
