#include "harness/table.hpp"

#include <algorithm>
#include <ostream>

namespace mca2a::bench {

void print_table(std::ostream& os, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    width[c] = headers[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers);
  std::vector<std::string> rule;
  rule.reserve(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    rule.push_back(std::string(width[c], '-'));
  }
  emit(rule);
  for (const auto& row : rows) {
    emit(row);
  }
}

}  // namespace mca2a::bench
