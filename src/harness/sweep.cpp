#include "harness/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "autotune/selector.hpp"
#include "coll_ext/alltoallv.hpp"
#include "plan/plan.hpp"
#include "plan/schedule.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm_bundle.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_comm.hpp"

namespace mca2a::bench {

std::size_t vector_count(int s, int d, int p, std::size_t mean,
                         double imbalance, std::uint64_t seed) {
  if (p <= 0 || mean == 0) {
    return 0;
  }
  if (imbalance <= 1.0) {
    return mean;
  }
  const bool hot =
      (static_cast<std::uint64_t>(s) + static_cast<std::uint64_t>(d) + seed) %
          static_cast<std::uint64_t>(p) ==
      0;
  if (hot) {
    return static_cast<std::size_t>(
        std::llround(imbalance * static_cast<double>(mean)));
  }
  // One hot pair per row: shrink the p-1 cold pairs so the row (and
  // matrix) mean stays `mean`. Negative shrink (imbalance > p) clamps to
  // zero-count cold pairs.
  const double lo = static_cast<double>(mean) *
                    (static_cast<double>(p) - imbalance) /
                    static_cast<double>(p - 1);
  return lo > 0.0 ? static_cast<std::size_t>(std::llround(lo)) : 0;
}

coll::AlltoallvSkew vector_skew(int p, std::size_t mean, double imbalance,
                                std::uint64_t seed) {
  coll::AlltoallvSkew sk;
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      const std::size_t c = vector_count(s, d, p, mean, imbalance, seed);
      sk.total_bytes += c;
      sk.max_bytes = std::max(sk.max_bytes, c);
    }
  }
  return sk;
}

double RunResult::percentile_of(const std::vector<double>& samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples);
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the ⌈q·n⌉-th smallest sample (1-based); q == 0 → rank 1.
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(clamped * static_cast<double>(sorted.size()))));
  return sorted[rank - 1];
}

void apply_env(RunSpec& spec) {
  if (const char* reps = std::getenv("A2A_BENCH_REPS")) {
    spec.reps = std::max(1, std::atoi(reps));
  }
  if (const char* sigma = std::getenv("A2A_NOISE")) {
    spec.net.noise_sigma = std::max(0.0, std::atof(sigma));
  }
}

RunResult run_sim(const RunSpec& spec) {
  const auto wall0 = std::chrono::steady_clock::now();

  sim::ClusterConfig cfg;
  cfg.machine = spec.machine;
  cfg.net = spec.net;
  // Vector runs move real bytes: the locality alltoallv algorithms learn
  // the aggregated message sizes from count metadata that must genuinely
  // travel, so virtual payloads are not an option.
  cfg.carry_data = spec.carry_data || spec.vector;
  cfg.noise_seed = spec.seed;
  sim::Cluster cluster(cfg);

  const topo::Machine& machine = cluster.machine();
  const int p = machine.total_ranks();
  const int reps = std::max(1, spec.reps);
  const int g = spec.group_size == 0 ? machine.ppn() : spec.group_size;

  // Per-(rep, rank) observations filled by the rank coroutines.
  std::vector<std::vector<double>> start(reps, std::vector<double>(p, 0.0));
  std::vector<std::vector<double>> end(reps, std::vector<double>(p, 0.0));
  std::vector<std::vector<coll::Trace>> traces;
  if (spec.collect_trace) {
    traces.assign(reps, std::vector<coll::Trace>(p));
  }
  const int overlap = std::max(1, spec.overlap);
  if (overlap >= 2 && spec.collect_trace) {
    // The overlap path reports per-op and critical-path times instead of
    // phase traces; silently returning zeroed phases would read as data.
    throw std::invalid_argument(
        "run_sim: collect_trace is not supported with overlap >= 2");
  }
  // Overlap runs: per-(rep, rank) critical path and per-(rep, op, rank)
  // exchange durations.
  std::vector<std::vector<double>> cpath;
  std::vector<std::vector<std::vector<double>>> op_secs;
  if (overlap >= 2) {
    cpath.assign(reps, std::vector<double>(p, 0.0));
    op_secs.assign(
        reps, std::vector<std::vector<double>>(overlap,
                                               std::vector<double>(p, 0.0)));
  }

  auto overlap_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    if (spec.algo == coll::Algo::kSystemMpi) {
      if (auto* sc = dynamic_cast<sim::SimComm*>(&world)) {
        sc->set_cost_scale(spec.net.vendor_factor);
      }
    }
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    // One plan, one send/recv pair per concurrent exchange: distinct plans
    // overlap (a single plan admits one in-flight op), distinct buffers
    // keep the exchanges independent.
    coll::AlltoallDesc desc;
    desc.block = spec.block;
    desc.algo = spec.algo;
    plan::PlanOptions popts;
    popts.group_size = g;
    popts.inner = spec.inner;
    std::vector<plan::CollectivePlan> plans;
    std::vector<rt::Buffer> sbufs;
    std::vector<rt::Buffer> rbufs;
    plans.reserve(overlap);
    for (int k = 0; k < overlap; ++k) {
      plans.push_back(plan::make_plan(world, machine, spec.net, desc, popts));
      sbufs.push_back(world.alloc_buffer(total));
      rbufs.push_back(world.alloc_buffer(total));
    }
    for (int rep = 0; rep < reps; ++rep) {
      co_await rt::barrier(world);
      start[rep][me] = world.now();
      plan::Schedule sched;
      for (int k = 0; k < overlap; ++k) {
        sched.add(plans[k], rt::ConstView(sbufs[k].view()), rbufs[k].view(),
                  spec.compute_bytes);
        if (spec.overlap_chain && k > 0) {
          sched.add_dependency(k - 1, k);
        }
      }
      co_await sched.run();
      end[rep][me] = world.now();
      cpath[rep][me] = sched.critical_path();
      for (int k = 0; k < overlap; ++k) {
        op_secs[rep][k][me] = sched.stats(k).seconds();
      }
    }
  };

  // Online-autotuning mode: one shared selector, re-plan every repetition.
  if (spec.autotune && (spec.vector || overlap >= 2 || spec.collect_trace)) {
    throw std::invalid_argument(
        "run_sim: autotune mode is not combinable with vector, overlap or "
        "collect_trace");
  }
  std::optional<autotune::OnlineSelector> own_selector;
  autotune::OnlineSelector* selector = nullptr;
  std::vector<int> rep_algos;
  std::vector<int> rep_groups;
  if (spec.autotune) {
    if (spec.selector != nullptr) {
      selector = spec.selector;
    } else {
      own_selector.emplace(autotune::Mode::kAdapt);
      selector = &*own_selector;
    }
    rep_algos.assign(reps, 0);
    rep_groups.assign(reps, 0);
  }
  auto autotune_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    rt::Buffer sbuf = world.alloc_buffer(total);
    rt::Buffer rbuf = world.alloc_buffer(total);
    for (int rep = 0; rep < reps; ++rep) {
      // The barrier separates this round's plan creation from the previous
      // round's completions: every rank consults the selector against the
      // same profiler state, so all ranks resolve the same algorithm (the
      // selector's determinism contract).
      co_await rt::barrier(world);
      coll::AlltoallDesc desc;
      desc.block = spec.block;  // algorithm left empty: selector decides
      plan::PlanOptions popts;
      popts.inner = spec.inner;
      popts.autotune = selector;
      plan::CollectivePlan pl =
          plan::make_plan(world, machine, spec.net, desc, popts);
      if (me == 0) {
        rep_algos[rep] = pl.algo_id();
        rep_groups[rep] = pl.group_size();
      }
      start[rep][me] = world.now();
      co_await pl.execute(rt::ConstView(sbuf.view()), rbuf.view());
      end[rep][me] = world.now();
    }
  };

  // Vector (alltoallv) mode: identical protocol, irregular counts.
  coll::AlltoallvSkew vskew;
  if (spec.vector) {
    if (overlap >= 2) {
      throw std::invalid_argument(
          "run_sim: vector mode is not supported with overlap >= 2");
    }
    vskew = vector_skew(p, spec.block, spec.vector_imbalance, spec.seed);
  }
  auto vector_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int d = 0; d < p; ++d) {
      scounts[d] =
          vector_count(me, d, p, spec.block, spec.vector_imbalance, spec.seed);
      rcounts[d] =
          vector_count(d, me, p, spec.block, spec.vector_imbalance, spec.seed);
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    rt::Buffer sbuf = world.alloc_buffer(
        std::accumulate(scounts.begin(), scounts.end(), std::size_t{0}));
    rt::Buffer rbuf = world.alloc_buffer(
        std::accumulate(rcounts.begin(), rcounts.end(), std::size_t{0}));

    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    coll::Options opts;
    opts.inner = spec.inner;
    if (spec.use_plan || spec.vector_tuned) {
      coll::AlltoallvDesc desc;
      desc.send_counts = scounts;
      desc.recv_counts = rcounts;
      if (!spec.vector_tuned) {
        desc.algo = spec.vector_algo;
      }
      desc.skew = vskew;  // exact global signature, identical on every rank
      plan::PlanOptions popts;
      popts.group_size = g;
      popts.inner = spec.inner;
      pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
    } else if (coll::needs_locality(spec.vector_algo)) {
      lc.emplace(rt::build_locality_comms(
          world, machine, g, coll::needs_leader_comms(spec.vector_algo)));
    }
    for (int rep = 0; rep < reps; ++rep) {
      coll::Trace trace;
      coll::Trace* tr = spec.collect_trace ? &trace : nullptr;
      co_await rt::barrier(world);
      start[rep][me] = world.now();
      if (pl) {
        co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view(), tr);
      } else {
        opts.trace = tr;
        co_await coll::run_alltoallv(spec.vector_algo, world,
                                     lc ? &*lc : nullptr,
                                     rt::ConstView(sbuf.view()), scounts,
                                     sdispls, rbuf.view(), rcounts, rdispls,
                                     opts);
      }
      end[rep][me] = world.now();
      if (spec.collect_trace) {
        traces[rep][me] = trace;
      }
    }
  };

  auto rank_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    if (spec.algo == coll::Algo::kSystemMpi) {
      if (auto* sc = dynamic_cast<sim::SimComm*>(&world)) {
        sc->set_cost_scale(spec.net.vendor_factor);
      }
    }
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    rt::Buffer sbuf = world.alloc_buffer(total);
    rt::Buffer rbuf = world.alloc_buffer(total);

    // Setup happens here, outside the timed repetitions, either way: the
    // plan path packages selection, communicator construction and scratch
    // reuse behind execute(); the legacy path builds the bundle itself.
    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    coll::Options opts;
    opts.inner = spec.inner;
    if (spec.use_plan) {
      coll::AlltoallDesc desc;
      desc.block = spec.block;
      desc.algo = spec.algo;
      plan::PlanOptions popts;
      popts.group_size = g;
      popts.inner = spec.inner;
      pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
    } else if (coll::needs_locality(spec.algo)) {
      lc.emplace(rt::build_locality_comms(
          world, machine, g, coll::needs_leader_comms(spec.algo)));
    }
    for (int rep = 0; rep < reps; ++rep) {
      coll::Trace trace;
      coll::Trace* tr = spec.collect_trace ? &trace : nullptr;
      co_await rt::barrier(world);
      start[rep][me] = world.now();
      if (pl) {
        co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view(), tr);
      } else {
        opts.trace = tr;
        co_await coll::run_alltoall(spec.algo, world, lc ? &*lc : nullptr,
                                    rt::ConstView(sbuf.view()), rbuf.view(),
                                    spec.block, opts);
      }
      end[rep][me] = world.now();
      if (spec.collect_trace) {
        traces[rep][me] = trace;
      }
    }
  };

  if (spec.autotune) {
    cluster.run(autotune_main);
  } else if (overlap >= 2) {
    cluster.run(overlap_main);
  } else if (spec.vector) {
    cluster.run(vector_main);
  } else {
    cluster.run(rank_main);
  }

  RunResult res;
  res.seconds = std::numeric_limits<double>::infinity();
  res.phase_seconds.fill(std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = *std::min_element(start[rep].begin(), start[rep].end());
    const double t1 = *std::max_element(end[rep].begin(), end[rep].end());
    res.seconds = std::min(res.seconds, t1 - t0);
    if (spec.collect_trace) {
      for (int ph = 0; ph < coll::kNumPhases; ++ph) {
        double mx = 0.0;
        for (int r = 0; r < p; ++r) {
          mx = std::max(mx, traces[rep][r].seconds[ph]);
        }
        res.phase_seconds[ph] = std::min(res.phase_seconds[ph], mx);
      }
    }
  }
  if (!spec.collect_trace) {
    res.phase_seconds.fill(0.0);
  }
  if (overlap >= 2) {
    res.critical_path_seconds = std::numeric_limits<double>::infinity();
    res.op_seconds.assign(overlap,
                          std::numeric_limits<double>::infinity());
    for (int rep = 0; rep < reps; ++rep) {
      res.critical_path_seconds =
          std::min(res.critical_path_seconds,
                   *std::max_element(cpath[rep].begin(), cpath[rep].end()));
      for (int k = 0; k < overlap; ++k) {
        res.op_seconds[k] = std::min(
            res.op_seconds[k], *std::max_element(op_secs[rep][k].begin(),
                                                 op_secs[rep][k].end()));
      }
    }
  }
  if (overlap < 2) {
    // Per-rep trajectory: max over ranks of each rank's *own* elapsed time
    // — the same quantity the plan layer records into the autotune
    // profiler. Unlike the span above (max end - min start), a rank's own
    // elapsed time does not fold in the clock skew the previous rep left
    // behind, which matters when comparing reps (convergence studies):
    // back-to-back exchanges genuinely pipeline through residual skew, so
    // in-session rep times differ from a fresh single-shot run — compare
    // trajectories only against trajectories measured the same way.
    res.rep_seconds.resize(reps);
    for (int rep = 0; rep < reps; ++rep) {
      double worst = 0.0;
      for (int r = 0; r < p; ++r) {
        worst = std::max(worst, end[rep][r] - start[rep][r]);
      }
      res.rep_seconds[rep] = worst;
    }
  }
  if (spec.autotune) {
    res.rep_algos = std::move(rep_algos);
    res.rep_groups = std::move(rep_groups);
  }
  res.messages = cluster.messages_sent();
  res.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

}  // namespace mca2a::bench
