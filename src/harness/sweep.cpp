#include "harness/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include <cstring>

#include "autotune/selector.hpp"
#include "coll_ext/alltoallv.hpp"
#include "net/bootstrap.hpp"
#include "net/net_comm.hpp"
#include "obs/metrics.hpp"
#include "plan/plan.hpp"
#include "plan/schedule.hpp"
#include "runtime/collectives.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/env.hpp"
#include "sim/cluster.hpp"
#include "sim/sim_comm.hpp"

namespace mca2a::bench {

std::size_t vector_count(int s, int d, int p, std::size_t mean,
                         double imbalance, std::uint64_t seed) {
  if (p <= 0 || mean == 0) {
    return 0;
  }
  if (imbalance <= 1.0) {
    return mean;
  }
  const bool hot =
      (static_cast<std::uint64_t>(s) + static_cast<std::uint64_t>(d) + seed) %
          static_cast<std::uint64_t>(p) ==
      0;
  if (hot) {
    return static_cast<std::size_t>(
        std::llround(imbalance * static_cast<double>(mean)));
  }
  // One hot pair per row: shrink the p-1 cold pairs so the row (and
  // matrix) mean stays `mean`. Negative shrink (imbalance > p) clamps to
  // zero-count cold pairs.
  const double lo = static_cast<double>(mean) *
                    (static_cast<double>(p) - imbalance) /
                    static_cast<double>(p - 1);
  return lo > 0.0 ? static_cast<std::size_t>(std::llround(lo)) : 0;
}

coll::AlltoallvSkew vector_skew(int p, std::size_t mean, double imbalance,
                                std::uint64_t seed) {
  coll::AlltoallvSkew sk;
  for (int s = 0; s < p; ++s) {
    for (int d = 0; d < p; ++d) {
      const std::size_t c = vector_count(s, d, p, mean, imbalance, seed);
      sk.total_bytes += c;
      sk.max_bytes = std::max(sk.max_bytes, c);
    }
  }
  return sk;
}

double RunResult::percentile_of(const std::vector<double>& samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(samples);
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the ⌈q·n⌉-th smallest sample (1-based); q == 0 → rank 1.
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(clamped * static_cast<double>(sorted.size()))));
  return sorted[rank - 1];
}

void apply_env(RunSpec& spec) {
  spec.reps = static_cast<int>(
      rt::env::get_int("A2A_BENCH_REPS", spec.reps, 1, 1 << 20));
  spec.net.noise_sigma =
      rt::env::get_double("A2A_NOISE", spec.net.noise_sigma, 0.0, 1e9);
  static constexpr std::string_view kBackends[] = {"sim", "smp", "net"};
  const int backend = rt::env::get_choice("A2A_BACKEND", kBackends, -1);
  if (backend >= 0) {
    spec.backend = kBackends[static_cast<std::size_t>(backend)];
  }
}

namespace {

/// Elementwise cross-rank fold over `vals` (allgather, then reduce
/// locally): every rank ends with the identical reduced vector, so every
/// process of a net job returns the same RunResult.
rt::Task<void> fold_ranks(rt::Comm& world, std::vector<double>& vals,
                          bool sum) {
  if (vals.empty()) {
    co_return;
  }
  const int p = world.size();
  const std::size_t n = vals.size();
  rt::Buffer mine = world.alloc_buffer(n * sizeof(double));
  std::memcpy(mine.data(), vals.data(), n * sizeof(double));
  rt::Buffer all =
      world.alloc_buffer(static_cast<std::size_t>(p) * n * sizeof(double));
  co_await rt::allgather(world, rt::ConstView(mine.view()), all.view());
  const double* got = reinterpret_cast<const double*>(all.data());
  for (std::size_t i = 0; i < n; ++i) {
    double acc = got[i];
    for (int r = 1; r < p; ++r) {
      const double v = got[static_cast<std::size_t>(r) * n + i];
      acc = sum ? acc + v : std::max(acc, v);
    }
    vals[i] = acc;
  }
}

/// backend == "net": run the spec's rank program on this process's rank of
/// the surrounding a2arun job. The world is created once per process (a
/// socket mesh bootstraps exactly once) and reused by every subsequent
/// run_sim call; each call builds its subcomms/plans afresh, which stays
/// deterministic because every rank executes the identical call sequence.
RunResult run_net(const RunSpec& spec) {
  const auto wall0 = std::chrono::steady_clock::now();
  if (!net::env_configured()) {
    throw std::runtime_error(
        "run_sim: backend \"net\" but A2A_NET_* is not set — launch the "
        "bench as a job under tools/a2arun (one process per rank)");
  }
  static std::unique_ptr<net::NetComm> net_world =
      net::NetComm::process_world();
  rt::Comm& world = *net_world;
  const topo::Machine machine(spec.machine);
  const int p = machine.total_ranks();
  if (p != world.size()) {
    throw std::invalid_argument(
        "run_sim: machine wants " + std::to_string(p) + " ranks but the "
        "net job has " + std::to_string(world.size()) +
        " (a2arun -n must match nodes * ppn)");
  }
  const int me = world.rank();
  const int reps = std::max(1, spec.reps);
  const int g = spec.group_size == 0 ? machine.ppn() : spec.group_size;
  const int overlap = std::max(1, spec.overlap);
  if (overlap >= 2 && spec.collect_trace) {
    throw std::invalid_argument(
        "run_sim: collect_trace is not supported with overlap >= 2");
  }
  if (spec.autotune && (spec.vector || overlap >= 2 || spec.collect_trace)) {
    throw std::invalid_argument(
        "run_sim: autotune mode is not combinable with vector, overlap or "
        "collect_trace");
  }

  // Own-clock observations; cross-rank maxima folded in afterwards.
  std::vector<double> elapsed(static_cast<std::size_t>(reps), 0.0);
  std::vector<double> phases;
  if (spec.collect_trace) {
    phases.assign(static_cast<std::size_t>(reps) * coll::kNumPhases, 0.0);
  }
  std::vector<double> cpath;
  std::vector<double> op_secs;
  if (overlap >= 2) {
    cpath.assign(static_cast<std::size_t>(reps), 0.0);
    op_secs.assign(static_cast<std::size_t>(reps) * overlap, 0.0);
  }
  std::optional<autotune::OnlineSelector> own_selector;
  autotune::OnlineSelector* selector = nullptr;
  std::vector<int> rep_algos;
  std::vector<int> rep_groups;
  if (spec.autotune) {
    if (spec.selector != nullptr) {
      selector = spec.selector;
    } else {
      own_selector.emplace(autotune::Mode::kAdapt);
      selector = &*own_selector;
    }
    rep_algos.assign(static_cast<std::size_t>(reps), 0);
    rep_groups.assign(static_cast<std::size_t>(reps), 0);
  }
  const double frames0 =
      static_cast<double>(obs::metrics().counter_value("net.frames_tx"));

  auto overlap_main = [&]() -> rt::Task<void> {
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    coll::AlltoallDesc desc;
    desc.block = spec.block;
    desc.algo = spec.algo;
    plan::PlanOptions popts;
    popts.group_size = g;
    popts.inner = spec.inner;
    std::vector<plan::CollectivePlan> plans;
    std::vector<rt::Buffer> sbufs;
    std::vector<rt::Buffer> rbufs;
    plans.reserve(static_cast<std::size_t>(overlap));
    for (int k = 0; k < overlap; ++k) {
      plans.push_back(plan::make_plan(world, machine, spec.net, desc, popts));
      sbufs.push_back(world.alloc_buffer(total));
      rbufs.push_back(world.alloc_buffer(total));
    }
    for (int rep = 0; rep < reps; ++rep) {
      co_await rt::barrier(world);
      const double t0 = world.now();
      plan::Schedule sched;
      for (int k = 0; k < overlap; ++k) {
        sched.add(plans[static_cast<std::size_t>(k)],
                  rt::ConstView(sbufs[static_cast<std::size_t>(k)].view()),
                  rbufs[static_cast<std::size_t>(k)].view(),
                  spec.compute_bytes);
        if (spec.overlap_chain && k > 0) {
          sched.add_dependency(k - 1, k);
        }
      }
      co_await sched.run();
      elapsed[static_cast<std::size_t>(rep)] = world.now() - t0;
      cpath[static_cast<std::size_t>(rep)] = sched.critical_path();
      for (int k = 0; k < overlap; ++k) {
        op_secs[static_cast<std::size_t>(rep * overlap + k)] =
            sched.stats(k).seconds();
      }
    }
  };

  auto autotune_main = [&]() -> rt::Task<void> {
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    rt::Buffer sbuf = world.alloc_buffer(total);
    rt::Buffer rbuf = world.alloc_buffer(total);
    for (int rep = 0; rep < reps; ++rep) {
      co_await rt::barrier(world);
      // Wall-clock samples differ per process, so per-rank selectors would
      // drift apart and resolve different algorithms — deadlock. Instead
      // rank 0 owns the selector (recording real socket time into its
      // profiler and exploiting it) and broadcasts the resolved
      // (algorithm, group) each round; the others follow.
      coll::AlltoallDesc desc;
      desc.block = spec.block;
      plan::PlanOptions popts;
      popts.inner = spec.inner;
      std::optional<plan::CollectivePlan> pl;
      rt::Buffer decision = world.alloc_buffer(2 * sizeof(std::int32_t));
      if (me == 0) {
        popts.autotune = selector;
        pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
        const std::int32_t chosen[2] = {
            static_cast<std::int32_t>(pl->algo_id()),
            static_cast<std::int32_t>(pl->group_size())};
        std::memcpy(decision.data(), chosen, sizeof(chosen));
      }
      co_await rt::bcast(world, decision.view(), 0);
      if (me != 0) {
        std::int32_t chosen[2];
        std::memcpy(chosen, decision.data(), sizeof(chosen));
        desc.algo = static_cast<coll::Algo>(chosen[0]);
        popts.group_size = chosen[1];
        pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
      }
      rep_algos[static_cast<std::size_t>(rep)] = pl->algo_id();
      rep_groups[static_cast<std::size_t>(rep)] = pl->group_size();
      const double t0 = world.now();
      co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view());
      elapsed[static_cast<std::size_t>(rep)] = world.now() - t0;
    }
  };

  auto vector_main = [&]() -> rt::Task<void> {
    std::vector<std::size_t> scounts(static_cast<std::size_t>(p));
    std::vector<std::size_t> rcounts(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      scounts[static_cast<std::size_t>(d)] =
          vector_count(me, d, p, spec.block, spec.vector_imbalance, spec.seed);
      rcounts[static_cast<std::size_t>(d)] =
          vector_count(d, me, p, spec.block, spec.vector_imbalance, spec.seed);
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    rt::Buffer sbuf = world.alloc_buffer(
        std::accumulate(scounts.begin(), scounts.end(), std::size_t{0}));
    rt::Buffer rbuf = world.alloc_buffer(
        std::accumulate(rcounts.begin(), rcounts.end(), std::size_t{0}));
    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    coll::Options opts;
    opts.inner = spec.inner;
    if (spec.use_plan || spec.vector_tuned) {
      coll::AlltoallvDesc desc;
      desc.send_counts = scounts;
      desc.recv_counts = rcounts;
      if (!spec.vector_tuned) {
        desc.algo = spec.vector_algo;
      }
      desc.skew = vector_skew(p, spec.block, spec.vector_imbalance, spec.seed);
      plan::PlanOptions popts;
      popts.group_size = g;
      popts.inner = spec.inner;
      pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
    } else if (coll::needs_locality(spec.vector_algo)) {
      lc.emplace(rt::build_locality_comms(
          world, machine, g, coll::needs_leader_comms(spec.vector_algo)));
    }
    for (int rep = 0; rep < reps; ++rep) {
      coll::Trace trace;
      coll::Trace* tr = spec.collect_trace ? &trace : nullptr;
      co_await rt::barrier(world);
      const double t0 = world.now();
      if (pl) {
        co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view(), tr);
      } else {
        opts.trace = tr;
        co_await coll::run_alltoallv(spec.vector_algo, world,
                                     lc ? &*lc : nullptr,
                                     rt::ConstView(sbuf.view()), scounts,
                                     sdispls, rbuf.view(), rcounts, rdispls,
                                     opts);
      }
      elapsed[static_cast<std::size_t>(rep)] = world.now() - t0;
      if (spec.collect_trace) {
        for (int ph = 0; ph < coll::kNumPhases; ++ph) {
          phases[static_cast<std::size_t>(rep * coll::kNumPhases + ph)] =
              trace.seconds[static_cast<std::size_t>(ph)];
        }
      }
    }
  };

  auto rank_main = [&]() -> rt::Task<void> {
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    rt::Buffer sbuf = world.alloc_buffer(total);
    rt::Buffer rbuf = world.alloc_buffer(total);
    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    coll::Options opts;
    opts.inner = spec.inner;
    if (spec.use_plan) {
      coll::AlltoallDesc desc;
      desc.block = spec.block;
      desc.algo = spec.algo;
      plan::PlanOptions popts;
      popts.group_size = g;
      popts.inner = spec.inner;
      pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
    } else if (coll::needs_locality(spec.algo)) {
      lc.emplace(rt::build_locality_comms(
          world, machine, g, coll::needs_leader_comms(spec.algo)));
    }
    for (int rep = 0; rep < reps; ++rep) {
      coll::Trace trace;
      coll::Trace* tr = spec.collect_trace ? &trace : nullptr;
      co_await rt::barrier(world);
      const double t0 = world.now();
      if (pl) {
        co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view(), tr);
      } else {
        opts.trace = tr;
        co_await coll::run_alltoall(spec.algo, world, lc ? &*lc : nullptr,
                                    rt::ConstView(sbuf.view()), rbuf.view(),
                                    spec.block, opts);
      }
      elapsed[static_cast<std::size_t>(rep)] = world.now() - t0;
      if (spec.collect_trace) {
        for (int ph = 0; ph < coll::kNumPhases; ++ph) {
          phases[static_cast<std::size_t>(rep * coll::kNumPhases + ph)] =
              trace.seconds[static_cast<std::size_t>(ph)];
        }
      }
    }
  };

  auto program = [&]() -> rt::Task<void> {
    if (spec.autotune) {
      co_await autotune_main();
    } else if (overlap >= 2) {
      co_await overlap_main();
    } else if (spec.vector) {
      co_await vector_main();
    } else {
      co_await rank_main();
    }
    // Cross-rank reductions, identical everywhere: elapsed/phase/critical
    // maxima, frame-count sum.
    co_await fold_ranks(world, elapsed, /*sum=*/false);
    co_await fold_ranks(world, phases, /*sum=*/false);
    co_await fold_ranks(world, cpath, /*sum=*/false);
    co_await fold_ranks(world, op_secs, /*sum=*/false);
  };
  rt::sync_wait(program());

  std::vector<double> frames = {
      static_cast<double>(obs::metrics().counter_value("net.frames_tx")) -
      frames0};
  rt::sync_wait(fold_ranks(world, frames, /*sum=*/true));

  RunResult res;
  res.seconds = std::numeric_limits<double>::infinity();
  res.phase_seconds.fill(std::numeric_limits<double>::infinity());
  res.rep_seconds.resize(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    // Clocks are per-process CLOCK_MONOTONIC with no shared epoch, so the
    // cross-rank span (max end - min start) is meaningless here; the
    // post-barrier per-rank elapsed maximum is the wall-clock equivalent —
    // the same metric the autotune profiler records.
    res.seconds = std::min(res.seconds, elapsed[static_cast<std::size_t>(rep)]);
    res.rep_seconds[static_cast<std::size_t>(rep)] =
        elapsed[static_cast<std::size_t>(rep)];
    if (spec.collect_trace) {
      for (int ph = 0; ph < coll::kNumPhases; ++ph) {
        auto& agg = res.phase_seconds[static_cast<std::size_t>(ph)];
        agg = std::min(
            agg, phases[static_cast<std::size_t>(rep * coll::kNumPhases + ph)]);
      }
    }
  }
  if (!spec.collect_trace) {
    res.phase_seconds.fill(0.0);
  }
  if (overlap >= 2) {
    res.critical_path_seconds = std::numeric_limits<double>::infinity();
    res.op_seconds.assign(static_cast<std::size_t>(overlap),
                          std::numeric_limits<double>::infinity());
    for (int rep = 0; rep < reps; ++rep) {
      res.critical_path_seconds = std::min(
          res.critical_path_seconds, cpath[static_cast<std::size_t>(rep)]);
      for (int k = 0; k < overlap; ++k) {
        res.op_seconds[static_cast<std::size_t>(k)] =
            std::min(res.op_seconds[static_cast<std::size_t>(k)],
                     op_secs[static_cast<std::size_t>(rep * overlap + k)]);
      }
    }
    res.rep_seconds.clear();
  }
  if (spec.autotune) {
    res.rep_algos = std::move(rep_algos);
    res.rep_groups = std::move(rep_groups);
  }
  res.messages = static_cast<std::uint64_t>(frames[0]);
  res.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

}  // namespace

RunResult run_sim(const RunSpec& spec) {
  if (spec.backend == "net") {
    return run_net(spec);
  }
  if (spec.backend != "sim") {
    throw std::invalid_argument("run_sim: unknown backend \"" + spec.backend +
                                "\" (expected \"sim\" or \"net\")");
  }
  const auto wall0 = std::chrono::steady_clock::now();

  sim::ClusterConfig cfg;
  cfg.machine = spec.machine;
  cfg.net = spec.net;
  // Vector runs move real bytes: the locality alltoallv algorithms learn
  // the aggregated message sizes from count metadata that must genuinely
  // travel, so virtual payloads are not an option.
  cfg.carry_data = spec.carry_data || spec.vector;
  cfg.noise_seed = spec.seed;
  sim::Cluster cluster(cfg);

  const topo::Machine& machine = cluster.machine();
  const int p = machine.total_ranks();
  const int reps = std::max(1, spec.reps);
  const int g = spec.group_size == 0 ? machine.ppn() : spec.group_size;

  // Per-(rep, rank) observations filled by the rank coroutines.
  std::vector<std::vector<double>> start(reps, std::vector<double>(p, 0.0));
  std::vector<std::vector<double>> end(reps, std::vector<double>(p, 0.0));
  std::vector<std::vector<coll::Trace>> traces;
  if (spec.collect_trace) {
    traces.assign(reps, std::vector<coll::Trace>(p));
  }
  const int overlap = std::max(1, spec.overlap);
  if (overlap >= 2 && spec.collect_trace) {
    // The overlap path reports per-op and critical-path times instead of
    // phase traces; silently returning zeroed phases would read as data.
    throw std::invalid_argument(
        "run_sim: collect_trace is not supported with overlap >= 2");
  }
  // Overlap runs: per-(rep, rank) critical path and per-(rep, op, rank)
  // exchange durations.
  std::vector<std::vector<double>> cpath;
  std::vector<std::vector<std::vector<double>>> op_secs;
  if (overlap >= 2) {
    cpath.assign(reps, std::vector<double>(p, 0.0));
    op_secs.assign(
        reps, std::vector<std::vector<double>>(overlap,
                                               std::vector<double>(p, 0.0)));
  }

  auto overlap_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    if (spec.algo == coll::Algo::kSystemMpi) {
      if (auto* sc = dynamic_cast<sim::SimComm*>(&world)) {
        sc->set_cost_scale(spec.net.vendor_factor);
      }
    }
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    // One plan, one send/recv pair per concurrent exchange: distinct plans
    // overlap (a single plan admits one in-flight op), distinct buffers
    // keep the exchanges independent.
    coll::AlltoallDesc desc;
    desc.block = spec.block;
    desc.algo = spec.algo;
    plan::PlanOptions popts;
    popts.group_size = g;
    popts.inner = spec.inner;
    std::vector<plan::CollectivePlan> plans;
    std::vector<rt::Buffer> sbufs;
    std::vector<rt::Buffer> rbufs;
    plans.reserve(overlap);
    for (int k = 0; k < overlap; ++k) {
      plans.push_back(plan::make_plan(world, machine, spec.net, desc, popts));
      sbufs.push_back(world.alloc_buffer(total));
      rbufs.push_back(world.alloc_buffer(total));
    }
    for (int rep = 0; rep < reps; ++rep) {
      co_await rt::barrier(world);
      start[rep][me] = world.now();
      plan::Schedule sched;
      for (int k = 0; k < overlap; ++k) {
        sched.add(plans[k], rt::ConstView(sbufs[k].view()), rbufs[k].view(),
                  spec.compute_bytes);
        if (spec.overlap_chain && k > 0) {
          sched.add_dependency(k - 1, k);
        }
      }
      co_await sched.run();
      end[rep][me] = world.now();
      cpath[rep][me] = sched.critical_path();
      for (int k = 0; k < overlap; ++k) {
        op_secs[rep][k][me] = sched.stats(k).seconds();
      }
    }
  };

  // Online-autotuning mode: one shared selector, re-plan every repetition.
  if (spec.autotune && (spec.vector || overlap >= 2 || spec.collect_trace)) {
    throw std::invalid_argument(
        "run_sim: autotune mode is not combinable with vector, overlap or "
        "collect_trace");
  }
  std::optional<autotune::OnlineSelector> own_selector;
  autotune::OnlineSelector* selector = nullptr;
  std::vector<int> rep_algos;
  std::vector<int> rep_groups;
  if (spec.autotune) {
    if (spec.selector != nullptr) {
      selector = spec.selector;
    } else {
      own_selector.emplace(autotune::Mode::kAdapt);
      selector = &*own_selector;
    }
    rep_algos.assign(reps, 0);
    rep_groups.assign(reps, 0);
  }
  auto autotune_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    rt::Buffer sbuf = world.alloc_buffer(total);
    rt::Buffer rbuf = world.alloc_buffer(total);
    for (int rep = 0; rep < reps; ++rep) {
      // The barrier separates this round's plan creation from the previous
      // round's completions: every rank consults the selector against the
      // same profiler state, so all ranks resolve the same algorithm (the
      // selector's determinism contract).
      co_await rt::barrier(world);
      coll::AlltoallDesc desc;
      desc.block = spec.block;  // algorithm left empty: selector decides
      plan::PlanOptions popts;
      popts.inner = spec.inner;
      popts.autotune = selector;
      plan::CollectivePlan pl =
          plan::make_plan(world, machine, spec.net, desc, popts);
      if (me == 0) {
        rep_algos[rep] = pl.algo_id();
        rep_groups[rep] = pl.group_size();
      }
      start[rep][me] = world.now();
      co_await pl.execute(rt::ConstView(sbuf.view()), rbuf.view());
      end[rep][me] = world.now();
    }
  };

  // Vector (alltoallv) mode: identical protocol, irregular counts.
  coll::AlltoallvSkew vskew;
  if (spec.vector) {
    if (overlap >= 2) {
      throw std::invalid_argument(
          "run_sim: vector mode is not supported with overlap >= 2");
    }
    vskew = vector_skew(p, spec.block, spec.vector_imbalance, spec.seed);
  }
  auto vector_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int d = 0; d < p; ++d) {
      scounts[d] =
          vector_count(me, d, p, spec.block, spec.vector_imbalance, spec.seed);
      rcounts[d] =
          vector_count(d, me, p, spec.block, spec.vector_imbalance, spec.seed);
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    rt::Buffer sbuf = world.alloc_buffer(
        std::accumulate(scounts.begin(), scounts.end(), std::size_t{0}));
    rt::Buffer rbuf = world.alloc_buffer(
        std::accumulate(rcounts.begin(), rcounts.end(), std::size_t{0}));

    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    coll::Options opts;
    opts.inner = spec.inner;
    if (spec.use_plan || spec.vector_tuned) {
      coll::AlltoallvDesc desc;
      desc.send_counts = scounts;
      desc.recv_counts = rcounts;
      if (!spec.vector_tuned) {
        desc.algo = spec.vector_algo;
      }
      desc.skew = vskew;  // exact global signature, identical on every rank
      plan::PlanOptions popts;
      popts.group_size = g;
      popts.inner = spec.inner;
      pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
    } else if (coll::needs_locality(spec.vector_algo)) {
      lc.emplace(rt::build_locality_comms(
          world, machine, g, coll::needs_leader_comms(spec.vector_algo)));
    }
    for (int rep = 0; rep < reps; ++rep) {
      coll::Trace trace;
      coll::Trace* tr = spec.collect_trace ? &trace : nullptr;
      co_await rt::barrier(world);
      start[rep][me] = world.now();
      if (pl) {
        co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view(), tr);
      } else {
        opts.trace = tr;
        co_await coll::run_alltoallv(spec.vector_algo, world,
                                     lc ? &*lc : nullptr,
                                     rt::ConstView(sbuf.view()), scounts,
                                     sdispls, rbuf.view(), rcounts, rdispls,
                                     opts);
      }
      end[rep][me] = world.now();
      if (spec.collect_trace) {
        traces[rep][me] = trace;
      }
    }
  };

  auto rank_main = [&](rt::Comm& world) -> rt::Task<void> {
    const int me = world.rank();
    if (spec.algo == coll::Algo::kSystemMpi) {
      if (auto* sc = dynamic_cast<sim::SimComm*>(&world)) {
        sc->set_cost_scale(spec.net.vendor_factor);
      }
    }
    const std::size_t total = static_cast<std::size_t>(p) * spec.block;
    rt::Buffer sbuf = world.alloc_buffer(total);
    rt::Buffer rbuf = world.alloc_buffer(total);

    // Setup happens here, outside the timed repetitions, either way: the
    // plan path packages selection, communicator construction and scratch
    // reuse behind execute(); the legacy path builds the bundle itself.
    std::optional<plan::CollectivePlan> pl;
    std::optional<rt::LocalityComms> lc;
    coll::Options opts;
    opts.inner = spec.inner;
    if (spec.use_plan) {
      coll::AlltoallDesc desc;
      desc.block = spec.block;
      desc.algo = spec.algo;
      plan::PlanOptions popts;
      popts.group_size = g;
      popts.inner = spec.inner;
      pl.emplace(plan::make_plan(world, machine, spec.net, desc, popts));
    } else if (coll::needs_locality(spec.algo)) {
      lc.emplace(rt::build_locality_comms(
          world, machine, g, coll::needs_leader_comms(spec.algo)));
    }
    for (int rep = 0; rep < reps; ++rep) {
      coll::Trace trace;
      coll::Trace* tr = spec.collect_trace ? &trace : nullptr;
      co_await rt::barrier(world);
      start[rep][me] = world.now();
      if (pl) {
        co_await pl->execute(rt::ConstView(sbuf.view()), rbuf.view(), tr);
      } else {
        opts.trace = tr;
        co_await coll::run_alltoall(spec.algo, world, lc ? &*lc : nullptr,
                                    rt::ConstView(sbuf.view()), rbuf.view(),
                                    spec.block, opts);
      }
      end[rep][me] = world.now();
      if (spec.collect_trace) {
        traces[rep][me] = trace;
      }
    }
  };

  if (spec.autotune) {
    cluster.run(autotune_main);
  } else if (overlap >= 2) {
    cluster.run(overlap_main);
  } else if (spec.vector) {
    cluster.run(vector_main);
  } else {
    cluster.run(rank_main);
  }

  RunResult res;
  res.seconds = std::numeric_limits<double>::infinity();
  res.phase_seconds.fill(std::numeric_limits<double>::infinity());
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = *std::min_element(start[rep].begin(), start[rep].end());
    const double t1 = *std::max_element(end[rep].begin(), end[rep].end());
    res.seconds = std::min(res.seconds, t1 - t0);
    if (spec.collect_trace) {
      for (int ph = 0; ph < coll::kNumPhases; ++ph) {
        double mx = 0.0;
        for (int r = 0; r < p; ++r) {
          mx = std::max(mx, traces[rep][r].seconds[ph]);
        }
        res.phase_seconds[ph] = std::min(res.phase_seconds[ph], mx);
      }
    }
  }
  if (!spec.collect_trace) {
    res.phase_seconds.fill(0.0);
  }
  if (overlap >= 2) {
    res.critical_path_seconds = std::numeric_limits<double>::infinity();
    res.op_seconds.assign(overlap,
                          std::numeric_limits<double>::infinity());
    for (int rep = 0; rep < reps; ++rep) {
      res.critical_path_seconds =
          std::min(res.critical_path_seconds,
                   *std::max_element(cpath[rep].begin(), cpath[rep].end()));
      for (int k = 0; k < overlap; ++k) {
        res.op_seconds[k] = std::min(
            res.op_seconds[k], *std::max_element(op_secs[rep][k].begin(),
                                                 op_secs[rep][k].end()));
      }
    }
  }
  if (overlap < 2) {
    // Per-rep trajectory: max over ranks of each rank's *own* elapsed time
    // — the same quantity the plan layer records into the autotune
    // profiler. Unlike the span above (max end - min start), a rank's own
    // elapsed time does not fold in the clock skew the previous rep left
    // behind, which matters when comparing reps (convergence studies):
    // back-to-back exchanges genuinely pipeline through residual skew, so
    // in-session rep times differ from a fresh single-shot run — compare
    // trajectories only against trajectories measured the same way.
    res.rep_seconds.resize(reps);
    for (int rep = 0; rep < reps; ++rep) {
      double worst = 0.0;
      for (int r = 0; r < p; ++r) {
        worst = std::max(worst, end[rep][r] - start[rep][r]);
      }
      res.rep_seconds[rep] = worst;
    }
  }
  if (spec.autotune) {
    res.rep_algos = std::move(rep_algos);
    res.rep_groups = std::move(rep_groups);
  }
  res.messages = cluster.messages_sent();
  res.sim_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return res;
}

}  // namespace mca2a::bench
