#pragma once
/// \file figure.hpp
/// Collects (series, x, time) points and renders them the way the paper's
/// figures tabulate them: one row per x value (message size or node count),
/// one column per algorithm series. Also writes CSV for external plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace mca2a::bench {

class Figure {
 public:
  /// `id` like "fig10", `title` the paper caption, `xlabel` the x axis.
  Figure(std::string id, std::string title, std::string xlabel);

  /// Add a measurement. Series appear in first-add order; x values are
  /// sorted ascending.
  void add(const std::string& series, double x, double seconds);

  /// Aligned text table (times in engineering notation).
  void print(std::ostream& os) const;

  /// CSV: header "x,series1,series2,...".
  void write_csv(std::ostream& os) const;

  /// If the environment variable A2A_BENCH_CSV names a directory, write
  /// <dir>/<id>.csv; otherwise do nothing. Returns the path written.
  std::string write_csv_env() const;

  /// Machine-readable JSON: {"id", "title", "xlabel", "series": [...],
  /// "points": [{"series", "x", "seconds"}, ...]} — the format the perf
  /// trajectory tooling ingests (BENCH_*.json files).
  void write_json(std::ostream& os) const;

  /// Write JSON to `path` (e.g. "BENCH_overlap.json"); if the environment
  /// variable A2A_BENCH_JSON names a directory the file goes there
  /// instead, keeping the same basename. Returns the path written, empty
  /// on failure.
  std::string write_json_file(const std::string& path) const;

  const std::string& id() const { return id_; }

 private:
  struct Point {
    int series = 0;
    double x = 0.0;
    double seconds = 0.0;
  };
  int series_index(const std::string& name);

  std::string id_;
  std::string title_;
  std::string xlabel_;
  std::vector<std::string> series_;
  std::vector<Point> points_;
};

/// Format seconds with 4 significant digits and an SI suffix (ns/us/ms/s).
std::string format_time(double seconds);

}  // namespace mca2a::bench
