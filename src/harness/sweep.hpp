#pragma once
/// \file sweep.hpp
/// Benchmark driver: runs one (machine, network, algorithm, block size)
/// configuration in the discrete-event simulator and reports the paper's
/// metric — the minimum over repetitions of the collective's elapsed time
/// (max end over ranks minus min start over ranks, after a barrier).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/alltoall.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::bench {

struct RunSpec {
  topo::MachineDesc machine;
  model::NetParams net;
  coll::Algo algo = coll::Algo::kNodeAware;
  coll::Inner inner = coll::Inner::kPairwise;
  /// Leader/group width for locality algorithms; 0 means ppn (one group or
  /// leader per node).
  int group_size = 0;
  std::size_t block = 4;
  /// Paper reports the minimum of 3 runs. The model is deterministic when
  /// net.noise_sigma == 0, making one repetition equivalent; apply_env()
  /// lets A2A_BENCH_REPS / A2A_NOISE restore the paper's exact protocol.
  int reps = 1;
  std::uint64_t seed = 1;
  /// Move real payload bytes (only sensible at test scale).
  bool carry_data = false;
  /// Collect per-phase timings (Figures 13-16).
  bool collect_trace = false;
  /// Execute through a persistent plan (plan/plan.hpp): algorithm setup,
  /// communicator construction and scratch allocation happen once per rank
  /// before the timed repetitions. The figure benches enable this; direct
  /// run_sim callers default to the legacy per-run path.
  bool use_plan = false;
  /// Nonblocking overlap: when >= 2, each timed repetition runs `overlap`
  /// independent exchanges of the spec's shape — each through its own
  /// persistent plan and tag stream — batched in a plan::Schedule
  /// (schedule.hpp). 0/1 keeps the classic single-exchange repetition.
  int overlap = 1;
  /// With overlap: chain the exchanges with completion dependencies
  /// (exchange i starts only after i-1 completes) — the serialized
  /// baseline running identical ops through the identical machinery.
  bool overlap_chain = false;
  /// With overlap: local work charged to each rank immediately before each
  /// exchange starts (the compute grain the overlap is meant to hide,
  /// e.g. producing a gradient bucket).
  std::size_t compute_bytes = 0;
};

struct RunResult {
  /// min over reps of (max rank end - min rank start).
  double seconds = 0.0;
  /// Per-phase maxima over ranks, min over reps (breakdown figures).
  std::array<double, coll::kNumPhases> phase_seconds{};
  /// Messages injected during the whole run (all reps).
  std::uint64_t messages = 0;
  /// Host wall time spent simulating (diagnostics).
  double sim_wall_seconds = 0.0;
  /// Overlap runs only: per-exchange elapsed time, max over ranks, min
  /// over reps (index = exchange position in the schedule).
  std::vector<double> op_seconds;
  /// Overlap runs only: Schedule::critical_path(), max over ranks, min
  /// over reps — the dependency-chain lower bound of the batch.
  double critical_path_seconds = 0.0;
};

/// Run the spec in a fresh simulated cluster.
RunResult run_sim(const RunSpec& spec);

/// Apply environment overrides: A2A_BENCH_REPS (int), A2A_NOISE (sigma).
void apply_env(RunSpec& spec);

}  // namespace mca2a::bench
