#pragma once
/// \file sweep.hpp
/// Benchmark driver: runs one (machine, network, algorithm, block size)
/// configuration in the discrete-event simulator and reports the paper's
/// metric — the minimum over repetitions of the collective's elapsed time
/// (max end over ranks minus min start over ranks, after a barrier).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "model/params.hpp"
#include "topo/machine.hpp"

namespace mca2a::autotune {
class OnlineSelector;
}

namespace mca2a::bench {

struct RunSpec {
  topo::MachineDesc machine;
  model::NetParams net;
  /// Execution backend. "sim" (default) runs the spec in a fresh
  /// discrete-event simulation; "net" runs it over the real TCP backend —
  /// the calling process must be one rank of a net job (launched by
  /// tools/a2arun, A2A_NET_* set) whose size equals machine.total_ranks(),
  /// and every rank of the job must issue the identical run_sim calls.
  /// apply_env() reads A2A_BACKEND, so existing figure benches can be
  /// pointed at real sockets without code changes. Times are wall-clock:
  /// `seconds` becomes min over reps of (max over ranks of each rank's own
  /// elapsed span) since process clocks share no epoch, and `messages`
  /// counts transmitted frames. net/vendor_factor knobs are ignored.
  std::string backend = "sim";
  coll::Algo algo = coll::Algo::kNodeAware;
  coll::Inner inner = coll::Inner::kPairwise;
  /// Leader/group width for locality algorithms; 0 means ppn (one group or
  /// leader per node).
  int group_size = 0;
  std::size_t block = 4;
  /// Paper reports the minimum of 3 runs. The model is deterministic when
  /// net.noise_sigma == 0, making one repetition equivalent; apply_env()
  /// lets A2A_BENCH_REPS / A2A_NOISE restore the paper's exact protocol.
  int reps = 1;
  std::uint64_t seed = 1;
  /// Move real payload bytes (only sensible at test scale).
  bool carry_data = false;
  /// Collect per-phase timings (Figures 13-16).
  bool collect_trace = false;
  /// Execute through a persistent plan (plan/plan.hpp): algorithm setup,
  /// communicator construction and scratch allocation happen once per rank
  /// before the timed repetitions. The figure benches enable this; direct
  /// run_sim callers default to the legacy per-run path.
  bool use_plan = false;
  /// Nonblocking overlap: when >= 2, each timed repetition runs `overlap`
  /// independent exchanges of the spec's shape — each through its own
  /// persistent plan and tag stream — batched in a plan::Schedule
  /// (schedule.hpp). 0/1 keeps the classic single-exchange repetition.
  int overlap = 1;
  /// With overlap: chain the exchanges with completion dependencies
  /// (exchange i starts only after i-1 completes) — the serialized
  /// baseline running identical ops through the identical machinery.
  bool overlap_chain = false;
  /// With overlap: local work charged to each rank immediately before each
  /// exchange starts (the compute grain the overlap is meant to hide,
  /// e.g. producing a gradient bucket).
  std::size_t compute_bytes = 0;
  /// Vector (alltoallv) mode: time the irregular exchange instead of the
  /// fixed-size one. `block` becomes the *mean* bytes per (src, dst) pair;
  /// the count matrix is generated deterministically from `seed` with a
  /// max/mean imbalance of `vector_imbalance` (see vector_count). The
  /// algorithms' count metadata must genuinely travel, so vector runs
  /// force carry_data (real payloads — keep the machine small). Not
  /// combinable with overlap >= 2.
  bool vector = false;
  /// Which alltoallv algorithm a vector run times (ignored when
  /// vector_tuned is set).
  coll::AlltoallvAlgo vector_algo = coll::AlltoallvAlgo::kPairwise;
  /// Target max/mean imbalance factor of the generated counts (>= 1;
  /// realized imbalance caps at the rank count — see vector_count).
  double vector_imbalance = 1.0;
  /// Let the skew-aware tuner pick the algorithm (through the plan path,
  /// with the exact global skew signature of the generated matrix).
  bool vector_tuned = false;
  /// Online-autotuning mode: `algo` is ignored; every repetition re-plans
  /// `block` through one shared adapt-mode OnlineSelector (algorithm left
  /// empty), separated from the previous repetition's completions by a
  /// barrier — so exploration and exploitation evolve across the reps
  /// exactly as the selector's determinism contract requires. Per-rep
  /// times and resolved algorithms land in RunResult::rep_seconds /
  /// rep_algos (the convergence trajectory). Not combinable with
  /// vector/overlap/collect_trace.
  bool autotune = false;
  /// Optional selector for autotune runs (e.g. warmed across several
  /// run_sim calls, or inspected afterwards); null = a fresh adapt-mode
  /// selector per run. Must outlive the call.
  autotune::OnlineSelector* selector = nullptr;
};

struct RunResult {
  /// min over reps of (max rank end - min rank start).
  double seconds = 0.0;
  /// Per-phase maxima over ranks, min over reps (breakdown figures).
  std::array<double, coll::kNumPhases> phase_seconds{};
  /// Messages injected during the whole run (all reps).
  std::uint64_t messages = 0;
  /// Host wall time spent simulating (diagnostics).
  double sim_wall_seconds = 0.0;
  /// Overlap runs only: per-exchange elapsed time, max over ranks, min
  /// over reps (index = exchange position in the schedule).
  std::vector<double> op_seconds;
  /// Overlap runs only: Schedule::critical_path(), max over ranks, min
  /// over reps — the dependency-chain lower bound of the batch.
  double critical_path_seconds = 0.0;
  /// Non-overlap runs: per-repetition elapsed time in execution order (max
  /// over ranks of each rank's own exchange span — the autotune profiler's
  /// metric, immune to the clock skew left behind by the previous
  /// repetition). Back-to-back repetitions pipeline through residual skew,
  /// so these values differ systematically from a fresh one-rep run:
  /// convergence trajectories must only be compared against references
  /// measured with the same multi-rep protocol.
  std::vector<double> rep_seconds;
  /// Autotune runs only: the coll::Algo value and group size the online
  /// selector resolved for each repetition (identical on every rank;
  /// recorded from rank 0).
  std::vector<int> rep_algos;
  std::vector<int> rep_groups;

  /// Nearest-rank percentiles over rep_seconds (percentile() below);
  /// 0 when rep_seconds is empty (reps == 1 runs, overlap runs).
  double p50() const { return percentile_of(rep_seconds, 0.50); }
  double p95() const { return percentile_of(rep_seconds, 0.95); }
  double p99() const { return percentile_of(rep_seconds, 0.99); }

  /// Nearest-rank percentile (the rank-⌈q·n⌉ smallest sample, the textbook
  /// definition — no interpolation, so the result is always an observed
  /// sample). q in [0, 1]; q == 0 reads as the minimum. Returns 0.0 on an
  /// empty vector.
  static double percentile_of(const std::vector<double>& samples, double q);
};

/// Run the spec in a fresh simulated cluster.
RunResult run_sim(const RunSpec& spec);

/// Apply environment overrides: A2A_BENCH_REPS (int), A2A_NOISE (sigma).
void apply_env(RunSpec& spec);

/// Deterministic skewed count matrix used by vector (alltoallv) runs:
/// bytes rank `s` sends rank `d` on a `p`-rank communicator. One hot pair
/// per source row ((s + d + seed) % p == 0) carries imbalance * mean
/// bytes; the rest are scaled down so the matrix mean stays `mean`. With
/// imbalance > p the cold pairs clamp at zero and the realized max/mean
/// caps at p. Every rank (and the host) can evaluate any entry, which is
/// how benches compute the exact global skew signature.
std::size_t vector_count(int s, int d, int p, std::size_t mean,
                         double imbalance, std::uint64_t seed);

/// Exact skew signature of the vector_count matrix (what vector_tuned
/// passes to the tuner as AlltoallvDesc::skew).
coll::AlltoallvSkew vector_skew(int p, std::size_t mean, double imbalance,
                                std::uint64_t seed);

}  // namespace mca2a::bench
