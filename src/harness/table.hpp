#pragma once
/// \file table.hpp
/// Minimal aligned-column text table used by the figure printer and the
/// Table 1 benchmark.

#include <iosfwd>
#include <string>
#include <vector>

namespace mca2a::bench {

/// Print `rows` under `headers` with columns padded to the widest cell.
void print_table(std::ostream& os, const std::vector<std::string>& headers,
                 const std::vector<std::vector<std::string>>& rows);

}  // namespace mca2a::bench
