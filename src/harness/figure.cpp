#include "harness/figure.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "harness/table.hpp"
#include "runtime/env.hpp"

namespace mca2a::bench {

std::string format_time(double seconds) {
  const char* unit = "s";
  double v = seconds;
  if (seconds < 1e-6) {
    v = seconds * 1e9;
    unit = "ns";
  } else if (seconds < 1e-3) {
    v = seconds * 1e6;
    unit = "us";
  } else if (seconds < 1.0) {
    v = seconds * 1e3;
    unit = "ms";
  }
  std::ostringstream os;
  os << std::setprecision(4) << v << ' ' << unit;
  return os.str();
}

Figure::Figure(std::string id, std::string title, std::string xlabel)
    : id_(std::move(id)), title_(std::move(title)), xlabel_(std::move(xlabel)) {}

int Figure::series_index(const std::string& name) {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i] == name) {
      return static_cast<int>(i);
    }
  }
  series_.push_back(name);
  return static_cast<int>(series_.size() - 1);
}

void Figure::add(const std::string& series, double x, double seconds) {
  const int si = series_index(series);
  for (Point& p : points_) {
    if (p.series == si && p.x == x) {
      p.seconds = seconds;  // re-measurement overwrites
      return;
    }
  }
  points_.push_back(Point{si, x, seconds});
}

void Figure::print(std::ostream& os) const {
  os << "\n== " << title_ << " ==\n";
  std::map<double, std::vector<double>> rows;  // x -> per-series seconds
  for (const Point& p : points_) {
    auto& row = rows[p.x];
    row.resize(series_.size(), -1.0);
    row[p.series] = p.seconds;
  }
  for (auto& [x, row] : rows) {
    row.resize(series_.size(), -1.0);
  }

  std::vector<std::string> headers;
  headers.push_back(xlabel_);
  for (const std::string& s : series_) {
    headers.push_back(s);
  }
  std::vector<std::vector<std::string>> cells;
  for (const auto& [x, row] : rows) {
    std::vector<std::string> line;
    std::ostringstream xs;
    xs << x;
    line.push_back(xs.str());
    for (double v : row) {
      line.push_back(v < 0 ? "-" : format_time(v));
    }
    cells.push_back(std::move(line));
  }
  print_table(os, headers, cells);
}

void Figure::write_csv(std::ostream& os) const {
  os << "x";
  for (const std::string& s : series_) {
    os << ',' << s;
  }
  os << '\n';
  std::map<double, std::vector<double>> rows;
  for (const Point& p : points_) {
    auto& row = rows[p.x];
    row.resize(series_.size(), -1.0);
    row[p.series] = p.seconds;
  }
  os << std::setprecision(9);
  for (const auto& [x, row] : rows) {
    os << x;
    for (std::size_t i = 0; i < series_.size(); ++i) {
      os << ',';
      if (i < row.size() && row[i] >= 0) {
        os << row[i];
      }
    }
    os << '\n';
  }
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Figure::write_json(std::ostream& os) const {
  os << std::setprecision(12);
  os << "{\n";
  os << "  \"id\": \"" << json_escape(id_) << "\",\n";
  os << "  \"title\": \"" << json_escape(title_) << "\",\n";
  os << "  \"xlabel\": \"" << json_escape(xlabel_) << "\",\n";
  os << "  \"series\": [";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(series_[i]) << '"';
  }
  os << "],\n";
  os << "  \"points\": [\n";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    os << "    {\"series\": \"" << json_escape(series_[p.series])
       << "\", \"x\": " << p.x << ", \"seconds\": " << p.seconds << '}'
       << (i + 1 < points_.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

std::string Figure::write_json_file(const std::string& path) const {
  std::string out = path;
  if (const auto dir = rt::env::get_string("A2A_BENCH_JSON")) {
    const std::size_t slash = path.find_last_of('/');
    out = *dir + "/" +
          (slash == std::string::npos ? path : path.substr(slash + 1));
  }
  std::ofstream f(out);
  if (!f) {
    return {};
  }
  write_json(f);
  return out;
}

std::string Figure::write_csv_env() const {
  const auto dir = rt::env::get_string("A2A_BENCH_CSV");
  if (!dir) {
    return {};
  }
  const std::string path = *dir + "/" + id_ + ".csv";
  std::ofstream f(path);
  if (f) {
    write_csv(f);
  }
  return path;
}

}  // namespace mca2a::bench
