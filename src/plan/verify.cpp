#include "plan/verify.hpp"

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "plan/plan.hpp"
#include "runtime/env.hpp"
#include "runtime/tags.hpp"

namespace mca2a::plan {

namespace {

/// ordered[i][j]: a dependency path forces i to complete before j starts
/// (or vice versa with i/j swapped). Schedules are small (tens of ops), so
/// a DFS per source over the dependency edges is plenty.
std::vector<std::vector<bool>> reachability(std::span<const VerifyOp> ops) {
  const int n = static_cast<int>(ops.size());
  // successors[d] = ops that depend on d (d must finish before them).
  std::vector<std::vector<int>> successors(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (const int d : ops[static_cast<std::size_t>(i)].deps) {
      if (d >= 0 && d < n) {
        successors[static_cast<std::size_t>(d)].push_back(i);
      }
    }
  }
  std::vector<std::vector<bool>> reach(
      static_cast<std::size_t>(n),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (int s = 0; s < n; ++s) {
    std::vector<int> stack{s};
    while (!stack.empty()) {
      const int cur = stack.back();
      stack.pop_back();
      for (const int nxt : successors[static_cast<std::size_t>(cur)]) {
        if (!reach[static_cast<std::size_t>(s)][static_cast<std::size_t>(
                nxt)]) {
          reach[static_cast<std::size_t>(s)][static_cast<std::size_t>(nxt)] =
              true;
          stack.push_back(nxt);
        }
      }
    }
  }
  return reach;
}

}  // namespace

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    os << (i == 0 ? "" : "\n") << "  [" << i + 1 << "] " << errors[i];
  }
  return os.str();
}

VerifyReport verify(std::span<const VerifyOp> ops) {
  VerifyReport rep;
  const int n = static_cast<int>(ops.size());

  // Edge sanity first: everything later assumes indices are usable.
  for (int i = 0; i < n; ++i) {
    for (const int d : ops[static_cast<std::size_t>(i)].deps) {
      if (d < 0 || d >= n) {
        rep.errors.push_back("op " + std::to_string(i) +
                             " depends on nonexistent op " +
                             std::to_string(d));
      } else if (d == i) {
        rep.errors.push_back("op " + std::to_string(i) +
                             " depends on itself");
      }
    }
    const int s = ops[static_cast<std::size_t>(i)].tag_stream;
    if (s < 0 || s >= rt::tags::kNumStreams) {
      rep.errors.push_back("op " + std::to_string(i) + " tag stream " +
                           std::to_string(s) + " outside [0, " +
                           std::to_string(rt::tags::kNumStreams) + ")");
    }
  }
  if (!rep.ok()) {
    return rep;
  }

  const auto reach = reachability(ops);

  // A dependency cycle shows up as an op that reaches itself: every op on
  // the cycle waits (transitively) for its own completion — deadlock.
  for (int i = 0; i < n; ++i) {
    if (reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)]) {
      rep.errors.push_back("op " + std::to_string(i) +
                           " sits on a happens-before cycle (deadlock: it "
                           "transitively waits for itself)");
    }
  }
  if (!rep.ok()) {
    return rep;
  }

  for (int i = 0; i < n; ++i) {
    const VerifyOp& a = ops[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < n; ++j) {
      const VerifyOp& b = ops[static_cast<std::size_t>(j)];
      const bool ordered =
          reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] ||
          reach[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      if (ordered) {
        continue;  // never concurrent: no matching or plan conflict possible
      }
      if (a.plan != nullptr && a.plan == b.plan) {
        rep.errors.push_back(
            "ops " + std::to_string(i) + " and " + std::to_string(j) +
            " run on the same plan without a dependency path between them "
            "(a plan admits one in-flight operation)");
      }
      if (a.comm != nullptr && a.comm == b.comm &&
          a.tag_stream == b.tag_stream) {
        rep.errors.push_back(
            "concurrent ops " + std::to_string(i) + " and " +
            std::to_string(j) + " share tag stream " +
            std::to_string(a.tag_stream) +
            " on the same communicator: their wire tags coincide and "
            "messages can cross-match");
      }
    }
  }
  return rep;
}

VerifyReport verify(const CollectivePlan& p, int tag_stream) {
  VerifyReport rep;
  if (p.in_flight() != 0) {
    rep.errors.push_back(
        "plan already has an operation in flight (one at a time; overlap "
        "via distinct plans or a Schedule)");
  }
  if (tag_stream != -1 &&
      (tag_stream < 0 || tag_stream >= rt::tags::kNumStreams)) {
    rep.errors.push_back("tag stream " + std::to_string(tag_stream) +
                         " outside [0, " +
                         std::to_string(rt::tags::kNumStreams) + ")");
  }
  if (p.scratch().outstanding_bytes() != 0) {
    rep.errors.push_back(
        "scratch arena has " +
        std::to_string(p.scratch().outstanding_bytes()) +
        " outstanding bytes at start: a previous execution leaked a "
        "scratch buffer past its lifetime");
  }
  return rep;
}

namespace {
// -1 = follow build/env default, 0/1 = forced by the test hook. Atomic:
// backend rank threads all consult it (and tests flip it from every rank
// thread of a run_smp body); relaxed is enough — it carries no data.
std::atomic<int> g_verify_forced{-1};
}  // namespace

bool verify_enabled() {
  const int forced = g_verify_forced.load(std::memory_order_relaxed);
  if (forced != -1) {
    return forced != 0;
  }
#ifdef NDEBUG
  constexpr bool kDefault = false;
#else
  constexpr bool kDefault = true;
#endif
  static const bool on = rt::env::get_flag("A2A_VERIFY_PLANS", kDefault);
  return on;
}

void set_verify_enabled_for_test(int on) {
  g_verify_forced.store(on, std::memory_order_relaxed);
}

void require_verified(const VerifyReport& report, const char* context) {
  if (!report.ok()) {
    throw std::logic_error(std::string("plan::verify failed (") + context +
                           "):\n" + report.to_string());
  }
}

}  // namespace mca2a::plan
