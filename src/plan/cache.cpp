#include "plan/cache.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"

namespace mca2a::plan {

namespace {

/// Global mirror of every PlanCache's counters, resolved once per process
/// so the lookup path pays one relaxed add per event. Per-instance numbers
/// stay in PlanCache::stats(); the registry aggregates across caches.
struct CacheMetrics {
  obs::Counter* hits[coll::kNumOpKinds];
  obs::Counter* misses[coll::kNumOpKinds];
  obs::Counter* evictions[coll::kNumOpKinds];
  CacheMetrics() {
    for (int k = 0; k < coll::kNumOpKinds; ++k) {
      const std::string prefix =
          std::string("plan.cache.") +
          std::string(coll::op_kind_tag(static_cast<coll::OpKind>(k)));
      hits[k] = &obs::metrics().counter(prefix + ".hits");
      misses[k] = &obs::metrics().counter(prefix + ".misses");
      evictions[k] = &obs::metrics().counter(prefix + ".evictions");
    }
  }
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

PlanKey PlanCache::key_of(const rt::Comm& world, const coll::OpDesc& desc,
                          const PlanOptions& opts) {
  PlanKey key;
  // The alltoall algorithm can arrive via the descriptor or via the legacy
  // PlanOptions knob; make_plan resolves descriptor-first, so fold the knob
  // into the descriptor key the same way — otherwise the same logical plan
  // would occupy two cache slots depending on the caller's route.
  if (desc.kind() == coll::OpKind::kAlltoall &&
      !desc.alltoall().algo.has_value() && opts.algo.has_value()) {
    coll::AlltoallDesc d = desc.alltoall();
    d.algo = *opts.algo;
    key.desc = coll::OpDesc(std::move(d)).key();
  } else {
    key.desc = desc.key();
  }
  // Options that cannot affect the plan are neutralized in the key, so
  // irrelevant values cannot split (or evict) otherwise-identical entries:
  // inner/batch_window/system_small_threshold only reach alltoall plans,
  // and group_size only matters when an algorithm is named explicitly (the
  // tuner picks its own group size and ignores the option).
  if (desc.kind() == coll::OpKind::kAlltoall) {
    key.inner = static_cast<int>(opts.inner);
    key.batch_window = opts.batch_window;
    key.system_small_threshold = opts.system_small_threshold;
  }
  const bool explicit_algo = [&] {
    switch (desc.kind()) {
      case coll::OpKind::kAlltoall:
        return desc.alltoall().algo.has_value() || opts.algo.has_value();
      case coll::OpKind::kAllgather:
        return desc.allgather().algo.has_value();
      case coll::OpKind::kAllreduce:
        return desc.allreduce().algo.has_value();
      default:
        return false;  // alltoallv never builds locality comms
    }
  }();
  if (explicit_algo) {
    // Kept raw: make_plan reads 0 as "one group per node", but folding that
    // here would need the machine, which contains() deliberately does not
    // take. Callers mixing the 0 and literal-ppn spellings get two entries
    // for one plan — harmless beyond the duplicate slot; pick one spelling.
    key.group_size = opts.group_size;
  }
  key.comm = reinterpret_cast<std::uintptr_t>(&world);
  return key;
}

std::shared_ptr<CollectivePlan> PlanCache::find_hit(const rt::Comm& world,
                                                    const coll::OpDesc& desc,
                                                    const PlanOptions& opts) {
  const PlanKey key = key_of(world, desc, opts);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return nullptr;
  }
  // Alltoallv keys embed only a hash of the count vectors; guard the
  // astronomically-unlikely collision, where returning the resident plan
  // would silently exchange with the other shape's displacements. Reported
  // as a miss (nullptr): insert_miss later finds the key resident and
  // hands the fresh plan back uncached.
  if (desc.kind() == coll::OpKind::kAlltoallv) {
    const auto& want = desc.alltoallv();
    const auto& have = it->second->second->desc().alltoallv();
    if (want.send_counts != have.send_counts ||
        want.recv_counts != have.recv_counts) {
      return nullptr;
    }
  }
  const int kind_idx = static_cast<int>(desc.kind());
  ++stats_.hits;
  ++stats_.per_op[kind_idx].hits;
  cache_metrics().hits[kind_idx]->add();
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->second;
}

std::shared_ptr<CollectivePlan> PlanCache::insert_miss(
    const rt::Comm& world, const coll::OpDesc& desc, const PlanOptions& opts,
    std::shared_ptr<CollectivePlan> plan) {
  const PlanKey key = key_of(world, desc, opts);
  const int kind_idx = static_cast<int>(desc.kind());
  CacheMetrics& gm = cache_metrics();
  ++stats_.misses;
  ++stats_.per_op[kind_idx].misses;
  ++stats_.constructions;
  gm.misses[kind_idx]->add();
  if (map_.contains(key)) {
    // Key resident after all: either the alltoallv collision case or a
    // racing build that got here second. Keep the resident entry; the
    // fresh plan serves its caller uncached.
    return plan;
  }
  lru_.emplace_front(key, plan);
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    gm.evictions[static_cast<int>(lru_.back().second->desc().kind())]->add();
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return plan;
}

std::shared_ptr<CollectivePlan> PlanCache::get_or_create(
    rt::Comm& world, const topo::Machine& machine, const model::NetParams& net,
    const coll::OpDesc& desc, const PlanOptions& opts) {
  if (auto hit = find_hit(world, desc, opts)) {
    return hit;
  }
  return insert_miss(world, desc, opts,
                     std::make_shared<CollectivePlan>(
                         make_plan(world, machine, net, desc, opts)));
}

std::shared_ptr<CollectivePlan> PlanCache::get_or_create(
    rt::Comm& world, const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, const PlanOptions& opts) {
  coll::AlltoallDesc d;
  d.block = block;
  return get_or_create(world, machine, net, coll::OpDesc(std::move(d)), opts);
}

bool PlanCache::contains(const rt::Comm& world, const coll::OpDesc& desc,
                         const PlanOptions& opts) const {
  return map_.contains(key_of(world, desc, opts));
}

bool PlanCache::contains(const rt::Comm& world, std::size_t block,
                         const PlanOptions& opts) const {
  coll::AlltoallDesc d;
  d.block = block;
  return contains(world, coll::OpDesc(std::move(d)), opts);
}

std::size_t PlanCache::erase_comm(const rt::Comm& world) {
  const auto addr = reinterpret_cast<std::uintptr_t>(&world);
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.comm == addr) {
      map_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void PlanCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace mca2a::plan
