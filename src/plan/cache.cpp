#include "plan/cache.hpp"

#include <algorithm>

namespace mca2a::plan {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

PlanKey PlanCache::key_of(const rt::Comm& world, std::size_t block,
                          const PlanOptions& opts) {
  PlanKey key;
  key.algo = opts.algo ? static_cast<int>(*opts.algo) : -1;
  key.inner = static_cast<int>(opts.inner);
  key.block = block;
  key.group_size = opts.group_size;
  key.batch_window = opts.batch_window;
  key.system_small_threshold = opts.system_small_threshold;
  key.comm = reinterpret_cast<std::uintptr_t>(&world);
  return key;
}

std::shared_ptr<AlltoallPlan> PlanCache::get_or_create(
    rt::Comm& world, const topo::Machine& machine,
    const model::NetParams& net, std::size_t block, const PlanOptions& opts) {
  const PlanKey key = key_of(world, block, opts);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    return it->second->second;
  }

  ++stats_.misses;
  ++stats_.constructions;
  auto plan = std::make_shared<AlltoallPlan>(
      make_plan(world, machine, net, block, opts));
  lru_.emplace_front(key, plan);
  map_[key] = lru_.begin();

  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return plan;
}

bool PlanCache::contains(const rt::Comm& world, std::size_t block,
                         const PlanOptions& opts) const {
  return map_.contains(key_of(world, block, opts));
}

std::size_t PlanCache::erase_comm(const rt::Comm& world) {
  const auto addr = reinterpret_cast<std::uintptr_t>(&world);
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.comm == addr) {
      map_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void PlanCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace mca2a::plan
