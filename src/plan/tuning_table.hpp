#pragma once
/// \file tuning_table.hpp
/// Serializable table of tuner decisions for the whole collective family.
///
/// The tuners (core/tuner for all-to-all, coll_ext/ext_tuner for the
/// allgather/allreduce extensions) evaluate a closed-form cost model for
/// every (algorithm, group size) candidate. That is cheap once but wasteful
/// when the same (machine, op, size) question is asked thousands of times —
/// e.g. a plan cache serving many communicators, or a long-running service
/// answering per-request size classes. A TuningTable memoizes decisions
/// keyed by (machine name, nodes, ppn, op tag, payload bytes) so repeated
/// selection is an O(1) hash lookup, and round-trips through a
/// line-oriented text format so a table computed offline (or on a login
/// node) can ship with a deployment — the paper's §5 "dynamically selected
/// for a given computer, system MPI, process count, and data size" turned
/// into a precomputed artifact.
///
/// File format (v2): a version header line, then one entry per line
/// ("machine nodes ppn op block algo group_size predicted_seconds"), where
/// `op` is coll::op_kind_tag ("a2a", "ag", "ar", "a2av"). PR-1-era v1
/// files (no op column) still load; their entries are all-to-all.
///
/// v3 adds a measured-profile section: after the decision entries, one
/// "prof ..." line per autotune::ExecutionProfiler entry (see
/// autotune/profiler.hpp for the line format), so warmed online-autotuning
/// knowledge ships in the same artifact as the model's memoized decisions.
/// save() emits the v3 header only when the profile section is non-empty —
/// tables without measurements keep round-tripping as v2, readable by
/// older code. v1/v2 files load with an empty profile.
///
/// The table is keyed by machine *shape*, not network parameters: entries
/// are only meaningful for the NetParams they were computed with, which is
/// the caller's responsibility (one table per machine preset in practice).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>

#include "autotune/profiler.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "coll_ext/op_desc.hpp"
#include "core/tuner.hpp"
#include "topo/machine.hpp"

namespace mca2a::plan {

/// Lookup key: machine shape, collective kind, payload size in bytes (per
/// rank pair for alltoall, per rank for allgather, the whole vector for
/// allreduce, and coll::alltoallv_size_class — a quantized total-bytes ×
/// imbalance class — for alltoallv).
struct TuningKey {
  /// topo::Machine::name(); names with whitespace are rejected (they could
  /// not round-trip through the whitespace-delimited file format).
  std::string machine;
  int nodes = 0;
  int ppn = 0;
  coll::OpKind op = coll::OpKind::kAlltoall;
  std::size_t block = 0;

  bool operator==(const TuningKey&) const = default;
};

struct TuningKeyHash {
  std::size_t operator()(const TuningKey& k) const noexcept;
};

class TuningTable {
 public:
  /// One memoized decision; `algo` holds the op-specific enum value.
  struct Entry {
    int algo = 0;
    int group_size = 1;
    double predicted_seconds = 0.0;
  };

  // --- alltoall (the PR-1 API, unchanged) -----------------------------------

  /// Memoized lookup; returns nullopt when the entry is missing.
  std::optional<coll::Choice> lookup(const topo::Machine& machine,
                                     std::size_t block) const;

  /// Insert or overwrite the entry for (machine shape, block).
  void insert(const topo::Machine& machine, std::size_t block,
              const coll::Choice& choice);

  /// Look up the Choice, running coll::select_algorithm and memoizing on a
  /// miss. This is the entry point alltoall plans use.
  coll::Choice choose(const topo::Machine& machine,
                      const model::NetParams& net, std::size_t block);

  // --- extension collectives -------------------------------------------------

  std::optional<coll::AllgatherChoice> lookup_allgather(
      const topo::Machine& machine, std::size_t block) const;
  coll::AllgatherChoice choose_allgather(const topo::Machine& machine,
                                         const model::NetParams& net,
                                         std::size_t block);

  std::optional<coll::AllreduceChoice> lookup_allreduce(
      const topo::Machine& machine, std::size_t bytes) const;
  /// Keyed by the vector size in bytes (count * elem_size); the cost model
  /// does not depend on the combiner.
  coll::AllreduceChoice choose_allreduce(const topo::Machine& machine,
                                         const model::NetParams& net,
                                         std::size_t count,
                                         std::size_t elem_size);

  /// Alltoallv entries are keyed by coll::alltoallv_size_class(machine,
  /// skew) — a quantized (total bytes, imbalance) class, since exact count
  /// vectors would never repeat — stored in the file format's block column.
  std::optional<coll::AlltoallvChoice> lookup_alltoallv(
      const topo::Machine& machine, const coll::AlltoallvSkew& skew) const;
  coll::AlltoallvChoice choose_alltoallv(const topo::Machine& machine,
                                         const model::NetParams& net,
                                         const coll::AlltoallvSkew& skew);

  // --- observability / serialization ----------------------------------------

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  /// Total choose()/lookup() calls and how many were served from the table.
  std::uint64_t lookups() const noexcept { return lookups_; }
  std::uint64_t hits() const noexcept { return hits_; }

  /// The measured-execution profile traveling with the table (the v3
  /// section). Fill it from an OnlineSelector's profiler before save();
  /// merge it into one after load() — see autotune/.
  autotune::ExecutionProfiler& profile() noexcept { return profile_; }
  const autotune::ExecutionProfiler& profile() const noexcept {
    return profile_;
  }

  /// Write the table as text: v3 when the profile section is non-empty,
  /// v2 otherwise (see the file comment).
  void save(std::ostream& os) const;
  /// Parse a table written by save() — or by a PR-1-era save (v1 header,
  /// no op column: entries load as alltoall), or an op-tagged v2 (no
  /// profile section). Throws std::runtime_error on a bad header, unknown
  /// op tag, out-of-range algorithm index, or malformed line.
  static TuningTable load(std::istream& is);

  /// File convenience wrappers. save_file returns false when the file could
  /// not be opened; load_file throws std::runtime_error.
  bool save_file(const std::string& path) const;
  static TuningTable load_file(const std::string& path);

 private:
  static TuningKey key_of(const topo::Machine& machine, coll::OpKind op,
                          std::size_t block);
  std::optional<Entry> lookup_entry(const topo::Machine& machine,
                                    coll::OpKind op, std::size_t block) const;

  std::unordered_map<TuningKey, Entry, TuningKeyHash> entries_;
  autotune::ExecutionProfiler profile_;
  mutable std::uint64_t lookups_ = 0;
  mutable std::uint64_t hits_ = 0;
};

}  // namespace mca2a::plan
