#pragma once
/// \file plan.hpp
/// Persistent all-to-all collectives in the style of MPI-4's
/// MPI_Alltoall_init: split the collective into a *plan time* — algorithm
/// selection, locality-communicator construction, scratch preallocation —
/// and an *execute time* that does nothing but run the exchange.
///
/// Production MPI implementations amortize setup across thousands of calls;
/// the benchmark harness and any long-lived workload (FFT transposes, ML
/// shuffles) issue the same (communicator, block size) exchange over and
/// over. make_plan pays the setup once:
///
///   plan::AlltoallPlan p = plan::make_plan(world, machine, net, block);
///   for (;;) co_await p.execute(send, recv);
///
/// A plan belongs to one rank (like the rt::Comm it wraps). Every rank of
/// the communicator must create a matching plan (same machine, block and
/// options — mirroring the collective contract of build_locality_comms) and
/// execute them collectively. The plan's bundle() is borrowable by other
/// locality collectives (coll_ext allgather/allreduce/alltoallv) so they
/// need not rebuild communicators either.
///
/// Plans are movable but must not be moved while an execute() task is in
/// flight (the coroutine captures `this`). PlanCache (plan/cache.hpp) hands
/// out shared_ptr-managed plans, which never move.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "core/alltoall.hpp"
#include "core/tuner.hpp"
#include "model/params.hpp"
#include "plan/tuning_table.hpp"
#include "runtime/comm.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/scratch.hpp"
#include "runtime/task.hpp"
#include "topo/machine.hpp"

namespace mca2a::plan {

struct PlanOptions {
  /// Algorithm to plan for; nullopt lets the tuner pick (algorithm *and*
  /// group size) from the closed-form cost model.
  std::optional<coll::Algo> algo;
  /// Leader/group width for the locality algorithms; 0 means one group or
  /// leader per node (ppn). Ignored when the tuner picks.
  int group_size = 0;
  /// Inner exchange used by the locality algorithms.
  coll::Inner inner = coll::Inner::kPairwise;
  /// Window for the batched algorithm.
  int batch_window = 32;
  /// Bruck-to-pairwise threshold of the System MPI surrogate.
  std::size_t system_small_threshold = 512;
  /// Optional memoization table consulted (and filled) when the tuner
  /// picks; must outlive the plan creation call.
  TuningTable* table = nullptr;
};

class AlltoallPlan {
 public:
  AlltoallPlan(AlltoallPlan&&) = default;
  AlltoallPlan& operator=(AlltoallPlan&&) = default;
  AlltoallPlan(const AlltoallPlan&) = delete;
  AlltoallPlan& operator=(const AlltoallPlan&) = delete;

  /// Run the planned exchange. `send` holds size() blocks ordered by
  /// destination, `recv` receives size() blocks ordered by source; both
  /// must be exactly size() * block() bytes. `trace` optionally collects
  /// per-phase timings for this call. Reusable: call as many times as you
  /// like; no communicators are ever rebuilt, and with the default inner
  /// exchanges no scratch is allocated after the first call either (the
  /// Bruck algorithms allocate rotation buffers per call).
  rt::Task<void> execute(rt::ConstView send, rt::MutView recv,
                         coll::Trace* trace = nullptr);

  /// The planned algorithm (the tuner's pick when PlanOptions.algo was
  /// empty).
  coll::Algo algo() const noexcept { return choice_.algo; }
  /// Resolved leader/group width (meaningful for locality algorithms).
  int group_size() const noexcept { return choice_.group_size; }
  /// The full tuner decision; predicted_seconds is 0 when the algorithm
  /// was given explicitly.
  const coll::Choice& choice() const noexcept { return choice_; }
  /// Bytes exchanged per rank pair.
  std::size_t block() const noexcept { return block_; }
  /// The communicator the plan executes on.
  rt::Comm& comm() const noexcept { return *world_; }
  /// The locality-communicator bundle, or nullptr for direct algorithms.
  /// Borrowable by other locality collectives (coll_ext) on this rank.
  const rt::LocalityComms* bundle() const noexcept {
    return lc_ ? &*lc_ : nullptr;
  }
  /// The reusable scratch arena (observability: allocations()/reuses()).
  const rt::ScratchArena& scratch() const noexcept { return arena_; }
  /// Completed execute() calls.
  std::uint64_t executions() const noexcept { return executions_; }

 private:
  friend AlltoallPlan make_plan(rt::Comm&, const topo::Machine&,
                                const model::NetParams&, std::size_t,
                                const PlanOptions&);
  AlltoallPlan() = default;

  rt::Comm* world_ = nullptr;
  std::shared_ptr<const topo::Machine> machine_;  ///< heap: stable across moves
  coll::Choice choice_;
  std::size_t block_ = 0;
  coll::Options opts_;
  std::optional<rt::LocalityComms> lc_;
  rt::ScratchArena arena_;
  std::uint64_t executions_ = 0;
};

/// Plan an all-to-all of `block` bytes per rank pair on `world`. Runs the
/// tuner (once) unless opts.algo is set, builds the locality communicators
/// the chosen algorithm needs, and sets up the scratch arena. Collective in
/// the same sense as build_locality_comms: every rank of `world` must call
/// with identical machine/net/block/opts. Throws std::invalid_argument when
/// world.size() != machine.total_ranks() or the group size does not divide
/// ppn.
AlltoallPlan make_plan(rt::Comm& world, const topo::Machine& machine,
                       const model::NetParams& net, std::size_t block,
                       const PlanOptions& opts = {});

}  // namespace mca2a::plan
