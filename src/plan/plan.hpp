#pragma once
/// \file plan.hpp
/// Persistent plan/execute collectives for the whole family, in the style
/// of MPI-4's MPI_*_init: split a collective into a *plan time* — argument
/// validation, algorithm selection, locality-communicator construction,
/// scratch preallocation — and an *execute time* that does nothing but run
/// the exchange.
///
/// Every collective in the codebase is described by a typed descriptor
/// (coll_ext/op_desc.hpp) and planned through one entry point:
///
///   auto p = plan::make_plan(world, machine, net, coll::AlltoallDesc{64});
///   for (;;) co_await p.execute(send, recv);
///
///   auto ag = plan::make_plan(world, machine, net, coll::AllgatherDesc{8});
///   auto ar = plan::make_plan(world, machine, net,
///                             coll::AllreduceDesc{n, coll::sum_combiner<double>()});
///   co_await ar.execute_inplace(data);
///
/// Leaving the descriptor's algorithm empty consults, in order: an online
/// autotuner when one is active (PlanOptions::autotune or the A2A_AUTOTUNE
/// env knob — measurement-driven selection, see autotune/), then the
/// closed-form tuner (alltoall: coll::select_algorithm;
/// allgather/allreduce/alltoallv: coll_ext/ext_tuner — skew-aware for
/// alltoallv, see AlltoallvSkew), optionally memoized across plans by a
/// PlanOptions::table. Completed executions feed the active autotuner's
/// profiler whatever picked the algorithm.
///
/// A plan belongs to one rank (like the rt::Comm it wraps). Every rank of
/// the communicator must create a matching plan (same machine, descriptor
/// and options — mirroring the collective contract of build_locality_comms)
/// and execute them collectively. The plan's bundle() is borrowable by
/// other locality collectives on this rank.
///
/// Execution is nonblocking, MPI_Start style: start() (or start_inplace())
/// posts the exchange and returns a CollectiveHandle with test() and an
/// awaitable wait(); execute() is a thin start().wait() shim. Every started
/// operation draws a fresh tag stream from its communicator
/// (runtime/tags.hpp), so multiple collectives — on the same communicator
/// or on overlapping locality sub-communicators — can be in flight at once
/// without cross-matching, provided every rank starts them in the same
/// order. A plan itself admits one in-flight operation at a time (exactly
/// MPI-4's persistent-request rule); overlap two exchanges by starting two
/// plans, or batch them with dependencies via plan::Schedule
/// (plan/schedule.hpp).
///
/// Plans are movable but must not be moved or destroyed while an operation
/// is in flight (the started coroutine captures `this`): moving then throws
/// std::logic_error, destruction debug-asserts. PlanCache (plan/cache.hpp)
/// hands out shared_ptr-managed plans, which never move, and one cache
/// serves all four collectives (keys come from OpDesc::key()).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "autotune/profiler.hpp"
#include "coll_ext/ext_tuner.hpp"
#include "coll_ext/op_desc.hpp"
#include "core/alltoall.hpp"
#include "core/tuner.hpp"
#include "model/params.hpp"
#include "plan/tuning_table.hpp"
#include "runtime/async.hpp"
#include "runtime/comm.hpp"
#include "runtime/comm_bundle.hpp"
#include "runtime/scratch.hpp"
#include "runtime/task.hpp"
#include "topo/machine.hpp"

namespace mca2a::autotune {
class OnlineSelector;
}

namespace mca2a::plan {

class CollectivePlan;

/// An in-flight started collective. Move-only; obtained from
/// CollectivePlan::start / start_inplace. The exchange progresses whenever
/// the backend runs (immediately and synchronously on the threads backend;
/// event by event on the simulator), independent of whether the starter is
/// waiting.
///
/// Dropping a handle before completion aborts the operation mid-exchange
/// (debug-asserts first) — always test()/wait() started work.
class CollectiveHandle {
 public:
  CollectiveHandle() noexcept = default;
  CollectiveHandle(CollectiveHandle&&) noexcept = default;
  CollectiveHandle& operator=(CollectiveHandle&& other) noexcept {
    if (this != &other) {
      reset();
      st_ = std::move(other.st_);
    }
    return *this;
  }
  CollectiveHandle(const CollectiveHandle&) = delete;
  CollectiveHandle& operator=(const CollectiveHandle&) = delete;
  ~CollectiveHandle() { reset(); }

  /// True if this handle refers to a started operation.
  bool valid() const noexcept { return st_ != nullptr; }
  /// True once the operation has completed (also when it failed — wait()
  /// reports the error). Never advances time: a poll, not a progress call.
  bool test() const noexcept { return st_ && st_->op->done(); }

  /// Await completion. Multiple coroutines may wait on one handle (the
  /// Schedule does); an operation that ended with an exception rethrows it
  /// at every wait. Throws std::logic_error on an invalid (default- or
  /// moved-from) handle.
  rt::AsyncOp::WaitAwaiter wait() {
    if (!st_) {
      throw std::logic_error("CollectiveHandle::wait: invalid handle");
    }
    return st_->op->wait();
  }

  /// Tag stream (runtime/tags.hpp) this operation's traffic runs in; -1
  /// on an invalid handle.
  int tag_stream() const noexcept { return st_ ? st_->stream : -1; }
  /// comm().now() when the operation was started (0 on an invalid handle).
  double started_at() const noexcept { return st_ ? st_->started_at : 0.0; }
  /// comm().now() when it completed; 0 until then.
  double finished_at() const noexcept { return st_ ? st_->finished_at : 0.0; }
  /// Completion stats: elapsed virtual (simulator) or wall (threads)
  /// seconds of the exchange on this rank; 0 until complete.
  double seconds() const noexcept {
    return !st_ || st_->finished_at == 0.0
               ? 0.0
               : st_->finished_at - st_->started_at;
  }

 private:
  friend class CollectivePlan;

  struct State {
    std::shared_ptr<rt::AsyncOp> op;
    CollectivePlan* plan = nullptr;
    int stream = 0;
    double started_at = 0.0;
    double finished_at = 0.0;
  };

  explicit CollectiveHandle(std::shared_ptr<State> st) noexcept
      : st_(std::move(st)) {}

  void reset() noexcept;

  std::shared_ptr<State> st_;
};

struct PlanOptions {
  /// Alltoall algorithm to plan for when the descriptor leaves its own
  /// `algo` empty (legacy knob; ignored by the other op kinds). nullopt
  /// lets the tuner pick (algorithm *and* group size) from the closed-form
  /// cost model — for every op kind.
  std::optional<coll::Algo> algo;
  /// Leader/group width for the locality algorithms; 0 means one group or
  /// leader per node (ppn). Ignored when the tuner picks.
  int group_size = 0;
  /// Inner exchange used by the locality all-to-all algorithms.
  coll::Inner inner = coll::Inner::kPairwise;
  /// Window for the batched algorithm.
  int batch_window = 32;
  /// Bruck-to-pairwise threshold of the System MPI surrogate.
  std::size_t system_small_threshold = 512;
  /// Optional memoization table consulted (and filled) when the tuner
  /// picks; must outlive the plan creation call. Serves every op kind.
  TuningTable* table = nullptr;
  /// Online autotuner (autotune/selector.hpp). In adapt mode it is
  /// consulted *before* the table/model when the descriptor leaves `algo`
  /// empty (alltoall and allgather; the other kinds stay model-driven),
  /// and in observe or adapt mode every completed execution of the plan —
  /// explicit-algorithm plans included — feeds its profiler. Must outlive
  /// the plan (it is consulted at completion time). When null, the
  /// process-global selector configured by A2A_AUTOTUNE applies
  /// (autotune/autotune.hpp); with that unset too, behavior is exactly the
  /// pre-autotune model path.
  autotune::OnlineSelector* autotune = nullptr;
};

/// A planned collective of any kind: the descriptor, the resolved
/// algorithm, the locality communicators it needs, and a reusable scratch
/// arena. Created by make_plan; executed as many times as you like with
/// zero construction (and, warm, zero allocation) per call.
class CollectivePlan {
 public:
  /// Plans are movable, but never while an operation is in flight: the
  /// started coroutine holds `this`. Violations throw std::logic_error.
  CollectivePlan(CollectivePlan&& other) : CollectivePlan() {
    move_from(std::move(other));
  }
  CollectivePlan& operator=(CollectivePlan&& other) {
    if (this != &other) {
      check_idle("move-assign over");
      move_from(std::move(other));
    }
    return *this;
  }
  CollectivePlan(const CollectivePlan&) = delete;
  CollectivePlan& operator=(const CollectivePlan&) = delete;
  ~CollectivePlan() {
    // Destroying a plan with a live handle leaves a coroutine holding a
    // dangling `this`; the handle's own destructor would then abort an
    // exchange mid-flight. Can't throw here, so: debug-assert.
    assert(in_flight_ == 0 &&
           "CollectivePlan destroyed with an operation in flight");
  }

  /// Start the planned exchange nonblocking (MPI_Start on a persistent
  /// op): posts the exchange in a fresh tag stream and returns a handle to
  /// test()/wait(). Buffer extents are validated up front against the
  /// descriptor (std::invalid_argument on mismatch — the misuse that would
  /// otherwise corrupt data or deadlock):
  ///  * alltoall:  send and recv exactly size() * block() bytes.
  ///  * alltoallv: send exactly sum(send_counts), recv sum(recv_counts);
  ///               blocks packed contiguously in peer order.
  ///  * allgather: send exactly block(), recv size() * block().
  ///  * allreduce: send and recv exactly count * elem_size; recv gets the
  ///               reduction (send is copied in first; see start_inplace).
  /// Buffers must stay valid until the handle completes. At most one
  /// operation per plan may be in flight (std::logic_error otherwise).
  /// `trace` optionally collects per-phase timings (alltoall and the
  /// locality alltoallv algorithms; leaders only for the latter).
  CollectiveHandle start(rt::ConstView send, rt::MutView recv,
                         coll::Trace* trace = nullptr);

  /// Allreduce only: start reducing `data` in place (the MPI_IN_PLACE
  /// form, no staging copy). Throws std::invalid_argument for other op
  /// kinds or on a bad extent.
  CollectiveHandle start_inplace(rt::MutView data,
                                 coll::Trace* trace = nullptr);

  /// Blocking form: start(...) then await the handle. Kept as the simple
  /// entry point; identical results and timing to the nonblocking form.
  rt::Task<void> execute(rt::ConstView send, rt::MutView recv,
                         coll::Trace* trace = nullptr);

  /// Blocking form of start_inplace.
  rt::Task<void> execute_inplace(rt::MutView data, coll::Trace* trace = nullptr);

  /// Operations currently in flight on this plan (0 or 1).
  int in_flight() const noexcept { return in_flight_; }

  /// Which collective this plan runs.
  coll::OpKind kind() const noexcept { return desc_.kind(); }
  /// The full descriptor the plan was created from.
  const coll::OpDesc& desc() const noexcept { return desc_; }

  /// The resolved algorithm as its op-specific enum value (the tuner's pick
  /// when the descriptor left it empty).
  int algo_id() const noexcept { return algo_; }
  /// Typed algorithm accessors; meaningful only for the matching kind().
  coll::Algo algo() const noexcept { return static_cast<coll::Algo>(algo_); }
  coll::AllgatherAlgo allgather_algo() const noexcept {
    return static_cast<coll::AllgatherAlgo>(algo_);
  }
  coll::AllreduceAlgo allreduce_algo() const noexcept {
    return static_cast<coll::AllreduceAlgo>(algo_);
  }
  coll::AlltoallvAlgo alltoallv_algo() const noexcept {
    return static_cast<coll::AlltoallvAlgo>(algo_);
  }
  /// Resolved leader/group width (meaningful for locality algorithms).
  int group_size() const noexcept { return group_size_; }
  /// The tuner's predicted time; 0 when the algorithm was given explicitly.
  double predicted_seconds() const noexcept { return predicted_seconds_; }
  /// Alltoall view of the decision (compatibility with core/tuner).
  coll::Choice choice() const noexcept {
    return coll::Choice{static_cast<coll::Algo>(algo_), group_size_,
                        predicted_seconds_};
  }
  /// Bytes per block: per rank pair (alltoall) or per rank (allgather);
  /// 0 for the other kinds.
  std::size_t block() const noexcept;
  /// The communicator the plan executes on.
  rt::Comm& comm() const noexcept { return *world_; }
  /// The locality-communicator bundle, or nullptr for direct algorithms.
  /// Borrowable by other locality collectives on this rank.
  const rt::LocalityComms* bundle() const noexcept {
    return lc_ ? &*lc_ : nullptr;
  }
  /// The reusable scratch arena (observability: allocations()/reuses()).
  const rt::ScratchArena& scratch() const noexcept { return arena_; }
  /// Completed execute() calls.
  std::uint64_t executions() const noexcept { return executions_; }

 private:
  friend class CollectiveHandle;
  friend class Schedule;  ///< pre-draws tag streams (start_in_stream)
  friend CollectivePlan make_plan(rt::Comm&, const topo::Machine&,
                                  const model::NetParams&, coll::OpDesc,
                                  const PlanOptions&);
  CollectivePlan() : desc_(coll::AlltoallDesc{}) {}

  void check_idle(const char* what) const;
  void move_from(CollectivePlan&& other);
  void check_can_start() const;
  void validate_extents(rt::ConstView send, rt::MutView recv) const;
  void validate_inplace(rt::MutView data) const;
  /// start()/start_inplace() with a caller-reserved tag stream instead of
  /// a fresh draw. The Schedule reserves its ops' streams up front in
  /// batch order, because its dependency-driven *start* order is
  /// rank-local (op completion order differs across ranks) and must not
  /// influence which stream an op gets.
  CollectiveHandle start_in_stream(rt::ConstView send, rt::MutView recv,
                                   coll::Trace* trace, int tag_stream);
  CollectiveHandle start_inplace_in_stream(rt::MutView data,
                                           coll::Trace* trace,
                                           int tag_stream);
  CollectiveHandle launch(rt::ConstView send, rt::MutView recv,
                          coll::Trace* trace, int tag_stream);
  rt::Task<void> run_started(std::shared_ptr<CollectiveHandle::State> st,
                             rt::ConstView send, rt::MutView recv,
                             coll::Trace* trace);
  rt::Task<void> run_op(rt::ConstView send, rt::MutView recv,
                        coll::Trace* trace, int tag_stream);

  int in_flight_ = 0;
  rt::Comm* world_ = nullptr;
  std::shared_ptr<const topo::Machine> machine_;  ///< heap: stable across moves
  coll::OpDesc desc_;
  int algo_ = 0;                    ///< resolved, as the op-specific enum value
  int group_size_ = 1;
  double predicted_seconds_ = 0.0;
  coll::Options opts_;
  std::optional<rt::LocalityComms> lc_;
  std::vector<std::size_t> send_displs_;  ///< alltoallv: dense prefix sums
  std::vector<std::size_t> recv_displs_;
  std::size_t send_total_ = 0;  ///< alltoallv: plan-time count sums
  std::size_t recv_total_ = 0;
  rt::ScratchArena arena_;
  std::uint64_t executions_ = 0;
  /// Online-autotuning hook: when set, every successful completion records
  /// its elapsed seconds under profile_key_ (resolved once at plan time).
  autotune::OnlineSelector* autotune_ = nullptr;
  autotune::ProfileKey profile_key_;
};

/// The pre-family name; alltoall call sites keep compiling unchanged.
using AlltoallPlan = CollectivePlan;

/// Plan any collective described by `desc` on `world`. Validates the
/// descriptor, runs the matching tuner (once) unless an algorithm is given,
/// builds the locality communicators the chosen algorithm needs, and sets
/// up the scratch arena. Collective in the same sense as
/// build_locality_comms: every rank of `world` must call with identical
/// machine/net/desc/opts. Throws std::invalid_argument when world.size()
/// != machine.total_ranks(), the descriptor fails validation, or the group
/// size does not divide ppn.
CollectivePlan make_plan(rt::Comm& world, const topo::Machine& machine,
                         const model::NetParams& net, coll::OpDesc desc,
                         const PlanOptions& opts = {});

/// Alltoall shorthand: plan `block` bytes per rank pair (the PR-1 entry
/// point, equivalent to passing coll::AlltoallDesc{block}).
CollectivePlan make_plan(rt::Comm& world, const topo::Machine& machine,
                         const model::NetParams& net, std::size_t block,
                         const PlanOptions& opts = {});

}  // namespace mca2a::plan
