#include "plan/schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "plan/verify.hpp"

namespace mca2a::plan {

int Schedule::add(CollectivePlan& plan, rt::ConstView send, rt::MutView recv,
                  std::size_t compute_bytes) {
  if (ran_) {
    throw std::logic_error("Schedule::add: schedule already ran");
  }
  Op op;
  op.plan = &plan;
  op.send = send;
  op.recv = recv;
  op.compute_bytes = compute_bytes;
  ops_.push_back(std::move(op));
  return static_cast<int>(ops_.size()) - 1;
}

int Schedule::add_inplace(CollectivePlan& plan, rt::MutView data,
                          std::size_t compute_bytes) {
  const int id = add(plan, rt::ConstView{}, data, compute_bytes);
  ops_[id].inplace = true;
  return id;
}

void Schedule::check_op_id(int op) const {
  if (op < 0 || op >= static_cast<int>(ops_.size())) {
    throw std::out_of_range("Schedule: op id " + std::to_string(op) +
                            " out of range");
  }
}

void Schedule::add_dependency(int before, int after) {
  if (ran_) {
    throw std::logic_error("Schedule::add_dependency: schedule already ran");
  }
  check_op_id(before);
  check_op_id(after);
  if (before == after) {
    throw std::invalid_argument("Schedule: op cannot depend on itself");
  }
  ops_[after].deps.push_back(before);
}

void Schedule::check_acyclic() const {
  // Kahn's algorithm over the dependency edges; anything left unprocessed
  // sits on a cycle.
  const int n = static_cast<int>(ops_.size());
  std::vector<int> indegree(n, 0);
  for (int i = 0; i < n; ++i) {
    indegree[i] = static_cast<int>(ops_[i].deps.size());
  }
  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  int processed = 0;
  while (!ready.empty()) {
    const int cur = ready.back();
    ready.pop_back();
    ++processed;
    for (int i = 0; i < n; ++i) {
      for (int d : ops_[i].deps) {
        if (d == cur && --indegree[i] == 0) {
          ready.push_back(i);
        }
      }
    }
  }
  if (processed != n) {
    throw std::invalid_argument("Schedule::run: dependency cycle");
  }
}

rt::Task<void> Schedule::drive(int i) {
  Op& op = ops_[i];
  for (int d : op.deps) {
    // Rethrows a failed dependency, which parks this op's own AsyncOp with
    // the same error: failures poison the downstream DAG.
    co_await done_[d]->wait();
  }
  rt::Comm& comm = op.plan->comm();
  if (obs::TraceBuffer* tb = comm.tracer()) {
    // Launch marker on the op's own lane: its dependencies have completed
    // and the collective span (plan.cpp's run_op) starts right here.
    tb->instant("sched.launch", "sched", op.tag_stream,
                {{"op", i},
                 {"deps", static_cast<std::int64_t>(op.deps.size())},
                 {"stream", op.tag_stream}});
  }
  if (op.compute_bytes > 0) {
    comm.charge_copy(op.compute_bytes);
  }
  // The tag stream was reserved in run() — the *start* order here is
  // dependency-completion order, which is rank-local and must not decide
  // which stream an op gets.
  CollectiveHandle h =
      op.inplace
          ? op.plan->start_inplace_in_stream(op.recv, nullptr, op.tag_stream)
          : op.plan->start_in_stream(op.send, op.recv, nullptr,
                                     op.tag_stream);
  op.stats.started_at = h.started_at();
  try {
    co_await h.wait();
  } catch (...) {
    // A failed op reports zero times, like an op whose dependency failed;
    // a started_at with no finished_at would read as a negative duration.
    op.stats = OpStats{};
    throw;
  }
  op.stats.finished_at = h.finished_at();
}

rt::Task<void> Schedule::run() {
  if (ran_) {
    throw std::logic_error("Schedule::run: schedule already ran");
  }
  check_acyclic();
  ran_ = true;
  const int n = static_cast<int>(ops_.size());
  // Reserve every op's tag stream up front, in add order. Drivers start
  // ops as dependencies complete, and completion order is rank-local
  // (leaders finish before non-leaders, noise reorders events); drawing
  // at start time would let ranks disagree on stream assignment, which is
  // exactly the cross-matching the streams exist to prevent.
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    ops_[i].tag_stream = i < forced_streams_.size()
                             ? forced_streams_[i]
                             : ops_[i].plan->comm().acquire_tag_stream();
  }
  // Static batch verification (plan/verify.hpp): with the streams fixed,
  // prove tag-stream disjointness of every potentially-concurrent pair and
  // the one-in-flight-per-plan ordering before anything starts.
  if (verify_enabled()) {
    std::vector<VerifyOp> vops;
    vops.reserve(ops_.size());
    for (const Op& op : ops_) {
      VerifyOp v;
      v.comm = &op.plan->comm();
      v.tag_stream = op.tag_stream;
      v.plan = op.plan;
      v.deps = op.deps;
      vops.push_back(std::move(v));
    }
    require_verified(verify(vops), "Schedule::run");
  }
  // Dependency edges, once per run on the direct-call lane: a timeline
  // reader can reconstruct the DAG from (before, after) pairs and match
  // them to the sched.launch markers on the per-op lanes.
  for (int after = 0; after < n; ++after) {
    if (obs::TraceBuffer* tb = ops_[after].plan->comm().tracer()) {
      for (int before : ops_[after].deps) {
        tb->instant("sched.dep", "sched", 0,
                    {{"before", before}, {"after", after}});
      }
    }
  }
  done_.clear();
  done_.reserve(n);
  for (int i = 0; i < n; ++i) {
    done_.push_back(std::make_shared<rt::AsyncOp>());
  }
  // Two passes so every driver can wait on any other op's event: drivers
  // start (and may complete, on the threads backend) in add order, which
  // is exactly the deterministic start order the collective contract needs.
  for (int i = 0; i < n; ++i) {
    rt::spawn_detached(drive(i), done_[i]);
  }
  // Drain every op before reporting: a fast-failing op must not leave its
  // siblings in flight when the error propagates (their buffers unwind
  // with the caller). The first failure by op index is rethrown.
  std::exception_ptr first_error;
  for (int i = 0; i < n; ++i) {
    try {
      co_await done_[i]->wait();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

double Schedule::makespan() const {
  double t0 = 0.0;
  double t1 = 0.0;
  bool first = true;
  for (const Op& op : ops_) {
    if (op.stats.finished_at == 0.0) {
      continue;
    }
    t0 = first ? op.stats.started_at : std::min(t0, op.stats.started_at);
    t1 = first ? op.stats.finished_at : std::max(t1, op.stats.finished_at);
    first = false;
  }
  return first ? 0.0 : t1 - t0;
}

double Schedule::critical_path() const {
  const int n = static_cast<int>(ops_.size());
  std::vector<double> cp(n, -1.0);
  // Dependencies only ever point at already-added ops in typical use, but
  // add_dependency accepts any pair, so resolve with a worklist until all
  // chain sums settle (the DAG check in run() guarantees termination).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int i = 0; i < n; ++i) {
      if (cp[i] >= 0.0) {
        continue;
      }
      double longest_dep = 0.0;
      bool deps_ready = true;
      for (int d : ops_[i].deps) {
        if (cp[d] < 0.0) {
          deps_ready = false;
          break;
        }
        longest_dep = std::max(longest_dep, cp[d]);
      }
      if (deps_ready) {
        cp[i] = longest_dep + ops_[i].stats.seconds();
        progressed = true;
      }
    }
  }
  double best = 0.0;
  for (int i = 0; i < n; ++i) {
    best = std::max(best, cp[i]);
  }
  return best;
}

}  // namespace mca2a::plan
