#pragma once
/// \file verify.hpp
/// Static verification of built plans and schedules before execution.
///
/// A CollectivePlan or a plan::Schedule encodes enough structure — resolved
/// algorithm, tag stream, scratch arena, happens-before edges — that the
/// classic concurrency bugs of this codebase are checkable *before* any
/// message moves:
///
///  * **Tag-stream disjointness.** Two operations that may be in flight at
///    the same time (no dependency path between them) on the same
///    communicator must run in different tag streams, or their wire tags
///    coincide and messages cross-match (runtime/tags.hpp).
///  * **Deadlock freedom.** The happens-before graph of a batch must be
///    acyclic, and two operations on the *same* plan must be ordered by a
///    dependency path — a plan admits one in-flight operation (the MPI
///    persistent-request rule), so unordered same-plan ops either throw
///    mid-batch or deadlock.
///  * **Scratch-arena lifetime containment.** Every scratch buffer borrowed
///    from a plan's arena during one execution must be returned before the
///    next starts; outstanding bytes at start time mean a previous
///    execution leaked a buffer it may still write through.
///
/// verify() runs automatically before every start() and Schedule::run()
/// when the verifier is enabled: by default in debug (!NDEBUG) builds, and
/// in any build via `A2A_VERIFY_PLANS=1` (`=0` force-disables). A failed
/// check throws std::logic_error carrying every finding. The check surface
/// is also exposed directly (verify(...) returning a VerifyReport) so tests
/// and tools can run it on constructed — including deliberately broken —
/// operation sets.

#include <span>
#include <string>
#include <vector>

namespace mca2a::rt {
class Comm;
}

namespace mca2a::plan {

class CollectivePlan;

/// Outcome of a verification pass: empty errors == verified.
struct VerifyReport {
  std::vector<std::string> errors;

  bool ok() const noexcept { return errors.empty(); }
  /// All findings joined into one human-readable block.
  std::string to_string() const;
};

/// Abstract summary of one operation in a (potentially concurrent) batch —
/// what verify() needs to know about a Schedule op or a bare start().
/// Tests build these directly to prove the verifier rejects bad batches.
struct VerifyOp {
  /// Matching domain: tags are scoped per communicator, so only ops on the
  /// same communicator object can cross-match.
  const rt::Comm* comm = nullptr;
  /// Tag stream (runtime/tags.hpp) the op's traffic runs in.
  int tag_stream = 0;
  /// Identity of the owning plan (one in-flight op per plan); nullptr when
  /// the ops are known to come from distinct plans.
  const void* plan = nullptr;
  /// Indices (into the batch) of ops that must complete before this one
  /// starts — the happens-before edges.
  std::vector<int> deps;
};

/// Verify a batch of operations: dependency-graph sanity (indices in
/// range, no self-edges, acyclic), same-plan ordering, and tag-stream
/// disjointness between every pair of ops that could be concurrent.
VerifyReport verify(std::span<const VerifyOp> ops);

/// Verify a single plan immediately before it starts an operation in
/// `tag_stream`: the plan must be idle, the stream in range, and the
/// scratch arena fully returned (lifetime containment). Pass -1 for
/// tag_stream when the stream has not been drawn yet.
VerifyReport verify(const CollectivePlan& p, int tag_stream = -1);

/// Whether automatic verification is on: A2A_VERIFY_PLANS when set,
/// otherwise on in debug (!NDEBUG) builds and off in release.
bool verify_enabled();
/// Test hook: force the automatic verifier on/off (-1 restores the
/// environment/build default).
void set_verify_enabled_for_test(int on);

/// Throw std::logic_error carrying the report when it is not ok().
void require_verified(const VerifyReport& report, const char* context);

}  // namespace mca2a::plan
