#pragma once
/// \file cache.hpp
/// LRU cache of persistent collective plans — one cache for the whole
/// family (alltoall, alltoallv, allgather, allreduce).
///
/// A PlanCache maps (descriptor key, plan options, communicator identity)
/// to a shared CollectivePlan, constructing on first request and recycling
/// afterwards. The descriptor key is coll::OpDesc::key(), so plans of
/// different op kinds coexist without aliasing. The machine and network
/// parameters are deliberately not part of the key: a communicator lives on
/// one machine, and tuner-picked entries are only meaningful for the
/// NetParams they were selected with — callers switching network models
/// mid-run must use separate caches (one per NetParams), the same ownership
/// rule as TuningTable. The counters make reuse observable — globally and
/// per op kind: a workload that executes the same exchange N times must
/// show exactly one construction and N-1 hits, which is what moves
/// communicator construction and tuner selection out of every timed region.
///
/// Communicator identity is the address of the rt::Comm endpoint object: a
/// Comm belongs to one rank and one communicator, and cached plans keep
/// raw pointers into it, so plans must not outlive their communicator.
/// Address identity also means a *new* Comm allocated where a destroyed one
/// lived would silently match the dead comm's entries — call erase_comm()
/// (or clear()) before destroying a communicator the cache has seen.
///
/// Like a Comm, a cache belongs to one rank; it is not thread-safe.
///
/// Autotune interplay: the key also excludes PlanOptions::autotune, and a
/// plan freezes its resolved algorithm at construction — so under an
/// adapt-mode selector a cache hit replays the *first* online decision for
/// that descriptor, it does not re-consult the selector. That is exactly
/// the plan contract (selection happens at plan time); workloads that want
/// cached plans to track an evolving profile must erase_comm()/clear() (or
/// bypass the cache) at their re-tuning points, the way the harness's
/// autotune mode re-plans each repetition.

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "plan/plan.hpp"

namespace mca2a::plan {

struct PlanKey {
  /// coll::OpDesc::key() — op tag + descriptor fields, with the legacy
  /// PlanOptions::algo knob folded in (see PlanCache::key_of), so a plan
  /// requested through either route is one cache entry.
  std::string desc;
  int inner = 0;  ///< static_cast<int>(coll::Inner)
  int group_size = 0;
  int batch_window = 0;
  std::size_t system_small_threshold = 0;
  std::uintptr_t comm = 0;  ///< address of the rt::Comm endpoint

  bool operator==(const PlanKey&) const = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    std::size_t h = std::hash<std::uintptr_t>{}(k.comm);
    const auto mix = [&h](std::size_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(std::hash<std::string>{}(k.desc));
    mix(static_cast<std::size_t>(k.inner) + 1);
    mix(static_cast<std::size_t>(k.group_size));
    mix(static_cast<std::size_t>(k.batch_window) + 1);
    mix(k.system_small_threshold + 1);
    return h;
  }
};

class PlanCache {
 public:
  /// Per-op-kind slice of the counters (indexed by coll::OpKind).
  struct OpStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t constructions = 0;  ///< plans built (== misses today)
    std::uint64_t evictions = 0;      ///< plans dropped by the LRU policy
    std::array<OpStats, coll::kNumOpKinds> per_op{};
  };

  /// `capacity` bounds the number of live plans (>= 1), across all op kinds.
  explicit PlanCache(std::size_t capacity = 16);

  /// Fetch the plan for (desc, opts, world identity), constructing it via
  /// make_plan on a miss and evicting the least-recently-used entry when
  /// over capacity. The returned shared_ptr stays valid across evictions.
  std::shared_ptr<CollectivePlan> get_or_create(
      rt::Comm& world, const topo::Machine& machine,
      const model::NetParams& net, const coll::OpDesc& desc,
      const PlanOptions& opts = {});

  /// Alltoall shorthand (the PR-1 signature): `block` bytes per rank pair.
  std::shared_ptr<CollectivePlan> get_or_create(rt::Comm& world,
                                                const topo::Machine& machine,
                                                const model::NetParams& net,
                                                std::size_t block,
                                                const PlanOptions& opts = {});

  /// Lookup-only half of get_or_create: on a hit, count it, touch the LRU
  /// and return the resident plan. Returns nullptr on a miss — and on an
  /// alltoallv count-vector hash collision — without counting anything, so
  /// a caller (ShardedPlanCache) can drop its lock, build the plan, and
  /// complete the miss with insert_miss(). find_hit + insert_miss replay
  /// get_or_create counter for counter.
  std::shared_ptr<CollectivePlan> find_hit(const rt::Comm& world,
                                           const coll::OpDesc& desc,
                                           const PlanOptions& opts = {});

  /// Record the miss a nullptr find_hit reported and cache `plan`,
  /// evicting least-recently-used entries while over capacity. When the
  /// key is already resident (the collision case above, or a racing build
  /// that lost), the resident entry is kept and `plan` is returned
  /// uncached.
  std::shared_ptr<CollectivePlan> insert_miss(
      const rt::Comm& world, const coll::OpDesc& desc, const PlanOptions& opts,
      std::shared_ptr<CollectivePlan> plan);

  const Stats& stats() const noexcept { return stats_; }
  /// Counters for one op kind.
  const OpStats& stats(coll::OpKind op) const noexcept {
    return stats_.per_op[static_cast<int>(op)];
  }
  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// True if the keyed plan is resident (no LRU touch, no construction).
  bool contains(const rt::Comm& world, const coll::OpDesc& desc,
                const PlanOptions& opts = {}) const;
  bool contains(const rt::Comm& world, std::size_t block,
                const PlanOptions& opts = {}) const;

  /// Drop every entry keyed to `world`. Must be called before destroying a
  /// communicator the cache holds plans for (see the ABA note above).
  /// Returns the number of entries dropped.
  std::size_t erase_comm(const rt::Comm& world);

  /// Drop every cached plan (counters are preserved).
  void clear();

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<CollectivePlan>>;

  static PlanKey key_of(const rt::Comm& world, const coll::OpDesc& desc,
                        const PlanOptions& opts);

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> map_;
  Stats stats_;
};

}  // namespace mca2a::plan
