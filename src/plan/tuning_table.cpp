#include "plan/tuning_table.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mca2a::plan {

namespace {
constexpr char kHeader[] = "mca2a-tuning-table v1";
}

std::size_t TuningKeyHash::operator()(const TuningKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.machine);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::size_t>(k.nodes));
  mix(static_cast<std::size_t>(k.ppn));
  mix(k.block);
  return h;
}

TuningKey TuningTable::key_of(const topo::Machine& machine,
                              std::size_t block) {
  // Enforced here (every entry path) so save() can never emit a line that
  // load() would reject: names are whitespace-delimited in the file format.
  if (machine.name().find_first_of(" \t\n\r") != std::string::npos ||
      machine.name().empty()) {
    throw std::invalid_argument(
        "TuningTable: machine name must be non-empty and contain no "
        "whitespace: '" +
        machine.name() + "'");
  }
  return TuningKey{machine.name(), machine.nodes(), machine.ppn(), block};
}

std::optional<coll::Choice> TuningTable::lookup(const topo::Machine& machine,
                                                std::size_t block) const {
  ++lookups_;
  const auto it = entries_.find(key_of(machine, block));
  if (it == entries_.end()) {
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void TuningTable::insert(const topo::Machine& machine, std::size_t block,
                         const coll::Choice& choice) {
  entries_[key_of(machine, block)] = choice;
}

coll::Choice TuningTable::choose(const topo::Machine& machine,
                                 const model::NetParams& net,
                                 std::size_t block) {
  if (const auto hit = lookup(machine, block)) {
    return *hit;
  }
  const coll::Choice choice = coll::select_algorithm(machine, net, block);
  insert(machine, block, choice);
  return choice;
}

void TuningTable::save(std::ostream& os) const {
  os << kHeader << "\n";
  // max_digits10 so predicted times survive the text round-trip exactly.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& [key, choice] : entries_) {
    os << key.machine << ' ' << key.nodes << ' ' << key.ppn << ' ' << key.block
       << ' ' << static_cast<int>(choice.algo) << ' ' << choice.group_size
       << ' ' << choice.predicted_seconds << "\n";
  }
}

TuningTable TuningTable::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("TuningTable::load: bad header: '" + line + "'");
  }
  TuningTable table;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    TuningKey key;
    int algo = -1;
    coll::Choice choice;
    if (!(ls >> key.machine >> key.nodes >> key.ppn >> key.block >> algo >>
          choice.group_size >> choice.predicted_seconds)) {
      throw std::runtime_error("TuningTable::load: malformed line: '" + line +
                               "'");
    }
    if (algo < 0 || algo >= coll::kNumAlgos) {
      throw std::runtime_error("TuningTable::load: unknown algorithm index " +
                               std::to_string(algo));
    }
    choice.algo = static_cast<coll::Algo>(algo);
    table.entries_[key] = choice;
  }
  return table;
}

bool TuningTable::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  save(os);
  return static_cast<bool>(os);
}

TuningTable TuningTable::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("TuningTable::load_file: cannot open " + path);
  }
  return load(is);
}

}  // namespace mca2a::plan
