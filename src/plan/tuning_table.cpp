#include "plan/tuning_table.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mca2a::plan {

namespace {

constexpr char kHeaderV1[] = "mca2a-tuning-table v1";
constexpr char kHeaderV2[] = "mca2a-tuning-table v2";
constexpr char kHeaderV3[] = "mca2a-tuning-table v3";

}  // namespace

std::size_t TuningKeyHash::operator()(const TuningKey& k) const noexcept {
  std::size_t h = std::hash<std::string>{}(k.machine);
  const auto mix = [&h](std::size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::size_t>(k.nodes));
  mix(static_cast<std::size_t>(k.ppn));
  mix(static_cast<std::size_t>(static_cast<int>(k.op)) + 1);
  mix(k.block);
  return h;
}

TuningKey TuningTable::key_of(const topo::Machine& machine, coll::OpKind op,
                              std::size_t block) {
  // Enforced here (every entry path) so save() can never emit a line that
  // load() would reject: names are whitespace-delimited in the file format.
  if (machine.name().find_first_of(" \t\n\r") != std::string::npos ||
      machine.name().empty()) {
    throw std::invalid_argument(
        "TuningTable: machine name must be non-empty and contain no "
        "whitespace: '" +
        machine.name() + "'");
  }
  return TuningKey{machine.name(), machine.nodes(), machine.ppn(), op, block};
}

std::optional<TuningTable::Entry> TuningTable::lookup_entry(
    const topo::Machine& machine, coll::OpKind op, std::size_t block) const {
  // Per-instance totals stay in lookups_/hits_; the registry aggregates
  // across every table in the process.
  static obs::Counter& g_lookups = obs::metrics().counter("tuning.lookups");
  static obs::Counter& g_hits = obs::metrics().counter("tuning.hits");
  ++lookups_;
  g_lookups.add();
  const auto it = entries_.find(key_of(machine, op, block));
  if (it == entries_.end()) {
    return std::nullopt;
  }
  ++hits_;
  g_hits.add();
  return it->second;
}

// --- alltoall ----------------------------------------------------------------

std::optional<coll::Choice> TuningTable::lookup(const topo::Machine& machine,
                                                std::size_t block) const {
  const auto e = lookup_entry(machine, coll::OpKind::kAlltoall, block);
  if (!e) {
    return std::nullopt;
  }
  return coll::Choice{static_cast<coll::Algo>(e->algo), e->group_size,
                      e->predicted_seconds};
}

void TuningTable::insert(const topo::Machine& machine, std::size_t block,
                         const coll::Choice& choice) {
  entries_[key_of(machine, coll::OpKind::kAlltoall, block)] =
      Entry{static_cast<int>(choice.algo), choice.group_size,
            choice.predicted_seconds};
}

coll::Choice TuningTable::choose(const topo::Machine& machine,
                                 const model::NetParams& net,
                                 std::size_t block) {
  if (const auto hit = lookup(machine, block)) {
    return *hit;
  }
  const coll::Choice choice = coll::select_algorithm(machine, net, block);
  insert(machine, block, choice);
  return choice;
}

// --- allgather ---------------------------------------------------------------

std::optional<coll::AllgatherChoice> TuningTable::lookup_allgather(
    const topo::Machine& machine, std::size_t block) const {
  const auto e = lookup_entry(machine, coll::OpKind::kAllgather, block);
  if (!e) {
    return std::nullopt;
  }
  return coll::AllgatherChoice{static_cast<coll::AllgatherAlgo>(e->algo),
                               e->group_size, e->predicted_seconds};
}

coll::AllgatherChoice TuningTable::choose_allgather(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t block) {
  if (const auto hit = lookup_allgather(machine, block)) {
    return *hit;
  }
  const coll::AllgatherChoice c =
      coll::select_allgather_algorithm(machine, net, block);
  entries_[key_of(machine, coll::OpKind::kAllgather, block)] =
      Entry{static_cast<int>(c.algo), c.group_size, c.predicted_seconds};
  return c;
}

// --- allreduce ---------------------------------------------------------------

std::optional<coll::AllreduceChoice> TuningTable::lookup_allreduce(
    const topo::Machine& machine, std::size_t bytes) const {
  const auto e = lookup_entry(machine, coll::OpKind::kAllreduce, bytes);
  if (!e) {
    return std::nullopt;
  }
  return coll::AllreduceChoice{static_cast<coll::AllreduceAlgo>(e->algo),
                               e->group_size, e->predicted_seconds};
}

coll::AllreduceChoice TuningTable::choose_allreduce(
    const topo::Machine& machine, const model::NetParams& net,
    std::size_t count, std::size_t elem_size) {
  const std::size_t bytes = count * elem_size;
  if (count < static_cast<std::size_t>(machine.total_ranks())) {
    // Rabenseifner eligibility depends on the element count, which the
    // byte-keyed table does not record. Restricted shapes (count < ranks —
    // rare: they alias an unrestricted shape only via jumbo elements) are
    // never served from or stored into the table, so memoized entries are
    // always unrestricted selections and query order cannot change results.
    // Still counted as a lookup (and never a hit) so lookups() keeps its
    // "total choose()/lookup() calls" meaning.
    ++lookups_;
    obs::metrics().counter("tuning.lookups").add();
    return coll::select_allreduce_algorithm(machine, net, count, elem_size);
  }
  if (const auto hit = lookup_allreduce(machine, bytes)) {
    return *hit;
  }
  const coll::AllreduceChoice c =
      coll::select_allreduce_algorithm(machine, net, count, elem_size);
  entries_[key_of(machine, coll::OpKind::kAllreduce, bytes)] =
      Entry{static_cast<int>(c.algo), c.group_size, c.predicted_seconds};
  return c;
}

// --- alltoallv ---------------------------------------------------------------

std::optional<coll::AlltoallvChoice> TuningTable::lookup_alltoallv(
    const topo::Machine& machine, const coll::AlltoallvSkew& skew) const {
  const auto e = lookup_entry(machine, coll::OpKind::kAlltoallv,
                              coll::alltoallv_size_class(machine, skew));
  if (!e) {
    return std::nullopt;
  }
  coll::AlltoallvChoice c;
  c.algo = static_cast<coll::AlltoallvAlgo>(e->algo);
  c.group_size = e->group_size;
  c.predicted_seconds = e->predicted_seconds;
  c.imbalance = skew.imbalance(machine.total_ranks());
  return c;
}

coll::AlltoallvChoice TuningTable::choose_alltoallv(
    const topo::Machine& machine, const model::NetParams& net,
    const coll::AlltoallvSkew& skew) {
  if (const auto hit = lookup_alltoallv(machine, skew)) {
    return *hit;
  }
  const coll::AlltoallvChoice c =
      coll::select_alltoallv_algorithm(machine, net, skew);
  entries_[key_of(machine, coll::OpKind::kAlltoallv,
                  coll::alltoallv_size_class(machine, skew))] =
      Entry{static_cast<int>(c.algo), c.group_size, c.predicted_seconds};
  return c;
}

// --- serialization -----------------------------------------------------------

void TuningTable::save(std::ostream& os) const {
  // Measurement-free tables keep the v2 header so older readers (and
  // pinned round-trip tests) see exactly what they always did; the v3
  // header announces the trailing profile section.
  os << (profile_.empty() ? kHeaderV2 : kHeaderV3) << "\n";
  // max_digits10 so predicted times survive the text round-trip exactly.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& [key, e] : entries_) {
    os << key.machine << ' ' << key.nodes << ' ' << key.ppn << ' '
       << coll::op_kind_tag(key.op) << ' ' << key.block << ' ' << e.algo << ' '
       << e.group_size << ' ' << e.predicted_seconds << "\n";
  }
  if (!profile_.empty()) {
    autotune::write_profile_section(os, profile_);
  }
}

TuningTable TuningTable::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("TuningTable::load: empty input");
  }
  const bool v1 = line == kHeaderV1;
  const bool v3 = line == kHeaderV3;
  if (!v1 && !v3 && line != kHeaderV2) {
    throw std::runtime_error("TuningTable::load: bad header: '" + line + "'");
  }
  TuningTable table;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind("prof ", 0) == 0) {
      if (!v3) {
        throw std::runtime_error(
            "TuningTable::load: profile line in a pre-v3 table: '" + line +
            "'");
      }
      auto [pkey, pstats] = autotune::parse_profile_line(line);
      table.profile_.merge_entry(pkey, pstats);
      continue;
    }
    std::istringstream ls(line);
    TuningKey key;
    std::string tag = "a2a";
    Entry e;
    const bool ok =
        v1 ? static_cast<bool>(ls >> key.machine >> key.nodes >> key.ppn >>
                               key.block >> e.algo >> e.group_size >>
                               e.predicted_seconds)
           : static_cast<bool>(ls >> key.machine >> key.nodes >> key.ppn >>
                               tag >> key.block >> e.algo >> e.group_size >>
                               e.predicted_seconds);
    if (!ok) {
      throw std::runtime_error("TuningTable::load: malformed line: '" + line +
                               "'");
    }
    const auto op = coll::op_kind_from_tag(tag);
    if (!op) {
      throw std::runtime_error("TuningTable::load: unknown op tag '" + tag +
                               "'");
    }
    key.op = *op;
    if (e.algo < 0 || e.algo >= coll::num_algos(key.op)) {
      throw std::runtime_error("TuningTable::load: algorithm index " +
                               std::to_string(e.algo) + " out of range for " +
                               std::string(coll::op_kind_name(key.op)));
    }
    table.entries_[key] = e;
  }
  return table;
}

bool TuningTable::save_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  save(os);
  return static_cast<bool>(os);
}

TuningTable TuningTable::load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("TuningTable::load_file: cannot open " + path);
  }
  return load(is);
}

}  // namespace mca2a::plan
