#pragma once
/// \file schedule.hpp
/// Dependency-aware batch execution of started collective plans.
///
/// A Schedule takes N planned launches — of any op kind the plan layer
/// knows, alltoallv included — plus happens-before edges, starts every
/// operation whose dependencies are satisfied, progresses all of them
/// concurrently (each in its own tag stream — reserved up front in add
/// order, since dependency-completion order is rank-local — so nothing
/// cross-matches), and reports per-op and critical-path virtual time. The
/// precomputed-schedule execution model of Basu et al. ("Efficient
/// All-to-All Collective Communication Schedules for Direct-Connect
/// Topologies") is the shape; the motivating workload is gradient-bucket
/// overlap in data-parallel training (see examples/ml_shuffle.cpp).
///
///   plan::Schedule s;
///   const int a = s.add(bucket0_plan, send0, recv0);
///   const int b = s.add(bucket1_plan, send1, recv1);
///   const int c = s.add(flush_plan, send2, recv2);
///   s.add_dependency(a, c);          // c starts only after a completes
///   s.add_dependency(b, c);
///   co_await s.run();
///   s.stats(a).seconds();            // per-op elapsed time on this rank
///   s.critical_path();               // longest dependency-chain duration
///
/// Like a plan, a Schedule is per rank and collective: every rank of the
/// communicator(s) involved must run an identical schedule (same ops, same
/// order, same edges). Ops without a dependency path between them start in
/// add() order but progress concurrently; on the simulator their virtual
/// times genuinely overlap, on the threads backend each start() completes
/// eagerly (a blocking MPI progressing inside MPI_Start) so the batch
/// degenerates to add-order execution with identical results.
///
/// Two ops on the same plan must be ordered by a dependency path (a plan
/// admits one in-flight operation); unordered same-plan ops surface as the
/// plan's std::logic_error through run().

#include <cstddef>
#include <memory>
#include <vector>

#include "plan/plan.hpp"
#include "runtime/async.hpp"
#include "runtime/buffer.hpp"
#include "runtime/task.hpp"

namespace mca2a::plan {

class Schedule {
 public:
  /// Per-op completion stats, in the clock of the op's communicator
  /// (virtual seconds on the simulator, wall seconds on threads).
  struct OpStats {
    double started_at = 0.0;
    double finished_at = 0.0;
    double seconds() const noexcept { return finished_at - started_at; }
  };

  Schedule() = default;
  Schedule(const Schedule&) = delete;
  Schedule& operator=(const Schedule&) = delete;
  /// Tearing down a schedule whose run was interrupted (an exception above
  /// it) aborts any driver still suspended so frames don't leak.
  ~Schedule() {
    for (auto& op : done_) {
      op->abort();
    }
  }

  /// Add a planned launch; returns its op id (dense, in add order).
  /// `compute_bytes` is local work charged to the rank immediately before
  /// the op starts (after its dependencies complete) — it models producing
  /// the data the op ships, e.g. the backward pass filling a gradient
  /// bucket, and is what overlap hides. Charged via Comm::charge_copy, so
  /// it advances virtual time on the simulator and is free on threads.
  int add(CollectivePlan& plan, rt::ConstView send, rt::MutView recv,
          std::size_t compute_bytes = 0);
  /// Allreduce-in-place launch (CollectivePlan::start_inplace).
  int add_inplace(CollectivePlan& plan, rt::MutView data,
                  std::size_t compute_bytes = 0);

  /// `after` will not start before `before` has completed. Ids must have
  /// been returned by add; cycles are detected at run().
  void add_dependency(int before, int after);

  /// Start and drain the whole batch. One-shot: a Schedule runs once.
  /// Throws std::invalid_argument on a dependency cycle (before starting
  /// anything); an op failure propagates out and poisons its dependents
  /// (they never start).
  rt::Task<void> run();

  int size() const noexcept { return static_cast<int>(ops_.size()); }

  /// Test hook: force the tag streams run() would otherwise reserve from
  /// the communicator, one per op in add order. Exists so tests can build
  /// a deliberately tag-conflicting schedule and prove the pre-flight
  /// verifier (plan/verify.hpp) rejects it; never use outside tests.
  void force_tag_streams_for_test(std::vector<int> streams) {
    forced_streams_ = std::move(streams);
  }
  /// Valid after run(). Ops whose dependencies failed report zero times.
  const OpStats& stats(int op) const { return ops_.at(op).stats; }
  /// Max finish over ops minus min start over ops (this rank's clock).
  double makespan() const;
  /// Longest dependency-chain sum of per-op durations — the lower bound on
  /// the batch's elapsed time no amount of overlap can beat.
  double critical_path() const;

 private:
  struct Op {
    CollectivePlan* plan = nullptr;
    rt::ConstView send{};
    rt::MutView recv{};
    bool inplace = false;
    std::size_t compute_bytes = 0;
    int tag_stream = 0;  ///< reserved in run(), in add order
    std::vector<int> deps;
    OpStats stats{};
  };

  void check_op_id(int op) const;
  void check_acyclic() const;
  rt::Task<void> drive(int i);

  std::vector<Op> ops_;
  std::vector<int> forced_streams_;  ///< test-only, see force_tag_streams_for_test
  /// One completion event per op; drivers of dependents wait on these.
  std::vector<std::shared_ptr<rt::AsyncOp>> done_;
  bool ran_ = false;
};

}  // namespace mca2a::plan
