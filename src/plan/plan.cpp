#include "plan/plan.hpp"

#include <stdexcept>
#include <string>

namespace mca2a::plan {

rt::Task<void> AlltoallPlan::execute(rt::ConstView send, rt::MutView recv,
                                     coll::Trace* trace) {
  const std::size_t total =
      static_cast<std::size_t>(world_->size()) * block_;
  if (send.len != total || recv.len != total) {
    throw std::invalid_argument(
        "AlltoallPlan::execute: buffers must be size() * block() = " +
        std::to_string(total) + " bytes (got send " +
        std::to_string(send.len) + ", recv " + std::to_string(recv.len) +
        ")");
  }
  // Per-call copy so traces don't leak between calls; the scratch pointer
  // is bound here rather than at plan time so it stays valid across moves.
  coll::Options opts = opts_;
  opts.trace = trace;
  opts.scratch = &arena_;
  co_await coll::run_alltoall(choice_.algo, *world_, bundle(), send, recv,
                              block_, opts);
  ++executions_;
}

AlltoallPlan make_plan(rt::Comm& world, const topo::Machine& machine,
                       const model::NetParams& net, std::size_t block,
                       const PlanOptions& opts) {
  if (world.size() != machine.total_ranks()) {
    throw std::invalid_argument(
        "make_plan: world size does not match the machine");
  }

  AlltoallPlan p;
  p.world_ = &world;
  p.machine_ = std::make_shared<const topo::Machine>(machine);
  p.block_ = block;

  if (opts.algo.has_value()) {
    p.choice_.algo = *opts.algo;
    p.choice_.group_size =
        opts.group_size == 0 ? machine.ppn() : opts.group_size;
    p.choice_.predicted_seconds = 0.0;
  } else if (opts.table != nullptr) {
    p.choice_ = opts.table->choose(machine, net, block);
  } else {
    p.choice_ = coll::select_algorithm(machine, net, block);
  }

  p.opts_.inner = opts.inner;
  p.opts_.batch_window = opts.batch_window;
  p.opts_.system_small_threshold = opts.system_small_threshold;

  if (coll::needs_locality(p.choice_.algo)) {
    p.lc_.emplace(rt::build_locality_comms(
        world, *p.machine_, p.choice_.group_size,
        coll::needs_leader_comms(p.choice_.algo)));
  }
  return p;
}

}  // namespace mca2a::plan
