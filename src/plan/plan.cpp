#include "plan/plan.hpp"

#include <stdexcept>
#include <string>

#include "autotune/autotune.hpp"
#include "autotune/selector.hpp"
#include "coll_ext/allgather.hpp"
#include "coll_ext/allreduce.hpp"
#include "coll_ext/alltoallv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "plan/verify.hpp"

namespace mca2a::plan {

namespace {

[[noreturn]] void throw_extent(const char* op, const char* buf,
                               std::size_t want, std::size_t got) {
  throw std::invalid_argument(std::string("CollectivePlan::execute(") + op +
                              "): " + buf + " buffer must be " +
                              std::to_string(want) + " bytes (got " +
                              std::to_string(got) + ")");
}

}  // namespace

std::size_t CollectivePlan::block() const noexcept {
  switch (kind()) {
    case coll::OpKind::kAlltoall:
      return desc_.alltoall().block;
    case coll::OpKind::kAllgather:
      return desc_.allgather().block;
    default:
      return 0;
  }
}

void CollectiveHandle::reset() noexcept {
  if (!st_) {
    return;
  }
  if (!st_->op->done()) {
    // Abandoning a started operation: abort the coroutine mid-exchange.
    // Peers that already matched its traffic are left hanging — this is a
    // bug in the caller, hence the assert; the abort merely avoids leaking
    // the frame.
    assert(!"CollectiveHandle dropped before the operation completed");
    --st_->plan->in_flight_;
    st_->op->abort();
  }
  st_.reset();
}

void CollectivePlan::check_idle(const char* what) const {
  if (in_flight_ > 0) {
    throw std::logic_error(
        std::string("CollectivePlan: cannot ") + what +
        " a plan with an operation in flight (wait on the handle first)");
  }
}

void CollectivePlan::move_from(CollectivePlan&& other) {
  other.check_idle("move from");
  world_ = other.world_;
  machine_ = std::move(other.machine_);
  desc_ = std::move(other.desc_);
  algo_ = other.algo_;
  group_size_ = other.group_size_;
  predicted_seconds_ = other.predicted_seconds_;
  opts_ = other.opts_;
  lc_ = std::move(other.lc_);
  send_displs_ = std::move(other.send_displs_);
  recv_displs_ = std::move(other.recv_displs_);
  send_total_ = other.send_total_;
  recv_total_ = other.recv_total_;
  arena_ = std::move(other.arena_);
  executions_ = other.executions_;
  autotune_ = other.autotune_;
  profile_key_ = std::move(other.profile_key_);
  in_flight_ = 0;
}

void CollectivePlan::validate_extents(rt::ConstView send,
                                      rt::MutView recv) const {
  const int p = world_->size();
  switch (kind()) {
    case coll::OpKind::kAlltoall: {
      const std::size_t total =
          static_cast<std::size_t>(p) * desc_.alltoall().block;
      if (send.len != total) throw_extent("alltoall", "send", total, send.len);
      if (recv.len != total) throw_extent("alltoall", "recv", total, recv.len);
      break;
    }
    case coll::OpKind::kAlltoallv:
      if (send.len != send_total_) {
        throw_extent("alltoallv", "send", send_total_, send.len);
      }
      if (recv.len != recv_total_) {
        throw_extent("alltoallv", "recv", recv_total_, recv.len);
      }
      break;
    case coll::OpKind::kAllgather: {
      const auto& d = desc_.allgather();
      const std::size_t total = static_cast<std::size_t>(p) * d.block;
      if (send.len != d.block) {
        throw_extent("allgather", "send", d.block, send.len);
      }
      if (recv.len != total) throw_extent("allgather", "recv", total, recv.len);
      break;
    }
    case coll::OpKind::kAllreduce: {
      const std::size_t bytes = desc_.allreduce().bytes();
      if (send.len != bytes) throw_extent("allreduce", "send", bytes, send.len);
      if (recv.len != bytes) throw_extent("allreduce", "recv", bytes, recv.len);
      break;
    }
    case coll::OpKind::kCount_:
      break;
  }
}

CollectiveHandle CollectivePlan::start(rt::ConstView send, rt::MutView recv,
                                       coll::Trace* trace) {
  // Every rejection comes before the stream draw: a failed start must not
  // consume a draw (the counter is part of the cross-rank contract).
  validate_extents(send, recv);
  check_can_start();
  return launch(send, recv, trace, world_->acquire_tag_stream());
}

CollectiveHandle CollectivePlan::start_inplace(rt::MutView data,
                                               coll::Trace* trace) {
  validate_inplace(data);
  check_can_start();
  return launch(rt::ConstView{}, data, trace, world_->acquire_tag_stream());
}

CollectiveHandle CollectivePlan::start_in_stream(rt::ConstView send,
                                                 rt::MutView recv,
                                                 coll::Trace* trace,
                                                 int tag_stream) {
  validate_extents(send, recv);
  return launch(send, recv, trace, tag_stream);
}

CollectiveHandle CollectivePlan::start_inplace_in_stream(rt::MutView data,
                                                         coll::Trace* trace,
                                                         int tag_stream) {
  validate_inplace(data);
  return launch(rt::ConstView{}, data, trace, tag_stream);
}

void CollectivePlan::validate_inplace(rt::MutView data) const {
  if (kind() != coll::OpKind::kAllreduce) {
    throw std::invalid_argument(
        "CollectivePlan::start_inplace: only allreduce plans reduce in "
        "place (this plan is " +
        std::string(coll::op_kind_name(kind())) + ")");
  }
  const std::size_t bytes = desc_.allreduce().bytes();
  if (data.len != bytes) throw_extent("allreduce", "data", bytes, data.len);
}

void CollectivePlan::check_can_start() const {
  if (in_flight_ > 0) {
    // MPI_Start on an active persistent request is erroneous; so is this.
    // Overlap distinct exchanges through distinct plans (or a Schedule).
    throw std::logic_error(
        "CollectivePlan::start: an operation is already in flight on this "
        "plan");
  }
}

CollectiveHandle CollectivePlan::launch(rt::ConstView send, rt::MutView recv,
                                        coll::Trace* trace, int tag_stream) {
  check_can_start();
  // Static pre-flight verification (plan/verify.hpp): on in debug builds
  // and under A2A_VERIFY_PLANS=1, free otherwise.
  if (verify_enabled()) {
    require_verified(verify(*this, tag_stream), "CollectivePlan::start");
  }
  auto st = std::make_shared<CollectiveHandle::State>();
  st->op = std::make_shared<rt::AsyncOp>();
  st->plan = this;
  st->stream = tag_stream;
  st->started_at = world_->now();
  ++in_flight_;
  rt::spawn_detached(run_started(st, send, recv, trace), st->op);
  return CollectiveHandle(std::move(st));
}

rt::Task<void> CollectivePlan::run_started(
    std::shared_ptr<CollectiveHandle::State> st, rt::ConstView send,
    rt::MutView recv, coll::Trace* trace) {
  std::exception_ptr err;
  try {
    co_await run_op(send, recv, trace, st->stream);
  } catch (...) {
    err = std::current_exception();
  }
  // Bookkeeping runs whether or not the exchange failed: the plan is idle
  // again either way. `this` is valid because move/destroy are barred
  // while in_flight_ > 0.
  st->finished_at = world_->now();
  --in_flight_;
  if (err) {
    std::rethrow_exception(err);  // lands in the handle's AsyncOp
  }
  ++executions_;
  static obs::Counter& m_execs = obs::metrics().counter("plan.executions");
  static obs::Histogram& m_micros =
      obs::metrics().histogram("plan.exec_micros");
  m_execs.add();
  m_micros.observe(
      static_cast<std::uint64_t>((st->finished_at - st->started_at) * 1e6));
  if (autotune_ != nullptr) {
    // Every successful completion — execute(), start()/wait(), Schedule
    // batches alike — is one measured sample for the online autotuner.
    autotune_->record(profile_key_, st->finished_at - st->started_at);
  }
}

rt::Task<void> CollectivePlan::execute(rt::ConstView send, rt::MutView recv,
                                       coll::Trace* trace) {
  CollectiveHandle h = start(send, recv, trace);
  co_await h.wait();
}

rt::Task<void> CollectivePlan::execute_inplace(rt::MutView data,
                                               coll::Trace* trace) {
  CollectiveHandle h = start_inplace(data, trace);
  co_await h.wait();
}

rt::Task<void> CollectivePlan::run_op(rt::ConstView send, rt::MutView recv,
                                      coll::Trace* trace, int tag_stream) {
  // Per-call copy so traces don't leak between calls; the scratch pointer
  // is bound here rather than at plan time so it stays valid across moves.
  coll::Options opts = opts_;
  opts.trace = trace;
  opts.scratch = &arena_;
  opts.tag_stream = tag_stream;

  // Op-level flight-recorder span on the operation's tag-stream lane; the
  // algorithms' phase spans nest inside it. Closed by the coroutine frame's
  // unwind, so a failed exchange still balances its begin.
  obs::Span op_span(world_->tracer(), coll::op_kind_name(kind()), "coll.op",
                    tag_stream,
                    {{"algo", algo_},
                     {"bytes", static_cast<std::int64_t>(recv.len)},
                     {"stream", tag_stream}});

  switch (kind()) {
    case coll::OpKind::kAlltoall:
      co_await coll::run_alltoall(static_cast<coll::Algo>(algo_), *world_,
                                  bundle(), send, recv,
                                  desc_.alltoall().block, opts);
      co_return;
    case coll::OpKind::kAlltoallv: {
      const auto& d = desc_.alltoallv();
      co_await coll::run_alltoallv(static_cast<coll::AlltoallvAlgo>(algo_),
                                   *world_, bundle(), send, d.send_counts,
                                   send_displs_, recv, d.recv_counts,
                                   recv_displs_, opts);
      co_return;
    }
    case coll::OpKind::kAllgather:
      switch (static_cast<coll::AllgatherAlgo>(algo_)) {
        case coll::AllgatherAlgo::kRing:
          co_await coll::allgather_ring(*world_, send, recv, tag_stream);
          co_return;
        case coll::AllgatherAlgo::kBruck:
          co_await coll::allgather_bruck(*world_, send, recv, &arena_,
                                         tag_stream);
          co_return;
        case coll::AllgatherAlgo::kHierarchical:
          co_await coll::allgather_hierarchical(*lc_, send, recv, &arena_,
                                                tag_stream);
          co_return;
        case coll::AllgatherAlgo::kLocalityAware:
          co_await coll::allgather_locality_aware(*lc_, send, recv, &arena_,
                                                  tag_stream);
          co_return;
        case coll::AllgatherAlgo::kCount_:
          break;
      }
      throw std::logic_error("CollectivePlan: bad allgather algorithm");
    case coll::OpKind::kAllreduce: {
      const auto& d = desc_.allreduce();
      // The (send, recv) form stages through recv; execute_inplace passes an
      // empty send and reduces recv directly.
      if (send.ptr != nullptr || send.len != 0) {
        world_->copy_and_charge(recv, send);
      }
      switch (static_cast<coll::AllreduceAlgo>(algo_)) {
        case coll::AllreduceAlgo::kRecursiveDoubling:
          co_await coll::allreduce_recursive_doubling(
              *world_, recv, d.combiner, &arena_, tag_stream);
          co_return;
        case coll::AllreduceAlgo::kRabenseifner:
          co_await coll::allreduce_rabenseifner(*world_, recv, d.combiner,
                                                &arena_, tag_stream);
          co_return;
        case coll::AllreduceAlgo::kNodeAware:
          co_await coll::allreduce_node_aware(*lc_, recv, d.combiner, &arena_,
                                              tag_stream);
          co_return;
        case coll::AllreduceAlgo::kCount_:
          break;
      }
      throw std::logic_error("CollectivePlan: bad allreduce algorithm");
    }
    case coll::OpKind::kCount_:
      break;
  }
  throw std::logic_error("CollectivePlan: bad op kind");
}

CollectivePlan make_plan(rt::Comm& world, const topo::Machine& machine,
                         const model::NetParams& net, coll::OpDesc desc,
                         const PlanOptions& opts) {
  if (world.size() != machine.total_ranks()) {
    throw std::invalid_argument(
        "make_plan: world size does not match the machine");
  }
  desc.validate(world);

  // Plan construction happens on the direct-call lane (stream 0): it is
  // not a collective exchange, but its cost and the algorithm decision it
  // makes are exactly what a timeline reader wants next to the op spans.
  obs::TraceBuffer* tb = world.tracer();
  obs::Span build_span(tb, "plan.build", "plan", 0,
                       {{"kind", static_cast<std::int64_t>(desc.kind())}});

  CollectivePlan p;
  p.world_ = &world;
  p.machine_ = std::make_shared<const topo::Machine>(machine);
  p.desc_ = std::move(desc);
  p.opts_.inner = opts.inner;
  p.opts_.batch_window = opts.batch_window;
  p.opts_.system_small_threshold = opts.system_small_threshold;

  // The active online autotuner: the explicit one, else the env-configured
  // process-global one, else none (the pre-autotune path, bit-for-bit).
  autotune::OnlineSelector* tuner =
      opts.autotune != nullptr ? opts.autotune : autotune::global_selector();

  const int explicit_group =
      opts.group_size == 0 ? machine.ppn() : opts.group_size;
  bool need_lc = false;
  bool need_leaders = false;
  std::size_t profile_size_key = 0;

  switch (p.desc_.kind()) {
    case coll::OpKind::kAlltoall: {
      const auto& d = p.desc_.alltoall();
      // Resolution order: descriptor algo, then the legacy PlanOptions
      // knob, then the online autotuner (adapt mode), then a memoizing
      // table, then the closed-form tuner.
      if (d.algo || opts.algo) {
        p.algo_ = static_cast<int>(d.algo ? *d.algo : *opts.algo);
        p.group_size_ = explicit_group;
      } else {
        std::optional<coll::Choice> online;
        bool explored = false;
        if (tuner != nullptr) {
          online = tuner->choose_alltoall(machine, net, d.block,
                                          world.backend_name(), &explored);
        }
        if (online && tb != nullptr) {
          tb->instant(explored ? "autotune.explore" : "autotune.exploit",
                      "autotune", 0,
                      {{"algo", static_cast<std::int64_t>(online->algo)},
                       {"group", online->group_size}});
        }
        const coll::Choice c =
            online ? *online
                   : (opts.table ? opts.table->choose(machine, net, d.block)
                                 : coll::select_algorithm(machine, net,
                                                          d.block));
        p.algo_ = static_cast<int>(c.algo);
        p.group_size_ = c.group_size;
        p.predicted_seconds_ = c.predicted_seconds;
      }
      profile_size_key = d.block;
      const auto a = static_cast<coll::Algo>(p.algo_);
      need_lc = coll::needs_locality(a);
      need_leaders = coll::needs_leader_comms(a);
      break;
    }
    case coll::OpKind::kAlltoallv: {
      const auto& d = p.desc_.alltoallv();
      // Skew signature used for selection (when algo is empty) and as the
      // profile key's size class: the descriptor's collective signature
      // when given, this rank's local estimate otherwise (see
      // AlltoallvSkew for the cross-rank agreement caveat). The O(p)
      // estimate is skipped when nothing needs it (explicit algo, no
      // active autotuner).
      const auto skew_of = [&] {
        return d.skew ? *d.skew
                      : coll::estimate_alltoallv_skew(d.send_counts,
                                                      d.recv_counts);
      };
      if (d.algo) {
        p.algo_ = static_cast<int>(*d.algo);
        p.group_size_ = explicit_group;
        if (tuner != nullptr) {
          profile_size_key = coll::alltoallv_size_class(machine, skew_of());
        }
      } else {
        const coll::AlltoallvSkew skew = skew_of();
        const coll::AlltoallvChoice c =
            opts.table ? opts.table->choose_alltoallv(machine, net, skew)
                       : coll::select_alltoallv_algorithm(machine, net, skew);
        p.algo_ = static_cast<int>(c.algo);
        p.group_size_ = c.group_size;
        p.predicted_seconds_ = c.predicted_seconds;
        profile_size_key = coll::alltoallv_size_class(machine, skew);
      }
      const auto va = static_cast<coll::AlltoallvAlgo>(p.algo_);
      need_lc = coll::needs_locality(va);
      need_leaders = coll::needs_leader_comms(va);
      p.send_displs_ = coll::displs_from_counts(d.send_counts);
      p.recv_displs_ = coll::displs_from_counts(d.recv_counts);
      p.send_total_ = d.send_total();
      p.recv_total_ = d.recv_total();
      break;
    }
    case coll::OpKind::kAllgather: {
      const auto& d = p.desc_.allgather();
      if (d.algo) {
        p.algo_ = static_cast<int>(*d.algo);
        p.group_size_ = explicit_group;
      } else {
        std::optional<coll::AllgatherChoice> online;
        bool explored = false;
        if (tuner != nullptr) {
          online = tuner->choose_allgather(machine, net, d.block,
                                           world.backend_name(), &explored);
        }
        if (online && tb != nullptr) {
          tb->instant(explored ? "autotune.explore" : "autotune.exploit",
                      "autotune", 0,
                      {{"algo", static_cast<std::int64_t>(online->algo)},
                       {"group", online->group_size}});
        }
        const coll::AllgatherChoice c =
            online ? *online
                   : (opts.table
                          ? opts.table->choose_allgather(machine, net, d.block)
                          : coll::select_allgather_algorithm(machine, net,
                                                             d.block));
        p.algo_ = static_cast<int>(c.algo);
        p.group_size_ = c.group_size;
        p.predicted_seconds_ = c.predicted_seconds;
      }
      profile_size_key = d.block;
      need_lc =
          coll::needs_locality(static_cast<coll::AllgatherAlgo>(p.algo_));
      break;
    }
    case coll::OpKind::kAllreduce: {
      const auto& d = p.desc_.allreduce();
      if (d.algo) {
        p.algo_ = static_cast<int>(*d.algo);
        p.group_size_ = explicit_group;
      } else {
        const coll::AllreduceChoice c =
            opts.table ? opts.table->choose_allreduce(machine, net, d.count,
                                                      d.combiner.elem_size)
                       : coll::select_allreduce_algorithm(
                             machine, net, d.count, d.combiner.elem_size);
        p.algo_ = static_cast<int>(c.algo);
        p.group_size_ = c.group_size;
        p.predicted_seconds_ = c.predicted_seconds;
      }
      if (static_cast<coll::AllreduceAlgo>(p.algo_) ==
              coll::AllreduceAlgo::kRabenseifner &&
          d.count < static_cast<std::size_t>(world.size()) &&
          world.size() > 1) {
        // Fail at plan time, not execute time: the algorithm needs at least
        // one element per rank to reduce-scatter.
        throw std::invalid_argument(
            "make_plan: Rabenseifner allreduce needs count >= ranks (" +
            std::to_string(d.count) + " < " + std::to_string(world.size()) +
            ")");
      }
      profile_size_key = d.bytes();
      need_lc =
          coll::needs_locality(static_cast<coll::AllreduceAlgo>(p.algo_));
      break;
    }
    case coll::OpKind::kCount_:
      throw std::logic_error("make_plan: bad op kind");
  }

  if (tuner != nullptr) {
    p.autotune_ = tuner;
    p.profile_key_ = autotune::make_profile_key(
        machine, p.desc_.kind(), profile_size_key, p.algo_, p.group_size_,
        world.backend_name());
  }
  if (need_lc) {
    p.lc_.emplace(rt::build_locality_comms(world, *p.machine_, p.group_size_,
                                           need_leaders));
  }
  if (tb != nullptr) {
    tb->instant("plan.algo", "plan", 0,
                {{"kind", static_cast<std::int64_t>(p.desc_.kind())},
                 {"algo", p.algo_},
                 {"group", p.group_size_}});
  }
  return p;
}

CollectivePlan make_plan(rt::Comm& world, const topo::Machine& machine,
                         const model::NetParams& net, std::size_t block,
                         const PlanOptions& opts) {
  coll::AlltoallDesc d;
  d.block = block;
  return make_plan(world, machine, net, coll::OpDesc(std::move(d)), opts);
}

}  // namespace mca2a::plan
