#include "plan/sharded_cache.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

namespace mca2a::plan {

struct ShardedPlanCache::Shard {
  explicit Shard(std::size_t cap) : cache(cap) {}
  mutable std::mutex mu;
  PlanCache cache;
};

namespace {

std::size_t default_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw == 0 ? 1 : hw, 16);
}

}  // namespace

ShardedPlanCache::ShardedPlanCache(std::size_t capacity, std::size_t shards) {
  const std::size_t n = shards == 0 ? default_shards() : shards;
  const std::size_t per_shard = std::max<std::size_t>(1, (capacity + n - 1) / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

ShardedPlanCache::~ShardedPlanCache() = default;

ShardedPlanCache::Shard& ShardedPlanCache::my_shard() const {
  // Same sticky round-robin pinning as ExecutionProfiler::my_shard: one
  // thread always reaches the same shard of a given cache, so its hits
  // stay hits. Stale pins for destroyed caches are harmless (the modulo
  // keeps a recycled address's inherited pin in range).
  thread_local std::vector<std::pair<const ShardedPlanCache*, std::size_t>>
      pins;
  for (const auto& [owner, idx] : pins) {
    if (owner == this) {
      return *shards_[idx % shards_.size()];
    }
  }
  static std::atomic<std::size_t> rr{0};
  const std::size_t idx = rr.fetch_add(1, std::memory_order_relaxed);
  pins.emplace_back(this, idx);
  return *shards_[idx % shards_.size()];
}

std::shared_ptr<CollectivePlan> ShardedPlanCache::get_or_create(
    rt::Comm& world, const topo::Machine& machine, const model::NetParams& net,
    const coll::OpDesc& desc, const PlanOptions& opts) {
  Shard& s = my_shard();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (auto hit = s.cache.find_hit(world, desc, opts)) {
      return hit;
    }
  }
  // Build outside the lock: make_plan may be slow (tuner consults, subcomm
  // construction) and must not serialize the shard's other threads.
  auto plan = std::make_shared<CollectivePlan>(
      make_plan(world, machine, net, desc, opts));
  std::lock_guard<std::mutex> lk(s.mu);
  return s.cache.insert_miss(world, desc, opts, std::move(plan));
}

std::shared_ptr<CollectivePlan> ShardedPlanCache::get_or_create(
    rt::Comm& world, const topo::Machine& machine, const model::NetParams& net,
    std::size_t block, const PlanOptions& opts) {
  coll::AlltoallDesc d;
  d.block = block;
  return get_or_create(world, machine, net, coll::OpDesc(std::move(d)), opts);
}

PlanCache::Stats ShardedPlanCache::stats() const {
  PlanCache::Stats total;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    const PlanCache::Stats& s = sp->cache.stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.constructions += s.constructions;
    total.evictions += s.evictions;
    for (std::size_t k = 0; k < total.per_op.size(); ++k) {
      total.per_op[k].hits += s.per_op[k].hits;
      total.per_op[k].misses += s.per_op[k].misses;
    }
  }
  return total;
}

std::size_t ShardedPlanCache::size() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    total += sp->cache.size();
  }
  return total;
}

std::size_t ShardedPlanCache::capacity() const {
  std::size_t total = 0;
  for (const auto& sp : shards_) {
    total += sp->cache.capacity();
  }
  return total;
}

std::size_t ShardedPlanCache::erase_comm(const rt::Comm& world) {
  std::size_t dropped = 0;
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    dropped += sp->cache.erase_comm(world);
  }
  return dropped;
}

void ShardedPlanCache::clear() {
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->mu);
    sp->cache.clear();
  }
}

}  // namespace mca2a::plan
