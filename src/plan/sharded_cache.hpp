#pragma once
/// \file sharded_cache.hpp
/// Thread-safe sharded front for PlanCache.
///
/// A PlanCache belongs to one rank and is not thread-safe; the threads
/// backend's rank threads sharing one cache need a concurrent front. A
/// ShardedPlanCache splits the capacity across internal shards, each a
/// mutex-guarded PlanCache. Every calling thread pins itself (round-robin,
/// sticky per cache) to one shard, so distinct threads mostly touch
/// distinct mutexes and the LRU lists never see cross-thread interleaving
/// within a shard's ordering.
///
/// Plan construction happens OUTSIDE the shard lock: get_or_create is a
/// two-phase find_hit / build / insert_miss sequence (see PlanCache), so a
/// slow make_plan on one thread never blocks another thread's hits. Two
/// threads pinned to the same shard may race-build the same key; the
/// second insert keeps the resident entry and returns its own plan
/// uncached — both plans are valid, the duplicate build is the documented
/// cost of not holding a lock across make_plan.
///
/// Caveats carried over from PlanCache: entries key on communicator
/// address (call erase_comm before destroying a communicator the cache has
/// seen), and a key pinned by one thread lands in that thread's shard — a
/// second thread requesting the same key from another shard builds and
/// caches its own copy. That is by design: plans hold rank-local state, so
/// cross-thread sharing of a CollectivePlan is never wanted on the threads
/// backend.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "plan/cache.hpp"

namespace mca2a::plan {

class ShardedPlanCache {
 public:
  /// `capacity` is the total plan budget, split evenly across `shards`
  /// (each shard holds at least one plan). `shards` = 0 picks
  /// min(hardware_concurrency, 16).
  explicit ShardedPlanCache(std::size_t capacity = 16, std::size_t shards = 0);
  ~ShardedPlanCache();
  ShardedPlanCache(const ShardedPlanCache&) = delete;
  ShardedPlanCache& operator=(const ShardedPlanCache&) = delete;

  /// Two-phase fetch on the calling thread's shard: find_hit under the
  /// shard lock, make_plan unlocked, insert_miss under the lock.
  std::shared_ptr<CollectivePlan> get_or_create(
      rt::Comm& world, const topo::Machine& machine,
      const model::NetParams& net, const coll::OpDesc& desc,
      const PlanOptions& opts = {});

  /// Alltoall shorthand: `block` bytes per rank pair.
  std::shared_ptr<CollectivePlan> get_or_create(rt::Comm& world,
                                                const topo::Machine& machine,
                                                const model::NetParams& net,
                                                std::size_t block,
                                                const PlanOptions& opts = {});

  /// Counters summed across shards. Per-shard hit/miss accounting is
  /// exact, so on a deterministic replay the sums equal what one global
  /// PlanCache would have counted.
  PlanCache::Stats stats() const;

  /// Resident plans summed across shards.
  std::size_t size() const;
  /// Total capacity (shard count × per-shard capacity; >= the constructor
  /// argument because of the at-least-one-per-shard floor).
  std::size_t capacity() const;
  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Drop `world`'s entries from every shard (any thread may have cached
  /// plans for it). Returns the number of entries dropped.
  std::size_t erase_comm(const rt::Comm& world);

  /// Drop every cached plan in every shard (counters are preserved).
  void clear();

 private:
  struct Shard;

  /// The calling thread's shard for this cache (sticky round-robin).
  Shard& my_shard() const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mca2a::plan
