#include "smp/mailbox.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "runtime/comm.hpp"

namespace mca2a::smp {

namespace {

void copy_payload(rt::MutView dst, rt::ConstView src, std::size_t bytes) {
  if (dst.len < bytes) {
    throw std::runtime_error(
        "message truncation: receive buffer smaller than incoming message");
  }
  if (dst.ptr != nullptr && src.ptr != nullptr && bytes > 0) {
    std::memcpy(dst.ptr, src.ptr, bytes);
  }
}

}  // namespace

bool Mailbox::deliver(int src, int tag, rt::ConstView payload) {
  std::lock_guard<std::mutex> lock(mu);
  // First posted receive whose (source, tag) accepts this message.
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* r) {
    const bool src_ok = r->src == rt::kAnySource || r->src == src;
    const bool tag_ok = r->tag == rt::kAnyTag || r->tag == tag;
    return src_ok && tag_ok;
  });
  if (it != posted_.end()) {
    PostedRecv* r = *it;
    posted_.erase(it);
    if (r->buf.len < payload.len) {
      // Truncation is the receiver's error (like MPI_ERR_TRUNCATE): flag it
      // so the receiver's wait throws, rather than failing in this thread.
      r->error = true;
      r->complete = true;
      cv.notify_all();
      return true;
    }
    copy_payload(r->buf, payload, payload.len);
    r->received = payload.len;
    r->complete = true;
    cv.notify_all();
    return true;
  }
  UnexpectedMsg m;
  m.src = src;
  m.tag = tag;
  m.bytes = payload.len;
  if (payload.ptr != nullptr && payload.len > 0) {
    m.payload.assign(payload.ptr, payload.ptr + payload.len);
  }
  unexpected_.push_back(std::move(m));
  return false;
}

bool Mailbox::post_or_match(PostedRecv* r) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = std::find_if(
      unexpected_.begin(), unexpected_.end(), [&](const UnexpectedMsg& m) {
        const bool src_ok = r->src == rt::kAnySource || r->src == m.src;
        const bool tag_ok = r->tag == rt::kAnyTag || r->tag == m.tag;
        return src_ok && tag_ok;
      });
  if (it != unexpected_.end()) {
    rt::ConstView payload{it->payload.empty() ? nullptr : it->payload.data(),
                          it->bytes};
    copy_payload(r->buf, payload, it->bytes);
    r->received = it->bytes;
    r->complete = true;
    unexpected_.erase(it);
    return true;
  }
  r->post_seq = next_post_seq_++;
  r->complete = false;
  posted_.push_back(r);
  return false;
}

}  // namespace mca2a::smp
