#include "smp/mailbox.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <new>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/env.hpp"

namespace mca2a::smp {

namespace {

/// Fixed prefix of every ring slot; inline payload follows immediately.
/// Only the owning lane's producer writes a slot between publish and the
/// consumer's head release, so the fields need no per-field atomicity —
/// the Lamport index pair orders the whole slot.
struct SlotHeader {
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  int tag = 0;
  bool has_data = false;
  std::byte* heap = nullptr;  // owned when non-null; else payload is inline
};

constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

/// One SPSC lane: producer = src's rank thread, consumer = the mailbox
/// owner. Field groups live on separate cache lines so the producer's
/// tail publishing never false-shares with the consumer's head cursor.
struct Mailbox::Lane {
  // Producer-owned.
  std::uint64_t next_seq = 0;
  // Lamport indices (free-running; slot = index % capacity).
  alignas(64) std::atomic<std::uint64_t> tail{0};
  alignas(64) std::atomic<std::uint64_t> head{0};
  // Consumer-owned: next sequence number to enter matching order, plus
  // the reorder stash that merges ring and overflow arrivals back into
  // strict per-pair order (keyed by seq).
  alignas(64) std::uint64_t next_take = 0;
  std::map<std::uint64_t, UnexpectedMsg> stash;
  std::unique_ptr<std::byte[]> slots;

  Lane(std::uint32_t nslots, std::size_t stride)
      : slots(new std::byte[std::size_t{nslots} * stride]) {
    for (std::uint32_t i = 0; i < nslots; ++i) {
      new (slots.get() + std::size_t{i} * stride) SlotHeader{};
    }
  }

  SlotHeader* slot(std::size_t stride, std::uint32_t nslots,
                   std::uint64_t idx) {
    return reinterpret_cast<SlotHeader*>(slots.get() + (idx % nslots) * stride);
  }
};

namespace {

std::byte* slot_payload(SlotHeader* s) {
  return reinterpret_cast<std::byte*>(s) + sizeof(SlotHeader);
}

}  // namespace

MailboxConfig MailboxConfig::from_env() {
  static constexpr std::string_view kKinds[] = {"ring", "mutex"};
  MailboxConfig cfg;
  cfg.kind = rt::env::get_choice("A2A_SMP_MAILBOX", kKinds, 0) == 0
                 ? MailboxKind::kRing
                 : MailboxKind::kMutex;
  cfg.ring_slots = static_cast<std::uint32_t>(
      rt::env::get_size("A2A_SMP_RING_SLOTS", cfg.ring_slots, 2, 1u << 20));
  cfg.ring_inline = static_cast<std::uint32_t>(
      rt::env::get_size("A2A_SMP_RING_INLINE", cfg.ring_inline, 0, 1u << 20));
  cfg.spin = static_cast<int>(
      rt::env::get_int("A2A_SMP_SPIN", cfg.spin, 0, 1'000'000));
  return cfg;
}

Mailbox::Mailbox(int comm_size, const MailboxConfig& cfg)
    : cfg_(cfg),
      comm_size_(comm_size),
      stride_(align_up(sizeof(SlotHeader) + cfg.ring_inline, 64)) {
  if (cfg_.kind == MailboxKind::kRing) {
    lanes_ = std::vector<std::atomic<Lane*>>(
        static_cast<std::size_t>(comm_size));
  }
}

Mailbox::~Mailbox() {
  for (auto& lp : lanes_) {
    Lane* lane = lp.load(std::memory_order_acquire);
    if (lane == nullptr) {
      continue;
    }
    const std::uint64_t t = lane->tail.load(std::memory_order_acquire);
    for (std::uint64_t h = lane->head.load(std::memory_order_relaxed); h != t;
         ++h) {
      delete[] lane->slot(stride_, cfg_.ring_slots, h)->heap;
    }
    delete lane;
  }
}

Mailbox::Lane& Mailbox::lane_for_send(int src) {
  std::atomic<Lane*>& entry = lanes_[static_cast<std::size_t>(src)];
  Lane* lane = entry.load(std::memory_order_acquire);
  if (lane == nullptr) {
    // Exactly one producer per lane, so the check-then-create needs no
    // CAS; the release store pairs with the consumer's acquire load.
    lane = new Lane(cfg_.ring_slots, stride_);
    entry.store(lane, std::memory_order_release);
  }
  return *lane;
}

void Mailbox::send(int src, int tag, rt::ConstView payload) {
  if (cfg_.kind == MailboxKind::kMutex) {
    std::lock_guard<std::mutex> lock(mu_);
    if (accept(src, tag, payload, nullptr)) {
      mutex_epoch_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_all();
    }
    return;
  }

  Lane& lane = lane_for_send(src);
  const std::uint64_t seq = lane.next_seq++;
  const std::uint64_t t = lane.tail.load(std::memory_order_relaxed);
  if (t - lane.head.load(std::memory_order_acquire) < cfg_.ring_slots) {
    SlotHeader* s = lane.slot(stride_, cfg_.ring_slots, t);
    s->seq = seq;
    s->tag = tag;
    s->bytes = payload.len;
    s->has_data = payload.ptr != nullptr && payload.len > 0;
    s->heap = nullptr;
    if (s->has_data) {
      if (payload.len <= cfg_.ring_inline) {
        std::memcpy(slot_payload(s), payload.ptr, payload.len);
      } else {
        s->heap = new std::byte[payload.len];
        std::memcpy(s->heap, payload.ptr, payload.len);
      }
    }
    lane.tail.store(t + 1, std::memory_order_release);
    static obs::Counter& g_ring =
        obs::metrics().counter("smp.mailbox.ring_sends");
    g_ring.add();
  } else {
    // Lane full: eager semantics forbid blocking (both peers of an
    // exchange may send before either receives), so spill to the
    // unbounded overflow list. The seq stamp lets the consumer restore
    // per-pair order.
    OverflowMsg m;
    m.src = src;
    m.tag = tag;
    m.seq = seq;
    m.bytes = payload.len;
    m.has_data = payload.ptr != nullptr && payload.len > 0;
    if (m.has_data) {
      m.data.reset(new std::byte[payload.len]);
      std::memcpy(m.data.get(), payload.ptr, payload.len);
    }
    {
      std::lock_guard<std::mutex> lk(overflow_mu_);
      overflow_.push_back(std::move(m));
      overflow_count_.fetch_add(1, std::memory_order_relaxed);
    }
    static obs::Counter& g_over =
        obs::metrics().counter("smp.mailbox.overflow_sends");
    g_over.add();
  }
  ring_doorbell();
}

void Mailbox::ring_doorbell() {
  // Dekker pairing with idle(): after this fence and the sleeper's, either
  // we observe sleepers_ != 0 or the sleeper's recheck observes our
  // published arrival.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) == 0) {
    return;
  }
  static obs::Counter& g_wakeups =
      obs::metrics().counter("smp.mailbox.wakeups");
  g_wakeups.add();
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    ++wake_epoch_;
  }
  wake_cv_.notify_all();
}

bool Mailbox::match_posted(int src, int tag, rt::ConstView payload) {
  auto it = std::find_if(posted_.begin(), posted_.end(), [&](PostedRecv* r) {
    const bool src_ok = r->src == rt::kAnySource || r->src == src;
    const bool tag_ok = r->tag == rt::kAnyTag || r->tag == tag;
    return src_ok && tag_ok;
  });
  if (it == posted_.end()) {
    return false;
  }
  PostedRecv* r = *it;
  posted_.erase(it);
  if (r->buf.len < payload.len) {
    // Truncation is the receiver's error (like MPI_ERR_TRUNCATE): flag it
    // so the receiver's wait throws, rather than failing in this thread.
    r->error = true;
    r->complete.store(true, std::memory_order_release);
    return true;
  }
  if (r->buf.ptr != nullptr && payload.ptr != nullptr && payload.len > 0) {
    std::memcpy(r->buf.ptr, payload.ptr, payload.len);
  }
  r->received = payload.len;
  r->complete.store(true, std::memory_order_release);
  return true;
}

bool Mailbox::accept(int src, int tag, rt::ConstView payload,
                     std::unique_ptr<std::byte[]> owned) {
  // Receive-side stitching: the arrival enters matching order here, on the
  // owner thread — the semantic receive point, mirroring the sender's
  // per-(dst, tag) counter (zero-byte and self messages skip both ends).
  obs::Span rx_span;
  if (trace_.tracer != nullptr && payload.len > 0 && src != trace_.owner) {
    const std::uint64_t seq = flow_rx_seq_[{src, tag}]++;
    const std::uint64_t id = obs::flow_id(
        trace_.comm_key, (*trace_.world_ranks)[static_cast<std::size_t>(src)],
        (*trace_.world_ranks)[static_cast<std::size_t>(trace_.owner)], tag,
        seq);
    rx_span = obs::Span(trace_.tracer, "smp.recv", "smp", 0,
                        {{"bytes", static_cast<std::int64_t>(payload.len)},
                         {"src", src},
                         {"tag", tag}});
    trace_.tracer->flow_end(id, 0);
  }
  if (match_posted(src, tag, payload)) {
    return true;
  }
  UnexpectedMsg m;
  m.src = src;
  m.tag = tag;
  m.bytes = payload.len;
  m.has_data = payload.ptr != nullptr && payload.len > 0;
  if (m.has_data) {
    if (owned != nullptr) {
      m.data = std::move(owned);
    } else {
      m.data.reset(new std::byte[payload.len]);
      std::memcpy(m.data.get(), payload.ptr, payload.len);
    }
  }
  arrived_.push_back(std::move(m));
  return false;
}

void Mailbox::drain_overflow() {
  std::deque<OverflowMsg> taken;
  {
    std::lock_guard<std::mutex> lk(overflow_mu_);
    taken.swap(overflow_);
    overflow_count_.fetch_sub(taken.size(), std::memory_order_relaxed);
  }
  for (OverflowMsg& m : taken) {
    // The producer created its lane before it could ever overflow, and
    // the overflow mutex carries the happens-before to us.
    Lane* lane = lanes_[static_cast<std::size_t>(m.src)].load(
        std::memory_order_acquire);
    UnexpectedMsg u;
    u.src = m.src;
    u.tag = m.tag;
    u.bytes = m.bytes;
    u.has_data = m.has_data;
    u.data = std::move(m.data);
    lane->stash.emplace(m.seq, std::move(u));
  }
}

void Mailbox::pump_lane(int src, Lane& lane) {
  for (;;) {
    // In-order stash entries (earlier overflow or set-aside slots) first.
    auto it = lane.stash.begin();
    if (it != lane.stash.end() && it->first == lane.next_take) {
      UnexpectedMsg u = std::move(it->second);
      lane.stash.erase(it);
      ++lane.next_take;
      // Evaluate the view before the unique_ptr argument is constructed:
      // argument evaluation order is unspecified and moving `u.data` first
      // would hand accept() a null payload.
      const rt::ConstView payload = u.view();
      accept(src, u.tag, payload, std::move(u.data));
      continue;
    }
    const std::uint64_t h = lane.head.load(std::memory_order_relaxed);
    if (lane.tail.load(std::memory_order_acquire) == h) {
      return;
    }
    SlotHeader* s = lane.slot(stride_, cfg_.ring_slots, h);
    if (s->seq == lane.next_take) {
      ++lane.next_take;
      const rt::ConstView payload{
          s->has_data ? (s->heap != nullptr ? s->heap : slot_payload(s))
                      : nullptr,
          s->bytes};
      std::unique_ptr<std::byte[]> owned(s->heap);
      s->heap = nullptr;
      // Matching copies straight out of the slot; only then is the slot
      // released back to the producer.
      accept(src, s->tag, payload, std::move(owned));
      lane.head.store(h + 1, std::memory_order_release);
    } else {
      // A predecessor is still in the overflow list: set this slot aside
      // (reorder stash) so the producer regains ring space either way.
      UnexpectedMsg u;
      u.src = src;
      u.tag = s->tag;
      u.bytes = s->bytes;
      u.has_data = s->has_data;
      if (s->heap != nullptr) {
        u.data.reset(s->heap);
        s->heap = nullptr;
      } else if (u.has_data) {
        u.data.reset(new std::byte[s->bytes]);
        std::memcpy(u.data.get(), slot_payload(s), s->bytes);
      }
      lane.stash.emplace(s->seq, std::move(u));
      lane.head.store(h + 1, std::memory_order_release);
    }
  }
}

void Mailbox::drain() {
  if (cfg_.kind == MailboxKind::kMutex) {
    return;
  }
  if (overflow_count_.load(std::memory_order_acquire) != 0) {
    drain_overflow();
  }
  // Lane order is fixed (source-major) and per-lane order is strict seq
  // order, so the arrival order entering matching is deterministic
  // whenever the sends are quiesced (e.g. behind a barrier) — the
  // property the ordering oracle test pins.
  for (int src = 0; src < comm_size_; ++src) {
    Lane* lane =
        lanes_[static_cast<std::size_t>(src)].load(std::memory_order_acquire);
    if (lane != nullptr) {
      pump_lane(src, *lane);
    }
  }
}

bool Mailbox::post_or_match(PostedRecv* r) {
  if (cfg_.kind == MailboxKind::kRing) {
    drain();
  }
  // Ring mode: matching state is owner-thread-only; no lock needed.
  std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
  if (cfg_.kind == MailboxKind::kMutex) {
    lock.lock();
  }
  auto it = std::find_if(
      arrived_.begin(), arrived_.end(), [&](const UnexpectedMsg& m) {
        const bool src_ok = r->src == rt::kAnySource || r->src == m.src;
        const bool tag_ok = r->tag == rt::kAnyTag || r->tag == m.tag;
        return src_ok && tag_ok;
      });
  if (it != arrived_.end()) {
    if (r->buf.len < it->bytes) {
      throw std::runtime_error(
          "message truncation: receive buffer smaller than incoming message");
    }
    const rt::ConstView payload = it->view();
    if (r->buf.ptr != nullptr && payload.ptr != nullptr && payload.len > 0) {
      std::memcpy(r->buf.ptr, payload.ptr, payload.len);
    }
    r->received = it->bytes;
    r->complete.store(true, std::memory_order_release);
    arrived_.erase(it);
    return true;
  }
  r->post_seq = next_post_seq_++;
  r->error = false;
  r->received = 0;
  r->complete.store(false, std::memory_order_relaxed);
  posted_.push_back(r);
  return false;
}

std::uint64_t Mailbox::epoch() const {
  return cfg_.kind == MailboxKind::kMutex
             ? mutex_epoch_.load(std::memory_order_acquire)
             : 0;
}

bool Mailbox::arrivals_visible() const {
  if (overflow_count_.load(std::memory_order_acquire) != 0) {
    return true;
  }
  for (const auto& lp : lanes_) {
    const Lane* lane = lp.load(std::memory_order_acquire);
    if (lane != nullptr && lane->tail.load(std::memory_order_acquire) !=
                               lane->head.load(std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void Mailbox::idle(std::uint64_t observed_epoch, int& spins) {
  if (cfg_.kind == MailboxKind::kMutex) {
    // The epoch was captured before the caller's completion check, so a
    // delivery in between leaves the predicate already true: no lost
    // wakeup, no sleep-past-completion.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return mutex_epoch_.load(std::memory_order_relaxed) != observed_epoch;
    });
    return;
  }
  ++spins;
  if (spins <= cfg_.spin) {
    // Mostly pause (SMT-friendly), periodically yield (oversubscription-
    // friendly: a 2x-threads-per-core run must keep making progress).
    if ((spins & 7) == 0) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
    return;
  }
  spins = 0;
  static obs::Counter& g_sleeps = obs::metrics().counter("smp.mailbox.sleeps");
  g_sleeps.add();
  std::unique_lock<std::mutex> lk(wake_mu_);
  sleepers_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!arrivals_visible()) {
    const std::uint64_t e = wake_epoch_;
    wake_cv_.wait(lk, [&] { return wake_epoch_ != e; });
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace mca2a::smp
