#pragma once
/// \file mailbox.hpp
/// Matching queues for the shared-memory backend.
///
/// Every (communicator, rank) pair owns one Mailbox guarded by a mutex:
/// senders deliver into it (matching a posted receive and copying payload
/// directly, or parking the message in the unexpected queue), receivers
/// post into it or harvest unexpected messages. MPI matching rules apply:
/// (source, tag) with wildcards, FIFO among eligible candidates, and
/// non-overtaking delivery between a fixed pair of ranks.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/buffer.hpp"

namespace mca2a::smp {

/// A receive posted by the owning rank, waiting for a matching message.
struct PostedRecv {
  rt::MutView buf{};
  int src = 0;  // rank in comm or rt::kAnySource
  int tag = 0;
  std::uint64_t post_seq = 0;
  bool complete = false;     // written under the mailbox mutex
  bool error = false;        // truncation, reported at the receiver's wait
  std::size_t received = 0;  // actual message size
  std::uint32_t serial = 1;
  bool in_use = false;
};

/// A message that arrived before its receive was posted (payload copied).
struct UnexpectedMsg {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  std::size_t bytes = 0;  // logical size (payload may be empty if virtual)
};

/// Matching state for one rank within one communicator.
class Mailbox {
 public:
  std::mutex mu;
  std::condition_variable cv;

  /// Deliver a message from `src`: match a posted receive (copy payload,
  /// mark complete, notify) or park it unexpected. Returns true if matched.
  /// Caller must NOT hold the mutex. Throws on truncation.
  bool deliver(int src, int tag, rt::ConstView payload);

  /// Try to match an unexpected message for (src, tag); if found, copy into
  /// `buf` and return true. Otherwise enqueue `r` as posted. Caller must
  /// not hold the mutex.
  bool post_or_match(PostedRecv* r);

 private:
  std::deque<PostedRecv*> posted_;
  std::deque<UnexpectedMsg> unexpected_;
  std::uint64_t next_post_seq_ = 0;
};

}  // namespace mca2a::smp
