#pragma once
/// \file mailbox.hpp
/// Matching queues for the shared-memory backend.
///
/// Every (communicator, rank) pair owns one Mailbox. Two interchangeable
/// transports sit behind the same matching semantics, selected per cluster
/// by `A2A_SMP_MAILBOX` (see MailboxConfig):
///
///  * `ring` (default) — one bounded lock-free SPSC ring per source rank.
///    A lane belongs to exactly one (src, dst, comm) triple, so the
///    single-producer/single-consumer invariant holds by construction:
///    the producer is src's rank thread, the consumer is the owning
///    rank's thread. Producers publish with a release store of the tail
///    index, consumers acquire it; head mirrors the protocol in the other
///    direction (Lamport ring). When a lane is full the sender falls back
///    to a mutex-guarded unbounded overflow list — sends stay eager and
///    never block, which the backend's buffered-send semantics require
///    (both peers of a pairwise exchange may send before either
///    receives). Every message carries a per-lane sequence number; the
///    consumer merges ring and overflow arrivals back into strict
///    per-pair order before matching, so FIFO and non-overtaking survive
///    the two-path transport.
///
///  * `mutex` — the original mutex-per-mailbox design, kept as the
///    baseline the thread-scaling bench and the ordering property tests
///    compare against.
///
/// Matching state (posted receives, unmatched arrivals) is owned by the
/// receiving rank's thread and, in ring mode, is touched by no one else:
/// matching itself needs no lock. MPI matching rules apply in both modes:
/// (source, tag) with wildcards, FIFO among eligible candidates, and
/// non-overtaking delivery between a fixed pair of ranks.
///
/// Sleep/wake contract (ring mode): a receiver that has spun without
/// progress parks on the mailbox doorbell. The sender's publish and the
/// receiver's registration are separated by seq_cst fences in the Dekker
/// pattern — after both fences, either the sender observes `sleepers_ != 0`
/// (and rings the doorbell under the wake mutex) or the receiver observes
/// the published arrival during its pre-sleep recheck. Payload
/// happens-before never relies on those fences; it rides entirely on the
/// ring's release/release index pair (or the overflow mutex), which is
/// what keeps the design TSan-provable.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/buffer.hpp"

namespace mca2a::obs {
class TraceBuffer;
}  // namespace mca2a::obs

namespace mca2a::smp {

/// Receiver-side distributed-tracing hook for one mailbox (ring mode
/// only: accept() then runs exclusively on the owning rank's thread, the
/// single writer its TraceBuffer requires — mutex mode delivers on the
/// *sender's* thread and must stay untraced). Installed under the
/// cluster registry lock before the communicator id is published.
struct MailboxTraceContext {
  obs::TraceBuffer* tracer = nullptr;  ///< the owning rank's stream
  std::uint64_t comm_key = 0;          ///< session-salted communicator id
  const std::vector<int>* world_ranks = nullptr;  ///< comm rank -> world
  int owner = 0;                       ///< owning rank, in-comm
};

/// Which transport a cluster's mailboxes use.
enum class MailboxKind : int { kRing = 0, kMutex };

/// Per-cluster mailbox tuning, normally read once from the environment at
/// SmpCluster construction; tests and benches pass explicit configs so a
/// mutex-vs-ring comparison never mutates the environment of live threads.
struct MailboxConfig {
  MailboxKind kind = MailboxKind::kRing;
  /// SPSC ring capacity in messages, per (src, dst, comm) lane.
  std::uint32_t ring_slots = 64;
  /// Payload bytes stored inline in a ring slot; larger messages travel
  /// as a heap block whose ownership passes through the ring.
  std::uint32_t ring_inline = 256;
  /// Receiver poll iterations without progress before it parks on the
  /// doorbell (0 = park immediately; oversubscribed runs want it small).
  int spin = 64;

  /// Read A2A_SMP_MAILBOX / A2A_SMP_RING_SLOTS / A2A_SMP_RING_INLINE /
  /// A2A_SMP_SPIN via rt::env (fail-fast validation).
  static MailboxConfig from_env();
};

/// A receive posted by the owning rank, waiting for a matching message.
/// `complete` is the only cross-thread field in ring mode (and pairs
/// release/acquire with `error`/`received`, written before the release
/// store); in mutex mode the delivering sender writes all three.
struct PostedRecv {
  rt::MutView buf{};
  int src = 0;  // rank in comm or rt::kAnySource
  int tag = 0;
  std::uint64_t post_seq = 0;
  std::atomic<bool> complete{false};
  bool error = false;        // truncation, reported at the receiver's wait
  std::size_t received = 0;  // actual message size
  std::uint32_t serial = 1;
  bool in_use = false;
};

/// A message parked before its receive was posted (payload owned).
struct UnexpectedMsg {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;    // logical size
  bool has_data = false;    // false: virtual payload (or zero bytes)
  std::unique_ptr<std::byte[]> data;  // bytes long when has_data

  rt::ConstView view() const noexcept {
    return rt::ConstView{has_data ? data.get() : nullptr, bytes};
  }
};

/// Matching state for one rank within one communicator.
class Mailbox {
 public:
  Mailbox(int comm_size, const MailboxConfig& cfg);
  ~Mailbox();
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Producer side, called from `src`'s rank thread: enqueue a message.
  /// Never blocks (eager buffered semantics). Ring mode publishes into
  /// the lane ring or, when full, the overflow list; mutex mode matches
  /// a posted receive directly (copying payload) or parks it unexpected.
  void send(int src, int tag, rt::ConstView payload);

  /// Owner side: pull every visible arrival into matching state,
  /// completing posted receives in order. No-op in mutex mode (senders
  /// match eagerly there).
  void drain();

  /// Owner side: drain, then match `r` against an already-arrived
  /// message (copy payload, mark complete, return true) or append it to
  /// the posted list (return false). Throws on truncation of an
  /// already-arrived message — the caller is the receiver.
  bool post_or_match(PostedRecv* r);

  /// Owner side: wake-epoch observation for idle(); capture it *before*
  /// checking completion flags so a completion delivered in between
  /// cannot be slept through. Ring mode has no epoch (returns 0 — its
  /// idle() rechecks arrivals instead).
  std::uint64_t epoch() const;

  /// Owner side: one pause of the wait loop. Spins/yields for the
  /// configured budget, then parks on the doorbell until a sender
  /// publishes (ring) or the epoch moves past `observed_epoch` (mutex).
  /// `spins` is the caller's running idle-poll counter.
  void idle(std::uint64_t observed_epoch, int& spins);

  /// Owner side, before any traffic: enable receive-side flow stitching
  /// (smp.recv spans + Perfetto arrow heads) for this mailbox.
  void set_trace(const MailboxTraceContext& ctx) { trace_ = ctx; }

 private:
  struct Lane;

  Lane& lane_for_send(int src);
  void pump_lane(int src, Lane& lane);
  void drain_overflow();
  /// True when a lane ring or the overflow list holds an undrained
  /// message (the pre-sleep recheck).
  bool arrivals_visible() const;
  void ring_doorbell();
  /// Enter one arrival into matching order: complete the first eligible
  /// posted receive (true), or park it (false). `owned` transfers payload
  /// ownership when the caller already holds a heap block.
  bool accept(int src, int tag, rt::ConstView payload,
              std::unique_ptr<std::byte[]> owned);
  bool match_posted(int src, int tag, rt::ConstView payload);

  struct OverflowMsg {
    int src = 0;
    int tag = 0;
    std::uint64_t seq = 0;
    std::size_t bytes = 0;
    bool has_data = false;
    std::unique_ptr<std::byte[]> data;
  };

  MailboxConfig cfg_;
  int comm_size_ = 0;
  std::size_t stride_ = 0;  // ring slot stride (header + inline, padded)

  // --- ring transport ---------------------------------------------------
  /// One lazily-created lane per source rank; the unique producer
  /// creates it (plain check, release store), the consumer acquires.
  std::vector<std::atomic<Lane*>> lanes_;
  /// Full-lane fallback; count mutates only under the mutex so the
  /// lock-free reads in drain()/arrivals_visible() can trust a zero.
  std::mutex overflow_mu_;
  std::deque<OverflowMsg> overflow_;
  std::atomic<std::size_t> overflow_count_{0};
  /// Doorbell (see file comment for the fence pairing).
  std::atomic<std::uint32_t> sleepers_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::uint64_t wake_epoch_ = 0;  // guarded by wake_mu_

  // --- mutex transport --------------------------------------------------
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> mutex_epoch_{0};  // bumped under mu_

  // --- matching state ---------------------------------------------------
  /// Ring mode: owner-thread-only, no lock. Mutex mode: guarded by mu_.
  std::deque<PostedRecv*> posted_;
  std::deque<UnexpectedMsg> arrived_;
  std::uint64_t next_post_seq_ = 0;

  // --- distributed tracing (ring mode, owner thread only) ---------------
  MailboxTraceContext trace_{};
  /// Per-(src, tag) arrival counters, kept in lockstep with the sender's
  /// per-(dst, tag) counters by the lanes' per-pair FIFO.
  std::map<std::pair<int, int>, std::uint64_t> flow_rx_seq_;
};

}  // namespace mca2a::smp
