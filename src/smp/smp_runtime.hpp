#pragma once
/// \file smp_runtime.hpp
/// Thread-per-rank launcher for the shared-memory backend.

#include <functional>
#include <memory>

#include "runtime/comm.hpp"
#include "runtime/task.hpp"
#include "smp/smp_comm.hpp"

namespace mca2a::smp {

/// Owns an SmpCluster and runs rank programs on real threads.
class SmpRuntime {
 public:
  explicit SmpRuntime(int world_size);
  /// Explicit mailbox tuning (ring-vs-mutex comparisons; tiny rings for
  /// backpressure tests) instead of the environment's.
  SmpRuntime(int world_size, const MailboxConfig& cfg);

  int world_size() const noexcept { return cluster_.world_size(); }
  rt::Comm& world(int rank) { return cluster_.world(rank); }

  /// Launch `rank_main(world(r))` on one thread per rank and join them all.
  /// Rethrows the first rank exception (by rank order) after joining.
  void run(const std::function<rt::Task<void>(rt::Comm&)>& rank_main);

 private:
  SmpCluster cluster_;
};

/// Convenience: run `rank_main` on `world_size` freshly-created ranks.
void run_threads(int world_size,
                 const std::function<rt::Task<void>(rt::Comm&)>& rank_main);
/// Same, with explicit mailbox tuning.
void run_threads(int world_size, const MailboxConfig& cfg,
                 const std::function<rt::Task<void>(rt::Comm&)>& rank_main);

}  // namespace mca2a::smp
