#pragma once
/// \file smp_comm.hpp
/// Shared-memory (threads-as-ranks) backend.
///
/// Each rank is an OS thread; messages move through per-(src,dst,comm)
/// lock-free SPSC ring mailboxes (or the mutex-guarded baseline — see
/// mailbox.hpp and MailboxConfig) with eager (buffered) semantics: sends
/// never block, receives block until a matching message is delivered. This
/// is the backend a downstream user runs on a single many-core box — the
/// actual deployment target of the paper's intra-node optimizations — and
/// the backend all correctness tests validate byte-for-byte.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "smp/mailbox.hpp"

namespace mca2a::smp {

class SmpComm;

/// Shared state: communicator registry and mailboxes.
class SmpCluster {
 public:
  /// Mailbox tuning comes from the environment (MailboxConfig::from_env).
  explicit SmpCluster(int world_size);
  /// Explicit mailbox tuning — benches and tests compare ring vs mutex
  /// transports without mutating the environment of live rank threads.
  SmpCluster(int world_size, const MailboxConfig& cfg);
  ~SmpCluster();
  SmpCluster(const SmpCluster&) = delete;
  SmpCluster& operator=(const SmpCluster&) = delete;

  int world_size() const noexcept { return world_size_; }

  /// World communicator endpoint for `rank` (valid for cluster lifetime).
  rt::Comm& world(int rank);

  /// Flight-recorder stream of `world_rank` (wall-clock domain), nullptr
  /// when tracing is off.
  obs::TraceBuffer* tracer_for(int world_rank) const noexcept {
    return tracers_.empty() ? nullptr
                            : tracers_[static_cast<std::size_t>(world_rank)];
  }

 private:
  friend class SmpComm;

  struct CommEntry {
    std::vector<int> world_ranks;
    std::deque<Mailbox> mailboxes;  // stable addresses, one per member
  };

  /// Enable flow stitching on `entry`'s mailboxes (ring mode with tracing
  /// on; no-op otherwise). Must run before the communicator id is
  /// published — callers hold registry_mu_ or are the constructor.
  void install_trace(CommEntry& entry, std::uint32_t comm_id);

  /// Find or create the caller's next communicator over `world_ranks`
  /// (thread-safe). Every creation by a rank counts as a fresh context:
  /// the caller's k-th creation with a given member list joins the k-th
  /// global communicator for that list, mirroring MPI's ordered,
  /// handshake-free communicator construction.
  std::uint32_t intern_comm(std::vector<int> world_ranks,
                            int caller_world_rank);

  int world_size_;
  MailboxConfig mailbox_cfg_;
  std::mutex registry_mu_;
  std::map<std::pair<std::vector<int>, std::uint32_t>, std::uint32_t>
      registry_;
  std::deque<CommEntry> comms_;  // stable addresses
  /// Per-rank creation counters; each entry is touched only by its owning
  /// rank's thread.
  std::vector<std::map<std::vector<int>, std::uint32_t>> subcomm_uses_;
  std::vector<std::unique_ptr<SmpComm>> world_comms_;
  std::chrono::steady_clock::time_point epoch_;

  /// Tracing session over the active recorder (see sim::Cluster for the
  /// lifecycle contract); empty tracers_ == disabled.
  obs::TraceRecorder* trace_rec_ = nullptr;
  int trace_session_ = -1;
  std::vector<obs::TraceBuffer*> tracers_;
};

/// rt::Comm implementation over SmpCluster mailboxes.
class SmpComm final : public rt::Comm {
 public:
  SmpComm(SmpCluster& cluster, std::uint32_t comm_id, int rank, int size);

  rt::Request isend(rt::ConstView buf, int dst, int tag) override;
  rt::Request irecv(rt::MutView buf, int src, int tag) override;
  bool wait_try(std::span<const rt::Request> reqs) override;
  void wait_suspend(std::span<const rt::Request> reqs,
                    std::coroutine_handle<> h) override;
  double now() const override;
  std::string_view backend_name() const noexcept override { return "smp"; }
  rt::Buffer alloc_buffer(std::size_t bytes) const override {
    return rt::Buffer::real(bytes);
  }
  rt::Buffer alloc_scratch_buffer(std::size_t bytes) const override {
    // Scratch contents are unspecified by contract; skipping the memset
    // leaves the pages untouched so the rank thread's own first write
    // faults them in on its NUMA node (see ScratchArena's first-touch).
    return rt::Buffer::real_uninit(bytes);
  }
  void charge_copy(std::size_t) override {}  // real memcpy already happened
  std::unique_ptr<rt::Comm> create_subcomm(
      std::span<const int> members) override;
  obs::TraceBuffer* tracer() const noexcept override {
    return cluster_->tracer_for(world_rank());
  }

  /// World rank of this endpoint.
  int world_rank() const noexcept {
    return entry_->world_ranks[static_cast<std::size_t>(rank_)];
  }

 private:
  Mailbox& mailbox(int rank_in_comm) const;
  PostedRecv& op_checked(const rt::Request& r);

  SmpCluster* cluster_;
  /// Cached registry entry, resolved under registry_mu_ at construction.
  /// CommEntry addresses are stable (deque), but indexing comms_ itself is
  /// NOT safe concurrently with another rank's intern_comm appending to
  /// it — the deque's internal block map may be reallocating. Every
  /// message-path access goes through this pointer instead.
  SmpCluster::CommEntry* entry_;
  // Receive-op pool (sends complete eagerly and need no slot). deque keeps
  // addresses stable while mailboxes hold PostedRecv pointers.
  std::deque<PostedRecv> ops_;
  std::vector<std::uint32_t> free_ops_;

  // Sender-side flow stitching (ring mode with tracing on): the same
  // session-salted comm key the receiving mailbox derives arrow ids from,
  // plus per-(dst, tag) send counters. 0 == stitching off.
  std::uint64_t flow_comm_key_ = 0;
  std::map<std::pair<int, int>, std::uint64_t> flow_tx_seq_;
};

}  // namespace mca2a::smp
