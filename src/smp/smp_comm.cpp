#include "smp/smp_comm.hpp"

#include <stdexcept>

namespace mca2a::smp {

SmpCluster::SmpCluster(int world_size)
    : SmpCluster(world_size, MailboxConfig::from_env()) {}

SmpCluster::SmpCluster(int world_size, const MailboxConfig& cfg)
    : world_size_(world_size),
      mailbox_cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()) {
  if (world_size < 1) {
    throw std::invalid_argument("SmpCluster: world size must be >= 1");
  }
  subcomm_uses_.resize(world_size);
  CommEntry& world_entry = comms_.emplace_back();
  world_entry.world_ranks.resize(world_size);
  for (int r = 0; r < world_size; ++r) {
    world_entry.world_ranks[r] = r;
  }
  for (int r = 0; r < world_size; ++r) {
    world_entry.mailboxes.emplace_back(world_size, mailbox_cfg_);
  }

  // Flight recorder: one stream per rank thread, stamped with wall-clock
  // seconds since this cluster's epoch (a separate clock domain from the
  // simulator's virtual time; the two never share a file). Opened before
  // the world endpoints exist so their flow keys see the session id.
  if (obs::TraceRecorder* rec = obs::active_recorder()) {
    trace_rec_ = rec;
    trace_session_ = rec->begin_session("smp");
    tracers_.resize(static_cast<std::size_t>(world_size), nullptr);
    for (int r = 0; r < world_size; ++r) {
      obs::TraceBuffer* tb = rec->open_stream(trace_session_, r);
      tb->set_clock([this] {
        const auto d = std::chrono::steady_clock::now() - epoch_;
        return std::chrono::duration<double>(d).count();
      });
      tb->set_world_rank(r);
      tracers_[static_cast<std::size_t>(r)] = tb;
    }
  }
  install_trace(world_entry, 0u);

  world_comms_.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    world_comms_.push_back(std::make_unique<SmpComm>(*this, 0u, r, world_size));
  }
}

void SmpCluster::install_trace(CommEntry& entry, std::uint32_t comm_id) {
  if (tracers_.empty() || mailbox_cfg_.kind != MailboxKind::kRing) {
    return;  // mutex mode delivers on sender threads: no stitching
  }
  // Session-salted key: sequential clusters in one process must not reuse
  // flow ids (+1 keeps the key nonzero even for session 0, comm 0).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(trace_session_ + 1) << 32) | comm_id;
  for (std::size_t r = 0; r < entry.world_ranks.size(); ++r) {
    MailboxTraceContext ctx;
    ctx.tracer =
        tracers_[static_cast<std::size_t>(entry.world_ranks[r])];
    ctx.comm_key = key;
    ctx.world_ranks = &entry.world_ranks;
    ctx.owner = static_cast<int>(r);
    entry.mailboxes[r].set_trace(ctx);
  }
}

SmpCluster::~SmpCluster() {
  if (trace_rec_ != nullptr) {
    trace_rec_->end_session(trace_session_);
  }
}

rt::Comm& SmpCluster::world(int rank) { return *world_comms_.at(rank); }

std::uint32_t SmpCluster::intern_comm(std::vector<int> world_ranks,
                                      int caller_world_rank) {
  // Occurrence counter is private to the calling rank's thread.
  const std::uint32_t occurrence =
      subcomm_uses_[caller_world_rank][world_ranks]++;
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto key = std::make_pair(std::move(world_ranks), occurrence);
  auto it = registry_.find(key);
  if (it != registry_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(comms_.size());
  CommEntry& entry = comms_.emplace_back();
  entry.world_ranks = key.first;
  const int comm_size = static_cast<int>(key.first.size());
  for (int r = 0; r < comm_size; ++r) {
    entry.mailboxes.emplace_back(comm_size, mailbox_cfg_);
  }
  // Stitching contexts land before the id is published (we still hold
  // registry_mu_): no rank can send through an uninstrumented mailbox.
  install_trace(entry, id);
  registry_.emplace(std::move(key), id);
  return id;
}

SmpComm::SmpComm(SmpCluster& cluster, std::uint32_t comm_id, int rank,
                 int size)
    : rt::Comm(rank, size), cluster_(&cluster) {
  // Resolve the registry entry once, under the same mutex intern_comm
  // appends under; afterwards the message path never touches comms_.
  std::lock_guard<std::mutex> lock(cluster.registry_mu_);
  entry_ = &cluster.comms_[comm_id];
  if (!cluster.tracers_.empty() &&
      cluster.mailbox_cfg_.kind == MailboxKind::kRing) {
    // Must match SmpCluster::install_trace's salt formula exactly.
    flow_comm_key_ =
        (static_cast<std::uint64_t>(cluster.trace_session_ + 1) << 32) |
        comm_id;
  }
}

Mailbox& SmpComm::mailbox(int rank_in_comm) const {
  return entry_->mailboxes[static_cast<std::size_t>(rank_in_comm)];
}

rt::Request SmpComm::isend(rt::ConstView buf, int dst, int tag) {
  if (dst < 0 || dst >= size_) {
    throw std::out_of_range("isend: destination rank out of range");
  }
  if (tag < 0) {
    throw std::invalid_argument("isend: tag must be >= 0");
  }
  if (flow_comm_key_ != 0 && buf.len > 0 && dst != rank_) {
    // Arrow source inside an smp.send span; the receiving mailbox derives
    // the identical id at accept() time from its mirrored counter.
    const std::uint64_t seq = flow_tx_seq_[{dst, tag}]++;
    const std::uint64_t id = obs::flow_id(
        flow_comm_key_, world_rank(),
        entry_->world_ranks[static_cast<std::size_t>(dst)], tag, seq);
    obs::TraceBuffer* tb = tracer();
    obs::Span sp(tb, "smp.send", "smp", 0,
                 {{"bytes", static_cast<std::int64_t>(buf.len)},
                  {"dst", dst},
                  {"tag", tag}});
    tb->flow_start(id, 0);
    mailbox(dst).send(rank_, tag, buf);
    return rt::Request{};
  }
  mailbox(dst).send(rank_, tag, buf);
  // Eager buffered semantics: the send is complete on return. An invalid
  // Request denotes "already complete" and is skipped by wait_try.
  return rt::Request{};
}

rt::Request SmpComm::irecv(rt::MutView buf, int src, int tag) {
  if (src != rt::kAnySource && (src < 0 || src >= size_)) {
    throw std::out_of_range("irecv: source rank out of range");
  }
  if (tag != rt::kAnyTag && tag < 0) {
    throw std::invalid_argument("irecv: tag must be >= 0 or kAnyTag");
  }
  std::uint32_t slot;
  if (!free_ops_.empty()) {
    slot = free_ops_.back();
    free_ops_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(ops_.size());
    ops_.emplace_back();
  }
  PostedRecv& op = ops_[slot];
  op.buf = buf;
  op.src = src;
  op.tag = tag;
  op.error = false;
  op.received = 0;
  op.in_use = true;
  mailbox(rank_).post_or_match(&op);
  return rt::Request{slot, op.serial};
}

PostedRecv& SmpComm::op_checked(const rt::Request& r) {
  if (r.slot >= ops_.size()) {
    throw std::logic_error("SmpComm: request refers to unknown operation");
  }
  PostedRecv& op = ops_[r.slot];
  if (!op.in_use || op.serial != r.serial) {
    throw std::logic_error("SmpComm: request already completed (stale)");
  }
  return op;
}

bool SmpComm::wait_try(std::span<const rt::Request> reqs) {
  // Poll loop: drain this rank's mailbox (ring arrivals complete posted
  // receives here, on the owner thread), check the completion flags, and
  // pause when nothing moved. The epoch is observed *before* the check so
  // a mutex-mode delivery racing the check cannot be slept through.
  Mailbox& mb = mailbox(rank_);
  int spins = 0;
  for (;;) {
    const std::uint64_t epoch = mb.epoch();
    mb.drain();
    bool all = true;
    for (const rt::Request& r : reqs) {
      if (r.valid() &&
          !op_checked(r).complete.load(std::memory_order_acquire)) {
        all = false;
        break;
      }
    }
    if (all) {
      break;
    }
    mb.idle(epoch, spins);
  }
  bool truncated = false;
  for (const rt::Request& r : reqs) {
    if (!r.valid()) {
      continue;
    }
    PostedRecv& op = op_checked(r);
    truncated = truncated || op.error;
    ++op.serial;
    op.in_use = false;
    free_ops_.push_back(r.slot);
  }
  if (truncated) {
    throw std::runtime_error(
        "message truncation: receive buffer smaller than incoming message");
  }
  return true;
}

void SmpComm::wait_suspend(std::span<const rt::Request>,
                           std::coroutine_handle<>) {
  throw std::logic_error(
      "SmpComm::wait_suspend: the threads backend completes all waits "
      "synchronously");
}

double SmpComm::now() const {
  const auto d = std::chrono::steady_clock::now() - cluster_->epoch_;
  return std::chrono::duration<double>(d).count();
}

std::unique_ptr<rt::Comm> SmpComm::create_subcomm(
    std::span<const int> members) {
  if (members.empty()) {
    throw std::invalid_argument("create_subcomm: empty member list");
  }
  const std::vector<int>& parent = entry_->world_ranks;
  std::vector<int> world;
  world.reserve(members.size());
  int my_idx = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int m = members[i];
    if (m < 0 || m >= static_cast<int>(parent.size())) {
      throw std::out_of_range("create_subcomm: member rank out of range");
    }
    if (m == rank_) {
      if (my_idx != -1) {
        throw std::invalid_argument("create_subcomm: duplicate member");
      }
      my_idx = static_cast<int>(i);
    }
    world.push_back(parent[m]);
  }
  if (my_idx == -1) {
    throw std::invalid_argument(
        "create_subcomm: calling rank not in member list");
  }
  const std::uint32_t id =
      cluster_->intern_comm(std::move(world), parent[rank_]);
  return std::make_unique<SmpComm>(*cluster_, id, my_idx,
                                   static_cast<int>(members.size()));
}

}  // namespace mca2a::smp
