#include "smp/smp_runtime.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace mca2a::smp {

SmpRuntime::SmpRuntime(int world_size) : cluster_(world_size) {}

SmpRuntime::SmpRuntime(int world_size, const MailboxConfig& cfg)
    : cluster_(world_size, cfg) {}

void SmpRuntime::run(
    const std::function<rt::Task<void>(rt::Comm&)>& rank_main) {
  const int n = cluster_.world_size();
  std::vector<std::exception_ptr> errors(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      try {
        rt::sync_wait(rank_main(cluster_.world(r)));
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

void run_threads(int world_size,
                 const std::function<rt::Task<void>(rt::Comm&)>& rank_main) {
  SmpRuntime rt(world_size);
  rt.run(rank_main);
}

void run_threads(int world_size, const MailboxConfig& cfg,
                 const std::function<rt::Task<void>(rt::Comm&)>& rank_main) {
  SmpRuntime rt(world_size, cfg);
  rt.run(rank_main);
}

}  // namespace mca2a::smp
