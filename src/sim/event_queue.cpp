#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace mca2a::sim {

namespace {
// Min-heap: "greater" comparison for std::push_heap/pop_heap.
struct Later {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};
}  // namespace

void EventQueue::push(double time, EventKind kind, std::uint32_t msg) {
  heap_.push_back(Event{time, next_seq_++, kind, msg});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Event EventQueue::pop() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

}  // namespace mca2a::sim
