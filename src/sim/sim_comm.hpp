#pragma once
/// \file sim_comm.hpp
/// rt::Comm implementation backed by the discrete-event Cluster.
///
/// A SimComm is a per-rank endpoint of one simulated communicator. All state
/// lives in the Cluster; SimComm is a thin handle (comm id + rank) so it can
/// be created freely for sub-communicators.

#include <memory>

#include "runtime/comm.hpp"
#include "sim/cluster.hpp"

namespace mca2a::sim {

class SimComm final : public rt::Comm {
 public:
  SimComm(Cluster& cluster, std::uint32_t comm_id, int rank, int size)
      : rt::Comm(rank, size), cluster_(&cluster), comm_id_(comm_id) {}

  rt::Request isend(rt::ConstView buf, int dst, int tag) override {
    return cluster_->isend_impl(comm_id_, rank_, buf, dst, tag);
  }
  rt::Request irecv(rt::MutView buf, int src, int tag) override {
    return cluster_->irecv_impl(comm_id_, rank_, buf, src, tag);
  }
  bool wait_try(std::span<const rt::Request> reqs) override {
    return cluster_->wait_try_impl(world_rank(), reqs);
  }
  void wait_suspend(std::span<const rt::Request> reqs,
                    std::coroutine_handle<> h) override {
    cluster_->wait_suspend_impl(world_rank(), reqs, h);
  }
  double now() const override { return cluster_->rank_clock(world_rank()); }
  std::string_view backend_name() const noexcept override { return "sim"; }
  rt::Buffer alloc_buffer(std::size_t bytes) const override {
    return cluster_->carry_data() ? rt::Buffer::real(bytes)
                                  : rt::Buffer::virt(bytes);
  }
  void charge_copy(std::size_t bytes) override {
    cluster_->charge_copy_impl(world_rank(), bytes);
  }
  std::unique_ptr<rt::Comm> create_subcomm(
      std::span<const int> members) override;
  obs::TraceBuffer* tracer() const noexcept override {
    return cluster_->tracer_for(world_rank());
  }

  /// Scale CPU-side costs (overheads, copies, matching) for operations on
  /// this communicator; used by the vendor-tuned System MPI surrogate.
  void set_cost_scale(double scale) {
    cluster_->set_cost_scale_impl(comm_id_, scale);
  }

  /// World rank of this endpoint.
  int world_rank() const;
  std::uint32_t comm_id() const noexcept { return comm_id_; }
  Cluster& cluster() noexcept { return *cluster_; }

 private:
  Cluster* cluster_;
  std::uint32_t comm_id_;
};

}  // namespace mca2a::sim
