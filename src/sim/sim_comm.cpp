#include "sim/sim_comm.hpp"

namespace mca2a::sim {

int SimComm::world_rank() const {
  // comm 0 is the world communicator; otherwise translate via the entry.
  if (comm_id_ == 0) {
    return rank_;
  }
  return cluster_->comms_[comm_id_].world_ranks[rank_];
}

std::unique_ptr<rt::Comm> SimComm::create_subcomm(
    std::span<const int> members) {
  int my_new_rank = -1;
  const std::uint32_t id =
      cluster_->subcomm_impl(comm_id_, rank_, members, &my_new_rank);
  return std::make_unique<SimComm>(*cluster_, id, my_new_rank,
                                   static_cast<int>(members.size()));
}

}  // namespace mca2a::sim
