#pragma once
/// \file event_queue.hpp
/// Deterministic min-heap event queue for the discrete-event engine.
///
/// Events are ordered by (time, insertion sequence); the sequence tiebreak
/// makes replays bit-identical regardless of floating-point ties, which the
/// determinism property tests rely on.

#include <cstdint>
#include <vector>

namespace mca2a::sim {

enum class EventKind : std::uint8_t {
  kMsgArrival,   ///< eager payload reached the destination (wire time)
  kRtsArrival,   ///< rendezvous ready-to-send reached the destination
  kDataArrival,  ///< rendezvous payload reached the destination
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kMsgArrival;
  std::uint32_t msg = 0;  ///< index into the cluster's message pool
};

class EventQueue {
 public:
  void push(double time, EventKind kind, std::uint32_t msg);
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  /// Remove and return the earliest event. Precondition: !empty().
  Event pop();
  void clear();

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace mca2a::sim
