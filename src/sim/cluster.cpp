#include "sim/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "sim/sim_comm.hpp"

namespace mca2a::sim {

using topo::Level;

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), machine_(cfg_.machine), rng_(cfg_.noise_seed) {
  model::validate(cfg_.net);
  const int n = machine_.total_ranks();
  ranks_.resize(n);
  nic_in_.assign(machine_.nodes(), 0.0);
  nic_out_.assign(machine_.nodes(), 0.0);
  mem_chan_.assign(machine_.nodes() * machine_.desc().numa_per_node(), 0.0);

  // Communicator 0 is the world.
  CommEntry world_entry;
  world_entry.world_ranks.resize(n);
  for (int r = 0; r < n; ++r) {
    world_entry.world_ranks[r] = r;
  }
  world_entry.endpoints.resize(n);
  comms_.push_back(std::move(world_entry));

  world_comms_.reserve(n);
  for (int r = 0; r < n; ++r) {
    world_comms_.push_back(std::make_unique<SimComm>(*this, 0u, r, n));
  }

  // Wire accounting: one counter pair per locality level, resolved once so
  // isend_impl pays two relaxed adds per message.
  for (int l = 0; l < topo::kNumLevels; ++l) {
    const std::string prefix =
        std::string("sim.level.") + topo::to_string(static_cast<Level>(l));
    level_metrics_[l].messages = &obs::metrics().counter(prefix + ".messages");
    level_metrics_[l].bytes = &obs::metrics().counter(prefix + ".bytes");
  }

  // Flight recorder: one session per cluster, one stream per world rank,
  // each stamped with this rank's *virtual* clock. The clock closure only
  // reads rank state — tracing never advances virtual time.
  if (obs::TraceRecorder* rec = obs::active_recorder()) {
    trace_rec_ = rec;
    trace_session_ = rec->begin_session("sim");
    tracers_.resize(static_cast<std::size_t>(n), nullptr);
    for (int r = 0; r < n; ++r) {
      obs::TraceBuffer* tb = rec->open_stream(trace_session_, r);
      tb->set_clock([this, r] { return ranks_[static_cast<std::size_t>(r)].clock; });
      tracers_[static_cast<std::size_t>(r)] = tb;
    }
  }
}

Cluster::~Cluster() {
  if (trace_rec_ != nullptr) {
    trace_rec_->end_session(trace_session_);
  }
}

rt::Comm& Cluster::world(int world_rank) {
  return *world_comms_.at(world_rank);
}

double Cluster::rank_clock(int world_rank) const {
  return ranks_.at(world_rank).clock;
}

double Cluster::max_clock() const {
  double t = 0.0;
  for (const RankState& r : ranks_) {
    t = std::max(t, r.clock);
  }
  return t;
}

double Cluster::noise() {
  const double sigma = cfg_.net.noise_sigma;
  if (sigma <= 0.0) {
    return 1.0;
  }
  // Mean-one log-normal perturbation.
  return std::exp(sigma * normal_(rng_) - 0.5 * sigma * sigma);
}

// --------------------------------------------------------------------------
// Pools
// --------------------------------------------------------------------------

std::uint32_t Cluster::alloc_op() {
  if (free_op_ != kNil) {
    std::uint32_t id = free_op_;
    free_op_ = ops_[id].next;
    OpRec& op = ops_[id];
    std::uint32_t serial = op.serial;  // preserved across reuse
    op = OpRec{};
    op.serial = serial;
    return id;
  }
  ops_.emplace_back();
  return static_cast<std::uint32_t>(ops_.size() - 1);
}

void Cluster::release_op(std::uint32_t id) {
  OpRec& op = ops_[id];
  ++op.serial;  // invalidate outstanding Requests
  op.next = free_op_;
  free_op_ = id;
}

std::uint32_t Cluster::alloc_msg() {
  if (free_msg_ != kNil) {
    std::uint32_t id = free_msg_;
    free_msg_ = msgs_[id].next;
    msgs_[id] = MsgRec{};
    return id;
  }
  msgs_.emplace_back();
  return static_cast<std::uint32_t>(msgs_.size() - 1);
}

void Cluster::release_msg(std::uint32_t id) {
  MsgRec& m = msgs_[id];
  m.payload.reset();
  m.next = free_msg_;
  free_msg_ = id;
}

std::uint32_t Cluster::alloc_waiter() {
  if (free_waiter_ != kNil) {
    std::uint32_t id = free_waiter_;
    free_waiter_ = waiters_[id].next_free;
    waiters_[id] = Waiter{};
    return id;
  }
  waiters_.emplace_back();
  return static_cast<std::uint32_t>(waiters_.size() - 1);
}

void Cluster::release_waiter(std::uint32_t id) {
  waiters_[id].next_free = free_waiter_;
  waiters_[id].handle = {};
  free_waiter_ = id;
}

Cluster::OpRec& Cluster::op_checked(const rt::Request& r) {
  if (r.slot >= ops_.size()) {
    throw std::logic_error("SimComm: request refers to unknown operation");
  }
  OpRec& op = ops_[r.slot];
  if (op.serial != r.serial) {
    throw std::logic_error("SimComm: request already completed (stale)");
  }
  return op;
}

// --------------------------------------------------------------------------
// Matching
// --------------------------------------------------------------------------

Cluster::Endpoint& Cluster::endpoint(std::uint32_t comm_id, int rank_in_comm) {
  return comms_[comm_id].endpoints[rank_in_comm];
}

void Cluster::push_fifo(Fifo& f, std::uint32_t id, bool is_msg) {
  if (is_msg) {
    msgs_[id].next = kNil;
  } else {
    ops_[id].next = kNil;
  }
  if (f.tail == kNil) {
    f.head = f.tail = id;
  } else {
    if (is_msg) {
      msgs_[f.tail].next = id;
    } else {
      ops_[f.tail].next = id;
    }
    f.tail = id;
  }
  ++f.count;
}

std::uint32_t Cluster::match_posted(Endpoint& ep, int src, int tag) {
  // Candidates: recvs posted for this specific source and for kAnySource;
  // take the earlier-posted one whose tag matches.
  struct Candidate {
    Fifo* fifo = nullptr;
    std::uint32_t id = kNil;
    std::uint32_t prev = kNil;
    std::uint64_t seq = 0;
  };
  Candidate best;

  auto scan = [&](Fifo& f) {
    std::uint32_t prev = kNil;
    for (std::uint32_t cur = f.head; cur != kNil; cur = ops_[cur].next) {
      const OpRec& op = ops_[cur];
      if (op.tag == rt::kAnyTag || op.tag == tag) {
        if (best.id == kNil || op.post_seq < best.seq) {
          best = Candidate{&f, cur, prev, op.post_seq};
        }
        return;
      }
      prev = cur;
    }
  };

  auto it = ep.posted_by_src.find(src);
  if (it != ep.posted_by_src.end()) {
    scan(it->second);
  }
  auto any = ep.posted_by_src.find(rt::kAnySource);
  if (any != ep.posted_by_src.end()) {
    scan(any->second);
  }
  if (best.id == kNil) {
    return kNil;
  }

  Fifo& f = *best.fifo;
  if (best.prev == kNil) {
    f.head = ops_[best.id].next;
  } else {
    ops_[best.prev].next = ops_[best.id].next;
  }
  if (f.tail == best.id) {
    f.tail = best.prev;
  }
  --f.count;
  --ep.posted_total;
  ops_[best.id].in_posted = false;
  return best.id;
}

std::uint32_t Cluster::match_unexpected(Endpoint& ep, int src, int tag) {
  auto match_in = [&](Fifo& f) -> std::pair<std::uint32_t, std::uint32_t> {
    std::uint32_t prev = kNil;
    for (std::uint32_t cur = f.head; cur != kNil; cur = msgs_[cur].next) {
      const MsgRec& m = msgs_[cur];
      if (tag == rt::kAnyTag || m.tag == tag) {
        return {cur, prev};
      }
      prev = cur;
    }
    return {kNil, kNil};
  };

  Fifo* fifo = nullptr;
  std::uint32_t id = kNil;
  std::uint32_t prev = kNil;

  if (src != rt::kAnySource) {
    auto it = ep.unexpected_by_src.find(src);
    if (it == ep.unexpected_by_src.end()) {
      return kNil;
    }
    auto [i, p] = match_in(it->second);
    fifo = &it->second;
    id = i;
    prev = p;
  } else {
    // Wildcard source: earliest arrival across all source FIFOs.
    std::uint64_t best_seq = 0;
    for (auto& [s, f] : ep.unexpected_by_src) {
      auto [i, p] = match_in(f);
      if (i != kNil && (id == kNil || msgs_[i].arrival_seq < best_seq)) {
        fifo = &f;
        id = i;
        prev = p;
        best_seq = msgs_[i].arrival_seq;
      }
    }
  }
  if (id == kNil) {
    return kNil;
  }
  if (prev == kNil) {
    fifo->head = msgs_[id].next;
  } else {
    msgs_[prev].next = msgs_[id].next;
  }
  if (fifo->tail == id) {
    fifo->tail = prev;
  }
  --fifo->count;
  --ep.unexpected_total;
  return id;
}

// --------------------------------------------------------------------------
// Point-to-point
// --------------------------------------------------------------------------

rt::Request Cluster::isend_impl(std::uint32_t comm_id, int my_rank_in_comm,
                                rt::ConstView buf, int dst, int tag) {
  CommEntry& entry = comms_[comm_id];
  const int size = static_cast<int>(entry.world_ranks.size());
  if (dst < 0 || dst >= size) {
    throw std::out_of_range("isend: destination rank out of range");
  }
  if (tag < 0) {
    throw std::invalid_argument("isend: tag must be >= 0");
  }
  const int src_world = entry.world_ranks[my_rank_in_comm];
  const int dst_world = entry.world_ranks[dst];
  const Level level = machine_.level(src_world, dst_world);
  const model::NetParams& net = cfg_.net;
  const double scale = entry.cost_scale;
  RankState& rs = ranks_[src_world];

  ++stats_msgs_;
  stats_bytes_ += buf.len;
  level_metrics_[static_cast<int>(level)].messages->add();
  level_metrics_[static_cast<int>(level)].bytes->add(buf.len);
  if (obs::TraceBuffer* tb = tracer_for(src_world)) {
    // One instant per injected message, on the lane of the tag's stream so
    // it lines up with the collective span that sent it.
    tb->instant("send", "sim.net", rt::tags::stream_of(tag),
                {{"bytes", static_cast<std::int64_t>(buf.len)},
                 {"dst", dst_world},
                 {"level", static_cast<std::int64_t>(level)},
                 {"tag", tag}});
  }

  const std::uint32_t op_id = alloc_op();
  OpRec& op = ops_[op_id];
  op.kind = OpRec::Kind::kSend;
  op.rank_world = src_world;

  const std::uint32_t msg_id = alloc_msg();
  MsgRec& m = msgs_[msg_id];
  m.comm = comm_id;
  m.src_in_comm = my_rank_in_comm;
  m.dst_in_comm = dst;
  m.tag = tag;
  m.bytes = buf.len;
  m.src_world = src_world;
  m.dst_world = dst_world;
  m.level = level;
  m.rendezvous = model::is_rendezvous(net, buf.len) && level != Level::kSelf;

  // Sender CPU: per-message overhead plus the copy in/out of the transport
  // (network DMA rate vs shared-memory copy rate).
  rs.clock += noise() * scale * net.at(level).o_send +
              scale * model::cpu_copy_time(net, level, buf.len);

  if (m.rendezvous) {
    // Payload stays in the user buffer (valid until the send completes, per
    // MPI semantics); only the RTS control message travels now.
    m.src_view = buf;
    m.send_op = op_id;
    engine_.schedule(rs.clock + noise() * net.at(level).alpha,
                     EventKind::kRtsArrival, msg_id);
  } else {
    if (cfg_.carry_data && buf.len > 0) {
      if (buf.ptr != nullptr) {
        m.payload = std::make_unique<std::byte[]>(buf.len);
        std::memcpy(m.payload.get(), buf.ptr, buf.len);
      }
      // A virtual source in a carrying cluster delivers no bytes: the
      // receiver's buffer is left untouched.
    }
    // Cut-through: the wire streams behind the injection serialization, so
    // only the rate difference (if the wire is slower) adds to the time at
    // which the last byte reaches the destination NIC.
    double depart = rs.clock;
    double chan_rate = 0.0;
    if (level == Level::kNetwork) {
      double& r = nic_in_[machine_.node_of(src_world)];
      const double service = model::nic_inject_time(net, buf.len);
      depart = std::max(depart, r) + service;
      r = depart;
      chan_rate = buf.len > 0 ? service / static_cast<double>(buf.len) : 0.0;
    } else if (level != Level::kSelf) {
      double& c = mem_chan_[machine_.numa_of(src_world)];
      const double service = model::mem_channel_time(net, buf.len);
      depart = std::max(depart, c) + service;
      c = depart;
      chan_rate = buf.len > 0 ? service / static_cast<double>(buf.len) : 0.0;
    }
    // Eager sends complete once the payload has left the rank.
    op.complete = true;
    op.completion_time = depart;
    const double wire_tail =
        static_cast<double>(buf.len) *
        std::max(0.0, net.at(level).beta - chan_rate);
    engine_.schedule(depart + noise() * net.at(level).alpha + wire_tail,
                     EventKind::kMsgArrival, msg_id);
  }
  return rt::Request{op_id, ops_[op_id].serial};
}

rt::Request Cluster::irecv_impl(std::uint32_t comm_id, int my_rank_in_comm,
                                rt::MutView buf, int src, int tag) {
  CommEntry& entry = comms_[comm_id];
  const int size = static_cast<int>(entry.world_ranks.size());
  if (src != rt::kAnySource && (src < 0 || src >= size)) {
    throw std::out_of_range("irecv: source rank out of range");
  }
  if (tag != rt::kAnyTag && tag < 0) {
    throw std::invalid_argument("irecv: tag must be >= 0 or kAnyTag");
  }
  const int me_world = entry.world_ranks[my_rank_in_comm];
  const model::NetParams& net = cfg_.net;
  const double scale = entry.cost_scale;
  RankState& rs = ranks_[me_world];
  Endpoint& ep = endpoint(comm_id, my_rank_in_comm);

  // Posting cost (queue insertion / descriptor setup).
  rs.clock += scale * net.match_base;

  const std::uint32_t op_id = alloc_op();
  OpRec& op = ops_[op_id];
  op.kind = OpRec::Kind::kRecv;
  op.rank_world = me_world;
  op.buf = buf;
  op.match_src = src;
  op.tag = tag;
  op.comm = comm_id;
  op.post_time = rs.clock;

  const std::uint32_t scanned = ep.unexpected_total;
  const std::uint32_t msg_id = match_unexpected(ep, src, tag);
  if (msg_id != kNil) {
    MsgRec& m = msgs_[msg_id];
    if (m.rendezvous) {
      // Matched a waiting RTS: return the CTS and start the transfer.
      m.matched_recv = op_id;
      const double cts_at_sender =
          std::max(rs.clock, m.deliver_time) +
          scale * model::match_time(net, scanned) +
          noise() * net.at(m.level).alpha;
      start_rendezvous_transfer(msg_id, cts_at_sender);
    } else {
      complete_recv(op_id, msg_id, model::match_time(net, scanned));
    }
  } else {
    op.in_posted = true;
    op.post_seq = ep.next_post_seq++;
    push_fifo(ep.posted_by_src[src], op_id, /*is_msg=*/false);
    ++ep.posted_total;
  }
  return rt::Request{op_id, ops_[op_id].serial};
}

// --------------------------------------------------------------------------
// Completion
// --------------------------------------------------------------------------

void Cluster::complete_recv(std::uint32_t op_id, std::uint32_t msg_id,
                            double match_cost) {
  OpRec& op = ops_[op_id];
  MsgRec& m = msgs_[msg_id];
  if (op.buf.len < m.bytes) {
    throw std::runtime_error(
        "message truncation: receive buffer smaller than incoming message");
  }
  const model::NetParams& net = cfg_.net;
  const double scale = comms_[m.comm].cost_scale;

  if (cfg_.carry_data && m.bytes > 0 && op.buf.ptr != nullptr) {
    if (m.payload != nullptr) {
      std::memcpy(op.buf.ptr, m.payload.get(), m.bytes);
    } else if (m.src_view.ptr != nullptr) {
      std::memcpy(op.buf.ptr, m.src_view.ptr, m.bytes);
    }
  }

  // Receive-side CPU costs serialize on the receiver's core: processing
  // cannot start before the payload is here, the receive is posted, and the
  // core has finished the previous message (and any foreground work).
  RankState& rr = ranks_[op.rank_world];
  const double start = std::max(std::max(m.deliver_time, op.post_time),
                                std::max(rr.cpu_free, rr.clock));
  const double t = start + scale * match_cost +
                   noise() * scale * net.at(m.level).o_recv +
                   scale * model::cpu_copy_time(net, m.level, m.bytes);
  rr.cpu_free = t;
  release_msg(msg_id);
  complete_op(op_id, t);
}

void Cluster::complete_op(std::uint32_t op_id, double t) {
  OpRec& op = ops_[op_id];
  op.complete = true;
  op.completion_time = t;
  if (op.waiter == kNil) {
    return;
  }
  const std::uint32_t wid = op.waiter;
  Waiter& w = waiters_[wid];
  w.resume_time = std::max(w.resume_time, t);
  release_op(op_id);
  if (--w.remaining == 0) {
    RankState& rs = ranks_[w.rank_world];
    rs.clock = std::max(rs.clock, w.resume_time);
    std::coroutine_handle<> h = w.handle;
    release_waiter(wid);
    h.resume();  // may reentrantly schedule events / complete further ops
  }
}

bool Cluster::wait_try_impl(int world_rank,
                            std::span<const rt::Request> reqs) {
  for (const rt::Request& r : reqs) {
    if (!r.valid()) {
      continue;
    }
    if (!op_checked(r).complete) {
      return false;
    }
  }
  RankState& rs = ranks_[world_rank];
  for (const rt::Request& r : reqs) {
    if (!r.valid()) {
      continue;
    }
    OpRec& op = op_checked(r);
    rs.clock = std::max(rs.clock, op.completion_time);
    release_op(r.slot);
  }
  return true;
}

void Cluster::wait_suspend_impl(int world_rank,
                                std::span<const rt::Request> reqs,
                                std::coroutine_handle<> h) {
  const std::uint32_t wid = alloc_waiter();
  Waiter& w = waiters_[wid];
  w.handle = h;
  w.rank_world = world_rank;
  w.resume_time = ranks_[world_rank].clock;
  int remaining = 0;
  for (const rt::Request& r : reqs) {
    if (!r.valid()) {
      continue;
    }
    OpRec& op = op_checked(r);
    if (op.complete) {
      w.resume_time = std::max(w.resume_time, op.completion_time);
      release_op(r.slot);
    } else {
      op.waiter = wid;
      ++remaining;
    }
  }
  if (remaining == 0) {
    // wait_try (await_ready) runs immediately before wait_suspend with no
    // events in between, so this cannot happen in a single-threaded sim.
    throw std::logic_error(
        "wait_suspend: all requests completed between poll and suspend");
  }
  w.remaining = remaining;
}

// --------------------------------------------------------------------------
// Events
// --------------------------------------------------------------------------

void Cluster::handle(const Event& e) {
  switch (e.kind) {
    case EventKind::kMsgArrival:
      on_eager_arrival(e.msg);
      break;
    case EventKind::kRtsArrival:
      on_rts_arrival(e.msg);
      break;
    case EventKind::kDataArrival:
      on_data_arrival(e.msg);
      break;
  }
}

void Cluster::on_eager_arrival(std::uint32_t msg_id) {
  MsgRec& m = msgs_[msg_id];
  // Ejection is pipelined behind the wire: an idle NIC delivers at arrival
  // time; a contended one spaces deliveries by its service time.
  double deliver = engine_.now();
  if (m.level == Level::kNetwork) {
    double& r = nic_out_[machine_.node_of(m.dst_world)];
    deliver = std::max(deliver, r + model::nic_eject_time(cfg_.net, m.bytes));
    r = deliver;
  }
  m.deliver_time = deliver;

  Endpoint& ep = endpoint(m.comm, m.dst_in_comm);
  const std::uint32_t scanned = ep.posted_total;
  const std::uint32_t op_id = match_posted(ep, m.src_in_comm, m.tag);
  if (op_id != kNil) {
    complete_recv(op_id, msg_id, model::match_time(cfg_.net, scanned));
  } else {
    m.arrival_seq = ep.next_arrival_seq++;
    push_fifo(ep.unexpected_by_src[m.src_in_comm], msg_id, /*is_msg=*/true);
    ++ep.unexpected_total;
  }
}

void Cluster::on_rts_arrival(std::uint32_t msg_id) {
  MsgRec& m = msgs_[msg_id];
  m.deliver_time = engine_.now();
  Endpoint& ep = endpoint(m.comm, m.dst_in_comm);
  const double scale = comms_[m.comm].cost_scale;
  const std::uint32_t scanned = ep.posted_total;
  const std::uint32_t op_id = match_posted(ep, m.src_in_comm, m.tag);
  if (op_id != kNil) {
    m.matched_recv = op_id;
    // The CTS leaves no earlier than both the RTS arrival and the logical
    // time the receiver posted the matching receive.
    const double cts_at_sender =
        std::max(engine_.now(), ops_[op_id].post_time) +
        scale * model::match_time(cfg_.net, scanned) +
        noise() * cfg_.net.at(m.level).alpha;
    start_rendezvous_transfer(msg_id, cts_at_sender);
  } else {
    m.arrival_seq = ep.next_arrival_seq++;
    push_fifo(ep.unexpected_by_src[m.src_in_comm], msg_id, /*is_msg=*/true);
    ++ep.unexpected_total;
  }
}

void Cluster::start_rendezvous_transfer(std::uint32_t msg_id, double t_ready) {
  MsgRec& m = msgs_[msg_id];
  const model::NetParams& net = cfg_.net;
  double depart = t_ready;
  double chan_rate = 0.0;
  if (m.level == Level::kNetwork) {
    double& r = nic_in_[machine_.node_of(m.src_world)];
    const double service = model::nic_inject_time(net, m.bytes);
    depart = std::max(depart, r) + service;
    r = depart;
    chan_rate = m.bytes > 0 ? service / static_cast<double>(m.bytes) : 0.0;
  } else if (m.level != Level::kSelf) {
    double& c = mem_chan_[machine_.numa_of(m.src_world)];
    const double service = model::mem_channel_time(net, m.bytes);
    depart = std::max(depart, c) + service;
    c = depart;
    chan_rate = m.bytes > 0 ? service / static_cast<double>(m.bytes) : 0.0;
  }
  if (m.send_op != kNil) {
    // Completing the send releases the user buffer (MPI semantics), but the
    // simulated bytes only land at the data-arrival event — and completing
    // the op can reentrantly resume the sender's coroutine, which may free
    // the buffer src_view points into. Stage the payload first.
    if (cfg_.carry_data && m.bytes > 0 && m.src_view.ptr != nullptr &&
        m.payload == nullptr) {
      m.payload = std::make_unique<std::byte[]>(m.bytes);
      std::memcpy(m.payload.get(), m.src_view.ptr, m.bytes);
      m.src_view = rt::ConstView{};
    }
    complete_op(m.send_op, depart);
    m.send_op = kNil;
  }
  const double wire_tail = static_cast<double>(m.bytes) *
                           std::max(0.0, net.at(m.level).beta - chan_rate);
  engine_.schedule(depart + noise() * net.at(m.level).alpha + wire_tail,
                   EventKind::kDataArrival, msg_id);
}

void Cluster::on_data_arrival(std::uint32_t msg_id) {
  MsgRec& m = msgs_[msg_id];
  double deliver = engine_.now();
  if (m.level == Level::kNetwork) {
    double& r = nic_out_[machine_.node_of(m.dst_world)];
    deliver = std::max(deliver, r + model::nic_eject_time(cfg_.net, m.bytes));
    r = deliver;
  }
  m.deliver_time = deliver;
  assert(m.matched_recv != kNil);
  // Matching cost was charged when the RTS met the receive.
  complete_recv(m.matched_recv, msg_id, /*match_cost=*/0.0);
}

// --------------------------------------------------------------------------
// Sub-communicators, misc
// --------------------------------------------------------------------------

std::uint32_t Cluster::subcomm_impl(std::uint32_t parent_id,
                                    int my_rank_in_parent,
                                    std::span<const int> members,
                                    int* my_new_rank) {
  CommEntry& parent = comms_[parent_id];
  const int parent_size = static_cast<int>(parent.world_ranks.size());
  if (members.empty()) {
    throw std::invalid_argument("create_subcomm: empty member list");
  }
  std::vector<int> world;
  world.reserve(members.size());
  int my_idx = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int m = members[i];
    if (m < 0 || m >= parent_size) {
      throw std::out_of_range("create_subcomm: member rank out of range");
    }
    if (m == my_rank_in_parent) {
      if (my_idx != -1) {
        throw std::invalid_argument("create_subcomm: duplicate member");
      }
      my_idx = static_cast<int>(i);
    }
    world.push_back(parent.world_ranks[m]);
  }
  if (my_idx == -1) {
    throw std::invalid_argument(
        "create_subcomm: calling rank not in member list");
  }
  {
    std::vector<int> sorted = world;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      throw std::invalid_argument("create_subcomm: duplicate member");
    }
  }

  // Fresh context per creation: my k-th creation with this member list maps
  // to the k-th global communicator for the list.
  const int me_world = parent.world_ranks[my_rank_in_parent];
  const std::uint32_t occurrence = ranks_[me_world].subcomm_uses[world]++;
  auto [it, inserted] = comm_registry_.try_emplace(
      std::make_pair(world, occurrence),
      static_cast<std::uint32_t>(comms_.size()));
  if (inserted) {
    CommEntry entry;
    entry.world_ranks = world;
    entry.endpoints.resize(world.size());
    entry.cost_scale = parent.cost_scale;
    comms_.push_back(std::move(entry));
  }
  *my_new_rank = my_idx;
  return it->second;
}

void Cluster::charge_copy_impl(int world_rank, std::size_t bytes) {
  ranks_[world_rank].clock += model::pack_time(cfg_.net, bytes);
}

void Cluster::set_cost_scale_impl(std::uint32_t comm_id, double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("cost scale must be > 0");
  }
  comms_[comm_id].cost_scale = scale;
}

// --------------------------------------------------------------------------
// Run loop
// --------------------------------------------------------------------------

double Cluster::run(const std::function<rt::Task<void>(rt::Comm&)>& rank_main) {
  const int n = machine_.total_ranks();
  std::vector<rt::Task<void>> tasks;
  tasks.reserve(n);
  live_ = n;
  for (int r = 0; r < n; ++r) {
    tasks.push_back(rank_main(*world_comms_[r]));
  }
  for (int r = 0; r < n; ++r) {
    tasks[r].start(&live_);
  }
  engine_.drain([this](const Event& e) { handle(e); });

  std::exception_ptr first_error;
  for (auto& t : tasks) {
    if (t.done()) {
      try {
        t.result();
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
  if (live_ > 0) {
    throw SimDeadlockError(
        "simulation deadlock: " + std::to_string(live_) + " of " +
            std::to_string(n) + " ranks still waiting with no events pending",
        live_);
  }
  return max_clock();
}

}  // namespace mca2a::sim
