#pragma once
/// \file engine.hpp
/// The discrete-event engine: a virtual clock plus the event queue.
///
/// The engine is intentionally minimal — all event semantics live in
/// sim::Cluster. The engine only guarantees monotonically non-decreasing
/// event processing order and deterministic tie-breaking.

#include <cassert>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace mca2a::sim {

class Engine {
 public:
  /// Current virtual time (time of the event being processed).
  double now() const noexcept { return now_; }

  /// Schedule an event at absolute virtual time `t` (>= now).
  void schedule(double t, EventKind kind, std::uint32_t msg) {
    if (t < now_) {
      throw std::logic_error("Engine::schedule: event in the past");
    }
    queue_.push(t, kind, msg);
  }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Drain the queue, invoking `handler(event)` for each event in
  /// (time, seq) order. The handler may schedule further events.
  template <typename Handler>
  void drain(Handler&& handler) {
    while (!queue_.empty()) {
      Event e = queue_.pop();
      assert(e.time >= now_);
      now_ = e.time;
      handler(e);
    }
  }

 private:
  EventQueue queue_;
  double now_ = 0.0;
};

}  // namespace mca2a::sim
