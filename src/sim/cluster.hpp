#pragma once
/// \file cluster.hpp
/// The simulated cluster: rank coroutines, message matching, shared-resource
/// accounting and the virtual clock, all driven by the discrete-event engine.
///
/// One Cluster models one machine (topo::Machine) with one parameter set
/// (model::NetParams). Cluster::run launches one coroutine per world rank;
/// ranks communicate through sim::SimComm endpoints. Payload bytes are moved
/// only when `carry_data` is enabled (tests); virtual-buffer runs produce
/// bit-identical virtual times, which is itself verified by tests.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/cost.hpp"
#include "model/params.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/task.hpp"
#include "sim/engine.hpp"
#include "topo/machine.hpp"

namespace mca2a::sim {

class SimComm;

/// Thrown when the event queue drains while rank coroutines are still
/// suspended (a communication deadlock in the algorithm under test).
class SimDeadlockError : public std::runtime_error {
 public:
  SimDeadlockError(std::string what, int stuck_ranks)
      : std::runtime_error(std::move(what)), stuck_ranks_(stuck_ranks) {}
  int stuck_ranks() const noexcept { return stuck_ranks_; }

 private:
  int stuck_ranks_;
};

struct ClusterConfig {
  topo::MachineDesc machine;
  model::NetParams net;
  /// Move real payload bytes (tests); false = virtual buffers at scale.
  bool carry_data = true;
  /// Seed for the log-normal noise stream (used when net.noise_sigma > 0).
  std::uint64_t noise_seed = 1;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const topo::Machine& machine() const noexcept { return machine_; }
  const model::NetParams& net() const noexcept { return cfg_.net; }
  bool carry_data() const noexcept { return cfg_.carry_data; }

  /// World communicator endpoint of `world_rank` (valid for the cluster's
  /// lifetime).
  rt::Comm& world(int world_rank);

  /// Launch `rank_main(world(r))` for every rank r and drive the simulation
  /// until all complete. Returns the maximum rank clock. Rethrows the first
  /// rank exception; throws SimDeadlockError if ranks are stuck. May be
  /// called repeatedly; virtual time keeps advancing.
  double run(const std::function<rt::Task<void>(rt::Comm&)>& rank_main);

  /// Virtual time at which rank `world_rank` last made progress.
  double rank_clock(int world_rank) const;
  /// Maximum rank clock (the usual "collective finished at" time).
  double max_clock() const;
  /// Engine time (last processed event).
  double engine_now() const noexcept { return engine_.now(); }

  /// Total messages injected so far (statistics for tests/benches).
  std::uint64_t messages_sent() const noexcept { return stats_msgs_; }
  /// Total payload bytes injected so far.
  std::uint64_t bytes_sent() const noexcept { return stats_bytes_; }

  /// Flight-recorder stream of `world_rank`, nullptr when tracing is off.
  obs::TraceBuffer* tracer_for(int world_rank) const noexcept {
    return tracers_.empty() ? nullptr
                            : tracers_[static_cast<std::size_t>(world_rank)];
  }

 private:
  friend class SimComm;

  static constexpr std::uint32_t kNil = UINT32_MAX;

  struct OpRec {
    enum class Kind : std::uint8_t { kSend, kRecv };
    Kind kind = Kind::kSend;
    bool complete = false;
    bool in_posted = false;
    std::uint32_t serial = 1;
    int rank_world = -1;
    double completion_time = 0.0;
    std::uint32_t waiter = kNil;
    // Receive-side matching state.
    rt::MutView buf{};
    int match_src = 0;  // rank in comm or rt::kAnySource
    int tag = 0;
    std::uint32_t comm = 0;
    double post_time = 0.0;
    std::uint64_t post_seq = 0;
    std::uint32_t next = kNil;  // intrusive FIFO link
  };

  struct MsgRec {
    std::uint32_t comm = 0;
    int src_in_comm = -1;
    int dst_in_comm = -1;
    int tag = 0;
    std::uint64_t bytes = 0;
    int src_world = -1;
    int dst_world = -1;
    topo::Level level = topo::Level::kSelf;
    bool rendezvous = false;
    std::uint32_t send_op = kNil;
    std::uint32_t matched_recv = kNil;
    double deliver_time = 0.0;
    std::unique_ptr<std::byte[]> payload;  // eager + carry_data
    rt::ConstView src_view{};              // rendezvous source buffer
    std::uint64_t arrival_seq = 0;
    std::uint32_t next = kNil;  // unexpected FIFO link
  };

  struct Waiter {
    std::coroutine_handle<> handle{};
    int remaining = 0;
    double resume_time = 0.0;
    int rank_world = -1;
    std::uint32_t next_free = kNil;
  };

  struct Fifo {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t count = 0;
  };

  struct Endpoint {
    std::unordered_map<int, Fifo> posted_by_src;
    std::unordered_map<int, Fifo> unexpected_by_src;
    std::uint32_t posted_total = 0;
    std::uint32_t unexpected_total = 0;
    std::uint64_t next_post_seq = 0;
    std::uint64_t next_arrival_seq = 0;
  };

  struct CommEntry {
    std::vector<int> world_ranks;    // index: rank in comm -> world rank
    std::vector<Endpoint> endpoints; // index: rank in comm
    double cost_scale = 1.0;         // vendor-tuning CPU multiplier
  };

  struct RankState {
    double clock = 0.0;
    /// Time until which this rank's core is busy processing *incoming*
    /// messages; serializes receive-side per-message CPU costs so that a
    /// funnel rank (e.g. a gather root) pays for every byte it touches.
    double cpu_free = 0.0;
    /// How many times this rank has created a subcomm with a given world-rank
    /// member list; the k-th creation joins the k-th global communicator for
    /// that list (fresh context per creation, like MPI, with no handshake).
    std::map<std::vector<int>, std::uint32_t> subcomm_uses;
  };

  // --- SimComm entry points -------------------------------------------------
  rt::Request isend_impl(std::uint32_t comm_id, int my_rank_in_comm,
                         rt::ConstView buf, int dst, int tag);
  rt::Request irecv_impl(std::uint32_t comm_id, int my_rank_in_comm,
                         rt::MutView buf, int src, int tag);
  bool wait_try_impl(int world_rank, std::span<const rt::Request> reqs);
  void wait_suspend_impl(int world_rank, std::span<const rt::Request> reqs,
                         std::coroutine_handle<> h);
  std::uint32_t subcomm_impl(std::uint32_t parent_id, int my_rank_in_parent,
                             std::span<const int> members, int* my_new_rank);
  void charge_copy_impl(int world_rank, std::size_t bytes);
  void set_cost_scale_impl(std::uint32_t comm_id, double scale);

  // --- event handling -------------------------------------------------------
  void handle(const Event& e);
  void on_eager_arrival(std::uint32_t msg_id);
  void on_rts_arrival(std::uint32_t msg_id);
  void on_data_arrival(std::uint32_t msg_id);
  void start_rendezvous_transfer(std::uint32_t msg_id, double t_ready);
  void complete_recv(std::uint32_t op_id, std::uint32_t msg_id,
                     double match_cost);
  void complete_op(std::uint32_t op_id, double t);

  // --- matching helpers -----------------------------------------------------
  Endpoint& endpoint(std::uint32_t comm_id, int rank_in_comm);
  /// Find and unlink the earliest-posted matching recv for (src, tag);
  /// returns kNil if none.
  std::uint32_t match_posted(Endpoint& ep, int src, int tag);
  /// Find and unlink the earliest-arrived matching unexpected message.
  std::uint32_t match_unexpected(Endpoint& ep, int src, int tag);
  void push_fifo(Fifo& f, std::uint32_t id, bool is_msg);
  std::uint32_t pop_fifo_match(Fifo& f, bool is_msg, int tag,
                               std::uint64_t* seq_out);

  // --- pools ----------------------------------------------------------------
  std::uint32_t alloc_op();
  void release_op(std::uint32_t id);
  std::uint32_t alloc_msg();
  void release_msg(std::uint32_t id);
  std::uint32_t alloc_waiter();
  void release_waiter(std::uint32_t id);
  OpRec& op_checked(const rt::Request& r);

  double noise();

  ClusterConfig cfg_;
  topo::Machine machine_;
  Engine engine_;

  std::vector<RankState> ranks_;
  std::vector<double> nic_in_;    // per node
  std::vector<double> nic_out_;   // per node
  std::vector<double> mem_chan_;  // per global NUMA domain

  std::vector<CommEntry> comms_;
  /// (member list, occurrence) -> communicator id.
  std::map<std::pair<std::vector<int>, std::uint32_t>, std::uint32_t>
      comm_registry_;

  std::vector<OpRec> ops_;
  std::uint32_t free_op_ = kNil;
  std::vector<MsgRec> msgs_;
  std::uint32_t free_msg_ = kNil;
  std::vector<Waiter> waiters_;
  std::uint32_t free_waiter_ = kNil;

  std::vector<std::unique_ptr<SimComm>> world_comms_;
  int live_ = 0;

  std::mt19937_64 rng_;
  std::normal_distribution<double> normal_{0.0, 1.0};

  std::uint64_t stats_msgs_ = 0;
  std::uint64_t stats_bytes_ = 0;

  /// Tracing session over the active recorder; empty tracers_ == disabled.
  /// The recorder outlives the cluster (env singleton, or a test-owned
  /// recorder installed around the cluster's lifetime).
  obs::TraceRecorder* trace_rec_ = nullptr;
  int trace_session_ = -1;
  std::vector<obs::TraceBuffer*> tracers_;
  /// Always-on wire accounting mirrored into the metrics registry, cached
  /// per topology level so the per-send hot path is two relaxed adds.
  struct LevelMetrics {
    obs::Counter* messages = nullptr;
    obs::Counter* bytes = nullptr;
  };
  std::array<LevelMetrics, topo::kNumLevels> level_metrics_{};
};

}  // namespace mca2a::sim
