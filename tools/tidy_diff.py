#!/usr/bin/env python3
"""Diff clang-tidy output against the committed baseline.

clang-tidy output (from run-clang-tidy or clang-tidy directly) is read on
stdin. Each `path:line:col: warning: message [check]` diagnostic is
normalized to `path | check | message` — line/column numbers are dropped so
unrelated edits above a pinned finding don't churn the baseline — and the
multiset is compared against tools/tidy_baseline.txt:

  * findings not in the baseline fail the run (new debt);
  * baseline entries that no longer fire are reported as removable
    (shrinking the baseline is welcome, and keeping it tight keeps the
    diff mode honest), but do not fail.

Usage:
    run-clang-tidy -quiet -p build $(git ls-files 'src/*.cpp') \
        | tools/tidy_diff.py [--baseline tools/tidy_baseline.txt] \
                             [--update]

--update rewrites the baseline from stdin instead of diffing (for the
rare, justified adoption of new debt). Stdlib only.
"""

import argparse
import collections
import os
import re
import sys

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):\d+:\d+:\s+(?:warning|error):\s+"
    r"(?P<message>.*?)\s+\[(?P<check>[A-Za-z0-9.,\-]+)\]\s*$")


def normalize(path, root):
    path = os.path.normpath(path)
    root = os.path.normpath(root) + os.sep
    if path.startswith(root):
        path = path[len(root):]
    return path.replace(os.sep, "/")


def parse(stream, root):
    found = collections.Counter()
    for line in stream:
        m = DIAG_RE.match(line.rstrip("\n"))
        if not m:
            continue
        key = "%s | %s | %s" % (normalize(m.group("path"), root),
                                m.group("check"), m.group("message"))
        found[key] += 1
    return found


def load_baseline(path):
    base = collections.Counter()
    if os.path.isfile(path):
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    base[stripped] += 1
    return base


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "tidy_baseline.txt"))
    ap.add_argument("--root", default=os.getcwd(),
                    help="prefix stripped from diagnostic paths")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from stdin")
    opts = ap.parse_args(argv)

    found = parse(sys.stdin, opts.root)
    if opts.update:
        with open(opts.baseline, "w", encoding="utf-8") as f:
            f.write("# clang-tidy baseline: one normalized finding per "
                    "line (path | check | message).\n"
                    "# Regenerate with tools/tidy_diff.py --update; only "
                    "grow it with a justification in the PR.\n")
            for key in sorted(found.elements()):
                f.write(key + "\n")
        print("tidy_diff: baseline rewritten with %d finding(s)"
              % sum(found.values()))
        return 0

    base = load_baseline(opts.baseline)
    new = found - base
    gone = base - found
    for key in sorted(gone.elements()):
        print("tidy_diff: fixed (remove from baseline): %s" % key)
    if new:
        for key in sorted(new.elements()):
            print("tidy_diff: NEW: %s" % key, file=sys.stderr)
        print("tidy_diff: %d new clang-tidy finding(s) over the baseline"
              % sum(new.values()), file=sys.stderr)
        return 1
    print("tidy_diff: clean (%d finding(s), all baselined)"
          % sum(found.values()))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
