#!/usr/bin/env python3
"""Offline markdown link checker for the docs/ site and README.

Walks the markdown files named on the command line (files or directories)
and verifies that every relative link target exists in the repository.
External links (http/https/mailto) are skipped — CI must not depend on
the network — and pure in-page anchors (#...) are checked against the
headings of the same file.

Exit status 1 (with one line per problem) when anything is broken, so the
CI docs job fails loudly.

Usage: tools/check_links.py README.md docs
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")
EXTERNAL = ("http://", "https://", "mailto:")


def strip_code(text: str) -> str:
    """Drop fenced blocks and inline code spans: markdown-syntax examples
    inside them are not links and must not fail the check."""
    return INLINE_CODE_RE.sub("", FENCE_RE.sub("", text))


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation out."""
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_in(path: Path) -> set:
    return {anchor_of(h) for h in HEADING_RE.findall(path.read_text())}


def collect(argv):
    for arg in argv:
        p = Path(arg)
        if p.is_dir():
            yield from sorted(p.rglob("*.md"))
        elif p.suffix == ".md":
            yield p


def main(argv) -> int:
    problems = []
    for md in collect(argv or ["README.md", "docs"]):
        text = strip_code(md.read_text())
        for target in LINK_RE.findall(text):
            if target.startswith(EXTERNAL):
                continue
            if target.startswith("#"):
                # Compare the raw fragment: GitHub anchor matching is
                # case-sensitive, so '#Tag-Streams' is dead even when
                # '## Tag Streams' exists.
                if target[1:] not in anchors_in(md):
                    problems.append(f"{md}: broken anchor '{target}'")
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{md}: broken link '{target}'")
            elif anchor and resolved.suffix == ".md":
                if anchor not in anchors_in(resolved):
                    problems.append(
                        f"{md}: broken anchor '{target}' (no such heading)")
    for p in problems:
        print(p)
    if not problems:
        print("all markdown links OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
