#!/usr/bin/env python3
"""Merge per-rank mca2a trace files into one clock-aligned Perfetto session.

Usage:
    tools/a2atrace.py [-o MERGED.trace.json] [--strict] [--quiet] \
                      FILE_OR_DIR [FILE_OR_DIR ...]

Every rank of a distributed run (A2A_TRACE=dir on the net backend) writes its
own `<backend>-rankNNNNN.trace.json` in its *local* clock domain. This tool:

  * applies each file's embedded clock calibration (`clock_offset_s`,
    `clock_drift`, `clock_base_s` in `otherData`, estimated against rank 0
    by midpoint-of-min-RTT pingpong probes at bootstrap) so all timestamps
    land in rank 0's timebase:  aligned = ts - offset - drift*(ts - base);
  * emits one Perfetto *process* row per rank (pid = world rank) with the
    original (session, lane) streams preserved as named threads
    (tid = session*1000 + lane);
  * passes message-flow arrows (`s`/`f` events) through, so Perfetto draws
    every cross-rank message from its net.send span to its net.recv span;
  * validates flow pairing: every flow id must have exactly one start and
    one finish, and no receive may finish before its matching send began
    (minus `flow_slack_us`: each endpoint's offset error is bounded by
    half its calibration min-RTT, and a message between two non-reference
    ranks accumulates both, so the slack is the worst min-RTT);
  * prints an analysis report: per-collective wall time and critical path
    (backward walk over flow arrows from the latest-finishing rank),
    per-phase time breakdown, and rank busy-time imbalance.

The merged file records `"merged": true` and `"flow_slack_us"` in
`otherData`; tools/check_trace.py uses both to enable its cross-rank
ordering checks. Exit status: 0 on success, 1 when --strict and a flow
invariant fails. Stdlib only, so CI can run it anywhere.
"""

import argparse
import json
import os
import sys

DISPATCH_CATS = ("coll.alltoall", "coll.op")


def iter_trace_files(paths):
    for p in paths:
        if os.path.isdir(p):
            for name in sorted(os.listdir(p)):
                if name.endswith(".trace.json"):
                    yield os.path.join(p, name)
        else:
            yield p


def load_rank_file(path):
    """Returns (meta, events) or raises ValueError."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("no traceEvents array")
    other = doc.get("otherData") or {}
    if other.get("merged"):
        return None, None  # a previous merge output: skip, never re-merge
    rank = other.get("world_rank", other.get("rank", 0))
    meta = {
        "path": path,
        "rank": int(rank),
        "backend": other.get("backend", "?"),
        "offset_s": float(other.get("clock_offset_s", 0.0)),
        "drift": float(other.get("clock_drift", 0.0)),
        "base_s": float(other.get("clock_base_s", 0.0)),
        "min_rtt_s": float(other.get("clock_min_rtt_s", 0.0)),
        "dropped": int(other.get("dropped_events", 0) or 0),
    }
    return meta, events


def align_us(ts_us, meta):
    """Map a local-clock microsecond timestamp into rank 0's timebase."""
    ts_s = ts_us * 1e-6
    correction_s = meta["offset_s"] + meta["drift"] * (ts_s - meta["base_s"])
    return ts_us - correction_s * 1e6


class Slice(object):
    __slots__ = ("rank", "tid", "name", "cat", "begin", "end")

    def __init__(self, rank, tid, name, cat, begin):
        self.rank = rank
        self.tid = tid
        self.name = name
        self.cat = cat
        self.begin = begin
        self.end = None


def merge(ranks):
    """ranks: list of (meta, events). Returns (merged_doc, slices, flows).

    slices: completed Slice objects (aligned times).
    flows: id -> {"s": [(rank, ts)], "f": [(rank, ts)]}.
    """
    out_events = []
    slices = []
    flows = {}
    total_dropped = 0
    for meta, events in ranks:
        rank = meta["rank"]
        total_dropped += meta["dropped"]
        out_events.append({
            "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
            "args": {"name": "rank %d (%s)" % (rank, meta["backend"])}})
        seen_tids = set()
        stacks = {}  # merged tid -> open Slice stack
        for ev in events:
            ph = ev.get("ph")
            if ph == "M":
                continue  # regenerated below from observed lanes
            tid = int(ev.get("pid", 0)) * 1000 + int(ev.get("tid", 0))
            ts = align_us(float(ev.get("ts", 0.0)), meta)
            out = dict(ev)
            out["pid"] = rank
            out["tid"] = tid
            out["ts"] = ts
            out_events.append(out)
            seen_tids.add((tid, ev.get("pid", 0), ev.get("tid", 0)))
            if ph == "B":
                stacks.setdefault(tid, []).append(Slice(
                    rank, tid, ev.get("name", "?"), ev.get("cat", ""), ts))
            elif ph == "E":
                stack = stacks.get(tid)
                if stack:
                    s = stack.pop()
                    s.end = ts
                    slices.append(s)
            elif ph in ("s", "f"):
                rec = flows.setdefault(ev.get("id"), {"s": [], "f": []})
                rec[ph].append((rank, ts))
        for tid, session, lane in sorted(seen_tids):
            name = "rank %d" % rank
            if session:
                name += " session %s" % session
            if lane:
                name += " stream %s" % lane
            out_events.append({
                "ph": "M", "name": "thread_name", "pid": rank, "tid": tid,
                "args": {"name": name}})
    slack_us = max([m["min_rtt_s"] for m, _ in ranks] or [0.0]) * 1e6
    doc = {
        "displayTimeUnit": "ms",
        "otherData": {
            "merged": True,
            "ranks": len(ranks),
            "flow_slack_us": slack_us,
            "dropped_events": total_dropped,
        },
        "traceEvents": out_events,
    }
    return doc, slices, flows


def check_flows(flows, slack_us, dropped):
    """Returns (errors, notes) about flow pairing and causal order."""
    problems = []
    for fid, rec in sorted(flows.items()):
        ns, nf = len(rec["s"]), len(rec["f"])
        if ns != 1 or nf != 1:
            problems.append("flow %s: %d start(s), %d finish(es) "
                            "(want exactly 1+1)" % (fid, ns, nf))
            continue
        (src, t_send), (dst, t_recv) = rec["s"][0], rec["f"][0]
        if t_recv < t_send - slack_us:
            problems.append(
                "flow %s: recv on rank %d at %.3fus precedes send on rank "
                "%d at %.3fus beyond the %.3fus calibration slack"
                % (fid, dst, t_recv, src, t_send, slack_us))
    if dropped:
        # A full ring drops events wholesale; a missing arrow endpoint is
        # then expected, not a stitching bug.
        return [], ["(demoted, %d dropped events) %s" % (dropped, p)
                    for p in problems]
    return problems, []


def collectives(slices):
    """Group dispatch slices into per-collective buckets.

    The k-th dispatch span on each rank belongs to collective k (collective
    calls are ordered identically on every rank — that is what makes them
    collectives). Returns a list of dicts with name, per-rank slices.
    """
    per_rank = {}
    for s in slices:
        if s.cat in DISPATCH_CATS and s.end is not None:
            per_rank.setdefault(s.rank, []).append(s)
    for spans in per_rank.values():
        spans.sort(key=lambda s: s.begin)
    if not per_rank:
        return []
    count = min(len(v) for v in per_rank.values())
    out = []
    for k in range(count):
        members = {r: per_rank[r][k] for r in per_rank}
        any_slice = next(iter(members.values()))
        out.append({"index": k, "name": any_slice.name, "members": members})
    return out


def critical_path(coll, flows):
    """Backward walk from the latest-finishing rank along flow arrows.

    Returns a list of (rank, enter_us, leave_us) segments, earliest first.
    """
    members = coll["members"]
    window_lo = min(s.begin for s in members.values())
    window_hi = max(s.end for s in members.values())
    # Arrows inside this collective's window, grouped by receiving rank.
    inbound = {}
    for rec in flows.values():
        if len(rec["s"]) == 1 and len(rec["f"]) == 1:
            (src, t_send), (dst, t_recv) = rec["s"][0], rec["f"][0]
            if src != dst and window_lo <= t_send and t_recv <= window_hi:
                inbound.setdefault(dst, []).append((t_recv, src, t_send))
    for arrows in inbound.values():
        arrows.sort()
    cur_rank = max(members, key=lambda r: members[r].end)
    cur_time = members[cur_rank].end
    segments = []
    for _ in range(8 * len(members) + 8):  # cycle guard
        arrows = inbound.get(cur_rank, [])
        best = None
        for t_recv, src, t_send in reversed(arrows):
            if t_recv <= cur_time and t_send < cur_time:
                best = (t_recv, src, t_send)
                break
        if best is None:
            segments.append((cur_rank, members[cur_rank].begin, cur_time))
            break
        t_recv, src, t_send = best
        segments.append((cur_rank, t_recv, cur_time))
        cur_rank, cur_time = src, t_send
    segments.reverse()
    return segments


def report(out, ranks, slices, flows, slack_us):
    colls = collectives(slices)
    print("merged %d rank(s)" % len(ranks), file=out)
    for meta, _ in ranks:
        line = "  rank %d (%s)" % (meta["rank"], meta["backend"])
        if meta["offset_s"] or meta["drift"]:
            line += ": offset %+.1fus, drift %+.3gppm, min RTT %.1fus" % (
                meta["offset_s"] * 1e6, meta["drift"] * 1e6,
                meta["min_rtt_s"] * 1e6)
        print(line, file=out)
    paired = sum(1 for r in flows.values()
                 if len(r["s"]) == 1 and len(r["f"]) == 1)
    print("flows: %d total, %d paired; causal slack %.1fus"
          % (len(flows), paired, slack_us), file=out)

    if colls:
        print("\nper-collective critical path:", file=out)
    for coll in colls:
        members = coll["members"]
        begin = min(s.begin for s in members.values())
        end = max(s.end for s in members.values())
        durs = sorted(s.end - s.begin for s in members.values())
        mean = sum(durs) / len(durs)
        print("  #%d %s: wall %.1fus, rank span mean %.1fus max %.1fus "
              "(imbalance %.2f)"
              % (coll["index"], coll["name"], end - begin, mean, durs[-1],
                 durs[-1] / mean if mean else 0.0), file=out)
        for rank, enter, leave in critical_path(coll, flows):
            print("    rank %d: %.1fus .. %.1fus (%.1fus)"
                  % (rank, enter - begin, leave - begin, leave - enter),
                  file=out)

    phases = {}
    for s in slices:
        if s.cat == "phase" and s.end is not None:
            agg = phases.setdefault(s.name, [0.0, 0])
            agg[0] += s.end - s.begin
            agg[1] += 1
    if phases:
        print("\nper-phase breakdown (inclusive, all ranks):", file=out)
        for name, (total, count) in sorted(phases.items(),
                                           key=lambda kv: -kv[1][0]):
            print("  %-16s %10.1fus in %d span(s)" % (name, total, count),
                  file=out)

    busy = {}
    for s in slices:
        if s.cat in DISPATCH_CATS and s.end is not None:
            busy[s.rank] = busy.get(s.rank, 0.0) + (s.end - s.begin)
    if len(busy) > 1:
        mean = sum(busy.values()) / len(busy)
        worst = max(busy, key=lambda r: busy[r])
        print("\nrank busy-time imbalance: max/mean %.2f (rank %d, %.1fus "
              "vs mean %.1fus)"
              % (busy[worst] / mean if mean else 0.0, worst, busy[worst],
                 mean), file=out)


def main(argv):
    ap = argparse.ArgumentParser(
        prog="a2atrace.py",
        description="merge per-rank mca2a traces into one aligned session")
    ap.add_argument("paths", nargs="+", metavar="FILE_OR_DIR")
    ap.add_argument("-o", "--output", metavar="OUT",
                    help="merged trace destination "
                         "(default: merged.trace.json next to the input)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when a flow invariant fails")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the analysis report")
    args = ap.parse_args(argv[1:])

    ranks = []
    for path in iter_trace_files(args.paths):
        try:
            meta, events = load_rank_file(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print("a2atrace: %s: %s" % (path, e), file=sys.stderr)
            return 1
        if meta is None:
            print("a2atrace: note: skipping already-merged %s" % path)
            continue
        ranks.append((meta, events))
    if not ranks:
        print("a2atrace: no *.trace.json inputs found", file=sys.stderr)
        return 1
    ranks.sort(key=lambda rf: rf[0]["rank"])

    doc, slices, flows = merge(ranks)
    slack_us = doc["otherData"]["flow_slack_us"]
    errors, notes = check_flows(flows, slack_us,
                                doc["otherData"]["dropped_events"])
    for n in notes:
        print("a2atrace: note: %s" % n, file=sys.stderr)
    for e in errors:
        print("a2atrace: FLOW ERROR: %s" % e, file=sys.stderr)

    out_path = args.output
    if not out_path:
        first = args.paths[0]
        base = first if os.path.isdir(first) else os.path.dirname(first) or "."
        out_path = os.path.join(base, "merged.trace.json")
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=None, separators=(",", ": "))
        f.write("\n")
    print("wrote %s (%d events)" % (out_path, len(doc["traceEvents"])))

    if not args.quiet:
        report(sys.stdout, ranks, slices, flows, slack_us)
    if errors and args.strict:
        print("a2atrace: %d flow invariant violation(s)" % len(errors),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
