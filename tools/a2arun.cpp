/// \file a2arun.cpp
/// Process launcher for the TCP backend (net/): the mpirun of mca2a.
///
///   a2arun -n 8 ./build/tests/net_grid alltoall
///   a2arun -n 4 --rails 4 --stripe 65536 ./prog args...
///   a2arun -n 16 --hostfile hosts.txt ./prog   (one host per line; ranks
///                                               round-robin, remote ranks
///                                               start via `ssh host env
///                                               A2A_NET_...=... prog`)
///
/// The launcher binds an ephemeral rendezvous listener (kept open and
/// inherited by rank 0 as A2A_NET_REND_FD, so the chosen port cannot be
/// stolen before rank 0 serves on it), spawns one process per rank with
/// A2A_NET_RANK / A2A_NET_SIZE / A2A_NET_REND (plus the knobs given as
/// flags) in its environment, and waits. If any rank fails — nonzero
/// exit, signal, or the launcher itself receives SIGINT/SIGTERM — every
/// other rank is killed (TERM, then KILL after a grace period), so a
/// broken local run never leaves orphan processes holding sockets. For
/// --hostfile remote ranks this is best-effort: the remote command runs
/// under a forced pty (ssh -tt) so that killing the local ssh client
/// hangs up the remote tty and SIGHUPs the rank, but a remote side that
/// ignores SIGHUP can still outlive the job.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "net/socket.hpp"

namespace {

struct Options {
  int n = 0;
  int rails = -1;                 // -1: leave A2A_NET_RAILS alone
  long long eager = -1;
  long long stripe = -1;
  double timeout = -1.0;
  std::string iface;
  std::string hostfile;
  std::string rendezvous;         // empty: 127.0.0.1:<free port>
  std::vector<std::string> prog;  // argv of the rank program
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -n <ranks> [options] <program> [args...]\n"
      "\n"
      "Launch <ranks> copies of <program> wired together as one net-backend\n"
      "job (each process calls mca2a::net::process_world()).\n"
      "\n"
      "options:\n"
      "  -n <ranks>          number of ranks (required)\n"
      "  --rails <k>         connections per peer pair    (A2A_NET_RAILS)\n"
      "  --eager <bytes>     eager/rendezvous threshold   (A2A_NET_EAGER)\n"
      "  --stripe <bytes>    multi-rail stripe threshold  (A2A_NET_STRIPE)\n"
      "  --iface <ip,...>    local addresses to bind      (A2A_NET_IFACE)\n"
      "  --timeout <sec>     bootstrap/shutdown deadline  (A2A_NET_TIMEOUT)\n"
      "  --rendezvous <h:p>  rendezvous address rank 0 binds; required for\n"
      "                      multi-host runs (default 127.0.0.1:<free port>)\n"
      "  --hostfile <file>   one host per line, ranks round-robin; remote\n"
      "                      ranks are started with ssh\n",
      argv0);
}

Options parse(int argc, char** argv) {
  Options o;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "a2arun: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "-n") {
      o.n = std::atoi(next("-n"));
    } else if (a == "--rails") {
      o.rails = std::atoi(next("--rails"));
    } else if (a == "--eager") {
      o.eager = std::atoll(next("--eager"));
    } else if (a == "--stripe") {
      o.stripe = std::atoll(next("--stripe"));
    } else if (a == "--timeout") {
      o.timeout = std::atof(next("--timeout"));
    } else if (a == "--iface") {
      o.iface = next("--iface");
    } else if (a == "--hostfile") {
      o.hostfile = next("--hostfile");
    } else if (a == "--rendezvous") {
      o.rendezvous = next("--rendezvous");
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--") {
      ++i;
      break;
    } else {
      break;
    }
  }
  for (; i < argc; ++i) {
    o.prog.push_back(argv[i]);
  }
  if (o.n < 1 || o.prog.empty()) {
    usage(argv[0]);
    std::exit(2);
  }
  return o;
}

volatile sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

std::vector<std::string> read_hosts(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "a2arun: cannot open hostfile %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::string> hosts;
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    const auto end = line.find_last_not_of(" \t\r");
    hosts.push_back(line.substr(start, end - start + 1));
  }
  if (hosts.empty()) {
    std::fprintf(stderr, "a2arun: hostfile %s lists no hosts\n",
                 path.c_str());
    std::exit(2);
  }
  return hosts;
}

bool is_local(const std::string& host) {
  return host.empty() || host == "localhost" || host == "127.0.0.1";
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

pid_t spawn_rank(const Options& o, int rank, const std::string& host,
                 const std::string& rend, int rend_fd) {
  // Rank-specific environment, applied in the child after fork.
  std::vector<std::pair<std::string, std::string>> env = {
      {"A2A_NET_RANK", std::to_string(rank)},
      {"A2A_NET_SIZE", std::to_string(o.n)},
      {"A2A_NET_REND", rend},
  };
  if (o.rails > 0) {
    env.emplace_back("A2A_NET_RAILS", std::to_string(o.rails));
  }
  if (o.eager >= 0) {
    env.emplace_back("A2A_NET_EAGER", std::to_string(o.eager));
  }
  if (o.stripe >= 0) {
    env.emplace_back("A2A_NET_STRIPE", std::to_string(o.stripe));
  }
  if (o.timeout > 0) {
    env.emplace_back("A2A_NET_TIMEOUT", std::to_string(o.timeout));
  }
  if (!o.iface.empty()) {
    env.emplace_back("A2A_NET_IFACE", o.iface);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("a2arun: fork");
    return -1;
  }
  if (pid > 0) {
    return pid;
  }

  // Child.
  if (is_local(host)) {
    // The pre-bound rendezvous listener goes to rank 0 (which serves on
    // it); every other rank closes its inherited copy so no data-plane
    // process holds a stray listening socket.
    if (rend_fd >= 0) {
      if (rank == 0) {
        env.emplace_back("A2A_NET_REND_FD", std::to_string(rend_fd));
      } else {
        ::close(rend_fd);
      }
    }
    for (const auto& [k, v] : env) {
      ::setenv(k.c_str(), v.c_str(), 1);
    }
    std::vector<char*> argv;
    for (const std::string& a : o.prog) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    std::perror("a2arun: exec");
  } else {
    // Remote rank: `ssh -tt host env K=V... prog args...`. Best-effort —
    // the program path must exist on the remote host and ssh must be
    // passwordless; the rendezvous address must be reachable from there.
    // -tt forces a remote pty, so killing the local ssh client hangs up
    // the tty and SIGHUPs the remote rank instead of orphaning it.
    std::string cmd = "env";
    for (const auto& [k, v] : env) {
      cmd += " " + k + "=" + shell_quote(v);
    }
    for (const std::string& a : o.prog) {
      cmd += " " + shell_quote(a);
    }
    ::execlp("ssh", "ssh", "-tt", "-o", "BatchMode=yes", host.c_str(),
             cmd.c_str(), static_cast<char*>(nullptr));
    std::perror("a2arun: exec ssh");
  }
  ::_exit(127);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  std::vector<std::string> hosts{"127.0.0.1"};
  if (!o.hostfile.empty()) {
    hosts = read_hosts(o.hostfile);
  }
  bool any_remote = false;
  for (const std::string& h : hosts) {
    any_remote = any_remote || !is_local(h);
  }
  std::string rend = o.rendezvous;
  int rend_fd = -1;  // pre-bound listener handed to local rank 0
  if (rend.empty()) {
    if (any_remote) {
      std::fprintf(stderr,
                   "a2arun: multi-host runs need --rendezvous <host:port> "
                   "with a host reachable from every machine\n");
      return 2;
    }
    // Bind the ephemeral rendezvous port NOW and keep the listener open:
    // rank 0 inherits it (A2A_NET_REND_FD), so nobody can grab the port
    // between picking and serving, and two concurrent jobs cannot collide.
    auto [listener, port] = mca2a::net::listen_tcp("127.0.0.1", 0, o.n + 8);
    rend = "127.0.0.1:" + std::to_string(port);
    rend_fd = listener.release();
  }

  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(o.n), -1);
  for (int r = 0; r < o.n; ++r) {
    const std::string& host =
        hosts[static_cast<std::size_t>(r) % hosts.size()];
    pids[static_cast<std::size_t>(r)] = spawn_rank(o, r, host, rend, rend_fd);
    if (pids[static_cast<std::size_t>(r)] < 0) {
      g_signal = SIGTERM;  // spawn failure: tear everything down
      break;
    }
  }
  if (rend_fd >= 0) {
    ::close(rend_fd);  // rank 0's inherited copy keeps the listener alive
  }

  // Wait for every rank; first failure (or a signal to the launcher)
  // triggers a teardown of the rest so no orphan survives.
  int exit_code = 0;
  int live = 0;
  for (pid_t p : pids) {
    live += p > 0 ? 1 : 0;
  }
  bool killed = false;
  auto kill_all = [&](int sig) {
    for (std::size_t r = 0; r < pids.size(); ++r) {
      if (pids[r] > 0) {
        ::kill(pids[r], sig);
      }
    }
  };
  while (live > 0) {
    if (g_signal != 0 && !killed) {
      kill_all(SIGTERM);
      killed = true;
      if (exit_code == 0) {
        exit_code = 128 + static_cast<int>(g_signal);
      }
    }
    int status = 0;
    const pid_t p = ::waitpid(-1, &status, killed ? WNOHANG : 0);
    if (p < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (p == 0) {
      // Teardown in progress: poll, escalating to SIGKILL after ~2 s.
      static int grace_ms = 2000;
      ::usleep(50 * 1000);
      grace_ms -= 50;
      if (grace_ms <= 0) {
        kill_all(SIGKILL);
      }
      continue;
    }
    int rank = -1;
    for (std::size_t r = 0; r < pids.size(); ++r) {
      if (pids[r] == p) {
        rank = static_cast<int>(r);
        pids[r] = -1;
        break;
      }
    }
    if (rank < 0) {
      continue;  // not one of ours (shouldn't happen)
    }
    --live;
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
      if (!killed) {
        std::fprintf(stderr, "a2arun: rank %d killed by signal %d\n", rank,
                     WTERMSIG(status));
      }
    }
    if (code != 0 && exit_code == 0) {
      exit_code = code;
      if (!killed) {
        std::fprintf(stderr,
                     "a2arun: rank %d failed (exit %d), stopping the job\n",
                     rank, code);
      }
    }
    if (code != 0 && !killed) {
      kill_all(SIGTERM);
      killed = true;
    }
  }
  return exit_code;
}
