#!/usr/bin/env python3
"""mca2a invariant linter: repo-specific concurrency/API rules that neither
the compiler nor clang-tidy can express.

Checkers (each can be run alone with --only):

  raw-tag       Library code must mint message tags through rt::tags::make()
                in a stream drawn from the communicator. Flags
                kInternalTagBase arithmetic outside runtime/tags.hpp and
                send/recv/isend/irecv calls whose tag argument is a bare
                integer literal — both are how silent tag collisions (and
                cross-matched messages) were introduced historically.
  msg-nosignal  Every socket write in src/net/ must go through ::send(...,
                MSG_NOSIGNAL): a dead peer has to surface as EPIPE ->
                conn_lost() -> runtime_error, not as a SIGPIPE that kills
                the rank process. Bare ::write/::writev/::sendto/::sendmsg
                on sockets are flagged too (no MSG_NOSIGNAL path).
  env-knob      The process environment is read in exactly one place
                (src/runtime/env.cpp); every other getenv() call is
                flagged. Every `A2A_*` knob the code reads (a quoted
                "A2A_..." string literal) must be documented in the knob
                tables (README.md / docs/*.md), and every documented knob
                must still exist in code — the two drift silently
                otherwise.
  no-stdout     Library code (src/) must not write to stdout or pull in
                iostream: stdout belongs to the application (benches emit
                CSV/JSON there), and iostream adds static-init-order
                hazards to a library linked into rank processes.
                fprintf(stderr, ...) diagnostics and snprintf formatting
                are fine.

Usage:
    tools/a2alint.py [--root REPO] [--only CHECKER] [--self-test]

--self-test runs every checker against tools/lint_fixtures/ and verifies
that seeded violations are caught and clean fixtures pass; CI runs it
before trusting a clean tree. Stdlib only. Exit status: 0 clean, 1
findings (or self-test failure), 2 usage error.
"""

import argparse
import os
import re
import sys

# --- source model ------------------------------------------------------------


def strip_comments(text):
    """Remove // and /* */ comments, preserving string/char literals and
    line numbers (newlines inside block comments are kept)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | dq | sq
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "dq"
            elif c == "'":
                state = "sq"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("dq", "sq"):
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif (state == "dq" and c == '"') or (state == "sq" and c == "'"):
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def call_args(text, open_paren):
    """Return (argument text, end index) of the call whose '(' is at
    open_paren, or (None, open_paren) when unbalanced."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : j], j
    return None, open_paren


def split_top_level(args):
    """Split an argument list on top-level commas."""
    parts, depth, cur = [], 0, []
    for c in args:
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        if c == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class Finding:
    def __init__(self, checker, path, line, message):
        self.checker = checker
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.checker,
                                   self.message)


def cxx_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, names in os.walk(base):
            # The fixtures are deliberately broken; only --self-test reads
            # them (with a fixture case as the root).
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(names):
                if name.endswith((".cpp", ".hpp", ".h", ".cc")):
                    yield os.path.join(dirpath, name)


def read(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


# --- checkers ----------------------------------------------------------------

INT_LITERAL_RE = re.compile(r"^(0[xX][0-9a-fA-F]+|\d+)[uUlL]*$")
# No leading :: — POSIX ::send/::recv take flags, not tags, and belong to
# the msg-nosignal checker.
SEND_CALL_RE = re.compile(r"(?<![\w:])(send|recv|isend|irecv)\s*\(")
TAG_ARITH_RE = re.compile(r"\bkInternalTagBase\s*[+|\-]")


def check_raw_tag(root, files):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        if rel.endswith(os.path.join("runtime", "tags.hpp")):
            continue
        text = strip_comments(read(path))
        for m in TAG_ARITH_RE.finditer(text):
            findings.append(Finding(
                "raw-tag", rel, line_of(text, m.start()),
                "tag built from kInternalTagBase arithmetic; use "
                "rt::tags::make(<op offset>, tag_stream)"))
        for m in SEND_CALL_RE.finditer(text):
            args, _ = call_args(text, m.end() - 1)
            if args is None:
                continue
            parts = split_top_level(args)
            # Comm::send/recv/isend/irecv all take the tag last.
            if len(parts) >= 3 and INT_LITERAL_RE.match(parts[-1]):
                findings.append(Finding(
                    "raw-tag", rel, line_of(text, m.start()),
                    "%s() with literal tag %s; mint tags with "
                    "rt::tags::make() in a stream from "
                    "Comm::acquire_tag_stream()" % (m.group(1), parts[-1])))
    return findings


SOCKET_WRITE_RE = re.compile(r"::\s*(send|write|writev|sendto|sendmsg)\s*\(")


def check_msg_nosignal(root, files):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        if not rel.startswith(os.path.join("src", "net") + os.sep):
            continue
        text = strip_comments(read(path))
        for m in SOCKET_WRITE_RE.finditer(text):
            fn = m.group(1)
            args, _ = call_args(text, m.end() - 1)
            line = line_of(text, m.start())
            if fn == "send":
                if args is None or "MSG_NOSIGNAL" not in args:
                    findings.append(Finding(
                        "msg-nosignal", rel, line,
                        "::send() without MSG_NOSIGNAL: a dead peer raises "
                        "SIGPIPE and kills the rank process"))
            else:
                findings.append(Finding(
                    "msg-nosignal", rel, line,
                    "::%s() on a net-backend fd: use ::send(..., "
                    "MSG_NOSIGNAL) so peer death surfaces as EPIPE" % fn))
    return findings


GETENV_RE = re.compile(r"\b(?:std\s*::\s*)?(?:secure_)?getenv\s*\(")
KNOB_LITERAL_RE = re.compile(r'"(A2A_[A-Z0-9_]+)"')
KNOB_DOC_RE = re.compile(r"(?<![A-Z0-9_])(A2A_[A-Z0-9_]+)(\*?)")


def check_env_knob(root, files):
    findings = []
    used = {}  # knob -> first (rel, line)
    env_cpp = os.path.join("src", "runtime", "env.cpp")
    for path in files:
        rel = os.path.relpath(path, root)
        text = strip_comments(read(path))
        if rel != env_cpp:
            for m in GETENV_RE.finditer(text):
                findings.append(Finding(
                    "env-knob", rel, line_of(text, m.start()),
                    "direct getenv(): read knobs through the validated "
                    "rt::env helpers (runtime/env.hpp)"))
        for m in KNOB_LITERAL_RE.finditer(text):
            used.setdefault(m.group(1), (rel, line_of(text, m.start())))

    documented = set()
    doc_paths = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                doc_paths.append(os.path.join(docs_dir, name))
    for path in doc_paths:
        if os.path.isfile(path):
            for m in KNOB_DOC_RE.finditer(read(path)):
                # `A2A_NET_*`-style prefix mentions in prose are not knob
                # names; skip anything with a trailing underscore or glob.
                if m.group(2) or m.group(1).endswith("_"):
                    continue
                documented.add(m.group(1))

    for knob in sorted(used):
        if knob not in documented:
            rel, line = used[knob]
            findings.append(Finding(
                "env-knob", rel, line,
                "knob %s is read here but missing from the docs knob "
                "tables (README.md / docs/*.md)" % knob))
    for knob in sorted(documented - set(used)):
        # Wildcard-ish mentions (A2A_NET_ as a prefix in prose) never parse
        # as a full knob, so anything here is a real stale entry.
        findings.append(Finding(
            "env-knob", "docs", 0,
            "knob %s is documented but no code reads it (stale docs or "
            "renamed knob)" % knob))
    return findings


STDOUT_RES = [
    (re.compile(r"#\s*include\s*<iostream>"),
     "iostream in library code: use fprintf(stderr, ...) for diagnostics"),
    (re.compile(r"\bstd\s*::\s*(cout|clog)\b"),
     "std::%s writes to the application's stdout"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?printf\s*\("),
     "printf() writes to the application's stdout; format with snprintf "
     "or diagnose via fprintf(stderr, ...)"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?puts\s*\("),
     "puts() writes to the application's stdout"),
    (re.compile(r"\bfprintf\s*\(\s*stdout\b"),
     "fprintf(stdout, ...) in library code"),
]


def check_no_stdout(root, files):
    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        if not rel.startswith("src" + os.sep):
            continue
        text = strip_comments(read(path))
        for regex, msg in STDOUT_RES:
            for m in regex.finditer(text):
                rendered = msg % m.group(1) if "%s" in msg else msg
                findings.append(Finding(
                    "no-stdout", rel, line_of(text, m.start()), rendered))
    return findings


CHECKERS = {
    "raw-tag": (check_raw_tag, ("src",)),
    "msg-nosignal": (check_msg_nosignal, ("src",)),
    "env-knob": (check_env_knob, ("src", "bench", "examples", "tools",
                                  "tests")),
    "no-stdout": (check_no_stdout, ("src",)),
}


def run_checkers(root, only=None):
    findings = []
    for name, (fn, subdirs) in sorted(CHECKERS.items()):
        if only and name != only:
            continue
        findings.extend(fn(root, list(cxx_files(root, subdirs))))
    return findings


# --- fixture self-test -------------------------------------------------------


def self_test(repo_root):
    """Run every checker against tools/lint_fixtures/<case>/ trees. Each
    case directory is a miniature repo; expect.txt lists one
    `checker relative/path` pair per expected finding (empty = must be
    clean)."""
    fixtures = os.path.join(repo_root, "tools", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print("a2alint self-test: missing %s" % fixtures, file=sys.stderr)
        return 1
    failures = 0
    for case in sorted(os.listdir(fixtures)):
        case_dir = os.path.join(fixtures, case)
        if not os.path.isdir(case_dir):
            continue
        expect_path = os.path.join(case_dir, "expect.txt")
        expected = set()
        if os.path.isfile(expect_path):
            for raw_line in read(expect_path).splitlines():
                stripped = raw_line.strip()
                if stripped and not stripped.startswith("#"):
                    checker, rel = stripped.split()
                    expected.add((checker, rel))
        got = set()
        for f in run_checkers(case_dir):
            got.add((f.checker, f.path.replace(os.sep, "/")))
        if got != expected:
            failures += 1
            print("self-test FAIL: %s" % case, file=sys.stderr)
            for miss in sorted(expected - got):
                print("  missed expected finding: %s %s" % miss,
                      file=sys.stderr)
            for extra in sorted(got - expected):
                print("  unexpected finding: %s %s" % extra, file=sys.stderr)
        else:
            print("self-test ok: %s (%d findings)" % (case, len(got)))
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--only", choices=sorted(CHECKERS),
                    help="run a single checker")
    ap.add_argument("--self-test", action="store_true",
                    help="run the checkers against tools/lint_fixtures/")
    opts = ap.parse_args(argv)
    root = opts.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if opts.self_test:
        return self_test(root)
    findings = run_checkers(root, opts.only)
    for f in findings:
        print(f)
    if findings:
        print("a2alint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("a2alint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
