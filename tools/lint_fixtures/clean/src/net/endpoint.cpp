// Fixture: well-behaved net code. Socket writes carry MSG_NOSIGNAL (even
// split across lines), tags come from tags::make, diagnostics go to
// stderr. A send() mention in a comment or string must not trip anything:
// ::write(fd, ...) in prose is fine too.
#include <cstdio>
#include <sys/socket.h>
#include "runtime/tags.hpp"

void pump(int fd, const char* p, unsigned long n, int stream) {
  const int tag = make(32, stream);
  (void)tag;
  long r = ::send(fd, p,
                  n, MSG_NOSIGNAL);
  if (r < 0) {
    std::fprintf(stderr, "send failed: ::write would have been worse\n");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "sent %ld", r);
}
