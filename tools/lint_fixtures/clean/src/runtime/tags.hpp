#pragma once
// Fixture: the one file allowed to do kInternalTagBase arithmetic.
inline constexpr int kInternalTagBase = 1 << 20;
inline constexpr int kStreamStride = 128;
inline int make(int op, int stream) {
  return kInternalTagBase + stream * kStreamStride + op;
}
