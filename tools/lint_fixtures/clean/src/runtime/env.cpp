// Fixture: the single sanctioned getenv() chokepoint.
#include <cstdlib>
const char* raw(const char* name) { return std::getenv(name); }
bool fast() { return raw("A2A_FAST") != nullptr; }
