// Fixture: library code writing to the application's stdout.
#include <cstdio>
#include <iostream>

void report(int x) {
  std::cout << x << "\n";
  printf("%d\n", x);
}
