// Fixture: both historical raw-tag failure modes.
struct Comm {
  void send(const void* buf, int dst, int tag);
  void irecv(void* buf, int src, int tag);
};

void exchange(Comm& c, const void* s, void* r) {
  const int kTag = (1 << 20) + 33;  // literal base arith is caught below
  c.send(s, 1, kTag);
  c.irecv(r, 0, 42);  // literal tag straight into the call
}

inline constexpr int kInternalTagBase = 1 << 20;
const int kHandRolled = kInternalTagBase + 7;
