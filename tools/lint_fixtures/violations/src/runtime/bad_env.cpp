// Fixture: a getenv() outside env.cpp reading an undocumented knob.
#include <cstdlib>
bool secret() { return std::getenv("A2A_SECRET_KNOB") != nullptr; }
