// Fixture: SIGPIPE-prone socket writes.
#include <sys/socket.h>
#include <unistd.h>

void pump(int fd, const char* p, unsigned long n) {
  (void)::send(fd, p, n, 0);  // no MSG_NOSIGNAL
  (void)::write(fd, p, n);    // write() has no MSG_NOSIGNAL at all
}
