#!/usr/bin/env python3
"""Validate mca2a flight-recorder trace files (Chrome trace-event JSON).

Usage:
    tools/check_trace.py FILE_OR_DIR [FILE_OR_DIR ...]

For every `*.trace.json` argument (directories are scanned for them), check:

  * the file parses as JSON and has a `traceEvents` array;
  * every event carries the required keys for its phase type
    (B/E: name on B, ts/pid/tid on both; i: name/ts/s; M: name/args);
  * begin/end events balance per (pid, tid) lane — never more E than B,
    and every B closed by the end of the lane;
  * timestamps are monotonically non-decreasing per (pid, tid) lane,
    in file order (the recorder appends in time order per lane);
  * `otherData.dropped_events`, when present, is reported (dropped begins
    are legal — the ring bounds memory — but worth surfacing).

Exit status: 0 when every file passes, 1 otherwise. Stdlib only, so CI can
run it anywhere.
"""

import json
import os
import sys


def iter_trace_files(paths):
    for p in paths:
        if os.path.isdir(p):
            for name in sorted(os.listdir(p)):
                if name.endswith(".trace.json"):
                    yield os.path.join(p, name)
        else:
            yield p


def check_file(path):
    """Returns a list of error strings (empty = pass)."""
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["unreadable or invalid JSON: %s" % e]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents array"]

    depth = {}    # (pid, tid) -> open-span depth
    last_ts = {}  # (pid, tid) -> last timestamp seen
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append("event %d: not an object" % i)
            continue
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "M"):
            errors.append("event %d: unknown ph %r" % (i, ph))
            continue
        if ph == "M":
            if "name" not in ev or "args" not in ev:
                errors.append("event %d: metadata without name/args" % i)
            continue
        for key in ("ts", "pid", "tid"):
            if key not in ev:
                errors.append("event %d (%s): missing %r" % (i, ph, key))
        if ph in ("B", "i") and "name" not in ev:
            errors.append("event %d (%s): missing name" % (i, ph))
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            errors.append("event %d: instant without a valid scope" % i)
        lane = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            prev = last_ts.get(lane)
            if prev is not None and ts < prev:
                errors.append(
                    "event %d: ts %r < previous %r on lane %r"
                    % (i, ts, prev, lane))
            last_ts[lane] = ts
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            d = depth.get(lane, 0)
            if d == 0:
                errors.append("event %d: E without matching B on lane %r"
                              % (i, lane))
            else:
                depth[lane] = d - 1
    for lane, d in sorted(depth.items()):
        if d != 0:
            errors.append("lane %r: %d unclosed span(s)" % (lane, d))

    dropped = (doc.get("otherData") or {}).get("dropped_events")
    try:
        dropped = int(dropped or 0)
    except (TypeError, ValueError):
        dropped = 0
    if dropped:
        print("%s: note: %s dropped event(s) (ring was full)"
              % (path, dropped))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = list(iter_trace_files(argv[1:]))
    if not files:
        print("check_trace: no *.trace.json files found", file=sys.stderr)
        return 1
    failed = 0
    for path in files:
        errors = check_file(path)
        if errors:
            failed += 1
            for e in errors:
                print("%s: FAIL: %s" % (path, e), file=sys.stderr)
        else:
            print("%s: OK" % path)
    if failed:
        print("check_trace: %d/%d file(s) failed" % (failed, len(files)),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
