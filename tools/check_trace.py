#!/usr/bin/env python3
"""Validate mca2a flight-recorder trace files (Chrome trace-event JSON).

Usage:
    tools/check_trace.py FILE_OR_DIR [FILE_OR_DIR ...]

For every `*.trace.json` argument (directories are scanned for them), check:

  * the file parses as JSON and has a `traceEvents` array;
  * every event carries the required keys for its phase type
    (B/E: name on B, ts/pid/tid on both; i: name/ts/s; M: name/args;
    s/f: id/name/ts/pid/tid, and f must bind to the enclosing slice
    with `"bp": "e"`);
  * begin/end events balance per (pid, tid) lane — never more E than B,
    and every B closed by the end of the lane;
  * timestamps are monotonically non-decreasing per (pid, tid) lane,
    in file order (the recorder appends in time order per lane);
  * message flows pair up *across the whole invocation*: every flow id
    must appear exactly once as a start (`s`, inside the sending span)
    and once as a finish (`f`, inside the receiving span). Per-rank
    files carry only their half of each arrow, so pass the entire trace
    directory in one invocation, the way tools/a2atrace.py consumes it;
  * in a merged file (`otherData.merged`, written by tools/a2atrace.py)
    a finish may not precede its start by more than the recorded
    `flow_slack_us` — receives never happen before their sends once the
    clocks are aligned, up to the calibration error bound;
  * `otherData.dropped_events`, when present, is reported, and flow
    pairing errors are demoted to notes — dropped begins are legal (the
    ring bounds memory) and take arrow endpoints with them.

Exit status: 0 when every file passes, 1 otherwise. Stdlib only, so CI can
run it anywhere.
"""

import json
import os
import sys


def iter_trace_files(paths):
    for p in paths:
        if os.path.isdir(p):
            for name in sorted(os.listdir(p)):
                if name.endswith(".trace.json"):
                    yield os.path.join(p, name)
        else:
            yield p


def check_file(path, flow_reg):
    """Returns (errors, dropped_count); accumulates flows into flow_reg.

    flow_reg: flow id -> {"s": [(path, ts)], "f": [(path, ts)]}.
    """
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["unreadable or invalid JSON: %s" % e], 0

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents array"], 0

    other = doc.get("otherData") or {}
    merged = bool(other.get("merged"))
    try:
        slack = float(other.get("flow_slack_us", 0.0) or 0.0)
    except (TypeError, ValueError):
        slack = 0.0

    depth = {}    # (pid, tid) -> open-span depth
    last_ts = {}  # (pid, tid) -> last timestamp seen
    local_flows = {}  # id -> {"s": [...], "f": [...]} for the merged check
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append("event %d: not an object" % i)
            continue
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "M", "s", "f"):
            errors.append("event %d: unknown ph %r" % (i, ph))
            continue
        if ph == "M":
            if "name" not in ev or "args" not in ev:
                errors.append("event %d: metadata without name/args" % i)
            continue
        for key in ("ts", "pid", "tid"):
            if key not in ev:
                errors.append("event %d (%s): missing %r" % (i, ph, key))
        if ph in ("B", "i", "s", "f") and "name" not in ev:
            errors.append("event %d (%s): missing name" % (i, ph))
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            errors.append("event %d: instant without a valid scope" % i)
        if ph in ("s", "f"):
            fid = ev.get("id")
            if fid is None:
                errors.append("event %d (%s): flow event without id" % (i, ph))
                continue
            if ph == "f" and ev.get("bp") != "e":
                errors.append(
                    "event %d: flow finish must bind to its enclosing "
                    "slice (bp: \"e\")" % i)
            ts = ev.get("ts")
            if not merged:
                # Per-rank files carry only their half of each arrow; the
                # other half lives in a peer's file, so pairing is checked
                # invocation-globally. A merged file is self-contained and
                # pairs locally instead (keeping a directory that holds
                # both the per-rank files and their merge double-free).
                flow_reg.setdefault(fid,
                                    {"s": [], "f": []})[ph].append((path, ts))
            local_flows.setdefault(fid, {"s": [], "f": []})[ph].append(ts)
            continue  # flow ts is the enclosing span's clock, not the lane's
        lane = (ev.get("pid"), ev.get("tid"))
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            prev = last_ts.get(lane)
            if prev is not None and ts < prev:
                errors.append(
                    "event %d: ts %r < previous %r on lane %r"
                    % (i, ts, prev, lane))
            last_ts[lane] = ts
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            d = depth.get(lane, 0)
            if d == 0:
                errors.append("event %d: E without matching B on lane %r"
                              % (i, lane))
            else:
                depth[lane] = d - 1
    for lane, d in sorted(depth.items()):
        if d != 0:
            errors.append("lane %r: %d unclosed span(s)" % (lane, d))

    dropped = other.get("dropped_events")
    try:
        dropped = int(dropped or 0)
    except (TypeError, ValueError):
        dropped = 0
    if dropped:
        print("%s: note: %s dropped event(s) (ring was full)"
              % (path, dropped))

    if merged:
        # Self-contained file: every arrow must pair up inside it, and —
        # clocks now aligned — a receive must not precede its send beyond
        # the calibration slack. Per-rank files stay exempt from the order
        # check: their clocks are raw and the skew is exactly what
        # a2atrace.py corrects.
        flow_problems = []
        for fid, rec in sorted(local_flows.items()):
            ns, nf = len(rec["s"]), len(rec["f"])
            if ns != 1 or nf != 1:
                flow_problems.append(
                    "flow %s: %d start(s), %d finish(es) in merged file "
                    "(want exactly 1+1)" % (fid, ns, nf))
                continue
            t_send, t_recv = rec["s"][0], rec["f"][0]
            if (isinstance(t_send, (int, float))
                    and isinstance(t_recv, (int, float))
                    and t_recv < t_send - slack):
                flow_problems.append(
                    "flow %s: finish ts %r precedes start ts %r beyond "
                    "the %gus slack" % (fid, t_recv, t_send, slack))
        if flow_problems and dropped:
            for p in flow_problems:
                print("%s: note (ring dropped events): %s" % (path, p))
        else:
            errors.extend(flow_problems)
    return errors, dropped


def check_flow_pairing(flow_reg):
    """Invocation-global check: each id pairs exactly one s with one f."""
    errors = []
    for fid, rec in sorted(flow_reg.items()):
        ns, nf = len(rec["s"]), len(rec["f"])
        if ns == 1 and nf == 1:
            continue
        where = sorted({os.path.basename(p)
                        for p, _ in rec["s"] + rec["f"]})
        errors.append("flow %s: %d start(s), %d finish(es) in %s "
                      "(want exactly 1+1)" % (fid, ns, nf, ", ".join(where)))
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = list(iter_trace_files(argv[1:]))
    if not files:
        print("check_trace: no *.trace.json files found", file=sys.stderr)
        return 1
    failed = 0
    flow_reg = {}
    total_dropped = 0
    for path in files:
        errors, dropped = check_file(path, flow_reg)
        total_dropped += dropped
        if errors:
            failed += 1
            for e in errors:
                print("%s: FAIL: %s" % (path, e), file=sys.stderr)
        else:
            print("%s: OK" % path)
    pairing = check_flow_pairing(flow_reg)
    if pairing and total_dropped:
        for e in pairing:
            print("check_trace: note (ring dropped %d events): %s"
                  % (total_dropped, e))
    elif pairing:
        failed += 1
        for e in pairing:
            print("check_trace: FAIL: %s" % e, file=sys.stderr)
    if failed:
        print("check_trace: %d/%d file(s)/check(s) failed"
              % (failed, len(files)), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
