#!/usr/bin/env python3
"""Diff two figure-bench runs and flag regressions beyond a noise threshold.

Usage:
    tools/bench_compare.py [--threshold PCT] [--strict] BASELINE CURRENT

BASELINE and CURRENT are either single `BENCH_<fig>.json` files (the format
bench/bench_common.cpp writes: {"id", "series", "points": [{"series", "x",
"seconds"}]}) or directories of them — directories are matched by file name,
so `tools/bench_compare.py bench/baselines build/bench` compares every
figure present in both.

For every (series, x) point present on both sides the relative delta
`(current - baseline) / baseline` is computed. Points slower than the
threshold (default 10%, about the run-to-run noise of the simulator
figures on a loaded CI box) are flagged as regressions, points faster
than the threshold as improvements; everything else is noise.

Exit status: 0, or 1 with --strict when any regression was flagged. The CI
job runs it informationally (no --strict) so a noisy box cannot fail the
build, while the report lands in the job log next to the uploaded
artifacts. Stdlib only.
"""

import argparse
import json
import os
import sys


def load_points(path):
    """BENCH json -> {(series, x): seconds}."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    points = {}
    for p in doc.get("points", []):
        points[(p.get("series"), p.get("x"))] = float(p.get("seconds", 0.0))
    return doc.get("id", os.path.basename(path)), points


def pair_inputs(baseline, current):
    """Yields (label, baseline_path, current_path) pairs."""
    if os.path.isdir(baseline) != os.path.isdir(current):
        raise ValueError("BASELINE and CURRENT must both be files or both "
                         "be directories")
    if not os.path.isdir(baseline):
        yield os.path.basename(current), baseline, current
        return
    base_names = {n for n in os.listdir(baseline)
                  if n.startswith("BENCH_") and n.endswith(".json")}
    cur_names = {n for n in os.listdir(current)
                 if n.startswith("BENCH_") and n.endswith(".json")}
    for name in sorted(base_names & cur_names):
        yield name, os.path.join(baseline, name), os.path.join(current, name)
    for name in sorted(base_names - cur_names):
        print("bench_compare: note: %s only in baseline" % name)
    for name in sorted(cur_names - base_names):
        print("bench_compare: note: %s only in current (no baseline yet)"
              % name)


def compare_one(label, base_path, cur_path, threshold):
    """Returns (regressions, improvements, compared) counts."""
    try:
        fig_id, base = load_points(base_path)
        _, cur = load_points(cur_path)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print("bench_compare: %s: unreadable: %s" % (label, e),
              file=sys.stderr)
        return 0, 0, 0
    regressions = improvements = compared = 0
    for key in sorted(base.keys() & cur.keys(),
                      key=lambda k: (str(k[0]), str(k[1]))):
        b, c = base[key], cur[key]
        if b <= 0.0:
            continue
        compared += 1
        delta = (c - b) / b
        if delta > threshold:
            regressions += 1
            verdict = "REGRESSION"
        elif delta < -threshold:
            improvements += 1
            verdict = "improvement"
        else:
            continue
        series, x = key
        print("  %s [%s @ %s]: %.3gs -> %.3gs (%+.1f%%) %s"
              % (fig_id, series, x, b, c, 100.0 * delta, verdict))
    return regressions, improvements, compared


def main(argv):
    ap = argparse.ArgumentParser(
        prog="bench_compare.py",
        description="diff two BENCH_*.json runs and flag regressions")
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0, metavar="PCT",
                    help="noise threshold in percent (default 10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any regression was flagged")
    args = ap.parse_args(argv[1:])
    threshold = args.threshold / 100.0

    total_reg = total_imp = total_cmp = figures = 0
    try:
        pairs = list(pair_inputs(args.baseline, args.current))
    except ValueError as e:
        print("bench_compare: %s" % e, file=sys.stderr)
        return 2
    for label, base_path, cur_path in pairs:
        reg, imp, cmp_n = compare_one(label, base_path, cur_path, threshold)
        total_reg += reg
        total_imp += imp
        total_cmp += cmp_n
        figures += 1 if cmp_n else 0
    print("bench_compare: %d figure(s), %d point(s) compared: "
          "%d regression(s), %d improvement(s) beyond %.0f%%"
          % (figures, total_cmp, total_reg, total_imp, args.threshold))
    if figures == 0:
        print("bench_compare: nothing to compare", file=sys.stderr)
        return 2
    return 1 if (args.strict and total_reg) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
