/// Tests for the real-network (TCP) backend that run inside the ordinary
/// gtest binary — and therefore inside the ASan job — with no launcher:
/// every "rank" is a thread owning its own net::Endpoint, and the mesh
/// between them is real loopback sockets (bootstrap, epoll progress, wire
/// framing, rails — the full stack except process isolation, which
/// tests/net/net_grid.cpp covers under tools/a2arun).

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/bootstrap.hpp"
#include "net/net_comm.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "runtime/task.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Request;
using rt::Task;

/// Launch `n` thread-ranks over real loopback sockets and run `body` on
/// each rank's world communicator. Rethrows the first rank's exception
/// (by rank order) after all threads joined.
void run_net_threads(int n, const std::function<Task<void>(Comm&)>& body,
                     int rails = 2, std::size_t eager_max = 16 * 1024,
                     std::size_t stripe_min = 256 * 1024) {
  // Bind the rendezvous listener up front and hand it to rank 0, exactly
  // as the launchers do (NetOptions::rendezvous_fd): no pick-then-rebind
  // port race, even with many test jobs on one machine.
  auto [listener, port] = net::listen_tcp("127.0.0.1", 0, n + 8);
  const int rend_fd = listener.release();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        net::NetOptions opts;
        opts.rank = rank;
        opts.size = n;
        opts.rendezvous = net::Address{"127.0.0.1", port};
        opts.rendezvous_fd = rank == 0 ? rend_fd : -1;
        opts.rails = rails;
        opts.eager_max = eager_max;
        opts.stripe_min = stripe_min;
        opts.timeout_s = 30.0;
        auto world = net::NetComm::connect_world(opts);
        rt::sync_wait(body(*world));
      } catch (...) {
        errors[static_cast<std::size_t>(rank)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& e : errors) {
    if (e) {
      std::rethrow_exception(e);
    }
  }
}

TEST(NetWire, HeaderRoundTrip) {
  net::FrameHeader h;
  h.kind = net::FrameKind::kData;
  h.tag = -7;
  h.comm_key = 0xDEADBEEFCAFEF00Dull;
  h.src = 1234;
  h.rail = 3;
  h.bytes = (1ull << 40) + 17;
  h.token = 42;
  h.token2 = 0xFFFFFFFFFFFFFFFFull;
  std::byte buf[net::kHeaderBytes];
  net::encode(h, buf);
  const net::FrameHeader d = net::decode(buf);
  EXPECT_EQ(d.kind, h.kind);
  EXPECT_EQ(d.tag, h.tag);
  EXPECT_EQ(d.comm_key, h.comm_key);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.rail, h.rail);
  EXPECT_EQ(d.bytes, h.bytes);
  EXPECT_EQ(d.token, h.token);
  EXPECT_EQ(d.token2, h.token2);
}

TEST(NetWire, BadMagicAndKindThrow) {
  net::FrameHeader h;
  h.kind = net::FrameKind::kEager;
  std::byte buf[net::kHeaderBytes];
  net::encode(h, buf);
  std::byte bad[net::kHeaderBytes];
  std::memcpy(bad, buf, sizeof(buf));
  bad[3] = std::byte{0x00};  // clobber the magic nibble
  EXPECT_THROW(net::decode(bad), std::runtime_error);
  std::memcpy(bad, buf, sizeof(buf));
  bad[0] = std::byte{0x09};  // kind 9: out of range, magic intact
  EXPECT_THROW(net::decode(bad), std::runtime_error);
}

TEST(NetBootstrap, OptionsValidate) {
  net::NetOptions opts;
  opts.rank = 0;
  opts.size = 2;
  opts.rendezvous = net::Address{"127.0.0.1", 1};
  EXPECT_NO_THROW(opts.validate());
  net::NetOptions bad = opts;
  bad.rank = 2;  // out of [0, size)
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = opts;
  bad.rails = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(NetBootstrap, ParseAddress) {
  const net::Address a = net::parse_address("10.1.2.3:4455");
  EXPECT_EQ(a.host, "10.1.2.3");
  EXPECT_EQ(a.port, 4455);
  EXPECT_THROW(net::parse_address("no-port-here"), std::invalid_argument);
}

TEST(NetP2P, PingPongEagerAndRendezvous) {
  // 1 KiB stays eager, 192 KiB crosses into rendezvous (threshold 16 KiB).
  run_net_threads(2, [](Comm& c) -> Task<void> {
    const int peer = 1 - c.rank();
    for (std::size_t bytes : {std::size_t{1} << 10, std::size_t{192} << 10}) {
      Buffer s = Buffer::real(bytes);
      Buffer r = Buffer::real(bytes);
      for (std::size_t k = 0; k < bytes; ++k) {
        s.data()[k] = test::pattern(c.rank(), peer, k);
      }
      co_await c.sendrecv(s.view(), peer, 1, r.view(), peer, 1);
      for (std::size_t k = 0; k < bytes; ++k) {
        if (r.data()[k] != test::pattern(peer, c.rank(), k)) {
          throw std::runtime_error("payload corrupt at byte " +
                                   std::to_string(k));
        }
      }
    }
  });
}

TEST(NetP2P, MultiRailStriping) {
  // Tiny thresholds force eager->rndv at 64 B and striping at 256 B over
  // 3 rails; a 1 MiB message then exercises out-of-order reassembly.
  run_net_threads(
      2,
      [](Comm& c) -> Task<void> {
        const int peer = 1 - c.rank();
        const std::size_t bytes = 1 << 20;
        Buffer s = Buffer::real(bytes);
        Buffer r = Buffer::real(bytes);
        for (std::size_t k = 0; k < bytes; ++k) {
          s.data()[k] = test::pattern(c.rank(), peer, k);
        }
        co_await c.sendrecv(s.view(), peer, 2, r.view(), peer, 2);
        for (std::size_t k = 0; k < bytes; ++k) {
          if (r.data()[k] != test::pattern(peer, c.rank(), k)) {
            throw std::runtime_error("striped payload corrupt at byte " +
                                     std::to_string(k));
          }
        }
        // Rails beyond 0 must have genuinely carried bytes.
        if (c.rank() == 0) {
          const auto& reg = obs::metrics();
          std::uint64_t beyond = reg.counter_value("net.rail.1.tx_bytes") +
                                 reg.counter_value("net.rail.2.tx_bytes");
          if (beyond == 0) {
            throw std::runtime_error("no bytes on rails 1/2");
          }
        }
      },
      /*rails=*/3, /*eager_max=*/64, /*stripe_min=*/256);
}

TEST(NetP2P, WildcardsAndFifoOrder) {
  run_net_threads(3, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(4);
    if (c.rank() != 0) {
      // Two ordered messages per sender; per-pair FIFO must hold.
      for (int i = 0; i < 2; ++i) {
        b.typed<int>()[0] = 100 * c.rank() + i;
        co_await c.send(b.view(), 0, 7);
      }
    } else {
      int last_from[3] = {-1, -1, -1};
      for (int i = 0; i < 4; ++i) {
        co_await c.recv(b.view(), rt::kAnySource, rt::kAnyTag);
        const int v = b.typed<int>()[0];
        const int from = v / 100;
        if (v % 100 <= last_from[from]) {
          throw std::runtime_error("per-pair order violated");
        }
        last_from[from] = v % 100;
      }
    }
  });
}

TEST(NetP2P, ZeroByteMessages) {
  run_net_threads(2, [](Comm& c) -> Task<void> {
    const int peer = 1 - c.rank();
    co_await c.sendrecv(rt::ConstView{}, peer, 3, rt::MutView{}, peer, 3);
  });
}

TEST(NetP2P, TruncationThrowsOnBothPaths) {
  run_net_threads(2, [](Comm& c) -> Task<void> {
    // 64 B eager and 64 KiB rendezvous, both into an 8-byte buffer.
    for (std::size_t bytes : {std::size_t{64}, std::size_t{64} << 10}) {
      if (c.rank() == 0) {
        Buffer big = Buffer::real(bytes);
        co_await c.send(big.view(), 1, 4);
      } else {
        Buffer small = Buffer::real(8);
        bool threw = false;
        try {
          co_await c.recv(small.view(), 0, 4);
        } catch (const std::runtime_error&) {
          threw = true;
        }
        if (!threw) {
          throw std::runtime_error("truncation did not throw");
        }
      }
    }
  });
}

TEST(NetP2P, SelfSend) {
  run_net_threads(2, [](Comm& c) -> Task<void> {
    Buffer s = Buffer::real(64);
    Buffer r = Buffer::real(64);
    for (std::size_t k = 0; k < 64; ++k) {
      s.data()[k] = test::pattern(c.rank(), c.rank(), k);
    }
    co_await c.sendrecv(s.view(), c.rank(), 9, r.view(), c.rank(), 9);
    for (std::size_t k = 0; k < 64; ++k) {
      if (r.data()[k] != test::pattern(c.rank(), c.rank(), k)) {
        throw std::runtime_error("self-send corrupt");
      }
    }
  });
}

TEST(NetSubcomm, IsolationAndDeterministicKeys) {
  run_net_threads(4, [](Comm& c) -> Task<void> {
    // Same tag on world and on the even/odd subcomm; never cross-matches.
    std::vector<int> mine;
    for (int r = c.rank() % 2; r < 4; r += 2) {
      mine.push_back(r);
    }
    auto sub = c.create_subcomm(mine);
    const int speer = 1 - sub->rank();
    Buffer w = Buffer::real(4);
    Buffer s = Buffer::real(4);
    Buffer rw = Buffer::real(4);
    Buffer rs = Buffer::real(4);
    w.typed<int>()[0] = 10 + c.rank();
    s.typed<int>()[0] = 20 + c.rank();
    const int wpeer = (c.rank() + 2) % 4;  // same parity: also in `mine`
    co_await c.sendrecv(w.view(), wpeer, 5, rw.view(), wpeer, 5);
    co_await sub->sendrecv(s.view(), speer, 5, rs.view(), speer, 5);
    if (rw.typed<int>()[0] != 10 + wpeer) {
      throw std::runtime_error("world message misrouted");
    }
    if (rs.typed<int>()[0] != 20 + mine[static_cast<std::size_t>(speer)]) {
      throw std::runtime_error("subcomm message misrouted");
    }
  });
}

TEST(NetTeardown, PeerLossErrorsInsteadOfHanging) {
  run_net_threads(3, [](Comm& c) -> Task<void> {
    auto& nc = static_cast<net::NetComm&>(c);
    if (c.rank() == 1) {
      // Drop every socket without the Bye handshake.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      nc.endpoint().abort_for_test();
      co_return;
    }
    Buffer b = Buffer::real(1 << 16);
    bool threw = false;
    try {
      const Request r = c.irecv(b.view(), 1, 3);
      c.wait_try({&r, 1});
    } catch (const std::runtime_error& e) {
      threw = std::string(e.what()).find("lost") != std::string::npos;
    }
    if (!threw) {
      throw std::runtime_error("peer loss did not error the wait");
    }
  });
}

TEST(NetTeardown, SendToDeadPeerErrorsInsteadOfSigpipe) {
  run_net_threads(2, [](Comm& c) -> Task<void> {
    auto& nc = static_cast<net::NetComm&>(c);
    if (c.rank() == 1) {
      nc.endpoint().abort_for_test();  // no Bye, no flush: looks crashed
      co_return;
    }
    // Keep flushing eager frames at the dead peer. The first writes land
    // in the socket buffer; once the peer's RST comes back the kernel
    // returns EPIPE, which must surface as the documented runtime_error —
    // not as a process-killing SIGPIPE (all socket writes use
    // MSG_NOSIGNAL). Unlike the receive-side test above, this drives the
    // *write* path against a reset connection.
    Buffer b = Buffer::real(512);
    bool threw = false;
    try {
      for (int i = 0; i < 10000 && !threw; ++i) {
        (void)c.isend(b.view(), 1, 4);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } catch (const std::runtime_error&) {
      threw = true;
    }
    if (!threw) {
      throw std::runtime_error("send to dead peer did not error");
    }
    co_return;
  });
}

TEST(NetObs, CountersAndBackendName) {
  const auto& reg = obs::metrics();
  const std::uint64_t eager0 = reg.counter_value("net.eager_tx");
  const std::uint64_t frames0 = reg.counter_value("net.frames_tx");
  run_net_threads(2, [](Comm& c) -> Task<void> {
    if (c.backend_name() != "net") {
      throw std::runtime_error("backend_name");
    }
    if (c.now() < 0.0) {
      throw std::runtime_error("clock");
    }
    Buffer b = Buffer::real(256);
    co_await c.sendrecv(b.view(), 1 - c.rank(), 6, b.view(), 1 - c.rank(), 6);
  });
  EXPECT_GT(reg.counter_value("net.eager_tx"), eager0);
  EXPECT_GT(reg.counter_value("net.frames_tx"), frames0);
}

}  // namespace
}  // namespace mca2a
