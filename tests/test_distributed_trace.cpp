/// Tests for the distributed half of the observability layer: the clock
/// calibration estimator (midpoint-of-min-RTT offset recovery, least-squares
/// drift fit), deterministic message-flow ids, flow stitching on the smp
/// backend (every arrow started in a send span is finished exactly once in
/// the matching receive span, across streams), and cluster metrics
/// aggregation (delta epochs, wire roundtrip, pure combine, and the
/// collective reduce over a real threads-backend communicator).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/clock_sync.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "smp/mailbox.hpp"
#include "smp/smp_runtime.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Comm;
using rt::Task;

// ---------------------------------------------------------------------------
// Clock calibration estimator
// ---------------------------------------------------------------------------

/// Synthesize one pingpong probe under a known skew: the local clock reads
/// `offset` ahead of the reference, the ping takes `fwd` seconds and the
/// pong `bwd` seconds of real (reference) time.
obs::ProbeSample make_probe(double t_ref_send, double offset, double fwd,
                            double bwd) {
  obs::ProbeSample s;
  s.t_send = t_ref_send + offset;
  s.t_remote = t_ref_send + fwd;
  s.t_recv = t_ref_send + fwd + bwd + offset;
  return s;
}

TEST(ClockSync, RecoversSyntheticOffsetAtMinRtt) {
  const double offset = 1.25e-3;  // local runs 1.25ms ahead
  std::vector<obs::ProbeSample> probes;
  // Noisy probes with asymmetric paths, plus one tight symmetric probe
  // whose midpoint is exact: the estimator must pick it via min RTT.
  probes.push_back(make_probe(0.010, offset, 800e-6, 100e-6));
  probes.push_back(make_probe(0.020, offset, 120e-6, 700e-6));
  probes.push_back(make_probe(0.030, offset, 20e-6, 20e-6));
  probes.push_back(make_probe(0.040, offset, 500e-6, 500e-6));
  const obs::ClockCalibration c = obs::estimate_offset(probes);
  ASSERT_TRUE(c.valid);
  EXPECT_NEAR(c.offset_s, offset, 1e-12);
  EXPECT_NEAR(c.min_rtt_s, 40e-6, 1e-12);
  EXPECT_EQ(c.probes, 4);
  // align() maps local readings back onto the reference timebase.
  EXPECT_NEAR(c.align(0.030 + offset), 0.030, 1e-9);
}

TEST(ClockSync, DegenerateRoundsAreInvalid) {
  EXPECT_FALSE(obs::estimate_offset({}).valid);
  obs::ProbeSample backwards;  // pong "arrives" before the ping left
  backwards.t_send = 2.0;
  backwards.t_remote = 2.0;
  backwards.t_recv = 1.0;
  const std::array<obs::ProbeSample, 1> probes{backwards};
  EXPECT_FALSE(obs::estimate_offset(probes).valid);
}

TEST(ClockSync, DriftFitRecoversLinearSkew) {
  // A clock 50ppm fast: offset grows 50us per local second. Feed the fit
  // three rounds along that line; it must recover the slope and align
  // points between (and beyond) the anchors.
  const double drift = 50e-6;
  const double offset0 = 2e-3;
  std::vector<obs::ClockCalibration> rounds;
  for (int k = 0; k < 3; ++k) {
    obs::ClockCalibration r;
    r.valid = true;
    r.base_local_s = 10.0 * k;
    r.offset_s = offset0 + drift * r.base_local_s;
    r.min_rtt_s = 30e-6;
    r.probes = 16;
    rounds.push_back(r);
  }
  const obs::ClockCalibration c = obs::fit_drift(rounds);
  ASSERT_TRUE(c.valid);
  EXPECT_NEAR(c.drift, drift, 1e-9);
  EXPECT_EQ(c.rounds, 3);
  // A local reading at t=35s aligns to reference despite the growing skew.
  const double local = 35.0 + offset0 + drift * 35.0;
  EXPECT_NEAR(c.align(local), 35.0, 1e-6);
  // One round: no slope to fit, but the offset must pass through.
  const obs::ClockCalibration single =
      obs::fit_drift({rounds.data(), 1});
  ASSERT_TRUE(single.valid);
  EXPECT_EQ(single.drift, 0.0);
  EXPECT_NEAR(single.offset_s, offset0, 1e-12);
}

// ---------------------------------------------------------------------------
// Deterministic flow ids
// ---------------------------------------------------------------------------

TEST(FlowId, DeterministicNonzeroAndDistinct) {
  const std::uint64_t a = obs::flow_id(1, 0, 1, 7, 0);
  EXPECT_EQ(a, obs::flow_id(1, 0, 1, 7, 0));  // pure function of the tuple
  EXPECT_NE(a, 0u);                           // 0 is the "no flow" sentinel

  // Any single coordinate moving must move the id: same message sequence
  // on another comm, another peer pair, another tag stream, or the next
  // message of the same stream all get distinct arrows.
  std::set<std::uint64_t> ids;
  ids.insert(a);
  ids.insert(obs::flow_id(2, 0, 1, 7, 0));  // other comm
  ids.insert(obs::flow_id(1, 1, 0, 7, 0));  // direction flipped
  ids.insert(obs::flow_id(1, 0, 2, 7, 0));  // other destination
  ids.insert(obs::flow_id(1, 0, 1, 8, 0));  // other tag
  ids.insert(obs::flow_id(1, 0, 1, 7, 1));  // next in stream
  EXPECT_EQ(ids.size(), 6u);
}

// ---------------------------------------------------------------------------
// Smp flow stitching: arrows pair up across rank streams
// ---------------------------------------------------------------------------

TEST(SmpFlowStitch, EveryArrowStartsOnceAndFinishesOnce) {
  constexpr int kRanks = 4;
  constexpr int kMsgs = 5;
  obs::TraceRecorder rec;
  obs::set_active_recorder(&rec);
  smp::MailboxConfig cfg;  // defaults: ring transport (stitching active)
  smp::run_threads(kRanks, cfg, [&](Comm& world) -> Task<void> {
    const int me = world.rank();
    const int dst = (me + 1) % kRanks;
    const int src = (me + kRanks - 1) % kRanks;
    std::array<std::byte, 64> out{};
    std::array<std::byte, 64> in{};
    for (int i = 0; i < kMsgs; ++i) {
      const std::array<rt::Request, 2> reqs{
          world.irecv(rt::MutView{in.data(), in.size()}, src, /*tag=*/3),
          world.isend(rt::ConstView{out.data(), out.size()}, dst, /*tag=*/3)};
      world.wait_try(reqs);
    }
    co_return;
  });
  obs::set_active_recorder(nullptr);

  std::map<std::uint64_t, int> starts;
  std::map<std::uint64_t, int> ends;
  int send_spans = 0;
  int recv_spans = 0;
  for (int r = 0; r < kRanks; ++r) {
    const obs::TraceBuffer* tb = rec.stream("smp", r);
    ASSERT_NE(tb, nullptr) << "rank " << r;
    ASSERT_EQ(tb->dropped(), 0u);
    for (const obs::TraceEvent& e : tb->events()) {
      if (e.type == obs::EventType::kFlowStart) {
        ++starts[e.flow];
      } else if (e.type == obs::EventType::kFlowEnd) {
        ++ends[e.flow];
      } else if (e.type == obs::EventType::kBegin && e.name == "smp.send") {
        ++send_spans;
      } else if (e.type == obs::EventType::kBegin && e.name == "smp.recv") {
        ++recv_spans;
      }
    }
  }
  // One arrow per message, each started in a send span on the producing
  // rank and finished in the matching accept on the consumer.
  EXPECT_EQ(send_spans, kRanks * kMsgs);
  EXPECT_EQ(recv_spans, kRanks * kMsgs);
  ASSERT_EQ(starts.size(), static_cast<std::size_t>(kRanks * kMsgs));
  EXPECT_EQ(starts, ends);  // same ids, each exactly once on both sides
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "flow " << id << " started " << n << " times";
  }
}

TEST(SmpFlowStitch, MutexTransportStaysUnstitched) {
  // Mutex-mode accept() runs on the *sender's* thread; pushing receive
  // events there would break the trace buffer's single-writer contract,
  // so stitching must stay off entirely.
  obs::TraceRecorder rec;
  obs::set_active_recorder(&rec);
  smp::MailboxConfig cfg;
  cfg.kind = smp::MailboxKind::kMutex;
  smp::run_threads(2, cfg, [&](Comm& world) -> Task<void> {
    std::array<std::byte, 8> buf{};
    if (world.rank() == 0) {
      world.isend(rt::ConstView{buf.data(), buf.size()}, 1, 0);
    } else {
      const std::array<rt::Request, 1> reqs{
          world.irecv(rt::MutView{buf.data(), buf.size()}, 0, 0)};
      world.wait_try(reqs);
    }
    co_return;
  });
  obs::set_active_recorder(nullptr);
  for (int r = 0; r < 2; ++r) {
    const obs::TraceBuffer* tb = rec.stream("smp", r);
    ASSERT_NE(tb, nullptr);
    for (const obs::TraceEvent& e : tb->events()) {
      EXPECT_NE(e.type, obs::EventType::kFlowStart);
      EXPECT_NE(e.type, obs::EventType::kFlowEnd);
    }
  }
}

// ---------------------------------------------------------------------------
// Cluster metrics aggregation
// ---------------------------------------------------------------------------

TEST(ClusterMetricsAgg, DeltaSubtractsTheEpochBaseline) {
  obs::MetricsRegistry reg;
  reg.counter("pre.existing").add(100);
  reg.histogram("lat").observe(5);
  obs::MetricsAggregator agg(reg);
  reg.counter("pre.existing").add(7);
  reg.counter("fresh").add(3);
  reg.gauge("depth").set(42);
  reg.histogram("lat").observe(11);

  const obs::MetricsSnapshot d = agg.delta();
  std::map<std::string, std::uint64_t> counters;
  for (const auto& c : d.counters) {
    counters[c.name] = c.value;
  }
  EXPECT_EQ(counters.size(), 2u);  // untouched counters are dropped
  EXPECT_EQ(counters["pre.existing"], 7u);
  EXPECT_EQ(counters["fresh"], 3u);
  ASSERT_EQ(d.gauges.size(), 1u);  // gauges report current value
  EXPECT_EQ(d.gauges[0].value, 42);
  ASSERT_EQ(d.histograms.size(), 1u);
  EXPECT_EQ(d.histograms[0].count, 1u);
  EXPECT_EQ(d.histograms[0].sum, 11u);

  agg.rebase();
  EXPECT_TRUE(agg.delta().counters.empty());
}

TEST(ClusterMetricsAgg, WireFormatRoundtrips) {
  obs::MetricsRegistry reg;
  reg.counter("a.bytes").add(12345);
  reg.gauge("b.depth").set(-4);
  reg.histogram("c.lat").observe(10);
  reg.histogram("c.lat").observe(30);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::MetricsSnapshot back =
      obs::MetricsAggregator::parse(obs::MetricsAggregator::serialize(snap));
  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].name, "a.bytes");
  EXPECT_EQ(back.counters[0].value, 12345u);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_EQ(back.gauges[0].value, -4);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].count, 2u);
  EXPECT_EQ(back.histograms[0].sum, 40u);
  EXPECT_THROW(obs::MetricsAggregator::parse("x what 1\n"),
               std::runtime_error);
}

TEST(ClusterMetricsAgg, CombineComputesExtremaAndImbalance) {
  std::vector<obs::MetricsSnapshot> per_rank(3);
  per_rank[0].counters.push_back({"bytes", 10});
  per_rank[1].counters.push_back({"bytes", 40});
  // Rank 2 never touched "bytes": absent must read as zero.
  per_rank[2].gauges.push_back({"depth", 5});
  const obs::ClusterMetrics cm = obs::MetricsAggregator::combine(per_rank);
  EXPECT_EQ(cm.ranks, 3);
  const obs::ClusterMetrics::Item* bytes = cm.find("bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->kind, 'c');
  EXPECT_DOUBLE_EQ(bytes->total, 50.0);
  EXPECT_DOUBLE_EQ(bytes->min, 0.0);
  EXPECT_EQ(bytes->min_rank, 2);
  EXPECT_DOUBLE_EQ(bytes->max, 40.0);
  EXPECT_EQ(bytes->max_rank, 1);
  EXPECT_DOUBLE_EQ(bytes->mean, 50.0 / 3.0);
  EXPECT_DOUBLE_EQ(bytes->imbalance, 40.0 / (50.0 / 3.0));
  ASSERT_EQ(bytes->per_rank.size(), 3u);
  const obs::ClusterMetrics::Item* depth = cm.find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, 'g');
  EXPECT_EQ(cm.find("never.recorded"), nullptr);
}

TEST(ClusterMetricsAgg, SmpReduceTotalsMatchPerRankRegistries) {
  constexpr int kRanks = 4;
  test::run_smp(kRanks, [&](Comm& world) -> Task<void> {
    // Each rank owns a private registry, as net-backend processes do.
    obs::MetricsRegistry reg;
    obs::MetricsAggregator agg(reg);
    const int me = world.rank();
    reg.counter("work.bytes").add(
        static_cast<std::uint64_t>(100 * (me + 1)));
    reg.gauge("work.depth").set(me);
    reg.histogram("work.lat").observe(static_cast<std::uint64_t>(me + 1));
    const obs::ClusterMetrics cm = agg.reduce(world);
    if (me == 0) {
      // ASSERT_* returns from the enclosing function, which a coroutine
      // forbids — use EXPECT_ plus explicit null guards instead.
      const obs::ClusterMetrics::Item* bytes = cm.find("work.bytes");
      EXPECT_NE(bytes, nullptr);
      if (bytes != nullptr) {
        EXPECT_DOUBLE_EQ(bytes->total, 100.0 + 200.0 + 300.0 + 400.0);
        EXPECT_EQ(bytes->max_rank, kRanks - 1);
        EXPECT_DOUBLE_EQ(bytes->max, 400.0);
      }
      const obs::ClusterMetrics::Item* lat_sum = cm.find("work.lat.sum");
      EXPECT_NE(lat_sum, nullptr);
      if (lat_sum != nullptr) {
        EXPECT_EQ(lat_sum->kind, 'h');
        EXPECT_DOUBLE_EQ(lat_sum->total, 1.0 + 2.0 + 3.0 + 4.0);
      }
      const obs::ClusterMetrics::Item* depth = cm.find("work.depth");
      EXPECT_NE(depth, nullptr);
      if (depth != nullptr) {
        EXPECT_DOUBLE_EQ(depth->max, kRanks - 1.0);
      }
    } else {
      EXPECT_EQ(cm.ranks, 0);  // non-root ranks get the empty result
    }
    co_return;
  });
}

TEST(ClusterMetricsAgg, JsonOutputParsesAndCarriesPerRankVectors) {
  std::vector<obs::MetricsSnapshot> per_rank(2);
  per_rank[0].counters.push_back({"n", 1});
  per_rank[1].counters.push_back({"n", 3});
  const obs::ClusterMetrics cm = obs::MetricsAggregator::combine(per_rank);
  std::ostringstream os;
  obs::MetricsAggregator::write_json(cm, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ranks\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"per_rank\": [1, 3]"), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\": 1.5"), std::string::npos);
}

}  // namespace
}  // namespace mca2a
