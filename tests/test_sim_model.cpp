/// Tests for the performance-model mechanisms the figures depend on:
/// receiver-CPU serialization (funnel costs), cut-through pipelining,
/// cache-blended intra-node copy rates, rendezvous NIC penalty, vendor
/// cost scaling, and queue-search growth.

#include <gtest/gtest.h>

#include <vector>

#include "core/alltoall.hpp"
#include "harness/sweep.hpp"
#include "model/cost.hpp"
#include "runtime/collectives.hpp"
#include "sim/sim_comm.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Request;
using rt::Task;
using topo::Level;

/// Time for `senders` ranks on one node to each send one `bytes` message to
/// a single receiver rank (a gather-style funnel).
double funnel_time(int senders, std::size_t bytes, model::NetParams net) {
  topo::MachineDesc d;
  d.nodes = 1;
  d.cores_per_numa = senders + 1;
  double done = 0.0;
  test::run_sim(
      topo::Machine(d),
      [&](Comm& c) -> Task<void> {
        Buffer b = Buffer::real(bytes);
        if (c.rank() > 0) {
          co_await c.send(b.view(), 0, 0);
        } else {
          std::vector<Request> reqs;
          std::vector<Buffer> bufs;
          for (int s = 1; s <= senders; ++s) {
            bufs.push_back(Buffer::real(bytes));
          }
          for (int s = 1; s <= senders; ++s) {
            reqs.push_back(c.irecv(bufs[s - 1].view(), s, 0));
          }
          co_await c.wait_all(reqs);
          done = c.now();
        }
      },
      net);
  return done;
}

TEST(SimModel, ReceiverCpuSerializesFunnel) {
  // Twice the senders must cost the funnel roughly twice the receive-side
  // copy time: receiving is not free parallel magic.
  model::NetParams net = model::test_params();
  // Remove the memory-channel serialization so the receiver CPU is the
  // only serial resource in the funnel.
  net.mem_channel_beta = 0.0;
  net.mem_msg_overhead = 0.0;
  const double t8 = funnel_time(8, 1 << 16, net);
  const double t16 = funnel_time(16, 1 << 16, net);
  const double per_msg =
      model::recv_cpu_time(net, Level::kNuma, 1 << 16) + net.match_base;
  EXPECT_NEAR(t16 - t8, 8 * per_msg, 4 * per_msg);
  EXPECT_GT(t16 - t8, 6 * per_msg);  // constant wire floor cancels
}

TEST(SimModel, CacheBlendedIntraCopy) {
  model::NetParams net = model::test_params();
  net.cpu_copy_beta_intra = 4e-10;
  net.cpu_copy_beta_intra_cached = 1e-10;
  net.intra_cache_bytes = 1024;
  // Below the cache bound: cheap rate. Far above: expensive rate.
  const double small = model::cpu_copy_time(net, Level::kNuma, 1024);
  EXPECT_DOUBLE_EQ(small, 1024 * 1e-10);
  const double big = model::cpu_copy_time(net, Level::kNuma, 1 << 20);
  EXPECT_NEAR(big, (1 << 20) * 4e-10, 1024 * 4e-10);
  // Continuity at the boundary.
  const double at = model::cpu_copy_time(net, Level::kNuma, 1024);
  const double just_above = model::cpu_copy_time(net, Level::kNuma, 1025);
  EXPECT_NEAR(just_above - at, 4e-10, 1e-12);
  // Network messages use the flat DMA rate.
  EXPECT_DOUBLE_EQ(model::cpu_copy_time(net, Level::kNetwork, 1 << 20),
                   (1 << 20) * net.cpu_copy_beta);
}

TEST(SimModel, CutThroughPipelinesWireBehindInjection) {
  // With wire beta <= injection rate, a large message's arrival time is
  // injection-end + alpha: the wire adds no serial term.
  model::NetParams net = model::test_params();
  net.at(Level::kNetwork).beta = 5e-10;  // slower than inject 1e-9? no: faster
  const std::size_t bytes = 1 << 20;
  double recv_done = 0.0;
  test::run_sim(
      topo::generic(2, 1),
      [&](Comm& c) -> Task<void> {
        Buffer b = Buffer::real(bytes);
        if (c.rank() == 0) {
          co_await c.send(b.view(), 1, 0);
        } else {
          co_await c.recv(b.view(), 0, 0);
          recv_done = c.now();
        }
      },
      net);
  const double inject = model::nic_inject_time(net, bytes);
  const double serial_model = inject + net.at(Level::kNetwork).alpha +
                              bytes * net.at(Level::kNetwork).beta;
  // Far below a store-and-forward estimate; just above the pipelined bound.
  EXPECT_LT(recv_done, serial_model - 0.4 * bytes * 5e-10);
  EXPECT_GT(recv_done, inject);
}

TEST(SimModel, RendezvousNicPenaltyReducesThroughput) {
  // The rendezvous factor models reduced NIC *throughput* (CPU-mediated
  // chunked injection); a single message's latency is largely hidden by
  // cut-through, so measure a train of back-to-back transfers.
  constexpr int kMsgs = 8;
  constexpr std::size_t kBytes = 1 << 13;
  auto train_time = [&](double factor) {
    model::NetParams net = model::test_params();
    net.eager_threshold = 1 << 12;  // 8 KiB messages use rendezvous
    net.rendezvous_nic_factor = factor;
    double done = 0.0;
    test::run_sim(
        topo::generic(2, 1),
        [&](Comm& c) -> Task<void> {
          // Post everything up front so the NIC streams the whole train:
          // injections go back-to-back and throughput binds.
          std::vector<Buffer> bufs(kMsgs);
          std::vector<Request> reqs;
          for (int i = 0; i < kMsgs; ++i) {
            bufs[i] = Buffer::real(kBytes);
          }
          if (c.rank() == 0) {
            for (int i = 0; i < kMsgs; ++i) {
              reqs.push_back(c.isend(bufs[i].view(), 1, i));
            }
          } else {
            for (int i = 0; i < kMsgs; ++i) {
              reqs.push_back(c.irecv(bufs[i].view(), 0, i));
            }
          }
          co_await c.wait_all(reqs);
          if (c.rank() == 1) {
            done = c.now();
          }
        },
        net);
    return done;
  };
  const double base = train_time(1.0);
  const double penalized = train_time(2.0);
  // The NIC busy time doubles; the train is injection-throughput-bound.
  EXPECT_GT(penalized, base * 1.3);
}

TEST(SimModel, VendorScaleSpeedsUpCpuCosts) {
  auto total_time = [&](double scale) {
    sim::ClusterConfig cfg;
    cfg.machine = topo::generic(2, 4).desc();
    cfg.net = model::test_params();
    sim::Cluster cluster(cfg);
    cluster.run([&](Comm& c) -> Task<void> {
      auto* sc = dynamic_cast<sim::SimComm*>(&c);
      sc->set_cost_scale(scale);
      Buffer s = Buffer::real(256 * c.size());
      Buffer r = Buffer::real(256 * c.size());
      co_await coll::alltoall_pairwise(c, s.view(), r.view(), 256);
    });
    return cluster.max_clock();
  };
  EXPECT_LT(total_time(0.5), total_time(1.0));
}

TEST(SimModel, QueueSearchCostGrowsWithPostedQueue) {
  // A receive that matches the 100th posted entry pays for the scan.
  model::NetParams net = model::test_params();
  net.match_per_item = 1e-6;  // exaggerate
  auto recv_time = [&](int posted_before) {
    double done = 0.0;
    test::run_sim(
        topo::generic(1, 2),
        [&](Comm& c) -> Task<void> {
          Buffer b = Buffer::real(8);
          if (c.rank() == 0) {
            co_await c.send(b.view(), 1, 777);
          } else {
            std::vector<Buffer> sink(posted_before);
            std::vector<Request> never;
            for (int i = 0; i < posted_before; ++i) {
              sink[i] = Buffer::real(8);
              never.push_back(c.irecv(sink[i].view(), 1, i));  // no match
            }
            co_await c.recv(b.view(), 0, 777);
            done = c.now();
            // Note: `never` requests are left pending; the simulation ends
            // with them unmatched, which is fine for this rank's lifetime.
          }
        },
        net);
    return done;
  };
  const double q0 = recv_time(0);
  const double q100 = recv_time(100);
  EXPECT_GT(q100, q0 + 50 * net.match_per_item);
}

TEST(SimModel, ShapeMlnaBeatsDirectAtSmallOnManyNodes) {
  // Cheap version of the Figure 10/11 claim: on a many-core machine (the
  // effect needs ~100 ranks per node) the novel algorithm beats System MPI
  // at 4-byte blocks. Small node counts keep the simulation fast.
  const topo::Machine machine = topo::dane(8);
  const model::NetParams net = model::omni_path();
  auto measure = [&](coll::Algo algo, int g) {
    bench::RunSpec spec;
    spec.machine = machine.desc();
    spec.net = net;
    spec.algo = algo;
    spec.group_size = g;
    spec.block = 4;
    return bench::run_sim(spec).seconds;
  };
  const double mlna = measure(coll::Algo::kMultileaderNodeAware, 4);
  const double system = measure(coll::Algo::kSystemMpi, 0);
  EXPECT_LT(mlna, system);
}

TEST(SimModel, ShapeHierarchicalWorstAtLargeBlocks) {
  const topo::Machine machine = topo::generic_hier(4, 2, 2, 4);
  const model::NetParams net = model::omni_path();
  auto measure = [&](coll::Algo algo) {
    bench::RunSpec spec;
    spec.machine = machine.desc();
    spec.net = net;
    spec.algo = algo;
    spec.block = 4096;
    return bench::run_sim(spec).seconds;
  };
  EXPECT_GT(measure(coll::Algo::kHierarchical),
            measure(coll::Algo::kNodeAware) * 1.5);
}

}  // namespace
}  // namespace mca2a
