/// Tests for the shared-memory (threads) backend: point-to-point semantics,
/// matching rules under real concurrency, sub-communicators, stress.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::ConstView;
using rt::MutView;
using rt::Request;
using rt::Task;
using test::run_smp;

TEST(SmpP2P, PingPong) {
  run_smp(2, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(8);
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) b.data()[i] = static_cast<std::byte>(i + 1);
      co_await c.send(b.view(), 1, 0);
      co_await c.recv(b.view(), 1, 1);
      EXPECT_EQ(b.data()[0], std::byte{42});
    } else {
      co_await c.recv(b.view(), 0, 0);
      EXPECT_EQ(b.data()[7], std::byte{8});
      b.data()[0] = std::byte{42};
      co_await c.send(b.view(), 0, 1);
    }
  });
}

TEST(SmpP2P, SendIsEagerAndNonBlocking) {
  // Both ranks send before receiving; buffered semantics must not deadlock.
  run_smp(2, [](Comm& c) -> Task<void> {
    Buffer s = Buffer::real(1 << 16);
    Buffer r = Buffer::real(1 << 16);
    const int peer = 1 - c.rank();
    co_await c.send(s.view(), peer, 0);
    co_await c.recv(r.view(), peer, 0);
  });
}

TEST(SmpP2P, TagAndSourceWildcards) {
  run_smp(3, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(4);
    if (c.rank() != 0) {
      b.typed<int>()[0] = 10 + c.rank();
      co_await c.send(b.view(), 0, 100 + c.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        co_await c.recv(b.view(), rt::kAnySource, rt::kAnyTag);
        sum += b.typed<int>()[0];
      }
      EXPECT_EQ(sum, 23);
    }
  });
}

TEST(SmpP2P, NonOvertakingPerPair) {
  run_smp(2, [](Comm& c) -> Task<void> {
    constexpr int kN = 100;
    Buffer b = Buffer::real(4);
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        b.typed<int>()[0] = i;
        co_await c.send(b.view(), 1, 0);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        co_await c.recv(b.view(), 0, 0);
        EXPECT_EQ(b.typed<int>()[0], i);
      }
    }
  });
}

TEST(SmpP2P, WaitallOnMixedRequests) {
  run_smp(2, [](Comm& c) -> Task<void> {
    Buffer s = Buffer::real(8);
    Buffer r = Buffer::real(8);
    const int peer = 1 - c.rank();
    std::array<Request, 2> reqs{c.isend(s.view(), peer, 0),
                                c.irecv(r.view(), peer, 0)};
    co_await c.wait_all(reqs);
  });
}

TEST(SmpP2P, TruncationThrowsAtReceiver) {
  // The sender must complete normally (eager send) and the error surfaces
  // at the receiver's wait; no rank blocks forever.
  EXPECT_THROW(run_smp(2,
                       [](Comm& c) -> Task<void> {
                         Buffer big = Buffer::real(16);
                         Buffer small = Buffer::real(4);
                         if (c.rank() == 0) {
                           co_await c.send(big.view(), 1, 0);
                         } else {
                           co_await c.recv(small.view(), 0, 0);
                         }
                       }),
               std::runtime_error);
}

TEST(SmpP2P, TruncationOnUnexpectedPathThrows) {
  EXPECT_THROW(run_smp(2,
                       [](Comm& c) -> Task<void> {
                         Buffer big = Buffer::real(16);
                         Buffer small = Buffer::real(4);
                         if (c.rank() == 0) {
                           co_await c.send(big.view(), 1, 0);
                           co_await c.send(rt::ConstView{}, 1, 1);
                         } else {
                           // Ensure the big message is already parked
                           // unexpected before posting the small receive.
                           co_await c.recv(rt::MutView{}, 0, 1);
                           co_await c.recv(small.view(), 0, 0);
                         }
                       }),
               std::runtime_error);
}

TEST(SmpP2P, ZeroByteMessages) {
  run_smp(2, [](Comm& c) -> Task<void> {
    if (c.rank() == 0) {
      co_await c.send(ConstView{}, 1, 0);
    } else {
      co_await c.recv(MutView{}, 0, 0);
    }
  });
}

TEST(SmpSubcomm, SplitAndCommunicate) {
  run_smp(4, [](Comm& c) -> Task<void> {
    std::vector<int> members = c.rank() % 2 == 0 ? std::vector<int>{0, 2}
                                                 : std::vector<int>{1, 3};
    auto sub = c.create_subcomm(members);
    Buffer b = Buffer::real(4);
    if (sub->rank() == 0) {
      b.typed<int>()[0] = c.rank() * 7;
      co_await sub->send(b.view(), 1, 0);
    } else {
      co_await sub->recv(b.view(), 0, 0);
      EXPECT_EQ(b.typed<int>()[0], (c.rank() - 2) * 7);
    }
  });
}

TEST(SmpSubcomm, ParentAndChildTrafficDoNotMix) {
  run_smp(2, [](Comm& c) -> Task<void> {
    std::vector<int> both{0, 1};
    auto sub = c.create_subcomm(both);
    Buffer b = Buffer::real(4);
    const int peer = 1 - c.rank();
    // Same tag on parent and child communicators.
    if (c.rank() == 0) {
      b.typed<int>()[0] = 111;
      co_await c.send(b.view(), peer, 9);
      b.typed<int>()[0] = 222;
      co_await sub->send(b.view(), peer, 9);
    } else {
      co_await sub->recv(b.view(), 0, 9);
      EXPECT_EQ(b.typed<int>()[0], 222);
      co_await c.recv(b.view(), 0, 9);
      EXPECT_EQ(b.typed<int>()[0], 111);
    }
  });
}

TEST(SmpStress, ManyRanksAllToAllTraffic) {
  constexpr int kRanks = 16;
  constexpr std::size_t kBlock = 64;
  std::atomic<int> ok{0};
  run_smp(kRanks, [&](Comm& c) -> Task<void> {
    Buffer s = Buffer::real(kBlock * kRanks);
    Buffer r = Buffer::real(kBlock * kRanks);
    test::fill_send(s, c.rank(), kRanks, kBlock);
    std::vector<Request> reqs;
    for (int peer = 0; peer < kRanks; ++peer) {
      if (peer == c.rank()) {
        rt::copy_bytes(r.view(peer * kBlock, kBlock),
                       std::as_const(s).view(peer * kBlock, kBlock));
        continue;
      }
      reqs.push_back(c.irecv(r.view(peer * kBlock, kBlock), peer, 3));
      reqs.push_back(c.isend(s.view(peer * kBlock, kBlock), peer, 3));
    }
    co_await c.wait_all(reqs);
    if (test::check_recv(r, c.rank(), kRanks, kBlock)) {
      ok.fetch_add(1);
    }
  });
  EXPECT_EQ(ok.load(), kRanks);
}

TEST(SmpRuntime, ExceptionPropagates) {
  smp::SmpRuntime runtime(2);
  EXPECT_THROW(
      runtime.run([](Comm& c) -> Task<void> {
        if (c.rank() == 1) {
          throw std::runtime_error("rank 1 failed");
        }
        co_return;
      }),
      std::runtime_error);
}

TEST(SmpRuntime, ReusableAcrossRuns) {
  smp::SmpRuntime runtime(3);
  for (int iter = 0; iter < 3; ++iter) {
    runtime.run([&](Comm& c) -> Task<void> {
      Buffer b = Buffer::real(4);
      const int peer = (c.rank() + 1) % c.size();
      const int from = (c.rank() + c.size() - 1) % c.size();
      b.typed<int>()[0] = c.rank() + iter;
      co_await c.sendrecv(b.view(), peer, 0, b.view(), from, 0);
      EXPECT_EQ(b.typed<int>()[0], from + iter);
    });
  }
}

}  // namespace
}  // namespace mca2a
