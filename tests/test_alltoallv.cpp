/// Correctness of the variable-count all-to-all on both backends with
/// randomized (seeded) count matrices, including zero-sized blocks and
/// strongly skewed distributions.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "coll_ext/alltoallv.hpp"
#include "test_util.hpp"

namespace mca2a {
namespace {

using rt::Buffer;
using rt::Comm;
using rt::Task;

/// Deterministic count matrix: bytes rank s sends to rank d.
std::size_t count_for(int s, int d, int p, std::uint32_t seed) {
  std::mt19937 rng(seed + s * 1000003u + d * 97u);
  std::uniform_int_distribution<int> dist(0, 37);
  // A few pairs exchange nothing; diagonal-ish pairs exchange a lot.
  const int c = dist(rng);
  if (c < 5) {
    return 0;
  }
  if ((s + d) % p == 1) {
    return static_cast<std::size_t>(c) * 17;
  }
  return static_cast<std::size_t>(c);
}

std::byte vbyte(int s, int d, std::size_t k) {
  return static_cast<std::byte>((s * 151 + d * 29 + static_cast<int>(k % 83)) &
                                0xFF);
}

enum class Backend { kSim, kSmp };
enum class Variant { kPairwise, kNonblocking };

struct VCase {
  Backend backend;
  Variant variant;
  int ranks;
  std::uint32_t seed;
};

std::string vcase_name(const ::testing::TestParamInfo<VCase>& info) {
  const VCase& c = info.param;
  return std::string(c.backend == Backend::kSim ? "sim" : "smp") + "_" +
         (c.variant == Variant::kPairwise ? "pw" : "nb") + "_p" +
         std::to_string(c.ranks) + "_seed" + std::to_string(c.seed);
}

class AlltoallvGrid : public ::testing::TestWithParam<VCase> {};

TEST_P(AlltoallvGrid, RoutesVariableCounts) {
  const VCase c = GetParam();
  auto body = [&](Comm& world) -> Task<void> {
    const int p = world.size();
    const int me = world.rank();
    std::vector<std::size_t> scounts(p), rcounts(p);
    for (int d = 0; d < p; ++d) {
      scounts[d] = count_for(me, d, p, c.seed);
      rcounts[d] = count_for(d, me, p, c.seed);
    }
    const auto sdispls = coll::displs_from_counts(scounts);
    const auto rdispls = coll::displs_from_counts(rcounts);
    const std::size_t stotal = sdispls.back() + scounts.back();
    const std::size_t rtotal = rdispls.back() + rcounts.back();
    Buffer send = Buffer::real(stotal);
    Buffer recv = Buffer::real(rtotal);
    for (int d = 0; d < p; ++d) {
      for (std::size_t k = 0; k < scounts[d]; ++k) {
        send.data()[sdispls[d] + k] = vbyte(me, d, k);
      }
    }
    if (c.variant == Variant::kPairwise) {
      co_await coll::alltoallv_pairwise(world, send.view(), scounts, sdispls,
                                        recv.view(), rcounts, rdispls);
    } else {
      co_await coll::alltoallv_nonblocking(world, send.view(), scounts,
                                           sdispls, recv.view(), rcounts,
                                           rdispls);
    }
    for (int s = 0; s < p; ++s) {
      for (std::size_t k = 0; k < rcounts[s]; ++k) {
        EXPECT_EQ(recv.data()[rdispls[s] + k], vbyte(s, me, k))
            << "from " << s << " byte " << k;
      }
    }
  };
  if (c.backend == Backend::kSim) {
    test::run_sim_flat(c.ranks, body);
  } else {
    test::run_smp(c.ranks, body);
  }
}

std::vector<VCase> vcases() {
  std::vector<VCase> cases;
  for (Backend b : {Backend::kSim, Backend::kSmp}) {
    for (Variant v : {Variant::kPairwise, Variant::kNonblocking}) {
      for (int ranks : {2, 5, 9}) {
        for (std::uint32_t seed : {1u, 42u}) {
          cases.push_back(VCase{b, v, ranks, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, AlltoallvGrid, ::testing::ValuesIn(vcases()),
                         vcase_name);

TEST(Alltoallv, DisplsFromCounts) {
  const std::vector<std::size_t> counts{3, 0, 5, 2};
  const auto d = coll::displs_from_counts(counts);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 3, 3, 8}));
}

TEST(Alltoallv, RejectsWrongArity) {
  test::run_sim_flat(3, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(16);
    std::vector<std::size_t> two{8, 8};  // only 2 entries for 3 ranks
    EXPECT_THROW(
        rt::sync_wait(coll::alltoallv_pairwise(c, b.view(), two, two,
                                               b.view(), two, two)),
        std::invalid_argument);
    co_return;
  });
}

TEST(Alltoallv, RejectsOutOfRangeBlocks) {
  test::run_sim_flat(2, [](Comm& c) -> Task<void> {
    Buffer b = Buffer::real(8);
    std::vector<std::size_t> counts{8, 8};  // 16 bytes from an 8-byte buffer
    std::vector<std::size_t> displs{0, 8};
    EXPECT_THROW(
        rt::sync_wait(coll::alltoallv_pairwise(c, b.view(), counts, displs,
                                               b.view(), counts, displs)),
        std::out_of_range);
    co_return;
  });
}

}  // namespace
}  // namespace mca2a
